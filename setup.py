"""Setup shim for environments without the ``wheel`` package.

PEP 660 editable installs need ``wheel``; this offline environment lacks it,
so ``pip install -e . --no-use-pep517`` falls back to the legacy
``setup.py develop`` path provided here.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
)
