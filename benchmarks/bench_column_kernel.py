"""BENCH -- packed column kernel: big-int columns vs numpy uint64 blocks.

Replays a compiled March C- stream on a healthy ``PackedMemoryArray``
(no fault model installed, so the numbers isolate the pure column
algebra of the executor) on both storage backends, at n in {256, 4096},
m in {1, 8}, over a ladder of lane counts spanning the
``AUTO_NUMPY_MIN_BITS`` auto-switch threshold.  The figure of merit is
*lane-operations per second* -- replayed stream operations times the
number of lanes each one resolves -- which is what the batched campaign
engine actually buys per wall-clock second.

Both backends are cross-checked (verdict column, executed count and a
sample of lane images) before a number is emitted; the summary records
per-geometry timings, the numpy/int speedup, and which backend
``backend="auto"`` would have picked -- the data behind the
``AUTO_NUMPY_MIN_BITS`` heuristic in ``repro.memory.packed``.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_column_kernel.py \
        [--out benchmarks/out/bench_column_kernel.json] [--quick]

``--quick`` keeps only the n=256 geometries (a couple of seconds).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.march.library import MARCH_C_MINUS  # noqa: E402
from repro.memory import PackedMemoryArray  # noqa: E402
from repro.memory.packed import AUTO_NUMPY_MIN_BITS  # noqa: E402
from repro.sim import compile_march  # noqa: E402

SIZES = (256, 4096)
WIDTHS = (1, 8)
LANE_LADDER = (64, 512, 4096, 65536)
BACKENDS = ("int", "numpy")


def _replay(stream, n: int, lanes: int, m: int, backend: str):
    packed = PackedMemoryArray(n, lanes=lanes, m=m, backend=backend)
    start = time.perf_counter()
    detected, executed = packed.apply_stream(
        stream.ops, tables=stream.tables, stop_when_all_detected=False)
    elapsed = time.perf_counter() - start
    probe = (detected, executed, packed.dump_lane(0),
             packed.dump_lane(lanes - 1))
    return elapsed, probe


def bench_geometry(n: int, m: int, lanes: int, repeats: int) -> dict:
    """Best-of-``repeats`` healthy replay on both backends, cross-checked."""
    stream = compile_march(MARCH_C_MINUS, n, m=m)
    timings: dict[str, float] = {}
    probes: dict[str, tuple] = {}
    for backend in BACKENDS:
        best = min(_replay(stream, n, lanes, m, backend)
                   for _ in range(repeats))
        timings[backend], probes[backend] = best
    if probes["int"] != probes["numpy"]:
        raise AssertionError(
            f"n={n} m={m} lanes={lanes}: backends diverged on a healthy "
            f"replay"
        )
    t_int, t_np = timings["int"], timings["numpy"]
    detected, executed = probes["int"][0], probes["int"][1]
    if detected != 0:
        raise AssertionError(f"n={n} m={m}: healthy replay detected faults")
    bits = m * lanes
    auto = PackedMemoryArray(n, lanes=lanes, m=m).backend
    row = {
        "n": n,
        "m": m,
        "lanes": lanes,
        "column_bits": bits,
        "operations": executed,
        "int_s": round(t_int, 4),
        "numpy_s": round(t_np, 4),
        "int_lane_ops_per_s": round(executed * lanes / t_int)
        if t_int else None,
        "numpy_lane_ops_per_s": round(executed * lanes / t_np)
        if t_np else None,
        "numpy_vs_int": round(t_int / t_np, 2) if t_np else float("inf"),
        "auto_backend": auto,
    }
    print(f"n={n:<5} m={m} lanes={lanes:<5} ({bits:>5} bits) "
          f"int {t_int:>7.4f}s  numpy {t_np:>7.4f}s  "
          f"x{row['numpy_vs_int']:<6} auto={auto}")
    return row


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON summary here (default: stdout)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default: 3)")
    parser.add_argument("--quick", action="store_true",
                        help="n=256 geometries only (CI smoke)")
    args = parser.parse_args(argv)

    sizes = (SIZES[0],) if args.quick else SIZES
    rows = []
    for n in sizes:
        for m in WIDTHS:
            for lanes in LANE_LADDER:
                repeats = args.repeats if n <= 256 else 1
                rows.append(bench_geometry(n, m, lanes, repeats))
    # Where "auto" disagrees with the measured winner, the threshold is
    # mis-tuned for this host -- surfaced, not failed: the heuristic is
    # a static compromise and small-column rows are overhead-dominated.
    mistuned = [
        {"n": row["n"], "m": row["m"], "lanes": row["lanes"],
         "auto_backend": row["auto_backend"],
         "faster_backend": "numpy" if row["numpy_vs_int"] > 1.0 else "int"}
        for row in rows
        if (row["auto_backend"] == "numpy") != (row["numpy_vs_int"] > 1.0)
    ]
    summary = {
        "benchmark": "column_kernel",
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "quick": args.quick,
        "auto_numpy_min_bits": AUTO_NUMPY_MIN_BITS,
        "rows": rows,
        "max_numpy_speedup": max(r["numpy_vs_int"] for r in rows),
        "auto_mistuned_rows": mistuned,
    }
    text = json.dumps(summary, indent=2)
    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
