"""E6 -- Claim C2: Markov-chain analysis of π-test resolution.

The paper: "Applying Markov chain analysis it was shown that π-test
iteration has a high resolution for most memory faults."  The companion
reference is unavailable; we derive the natural absorbing-chain model
(per-iteration detection probability p = p_activation * p_propagation,
geometric convergence) and validate it against Monte-Carlo fault
simulation on the behavioural memory with randomized seeds/trajectories.
"""

from repro.analysis import DetectionMarkovChain, monte_carlo_detection
from repro.faults import StuckAtFault, TransitionFault
from repro.prt import PiIteration, random_trajectory

N = 14
MAX_ITERATIONS = 6
TRIALS = 120


def random_iteration(rng):
    return PiIteration(
        generator=(1, 0, 1, 1), seed=(0, 0, 1),
        trajectory=random_trajectory(N, seed=rng.randrange(10**6)),
        invert=bool(rng.getrandbits(1)),
    )


def saf_curve():
    return monte_carlo_detection(
        lambda rng: StuckAtFault(rng.randrange(N), rng.randrange(2)),
        random_iteration,
        n=N, max_iterations=MAX_ITERATIONS, trials=TRIALS,
    )


def test_markov_model_tracks_simulation(benchmark):
    empirical = benchmark(saf_curve)
    chain = DetectionMarkovChain(p_activation=0.5, p_propagation=1.0)
    model = chain.detection_curve(MAX_ITERATIONS)

    # Same shape: monotone growth toward 1, tracking within tolerance.
    assert empirical == sorted(empirical)
    for emp, mod in zip(empirical, model, strict=False):
        assert abs(emp - mod) < 0.25
    # "High resolution": most random SAFs fall within a few iterations.
    assert empirical[2] > 0.7

    benchmark.extra_info["empirical_curve"] = [round(p, 3) for p in empirical]
    benchmark.extra_info["model_curve"] = [round(p, 3) for p in model]


def test_transition_faults_converge_slower(benchmark):
    """TFs need an actual blocked transition, so their per-iteration
    activation probability is lower than a SAF's -- the chain predicts a
    slower curve, and the simulation agrees."""

    def tf_curve():
        return monte_carlo_detection(
            lambda rng: TransitionFault(rng.randrange(N),
                                        rising=bool(rng.getrandbits(1))),
            random_iteration,
            n=N, max_iterations=MAX_ITERATIONS, trials=TRIALS,
        )

    tf = benchmark(tf_curve)
    saf = saf_curve()
    # TF detection accumulates more slowly in the early iterations.
    assert tf[0] <= saf[0] + 0.05
    assert tf == sorted(tf)
    benchmark.extra_info["tf_curve"] = [round(p, 3) for p in tf]


def test_expected_iterations_formula():
    chain = DetectionMarkovChain(p_activation=0.5)
    assert chain.expected_iterations() == 2.0
    assert chain.iterations_for_confidence(0.999) == 10
