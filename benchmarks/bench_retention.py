"""E11 (extension) -- data-retention faults need pauses, in March and PRT
alike.

The paper's fault taxonomy (via van de Goor [1]) includes data-retention
faults; neither plain March tests nor plain π-iterations can see them,
because a leaky cell only decays while it sits idle.  Both frameworks fix
this the same way: March inserts ``Del`` elements (MATS+R), PRT pauses
between iterations and lets the verify pass read the decayed background.
This bench measures the DRF coverage of both, with and without pauses.
"""

from repro.faults import DataRetentionFault, FaultInjector, single_cell_universe
from repro.march import MATS_PLUS, MATS_PLUS_RETENTION, run_march
from repro.memory import SinglePortRAM
from repro.prt import standard_schedule

from conftest import coverage_of

N = 14
RETENTION = 64


def march_runner(test):
    return lambda ram: not run_march(test, ram).passed


def schedule_runner(schedule):
    return lambda ram: schedule.run(ram).detected


def run_all():
    universe = single_cell_universe(N, classes=("DRF",), retention=RETENTION)
    results = {}
    results["MATS+ (no pause)"] = coverage_of(
        march_runner(MATS_PLUS), universe, N).overall
    results["MATS+R (Del 256)"] = coverage_of(
        march_runner(MATS_PLUS_RETENTION), universe, N).overall
    results["PRT-3 (no pause)"] = coverage_of(
        schedule_runner(standard_schedule(n=N, verify=True)), universe, N
    ).overall
    results["PRT-3 (pause 256)"] = coverage_of(
        schedule_runner(standard_schedule(n=N, verify=True, pause_between=256)),
        universe, N,
    ).overall
    return results


def test_retention_requires_pause(benchmark):
    results = benchmark(run_all)

    # Without pauses, DRFs are essentially invisible to both frameworks.
    assert results["MATS+ (no pause)"] < 0.5
    # With pauses, both reach full coverage of the retention universe.
    assert results["MATS+R (Del 256)"] == 1.0
    assert results["PRT-3 (pause 256)"] == 1.0
    # PRT's pause knob mirrors March's Del element.
    assert results["PRT-3 (pause 256)"] > results["PRT-3 (no pause)"]

    benchmark.extra_info["coverage"] = {
        k: round(v, 3) for k, v in results.items()
    }


def test_pause_length_must_exceed_retention(benchmark):
    """A pause much shorter than the retention interval doesn't help.
    The crossover sits near the fault's retention time minus the sweep's
    own duration (the iteration's ~3n cycles also count as elapsed time
    for the idle cell)."""

    def sweep():
        out = []
        for pause in (16, 32, 64, 128, 256):
            ram = SinglePortRAM(N)
            injector = FaultInjector(
                [DataRetentionFault(5, retention=100)]
            )
            injector.install(ram)
            schedule = standard_schedule(n=N, verify=True, pause_between=pause)
            out.append((pause, schedule.run(ram).detected))
            injector.remove(ram)
        return out

    outcomes = benchmark(sweep)
    by_pause = dict(outcomes)
    assert not by_pause[16]
    assert not by_pause[32]
    assert by_pause[128]
    assert by_pause[256]
    # Monotone: once a pause suffices, longer pauses keep detecting.
    flags = [detected for _pause, detected in outcomes]
    assert flags == sorted(flags)
    benchmark.extra_info["detected_by_pause"] = outcomes
