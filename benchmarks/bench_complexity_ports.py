"""E4 -- Claim C4 + Figure 2: π-iteration time complexity per port scheme.

The paper: O(3n) memory cycles on single-port RAM; 2n on dual-port RAM
(both reads of a sub-iteration issued simultaneously, Figure 2); the
QuadPort multi-LFSR scheme of §4 runs two automata concurrently.  This
bench measures actual cycle counts on the simulator across a size sweep
and checks the 1.5x / 3x speedup series.
"""

import pytest

from repro.analysis import dual_port_cycles, quad_port_cycles, single_port_cycles
from repro.memory import DualPortRAM, QuadPortRAM, SinglePortRAM
from repro.prt import DualPortPiIteration, PiIteration, QuadPortPiIteration

SIZES = (64, 256, 1024)


def measure(n):
    sp = SinglePortRAM(n)
    PiIteration(seed=(0, 1)).run(sp)
    dp = DualPortRAM(n)
    DualPortPiIteration(seed=(0, 1)).run(dp)
    qp = QuadPortRAM(n)
    QuadPortPiIteration(seed=(0, 1)).run(qp)
    return sp.stats.cycles, dp.stats.cycles, qp.stats.cycles


@pytest.mark.parametrize("n", SIZES)
def test_port_scheme_cycles(benchmark, n):
    sp, dp, qp = benchmark(measure, n)

    # Exact counts match the analytic model (and the paper's orders).
    assert sp == single_port_cycles(n) == 3 * n + 4
    assert dp == dual_port_cycles(n) == 2 * n + 2
    assert qp == quad_port_cycles(n) == n + 2

    # Speedups: 1.5x for dual-port (the paper's 3n -> 2n), 3x for quad.
    assert abs(sp / dp - 1.5) < 0.05
    assert abs(sp / qp - 3.0) < 0.1

    benchmark.extra_info["row"] = {
        "n": n, "single": sp, "dual": dp, "quad": qp,
        "speedup_2p": round(sp / dp, 4), "speedup_4p": round(sp / qp, 4),
    }


def test_speedup_converges_to_limits():
    """The asymptotic series: speedups approach exactly 1.5 and 3."""
    prev_2p_err = prev_4p_err = None
    for n in (16, 64, 256, 1024, 4096):
        err_2p = abs(single_port_cycles(n) / dual_port_cycles(n) - 1.5)
        err_4p = abs(single_port_cycles(n) / quad_port_cycles(n) - 3.0)
        if prev_2p_err is not None:
            assert err_2p <= prev_2p_err
            assert err_4p <= prev_4p_err
        prev_2p_err, prev_4p_err = err_2p, err_4p
