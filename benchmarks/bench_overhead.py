"""E5 -- Claim C5: BIST hardware overhead < 2^-20 of memory capacity.

The paper prices the dual-port PRT additions ("conversion of the existent
address registers into counters and a specific XOR-logic") at a ponder of
order < 2^-20 relative to the memory.  Our transistor-level cost model --
XOR networks from the synthesizer, counter conversion, window register,
comparator, against a 6T cell array -- reproduces the shape: the ratio
falls roughly as 1/n and crosses 2^-20 at n = 2^26 words.
"""

from repro.gf2 import poly_from_string, primitive_polynomial
from repro.gf2m import GF2m
from repro.prt import BistOverheadModel

FIELD = GF2m(poly_from_string("1+z+z^4"))


def sweep():
    model = BistOverheadModel(FIELD, (1, 2, 2), ports=2)
    rows = []
    for log2n in range(10, 31, 4):
        n = 1 << log2n
        rows.append((log2n, model.overhead_ratio(n)))
    return model, rows


def test_overhead_sweep(benchmark):
    model, rows = benchmark(sweep)

    ratios = [ratio for _log2n, ratio in rows]
    # Monotone decrease with capacity.
    assert ratios == sorted(ratios, reverse=True)
    # The paper's bound holds at large capacity...
    assert ratios[-1] < 2**-20
    # ...but not at small capacity (the claim is asymptotic).
    assert ratios[0] > 2**-20

    crossover = model.crossover_capacity()
    assert 1 << 22 <= crossover <= 1 << 30

    benchmark.extra_info["ratio_by_log2n"] = [
        (log2n, f"{ratio:.3e}") for log2n, ratio in rows
    ]
    benchmark.extra_info["crossover_log2n"] = crossover.bit_length() - 1


def test_overhead_bom_vs_wom(benchmark):
    """Wider words pay more XOR logic but amortize over more bits: the
    crossover moves earlier for the WOM."""

    def both():
        bom = BistOverheadModel(GF2m(0b11), (1, 1, 1), ports=2)
        wom8 = BistOverheadModel(GF2m(primitive_polynomial(8)), (1, 2, 3),
                                 ports=2)
        return bom.crossover_capacity(), wom8.crossover_capacity()

    bom_cross, wom_cross = benchmark(both)
    assert wom_cross <= bom_cross
    benchmark.extra_info["bom_crossover"] = bom_cross
    benchmark.extra_info["wom8_crossover"] = wom_cross
