"""E8 -- Claim C7: intra-word faults via parallel vs random bit-slice
trajectories.

The paper: WOM intra-word faults "can be tested by parallel application of
a π-testing for BOM ... two different π-testing can be performed: (1) with
parallel or (2) with random trajectories.  The trajectory is controlled by
a small hardware overhead that can be programmed externally."

We model the programmable knob as lane permutations between the bit-slice
automata and measure coverage of the intra-word coupling universe for both
wirings: the permuted ("random") wiring detects substantially more,
because aggressor and victim bits land in different automata.
"""

from repro.faults import intra_word_universe
from repro.prt import BitSlicePiIteration

from conftest import coverage_of

N, M = 21, 4


def slice_runner(mode: str, passes: int = 3):
    def runner(ram) -> bool:
        for index in range(passes):
            iteration = BitSlicePiIteration(
                m=M, mode=mode,
                wiring_seed=index + 1 if mode == "random" else 0,
            )
            if not iteration.run(ram).passed:
                return True
        return False

    return runner


def run_both():
    universe = intra_word_universe(N, M, max_cells=N)
    parallel = coverage_of(slice_runner("parallel"), universe, N, m=M)
    random_wiring = coverage_of(slice_runner("random"), universe, N, m=M)
    return parallel, random_wiring


def test_random_wiring_beats_parallel(benchmark):
    parallel, random_wiring = benchmark(run_both)

    # The paper's point: the programmable (permuted) trajectory detects
    # intra-word faults the parallel one misses.
    assert random_wiring.overall > parallel.overall
    assert random_wiring.coverage_of("CFin") > parallel.coverage_of("CFin")

    benchmark.extra_info["parallel_overall"] = round(parallel.overall, 3)
    benchmark.extra_info["random_overall"] = round(random_wiring.overall, 3)
    benchmark.extra_info["parallel_rows"] = parallel.rows()
    benchmark.extra_info["random_rows"] = random_wiring.rows()


def test_healthy_wom_passes_both_wirings(benchmark):
    from repro.memory import SinglePortRAM

    def healthy():
        outcomes = []
        for mode in ("parallel", "random"):
            ram = SinglePortRAM(N, m=M)
            outcomes.append(
                BitSlicePiIteration(m=M, mode=mode, wiring_seed=5)
                .run(ram).passed
            )
        return outcomes

    outcomes = benchmark(healthy)
    assert outcomes == [True, True]
