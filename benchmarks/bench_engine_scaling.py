"""E12 (infrastructure) -- simulator throughput scaling.

Not a paper figure: this bench tracks the *simulator's* own cost so the
experiment suite stays runnable as memories grow.  It pins the linear
scaling of the π-test engine and the March engine in n (any accidental
quadratic behaviour in the RAM/fault plumbing would show up here first).
"""

import pytest

from repro.march import run_march
from repro.march.library import MARCH_C_MINUS
from repro.memory import SinglePortRAM
from repro.prt import PiIteration, standard_schedule


@pytest.mark.parametrize("n", (256, 1024, 4096))
def test_pi_iteration_throughput(benchmark, n):
    iteration = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))

    def run():
        return iteration.run(SinglePortRAM(n))

    result = benchmark(run)
    assert result.passed
    benchmark.extra_info["n"] = n
    benchmark.extra_info["operations"] = result.operations


@pytest.mark.parametrize("n", (256, 1024))
def test_march_c_throughput(benchmark, n):
    def run():
        return run_march(MARCH_C_MINUS, SinglePortRAM(n))

    result = benchmark(run)
    assert result.passed
    benchmark.extra_info["n"] = n


def test_schedule_throughput_wom(benchmark):
    from repro.gf2 import poly_from_string
    from repro.gf2m import GF2m

    field = GF2m(poly_from_string("1+z+z^4"))
    schedule = standard_schedule(field=field, n=255)

    def run():
        return schedule.run(SinglePortRAM(255, m=4))

    result = benchmark(run)
    assert result.passed
    benchmark.extra_info["operations"] = result.operations


def test_linear_scaling_sanity():
    """Operations grow linearly in n -- the engines have no hidden
    super-linear term."""
    iteration = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))
    ops = {}
    for n in (100, 200, 400):
        ram = SinglePortRAM(n)
        ops[n] = iteration.run(ram).operations
    assert ops[200] - ops[100] == ops[400] - ops[200] - (ops[200] - ops[100])  \
        or (ops[200] / ops[100]) < 2.1
    assert ops[400] < 4.2 * ops[100]
