"""E3 -- Claim C3: "all single and multi-cell memory faults are detected
in 3 π-test iterations with a specific TDB".

Reproduction verdict (full account in EXPERIMENTS.md):

* coverage grows monotonically with iteration count -- the shape holds;
* with the verifying TDB ``(B, ~B, B)`` the complete *single-cell*
  universe (SAF, TF, SOF), all address-decoder faults and all bridges are
  detected at exactly 3 iterations -- this part of the claim reproduces;
* the paper's *pure* signature-only scheme plateaus below that, because a
  corruption landing after a cell's final sweep read is overwritten
  unobserved (structural, not statistical);
* the full idempotent-coupling universe is NOT 3-iteration-detectable:
  CFid needs the aggressor to fire both directions with the victim
  observed in both states (4 events; 3 iterations provide at most 3 write
  transitions per cell).  The 5-iteration extended schedule converges.
"""

from repro.faults import decoder_universe, single_cell_universe, standard_universe
from repro.faults.universe import bridging_universe
from repro.prt import PiTestSchedule, extended_schedule, standard_schedule

from conftest import coverage_of

N = 28  # multiple of the default BOM generator's period (7)


def schedule_prefix(schedule, count, verify):
    """A schedule running only the first ``count`` iterations."""
    return PiTestSchedule(list(schedule.iterations[:count]), verify=verify)


def run_iteration_sweep(verify: bool):
    full = standard_schedule(n=N, verify=verify)
    universe = standard_universe(N)
    curve = []
    for count in (1, 2, 3):
        schedule = schedule_prefix(full, count, verify)
        report = coverage_of(lambda ram: schedule.run(ram).detected, universe, N)
        curve.append(report.overall)
    return curve


def test_coverage_grows_with_iterations_pure(benchmark):
    curve = benchmark(run_iteration_sweep, False)
    assert curve[0] <= curve[1] <= curve[2]
    assert curve[2] < 1.0  # the pure scheme does NOT reach 100 %
    benchmark.extra_info["coverage_by_iteration"] = curve


def test_three_verifying_iterations_cover_single_cell_universe(benchmark):
    """The reproducible core of claim C3."""
    schedule = standard_schedule(n=N, verify=True)

    def campaign():
        universe = single_cell_universe(N, classes=("SAF", "TF", "SOF"))
        return coverage_of(lambda ram: schedule.run(ram).detected, universe, N)

    report = benchmark(campaign)
    assert report.coverage_of("SAF") == 1.0
    assert report.coverage_of("TF") == 1.0
    assert report.coverage_of("SOF") == 1.0
    benchmark.extra_info["rows"] = report.rows()


def test_three_verifying_iterations_cover_af_and_bridges(benchmark):
    schedule = standard_schedule(n=N, verify=True)

    def campaign():
        universe = decoder_universe(N) + bridging_universe(N)
        return coverage_of(lambda ram: schedule.run(ram).detected, universe, N)

    report = benchmark(campaign)
    assert report.coverage_of("AF") == 1.0
    assert report.coverage_of("BF") == 1.0


def test_full_universe_needs_more_than_three(benchmark):
    """The honest negative result + the extended schedule's recovery."""
    universe = standard_universe(N)
    std = standard_schedule(n=N, verify=True)
    ext = extended_schedule(n=N, verify=True)

    def campaign():
        std_report = coverage_of(lambda ram: std.run(ram).detected, universe, N)
        ext_report = coverage_of(lambda ram: ext.run(ram).detected, universe, N)
        return std_report, ext_report

    std_report, ext_report = benchmark(campaign)
    assert std_report.overall < 1.0
    assert ext_report.overall > std_report.overall
    assert ext_report.overall > 0.9
    # The gap is concentrated in idempotent coupling, as the structural
    # argument predicts.
    assert std_report.coverage_of("CFid") < 1.0
    assert std_report.coverage_of("CFin") == 1.0
    benchmark.extra_info["standard_overall"] = std_report.overall
    benchmark.extra_info["extended_overall"] = ext_report.overall
    benchmark.extra_info["standard_cfid"] = std_report.coverage_of("CFid")
    benchmark.extra_info["extended_cfid"] = ext_report.coverage_of("CFid")
