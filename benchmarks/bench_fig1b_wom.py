"""E2 -- Figure 1(b): the word-oriented π-test iteration.

The paper's WOM example: m = 4, modulus p(z) = 1 + z + z^4, generator
g(x) = 1 + 2x + 2x^2 "irreducible in the field GF(2^4)"; the figure's cell
stream starts 0, 1, 2, 6, ... and the automaton returns to Init at the end
of the iteration.  This bench verifies every element of that description:
g's irreducibility (in fact primitivity: period 255), the exact stream
prefix, and the ring closure on a 255-word memory.
"""

from repro.gf2 import poly_from_string
from repro.gf2m import GF2m, wpoly_is_irreducible, wpoly_x_pow_order
from repro.lfsr import WordLFSR
from repro.memory import SinglePortRAM
from repro.prt import PiIteration

FIELD = GF2m(poly_from_string("1+z+z^4"))
G = (1, 2, 2)
N = 255


def run_iteration():
    ram = SinglePortRAM(N, m=4)
    iteration = PiIteration(field=FIELD, generator=G, seed=(0, 1))
    return iteration.run(ram, record=True)


def test_fig1b_generator_algebra(benchmark):
    def algebra():
        return (
            wpoly_is_irreducible(FIELD, G),
            wpoly_x_pow_order(FIELD, G),
        )

    irreducible, period = benchmark(algebra)
    # The paper: "g(x) = 1 + 2x + 2x^2 ... is irreducible in the field GF(2^4)".
    assert irreducible
    # Stronger: it is primitive -- the maximal period (16^2 - 1).
    assert period == 255
    benchmark.extra_info["irreducible"] = irreducible
    benchmark.extra_info["period"] = period


def test_fig1b_wom_stream(benchmark):
    result = benchmark(run_iteration)

    # Figure 1(b): cells hold 0, 1 (Init) then 2, 6, ... onward.
    assert result.init_state == (0, 1)
    assert result.written_stream[:4] == [0x2, 0x6, 0x8, 0xF]

    # Cross-check the whole stream against the reference word LFSR.
    reference = WordLFSR(FIELD, G, seed=(0, 1))
    reference.run(2)
    assert result.written_stream == reference.sequence(N)

    # Pseudo-ring closure: 255 = the period, so Fin == Init.
    assert result.ring_closed
    assert result.passed
    benchmark.extra_info["stream_prefix_hex"] = [
        format(v, "X") for v in result.written_stream[:8]
    ]
    benchmark.extra_info["ring_closed"] = result.ring_closed
