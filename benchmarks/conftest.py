"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one figure/claim of the paper (see the
experiment index in DESIGN.md and the measured results in
EXPERIMENTS.md).  The pytest-benchmark fixture times the core computation;
the assertions pin the *shape* of the paper's result; ``extra_info``
carries the regenerated rows so they land in the benchmark JSON.
"""

from __future__ import annotations

from repro.analysis.coverage import CoverageReport
from repro.faults.injector import FaultInjector
from repro.memory.ram import SinglePortRAM


def coverage_of(runner, universe, n: int, m: int = 1) -> CoverageReport:
    """Tiny inline coverage campaign used by several benches."""
    report = CoverageReport(test_name="bench")
    for fault in universe:
        ram = SinglePortRAM(n, m=m)
        injector = FaultInjector([fault])
        injector.install(ram)
        detected = runner(ram)
        injector.remove(ram)
        report.record(fault.fault_class, fault.name, detected)
    return report
