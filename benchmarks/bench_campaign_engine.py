"""BENCH -- campaign engines: interpreted vs compiled vs bit-packed vs sharded.

Times single-fault coverage campaigns for March C- and the standard
3-iteration PRT schedule over ``standard_universe(n)`` samples at
n in {64, 256, 1024}, on four paths:

* ``interpreted`` -- the seed behaviour: re-run the interpreted engine
  for every fault (``run_coverage(engine="interpreted")``),
* ``compiled``    -- compile once, replay with early abort (the default
  ``repro.sim`` campaign path, single process),
* ``compiled-mp`` -- the same with ``workers=2`` (omitted when the
  platform cannot fork),
* ``batched``     -- the bit-packed lane-parallel engine
  (``repro.sim.batched``): one replay pass per vectorizable fault
  class, scalar fallback for anything without lane semantics (since
  the uint64 column kernel PR that is the empty set for every built-in
  class).

A second section times the batched engine on its home turf -- the full
single-cell SAF/TF universe (one lane per fault, zero scalar fallback)
-- against the compiled single-process engine; that ratio is the
headline ``single_cell_batched_speedup`` in the JSON summary.

A third section times the *port-parallel* π-schemes (dual-/quad-port,
``repro.prt.dual_port``): the interpreted per-cycle engine vs the
compiled cycle-grouped replay vs the batched lane-parallel engine
(``multiport_rows``; the packed backends execute cycle groups natively,
so the batched column is lane passes, not scalar delegation; detection
happens at the final signature, so the compiled ratio isolates the
grouped executor win and the batched ratio the lane-vs-scalar win).

A fourth section keeps the historical *process sharding* rows: the
NPSF + bridging + decoder universe that used to be the batched engine's
worst case (pure scalar fallback, the sharding pool's whole reason to
exist).  Since the uint64 column kernel PR these classes carry lane
encodings, so the "scalar-heavy" rows now resolve entirely in lane
passes and the pool is never started -- the rows are retained under
their original identities precisely to pin that cliff: ``sharded_s``
tracking ``batched_s`` (instead of interpreted/workers) *is* the win.
Alongside them, the ``standard lane-sharded`` rows measure the current
scheduler on its real workload: the *full* ``standard_universe(n)``
through ``run_campaign_batched`` serially vs ``workers=N``, where past
the lane-shard threshold whole lane-pass chunks fan out across the pool
(``sharded_vs_serial`` is the cores-are-a-real-win ratio the CI gate
checks on multi-core hosts).

A fifth section times the *word-lane* packed backend (``wordlane_rows``):
the full word-oriented ``standard_universe(n, m=8)`` (per-bit single-cell
faults, inter-cell and intra-word coupling) on March C- and a GF(2^8)
PRT schedule, plus a CFst-only coupling universe (the last coupling
class to join the lane passes) and an NPSF-only universe (lane-encoded
by the uint64 column kernel PR) -- compiled per-fault replay vs the
batched engine.  The acceptance bar is >= 5x over the compiled engine
at n=1024 (``min_wordlane_speedup``).

A sixth section (``fallback_summary``) is the *vectorization census*:
for the full ``standard_universe`` at each n and m in {1, 8}, the
per-class lane/vs/fallback split from ``partition_universe`` plus a
lane-vs-scalar wall-clock split on a sampled subset -- and, per
geometry, one census row per cycle-grouped multi-port campaign
(dual-/quad-port streams through ``run_campaign_batched``), whose
``fallback`` records any faults the engine handed back to the scalar
path (a ``delegated`` entry there means the grouped packed executor
regressed to scalar delegation).  ``fallback_rows`` lists the
identities of census entries whose fallback set is non-empty -- the
committed baseline keeps it ``[]``, and ``tools/check_bench.py`` fails
when a class that vectorized in the baseline regresses to the scalar
fallback.

A seventh section (``class_cost_rows``) is the *cost-model calibration*:
one class-pure scalar campaign per fault class (March C- over the
standard + NPSF universes), emitting measured ``per_fault_us`` rows that
``repro.sim.costs.CostModel.from_benchmark`` reads back to re-derive the
relative cost table on any host.  The committed baseline is where the
default table's numbers come from (NPSF ~3x a stuck-at replay).

An eighth section (``shard_balance_rows``) measures what that table
buys: a skewed universe (cheap single-cell SAF/TF head, expensive NPSF
tail) is cut by the legacy fixed ``chunk_size=128`` plan, by the
cost-model plan, and by the cost-model plan with the work-stealing
budget armed (oversized shards split mid-run exactly as a stealing
worker splits them), and every shard is executed through the worker-side
task runner with its wall clock recorded.  The figure of merit is the
*imbalance ratio* -- max/mean shard wall time -- which bounds how long a
straggler shard idles the other workers; ``tools/check_bench.py`` fails
when the stealing plan stops beating fixed-128 on it.

A ninth section (``cache_rows``) times the serving layer's
content-addressed result cache (``repro.server.cache``): one cold
campaign through ``execute_request`` (full ``standard_universe(n)``,
batched engine) vs the warm repeat served from the cache -- the warm hit
unpickles a byte-identical report without touching the engines or even
materializing the universe.  The acceptance bar is >= 100x at n=1024
(``min_cache_speedup``); in practice the hit is microseconds against a
half-second campaign, three to four orders of magnitude.

Reports are cross-checked for equality on every path before a number is
emitted.  Run as a script::

    PYTHONPATH=src python benchmarks/bench_campaign_engine.py \
        [--out benchmarks/out/bench_campaign_engine.json] [--quick]

``--quick`` is the CI smoke mode: n=64 plus a small single-cell /
sharded section, a couple of seconds total, emitting rows whose
``(test, n, universe)`` identities match the full run so
``tools/check_bench.py`` can diff them against the checked-in baseline.

The JSON summary records per-(test, n) wall-clock seconds and speedups,
so the benchmark trajectory can be tracked across PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import (  # noqa: E402
    CampaignRequest,
    dual_port_runner,
    execute_request,
    march_runner,
    quad_port_runner,
    run_coverage,
    schedule_runner,
)
from repro.faults import (  # noqa: E402
    bridging_universe,
    coupling_universe,
    decoder_universe,
    npsf_universe,
    single_cell_universe,
    standard_universe,
)
from repro.gf2 import primitive_polynomial  # noqa: E402
from repro.gf2m import GF2m  # noqa: E402
from repro.march.library import MARCH_C_MINUS  # noqa: E402
from repro.prt import (  # noqa: E402
    DualPortPiIteration,
    QuadPortPiIteration,
    standard_schedule,
)
from repro.server.cache import ResultCache  # noqa: E402
from repro.sim import (  # noqa: E402
    CostModel,
    cached_dual_port_stream,
    cached_quad_port_stream,
    compile_march,
    partition_universe,
    run_campaign_batched,
    shutdown_shared_pools,
)
# The shard-balance section measures the scheduler's own unit of work
# (per-shard wall clock through the worker-side task runner), which the
# public campaign surface deliberately does not expose.
from repro.sim.campaign import (  # noqa: E402
    STEAL_BUDGET_S,
    _reference_pass,
    _run_task,
    _scalar_task,
)
from repro.sim.pool import _WORKER_STREAMS  # noqa: E402

SIZES = (64, 256, 1024)
SAMPLE = {64: None, 256: 400, 1024: 200}  # None = full universe
SHARDED_SAMPLE = 500  # scalar-fallback faults per sharded row
TESTS = (
    ("March C-", lambda n: march_runner(MARCH_C_MINUS)),
    ("PRT-3", lambda n: schedule_runner(standard_schedule(n=n))),
)
MULTIPORT_SCHEMES = (
    ("PRT dual-port",
     lambda: dual_port_runner(DualPortPiIteration(seed=(0, 1)))),
    ("PRT quad-port",
     lambda: quad_port_runner(QuadPortPiIteration(seed=(0, 1)))),
)


def _report_key(report):
    return (report.detected, report.total, report.missed_faults)


def _time_coverage(runner, universe, n, **kwargs):
    start = time.perf_counter()
    report = run_coverage(runner, universe, n, **kwargs)
    return time.perf_counter() - start, report


def bench_one(name: str, runner_factory, n: int, workers: int) -> dict:
    universe = standard_universe(n)
    sample = SAMPLE[n]
    if sample is not None and len(universe) > sample:
        universe = universe.sample(sample)
    t_int, r_int = _time_coverage(runner_factory(), universe, n,
                                  engine="interpreted")
    t_cmp, r_cmp = _time_coverage(runner_factory(), universe, n)
    if _report_key(r_int) != _report_key(r_cmp):
        raise AssertionError(
            f"{name} n={n}: compiled campaign diverged from interpreted"
        )
    t_bat, r_bat = _time_coverage(runner_factory(), universe, n,
                                  engine="batched")
    if _report_key(r_int) != _report_key(r_bat):
        raise AssertionError(
            f"{name} n={n}: batched campaign diverged from interpreted"
        )
    row = {
        "test": name,
        "n": n,
        "faults": len(universe),
        "coverage": round(r_int.overall, 4),
        "interpreted_s": round(t_int, 3),
        "compiled_s": round(t_cmp, 3),
        "speedup": round(t_int / t_cmp, 2) if t_cmp else float("inf"),
        "batched_s": round(t_bat, 3),
        "speedup_batched": round(t_int / t_bat, 2) if t_bat else float("inf"),
    }
    if workers > 0:
        t_mp, r_mp = _time_coverage(runner_factory(), universe, n,
                                    workers=workers)
        if _report_key(r_int) == _report_key(r_mp):
            row["compiled_mp_s"] = round(t_mp, 3)
            row["speedup_mp"] = round(t_int / t_mp, 2) if t_mp else float("inf")
    return row


def bench_single_cell(n: int) -> list[dict]:
    """The batched engine's home turf: a full single-cell SAF/TF universe
    (one lane per fault, zero scalar fallback) vs the compiled engine."""
    universe = single_cell_universe(n, classes=("SAF", "TF"))
    rows = []
    for name, build in TESTS:
        t_cmp, r_cmp = _time_coverage(build(n), universe, n)
        t_bat, r_bat = _time_coverage(build(n), universe, n,
                                      engine="batched")
        if _report_key(r_cmp) != _report_key(r_bat):
            raise AssertionError(
                f"{name} n={n}: batched single-cell campaign diverged "
                f"from compiled"
            )
        speedup = round(t_cmp / t_bat, 2) if t_bat else float("inf")
        rows.append({
            "test": name,
            "n": n,
            "universe": "single-cell SAF/TF",
            "faults": len(universe),
            "coverage": round(r_cmp.overall, 4),
            "compiled_s": round(t_cmp, 3),
            "batched_s": round(t_bat, 3),
            "speedup_batched_vs_compiled": speedup,
        })
        print(f"{name:>9} n={n:<5} single-cell faults={len(universe):<5} "
              f"compiled {t_cmp:>7.3f}s  batched {t_bat:>7.3f}s  "
              f"x{speedup}")
    return rows


def bench_multiport(n: int) -> list[dict]:
    """The port-parallel π-schemes: interpreted cycle() loop vs compiled
    cycle-grouped replay (``MultiPortRAM.apply_stream``) vs the batched
    lane-parallel engine (the packed backends execute cycle groups
    natively -- pre-cycle reads, in-order write commit, one clock tick
    per group -- so the batched column is lane passes, not scalar
    delegation).

    Detection happens at the final signature window, so early abort buys
    nothing here -- the compiled ratio is the grouped executor vs the
    per-cycle interpreted engine (acceptance bar >= 3x at n=1024), and
    the batched ratio is lane-vs-scalar replay of the same grouped
    stream.
    """
    universe = standard_universe(n)
    sample = SAMPLE.get(n)
    if sample is not None and len(universe) > sample:
        universe = universe.sample(sample)
    rows = []
    for name, build in MULTIPORT_SCHEMES:
        t_int, r_int = _time_coverage(build(), universe, n,
                                      engine="interpreted")
        t_cmp, r_cmp = _time_coverage(build(), universe, n)
        if _report_key(r_int) != _report_key(r_cmp):
            raise AssertionError(
                f"{name} n={n}: compiled multi-port campaign diverged "
                f"from interpreted"
            )
        t_bat, r_bat = _time_coverage(build(), universe, n,
                                      engine="batched")
        if _report_key(r_int) != _report_key(r_bat):
            raise AssertionError(
                f"{name} n={n}: batched multi-port campaign diverged "
                f"from interpreted"
            )
        speedup = round(t_int / t_cmp, 2) if t_cmp else float("inf")
        speedup_bat = round(t_cmp / t_bat, 2) if t_bat else float("inf")
        rows.append({
            "test": name,
            "n": n,
            "universe": "standard, port-parallel",
            "faults": len(universe),
            "coverage": round(r_int.overall, 4),
            "interpreted_s": round(t_int, 3),
            "compiled_s": round(t_cmp, 3),
            "speedup_multiport": speedup,
            "batched_s": round(t_bat, 3),
            "speedup_batched_vs_compiled": speedup_bat,
        })
        print(f"{name:>14} n={n:<5} faults={len(universe):<5} "
              f"interpreted {t_int:>7.3f}s  compiled {t_cmp:>7.3f}s  "
              f"x{speedup}  batched {t_bat:>7.3f}s  x{speedup_bat}")
    return rows


MULTIPORT_CENSUS = (
    ("PRT dual-port",
     lambda n: cached_dual_port_stream(DualPortPiIteration(seed=(0, 1)), n)),
    ("PRT quad-port",
     lambda n: cached_quad_port_stream(QuadPortPiIteration(seed=(0, 1)), n)),
)


def bench_multiport_census(n: int) -> list[dict]:
    """Lane-resolution census for the cycle-grouped multi-port campaigns.

    Feeds the compiled dual-/quad-port streams straight to
    ``run_campaign_batched`` and records how many faults rode lane
    passes (``faults_batched``) vs the per-fault scalar path.  The
    committed baseline keeps ``fallback`` empty: every standard-universe
    fault lane-resolves through the grouped packed executor.  A
    ``delegated`` entry appearing here means grouped streams regressed
    to scalar delegation -- ``tools/check_bench.py`` fails on it exactly
    like a fault class dropping out of the lane passes.
    """
    universe = standard_universe(n)
    sample = SAMPLE.get(n)
    if sample is not None and len(universe) > sample:
        universe = universe.sample(sample)
    rows = []
    for name, stream_of in MULTIPORT_CENSUS:
        stream = stream_of(n)
        start = time.perf_counter()
        result = run_campaign_batched(stream, universe)
        lane_s = time.perf_counter() - start
        fallback_counts: dict[str, int] = {}
        if result.faults_batched != len(universe):
            fallback_counts["delegated"] = \
                len(universe) - result.faults_batched
        row = {
            "test": name,
            "n": n,
            "m": 1,
            "universe": "standard multi-port census",
            "faults": len(universe),
            "faults_batched": result.faults_batched,
            "fallback": fallback_counts,
            "lane_s": round(lane_s, 3),
        }
        rows.append(row)
        fallback_text = f"fallback={fallback_counts}" if fallback_counts \
            else "fallback=none"
        print(f" census   n={n:<5} [{name}] faults={len(universe):<6} "
              f"lanes {lane_s:>7.3f}s  {fallback_text}")
    return rows


WORDLANE_M = 8
WORDLANE_TESTS = (
    ("March C-", lambda n: march_runner(MARCH_C_MINUS)),
    ("PRT-3", lambda n: schedule_runner(standard_schedule(
        field=GF2m(primitive_polynomial(WORDLANE_M)), n=n))),
)


def bench_wordlane(n: int) -> list[dict]:
    """The word-lane packed backend: compiled per-fault replay vs lane
    passes with m=8 bit planes per lane, plus a CFst-only row (the state
    coupling class now resolved by the settle-hook lane model)."""
    rows = []
    sample = SAMPLE.get(n)

    def _capped(universe):
        if sample is not None and len(universe) > sample:
            return universe.sample(sample)
        return universe

    universe = _capped(standard_universe(n, m=WORDLANE_M))
    jobs = [(name, build, universe, WORDLANE_M, f"standard m={WORDLANE_M}")
            for name, build in WORDLANE_TESTS]
    jobs.append(("March C-", WORDLANE_TESTS[0][1],
                 _capped(coupling_universe(n, classes=("CFst",))), 1,
                 "CFst coupling"))
    jobs.append(("March C-", WORDLANE_TESTS[0][1],
                 _capped(npsf_universe(n, max_victims=32)), 1,
                 "NPSF lanes"))
    for name, build, faults, m, label in jobs:
        t_cmp, r_cmp = _time_coverage(build(n), faults, n, m=m)
        t_bat, r_bat = _time_coverage(build(n), faults, n, m=m,
                                      engine="batched")
        if _report_key(r_cmp) != _report_key(r_bat):
            raise AssertionError(
                f"{name} n={n} [{label}]: batched word-lane campaign "
                f"diverged from compiled"
            )
        speedup = round(t_cmp / t_bat, 2) if t_bat else float("inf")
        rows.append({
            "test": name,
            "n": n,
            "universe": label,
            "m": m,
            "faults": len(faults),
            "coverage": round(r_cmp.overall, 4),
            "compiled_s": round(t_cmp, 3),
            "batched_s": round(t_bat, 3),
            "speedup_batched_vs_compiled": speedup,
        })
        print(f"{name:>9} n={n:<5} [{label}] faults={len(faults):<5} "
              f"compiled {t_cmp:>7.3f}s  batched {t_bat:>7.3f}s  "
              f"x{speedup}")
    return rows


def bench_fallback_census(n: int, m: int) -> dict:
    """The vectorization census for one ``standard_universe(n, m)``.

    Counts, per descriptor kind, how many faults the lane passes absorb
    and which fault classes (if any) still take the per-fault scalar
    path, then splits the March C- campaign wall clock into the lane
    portion and the scalar-fallback portion on a sampled subset
    (``timed_faults``).  The committed baseline pins ``fallback`` empty
    at every geometry -- ``tools/check_bench.py`` fails the build when a
    class regresses out of the lane passes.
    """
    universe = standard_universe(n, m=m)
    classes, fallback = partition_universe(universe, n=n, m=m)
    vectorized = {kind: len(group) for kind, group in sorted(classes.items())}
    fallback_counts: dict[str, int] = {}
    for _, fault in fallback:
        cls = fault.fault_class
        fallback_counts[cls] = fallback_counts.get(cls, 0) + 1
    timed = universe
    sample = SAMPLE.get(n)
    if sample is not None and len(timed) > sample:
        timed = timed.sample(sample)
    timed_classes, timed_fallback = partition_universe(timed, n=n, m=m)
    lane_faults = [fault for group in timed_classes.values()
                   for _, fault, _ in group]
    scalar_faults = [fault for _, fault in timed_fallback]
    lane_s = 0.0
    if lane_faults:
        lane_s, _ = _time_coverage(march_runner(MARCH_C_MINUS), lane_faults,
                                   n, m=m, engine="batched")
    scalar_s = 0.0
    if scalar_faults:
        scalar_s, _ = _time_coverage(march_runner(MARCH_C_MINUS),
                                     scalar_faults, n, m=m)
    row = {
        "test": "March C-",
        "n": n,
        "m": m,
        "universe": f"standard census m={m}",
        "faults": len(universe),
        "vectorized": vectorized,
        "fallback": fallback_counts,
        "timed_faults": len(timed),
        "lane_s": round(lane_s, 3),
        "scalar_s": round(scalar_s, 3),
    }
    fallback_text = f"fallback={fallback_counts}" if fallback_counts \
        else "fallback=none"
    print(f" census   n={n:<5} m={m} faults={len(universe):<6} "
          f"lanes {lane_s:>7.3f}s  scalar {scalar_s:>7.3f}s  "
          f"{fallback_text}")
    return row


def scalar_heavy_universe(n: int, sample: int | None = SHARDED_SAMPLE):
    """NPSF + bridging + decoder: the classes that *used* to be scalar.

    Historically the sharding benchmark's subject (nothing here was
    lane-vectorizable); since the uint64 column kernel PR all three
    classes carry lane encodings, so these rows now measure the lane
    passes absorbing the pool's former workload.  The universe carries a
    spec, so any genuine remainder would still shard as
    ``(spec, index range)``.
    """
    universe = npsf_universe(n, max_victims=32) \
        + bridging_universe(n) + decoder_universe(n, max_addresses=16)
    if sample is not None and len(universe) > sample:
        universe = universe.sample(sample)
    return universe


def bench_sharded(name: str, make_runner, n: int, workers: int) -> dict:
    """Serial vs ``workers=N`` batched on the ex-scalar-heavy universe.

    Kept under the historical row identities: with NPSF/bridging/decoder
    lane-encoded there is no scalar remainder to shard, so ``sharded_s``
    should track ``batched_s`` (lane passes, pool never started), both
    far below the interpreted column.
    """
    universe = scalar_heavy_universe(n)
    t_int, r_int = _time_coverage(make_runner(), universe, n,
                                  engine="interpreted")
    t_bat, r_bat = _time_coverage(make_runner(), universe, n,
                                  engine="batched")
    if _report_key(r_int) != _report_key(r_bat):
        raise AssertionError(
            f"{name} n={n}: batched scalar-heavy campaign diverged "
            f"from interpreted"
        )
    t_shd, r_shd = _time_coverage(make_runner(), universe, n,
                                  engine="batched", workers=workers)
    if _report_key(r_int) != _report_key(r_shd):
        raise AssertionError(
            f"{name} n={n}: sharded campaign diverged from interpreted"
        )
    row = {
        "test": name,
        "n": n,
        "universe": "scalar-heavy NPSF/BF/AF",
        "faults": len(universe),
        "workers": workers,
        "coverage": round(r_int.overall, 4),
        "interpreted_s": round(t_int, 3),
        "batched_s": round(t_bat, 3),
        "sharded_s": round(t_shd, 3),
        "speedup_sharded": round(t_int / t_shd, 2) if t_shd else float("inf"),
        "sharded_vs_serial": round(t_bat / t_shd, 2) if t_shd
        else float("inf"),
    }
    print(f"{name:>9} n={n:<5} scalar-heavy faults={row['faults']:<5} "
          f"interpreted {t_int:>7.3f}s  batched {t_bat:>7.3f}s  "
          f"sharded({workers}w) {t_shd:>7.3f}s  x{row['speedup_sharded']} "
          f"(vs serial x{row['sharded_vs_serial']})")
    return row


def bench_lane_sharded(n: int, workers: int) -> dict:
    """The scheduler on its real workload: full standard universe,
    serial batched vs ``workers=N``.

    Past ``LANE_SHARD_MIN_FAULTS`` whole lane-pass chunks fan out across
    the pool alongside any scalar remainder; below it (the quick-mode
    n=64 row) the pool never engages and the row just pins the identity
    for baseline matching.  ``sharded_vs_serial`` on a multi-core host
    is the acceptance ratio ``tools/check_bench.py`` gates on.
    """
    universe = standard_universe(n)
    t_bat, r_bat = _time_coverage(march_runner(MARCH_C_MINUS), universe, n,
                                  engine="batched")
    t_shd, r_shd = _time_coverage(march_runner(MARCH_C_MINUS), universe, n,
                                  engine="batched", workers=workers)
    if _report_key(r_bat) != _report_key(r_shd):
        raise AssertionError(
            f"March C- n={n}: lane-sharded campaign diverged from serial "
            f"batched"
        )
    ratio = round(t_bat / t_shd, 2) if t_shd else float("inf")
    row = {
        "test": "March C-",
        "n": n,
        "universe": "standard lane-sharded",
        "faults": len(universe),
        "workers": workers,
        "coverage": round(r_bat.overall, 4),
        "batched_s": round(t_bat, 3),
        "sharded_s": round(t_shd, 3),
        "sharded_vs_serial": ratio,
    }
    print(f" March C- n={n:<5} lane-sharded faults={len(universe):<6} "
          f"batched {t_bat:>7.3f}s  sharded({workers}w) {t_shd:>7.3f}s  "
          f"x{ratio} vs serial")
    return row


CLASS_COST_SAMPLE = 150


def bench_class_costs(n: int) -> list[dict]:
    """Cost-model calibration: measured scalar replay cost per class.

    One class-pure campaign per fault class over the standard + NPSF
    universes (the classes the default table names), emitting
    ``per_fault_us`` rows that :meth:`CostModel.from_benchmark` reads
    back -- the committed baseline is the provenance of the built-in
    ``DEFAULT_CLASS_COSTS`` numbers.
    """
    universe = standard_universe(n) + npsf_universe(n, max_victims=32)
    by_class: dict[str, list] = {}
    for fault in universe:
        by_class.setdefault(fault.fault_class, []).append(fault)
    measured: dict[str, tuple[int, float]] = {}
    for fault_class in sorted(by_class):
        faults = by_class[fault_class]
        if len(faults) > CLASS_COST_SAMPLE:
            step = len(faults) // CLASS_COST_SAMPLE
            faults = faults[::step][:CLASS_COST_SAMPLE]
        elapsed, _report = _time_coverage(march_runner(MARCH_C_MINUS),
                                          faults, n)
        measured[fault_class] = (len(faults), elapsed / len(faults))
    floor = min(per_fault for _count, per_fault in measured.values())
    rows = []
    for fault_class, (count, per_fault) in sorted(measured.items()):
        rows.append({
            "fault_class": fault_class,
            "n": n,
            "faults": count,
            "per_fault_us": round(per_fault * 1e6, 2),
            "relative_cost": round(per_fault / floor, 2),
        })
        print(f"  cost    n={n:<5} {fault_class:<5} faults={count:<5} "
              f"{per_fault * 1e6:>8.1f}us/fault  "
              f"x{per_fault / floor:.2f} vs cheapest")
    return rows


SHARD_BALANCE_WORKERS = 2
SHARD_BALANCE_STRATEGIES = ("fixed-128", "cost-model", "stealing")


def _drain_balance_queue(tasks: list) -> list[float]:
    """Execute shard tasks through the worker-side runner, in-process.

    Remainder tasks (a budgeted shard splitting mid-range, exactly what
    a stealing worker hands back) are re-queued just as the real drain
    re-queues them; the returned list holds one wall-clock entry per
    executed shard piece.
    """
    times = []
    queue = list(tasks)
    while queue:
        _tag, _lo, _hi, _data, remainder, elapsed = _run_task(queue.pop(0))
        times.append(elapsed)
        if remainder is not None:
            queue.append(remainder)
    return times


def bench_shard_balance(n: int, workers: int) -> list[dict]:
    """Fixed-size vs cost-model vs stealing plans on a skewed universe.

    The universe is deliberately adversarial for fixed ``chunk_size=128``
    shards: a cheap single-cell SAF/TF head (early-abort replays) ahead
    of an NPSF tail (per-write neighbourhood settles), so equal fault
    *counts* are maximally unequal *work*.  Each plan's shards run
    through the worker-side task runner and the imbalance ratio
    (max/mean shard wall time -- how long the straggler idles everyone
    else) lands in the JSON; the stealing plan arms the real
    ``STEAL_BUDGET_S`` so oversized shards split exactly as they do
    inside the pool.
    """
    faults = list(single_cell_universe(n, classes=("SAF", "TF"))) \
        + list(npsf_universe(n, max_victims=32))
    stream = compile_march(MARCH_C_MINUS, n)
    _reference_pass(stream, n, 1)
    token = f"bench-balance-{n}"
    _WORKER_STREAMS[token] = stream
    model = CostModel()
    plans = (
        ("fixed-128", model.plan(faults, workers, chunk_size=128), None),
        ("cost-model", model.plan(faults, workers), None),
        ("stealing", model.plan(faults, workers), STEAL_BUDGET_S),
    )
    rows = []
    try:
        for strategy, plan, budget in plans:
            times = _drain_balance_queue(
                [_scalar_task("list", token, None, lo, hi, faults,
                              None, n, 1, budget) for lo, hi in plan])
            mean = sum(times) / len(times)
            imbalance = round(max(times) / mean, 2) if mean else 1.0
            rows.append({
                "test": "March C-",
                "n": n,
                "universe": f"skewed NPSF tail [{strategy}]",
                "strategy": strategy,
                "workers": workers,
                "faults": len(faults),
                "shards": len(times),
                "max_shard_s": round(max(times), 4),
                "mean_shard_s": round(mean, 4),
                "imbalance": imbalance,
            })
            print(f" balance  n={n:<5} [{strategy:<10}] "
                  f"shards={len(times):<4} max {max(times):>7.4f}s  "
                  f"mean {mean:>7.4f}s  imbalance x{imbalance}")
    finally:
        _WORKER_STREAMS.pop(token, None)
    return rows


CACHE_TESTS = (("March C-", "march-c"), ("PRT-3", "prt3"))
CACHE_WARM_REPEATS = 5


def bench_cache(n: int) -> list[dict]:
    """The content-addressed result cache: cold campaign vs warm hit.

    One cold ``execute_request`` over the *full* ``standard_universe(n)``
    (batched engine -- the fastest cold path, so the reported speedup is
    the cache against the engines' best effort, not a strawman), then
    the warm repeat of the identical request.  The warm path resolves the
    memoized request, hashes nothing new, and unpickles the stored
    report -- it never materializes the universe.  ``warm_s`` is the
    best of a few repeats (a sub-millisecond path measured once is all
    timer noise); the hit is verified byte-identical to the cold report
    before any number is emitted.
    """
    rows = []
    for name, selector in CACHE_TESTS:
        cache = ResultCache()
        request = CampaignRequest(test=selector, n=n, engine="batched")
        start = time.perf_counter()
        cold = execute_request(request, cache=cache)
        cold_s = time.perf_counter() - start
        if cold.cached:
            raise AssertionError(f"{name} n={n}: cold request hit the cache")
        warm_s = float("inf")
        for _ in range(CACHE_WARM_REPEATS):
            start = time.perf_counter()
            warm = execute_request(request, cache=cache)
            warm_s = min(warm_s, time.perf_counter() - start)
            if not warm.cached:
                raise AssertionError(
                    f"{name} n={n}: warm request missed the cache")
            if pickle.dumps(warm.report) != pickle.dumps(cold.report):
                raise AssertionError(
                    f"{name} n={n}: cache hit diverged from the cold report")
        speedup = round(cold_s / warm_s, 2) if warm_s else float("inf")
        rows.append({
            "test": name,
            "n": n,
            "universe": "standard (result cache)",
            "faults": sum(cold.report.total.values()),
            "coverage": round(cold.report.overall, 4),
            "cold_s": round(cold_s, 3),
            "warm_s": round(warm_s, 6),
            "speedup_warm": speedup,
        })
        print(f"{name:>9} n={n:<5} cache cold {cold_s:>7.3f}s  "
              f"warm {warm_s * 1e6:>8.1f}us  x{speedup}")
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON summary here (default: stdout)")
    parser.add_argument("--workers", type=int, default=2,
                        help="processes for the multiprocessing and "
                             "sharded rows (0 disables them)")
    parser.add_argument("--sizes", type=int, nargs="*", default=list(SIZES))
    parser.add_argument("--single-cell-n", type=int, default=1024,
                        help="memory size for the single-cell batched "
                             "headline row")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: n=64 rows plus small "
                             "single-cell/sharded sections (seconds, not "
                             "minutes), row identities matching the full "
                             "run for baseline comparison")
    args = parser.parse_args(argv)

    if args.quick and (args.sizes != list(SIZES) or args.single_cell_n != 1024):
        parser.error("--quick selects its own sizes so its rows match the "
                     "checked-in baseline; drop --sizes/--single-cell-n")
    if args.quick:
        sizes = [64]
        single_cell_sizes = [256]
        sharded_sizes = [64]
        multiport_sizes = [64]
        wordlane_sizes = [64]
        census_sizes = [64]
        cache_sizes = [64]
        class_cost_sizes = [64]
        balance_sizes = [64]
    else:
        sizes = list(args.sizes)
        single_cell_sizes = sorted({256, args.single_cell_n})
        sharded_sizes = [64, 1024]
        multiport_sizes = [64, 1024]
        wordlane_sizes = [64, 1024]
        census_sizes = [64, 1024]
        cache_sizes = [1024]
        class_cost_sizes = [256]
        balance_sizes = [256]

    rows = []
    for n in sizes:
        for name, build in TESTS:
            row = bench_one(name, lambda n=n, build=build: build(n), n,
                            args.workers)
            rows.append(row)
            speedup_mp = row.get("speedup_mp")
            mp_text = f"  mp x{speedup_mp}" if speedup_mp else ""
            print(f"{name:>9} n={n:<5} faults={row['faults']:<5} "
                  f"interpreted {row['interpreted_s']:>7.3f}s  "
                  f"compiled {row['compiled_s']:>7.3f}s  "
                  f"x{row['speedup']}{mp_text}  "
                  f"batched {row['batched_s']:>7.3f}s  "
                  f"x{row['speedup_batched']}")
    single_cell_rows = []
    for n in single_cell_sizes:
        single_cell_rows.extend(bench_single_cell(n))
    multiport_rows = []
    for n in multiport_sizes:
        multiport_rows.extend(bench_multiport(n))
    wordlane_rows = []
    for n in wordlane_sizes:
        wordlane_rows.extend(bench_wordlane(n))
    fallback_summary = []
    for n in census_sizes:
        for m in (1, WORDLANE_M):
            fallback_summary.append(bench_fallback_census(n, m))
        fallback_summary.extend(bench_multiport_census(n))
    cache_rows = []
    for n in cache_sizes:
        cache_rows.extend(bench_cache(n))
    sharded_rows = []
    if args.workers > 0:
        for n in sharded_sizes:
            for name, build in TESTS:
                sharded_rows.append(bench_sharded(
                    name, lambda n=n, build=build: build(n), n,
                    args.workers))
            sharded_rows.append(bench_lane_sharded(n, args.workers))
    class_cost_rows = []
    for n in class_cost_sizes:
        class_cost_rows.extend(bench_class_costs(n))
    shard_balance_rows = []
    for n in balance_sizes:
        shard_balance_rows.extend(
            bench_shard_balance(n, SHARD_BALANCE_WORKERS))
    summary = {
        "benchmark": "campaign_engine",
        "python": sys.version.split()[0],
        "cpus": os.cpu_count(),
        "quick": args.quick,
        "rows": rows,
        "min_single_process_speedup": min(r["speedup"] for r in rows),
        "single_cell_rows": single_cell_rows,
        "single_cell_batched_speedup": min(
            r["speedup_batched_vs_compiled"] for r in single_cell_rows
        ),
        "multiport_rows": multiport_rows,
        "min_multiport_speedup": min(
            r["speedup_multiport"] for r in multiport_rows
        ),
        "min_multiport_lane_speedup": min(
            r["speedup_batched_vs_compiled"] for r in multiport_rows
        ),
        "wordlane_rows": wordlane_rows,
        # The documented >= 5x acceptance bar is stated at n=1024; the
        # quick run has no n=1024 rows, so it falls back to what it has
        # (small-n rows are overhead-dominated and not held to the bar).
        "min_wordlane_speedup": min(
            r["speedup_batched_vs_compiled"]
            for r in ([r for r in wordlane_rows if r["n"] == 1024]
                      or wordlane_rows)
        ),
        "fallback_summary": fallback_summary,
        # Identities of census entries still carrying scalar-fallback
        # faults.  The committed baseline keeps this empty: every
        # built-in class of the standard universe resolves in lane
        # passes at every benchmarked geometry.
        "fallback_rows": [
            {"test": row["test"], "n": row["n"], "m": row["m"],
             "universe": row["universe"], "fallback": row["fallback"]}
            for row in fallback_summary if row["fallback"]
        ],
        "cache_rows": cache_rows,
        # The serving-layer acceptance bar: a warm request >= 100x the
        # cold campaign at n=1024 (quick mode's n=64 rows are still far
        # above the bar, but the documented number is the full-run one).
        "min_cache_speedup": min(r["speedup_warm"] for r in cache_rows),
        "sharded_rows": sharded_rows,
        # Cost-model calibration: CostModel.from_benchmark(summary)
        # rebuilds the relative class-cost table from these rows.
        "class_cost_rows": class_cost_rows,
        "shard_balance_rows": shard_balance_rows,
    }
    if sharded_rows:
        summary["min_sharded_speedup"] = min(
            r["speedup_sharded"] for r in sharded_rows
            if "speedup_sharded" in r)
    if shard_balance_rows:
        by_plan = {}
        for row in shard_balance_rows:
            by_plan.setdefault(row["strategy"], []).append(row["imbalance"])
        # >1 means stealing shards are flatter than fixed-128 shards at
        # every benchmarked geometry; check_bench fails when it dips
        # below 1.
        summary["min_balance_gain"] = round(
            min(fixed / steal for fixed, steal
                in zip(by_plan["fixed-128"], by_plan["stealing"],
                       strict=True)), 2)
    shutdown_shared_pools()
    text = json.dumps(summary, indent=2)
    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
