"""BENCH -- campaign engines: interpreted vs compiled vs bit-packed.

Times single-fault coverage campaigns for March C- and the standard
3-iteration PRT schedule over ``standard_universe(n)`` samples at
n in {64, 256, 1024}, on four paths:

* ``interpreted`` -- the seed behaviour: re-run the interpreted engine
  for every fault (``run_coverage(engine="interpreted")``),
* ``compiled``    -- compile once, replay with early abort (the default
  ``repro.sim`` campaign path, single process),
* ``compiled-mp`` -- the same with ``workers=2`` (omitted when the
  platform cannot fork),
* ``batched``     -- the bit-packed lane-parallel engine
  (``repro.sim.batched``): one replay pass per vectorizable fault
  class, scalar fallback for the rest.

A second section times the batched engine on its home turf -- the full
single-cell SAF/TF universe at n = 1024 (one lane per fault, zero scalar
fallback) -- against the compiled single-process engine; that ratio is
the headline ``single_cell_batched_speedup`` in the JSON summary.

Reports are cross-checked for equality on every path before a number is
emitted.  Run as a script::

    PYTHONPATH=src python benchmarks/bench_campaign_engine.py \
        [--out benchmarks/out/bench_campaign_engine.json]

The JSON summary records per-(test, n) wall-clock seconds and speedups,
so the benchmark trajectory can be tracked across PRs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import march_runner, run_coverage, schedule_runner  # noqa: E402
from repro.faults import single_cell_universe, standard_universe  # noqa: E402
from repro.march.library import MARCH_C_MINUS  # noqa: E402
from repro.prt import standard_schedule  # noqa: E402

SIZES = (64, 256, 1024)
SAMPLE = {64: None, 256: 400, 1024: 200}  # None = full universe


def _report_key(report):
    return (report.detected, report.total, report.missed_faults)


def _time_coverage(runner, universe, n, **kwargs):
    start = time.perf_counter()
    report = run_coverage(runner, universe, n, **kwargs)
    return time.perf_counter() - start, report


def bench_one(name: str, runner_factory, n: int, workers: int) -> dict:
    universe = standard_universe(n)
    sample = SAMPLE[n]
    if sample is not None and len(universe) > sample:
        universe = universe.sample(sample)
    t_int, r_int = _time_coverage(runner_factory(), universe, n,
                                  engine="interpreted")
    t_cmp, r_cmp = _time_coverage(runner_factory(), universe, n)
    if _report_key(r_int) != _report_key(r_cmp):
        raise AssertionError(
            f"{name} n={n}: compiled campaign diverged from interpreted"
        )
    t_bat, r_bat = _time_coverage(runner_factory(), universe, n,
                                  engine="batched")
    if _report_key(r_int) != _report_key(r_bat):
        raise AssertionError(
            f"{name} n={n}: batched campaign diverged from interpreted"
        )
    row = {
        "test": name,
        "n": n,
        "faults": len(universe),
        "coverage": round(r_int.overall, 4),
        "interpreted_s": round(t_int, 3),
        "compiled_s": round(t_cmp, 3),
        "speedup": round(t_int / t_cmp, 2) if t_cmp else float("inf"),
        "batched_s": round(t_bat, 3),
        "speedup_batched": round(t_int / t_bat, 2) if t_bat else float("inf"),
    }
    if workers > 0:
        t_mp, r_mp = _time_coverage(runner_factory(), universe, n,
                                    workers=workers)
        if _report_key(r_int) == _report_key(r_mp):
            row["compiled_mp_s"] = round(t_mp, 3)
            row["speedup_mp"] = round(t_int / t_mp, 2) if t_mp else float("inf")
    return row


def bench_single_cell(n: int) -> list[dict]:
    """The batched engine's home turf: a full single-cell SAF/TF universe
    (one lane per fault, zero scalar fallback) vs the compiled engine."""
    universe = single_cell_universe(n, classes=("SAF", "TF"))
    rows = []
    for name, factory in (
        ("March C-", lambda: march_runner(MARCH_C_MINUS)),
        ("PRT-3", lambda: schedule_runner(standard_schedule(n=n))),
    ):
        t_cmp, r_cmp = _time_coverage(factory(), universe, n)
        t_bat, r_bat = _time_coverage(factory(), universe, n,
                                      engine="batched")
        if _report_key(r_cmp) != _report_key(r_bat):
            raise AssertionError(
                f"{name} n={n}: batched single-cell campaign diverged "
                f"from compiled"
            )
        speedup = round(t_cmp / t_bat, 2) if t_bat else float("inf")
        rows.append({
            "test": name,
            "n": n,
            "universe": "single-cell SAF/TF",
            "faults": len(universe),
            "coverage": round(r_cmp.overall, 4),
            "compiled_s": round(t_cmp, 3),
            "batched_s": round(t_bat, 3),
            "speedup_batched_vs_compiled": speedup,
        })
        print(f"{name:>9} n={n:<5} single-cell faults={len(universe):<5} "
              f"compiled {t_cmp:>7.3f}s  batched {t_bat:>7.3f}s  "
              f"x{speedup}")
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=str, default=None,
                        help="write the JSON summary here (default: stdout)")
    parser.add_argument("--workers", type=int, default=2,
                        help="processes for the multiprocessing row "
                             "(0 disables it)")
    parser.add_argument("--sizes", type=int, nargs="*", default=list(SIZES))
    parser.add_argument("--single-cell-n", type=int, default=1024,
                        help="memory size for the single-cell batched "
                             "headline row")
    args = parser.parse_args(argv)

    rows = []
    for n in args.sizes:
        for name, factory in (
            ("March C-", lambda: march_runner(MARCH_C_MINUS)),
            ("PRT-3", lambda n=n: schedule_runner(standard_schedule(n=n))),
        ):
            row = bench_one(name, factory, n, args.workers)
            rows.append(row)
            speedup_mp = row.get("speedup_mp")
            mp_text = f"  mp x{speedup_mp}" if speedup_mp else ""
            print(f"{name:>9} n={n:<5} faults={row['faults']:<5} "
                  f"interpreted {row['interpreted_s']:>7.3f}s  "
                  f"compiled {row['compiled_s']:>7.3f}s  "
                  f"x{row['speedup']}{mp_text}  "
                  f"batched {row['batched_s']:>7.3f}s  "
                  f"x{row['speedup_batched']}")
    single_cell_rows = bench_single_cell(args.single_cell_n)
    summary = {
        "benchmark": "campaign_engine",
        "python": sys.version.split()[0],
        "rows": rows,
        "min_single_process_speedup": min(r["speedup"] for r in rows),
        "single_cell_rows": single_cell_rows,
        "single_cell_batched_speedup": min(
            r["speedup_batched_vs_compiled"] for r in single_cell_rows
        ),
    }
    text = json.dumps(summary, indent=2)
    if args.out:
        os.makedirs(os.path.dirname(args.out) or ".", exist_ok=True)
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
