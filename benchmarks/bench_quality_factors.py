"""E10 -- Claim C1 ablation: the three π-test quality factors.

The paper: "There are three factors that influence on π-test quality ...
1 -- LFSR structure (generator polynomial); 2 -- initial values; 3 -- LFSR
trajectory (random or deterministic)."  This bench ablates each factor on
a single-iteration coverage campaign, plus the signature ablation
(window-compare vs MISR compaction).
"""

from repro.faults import single_cell_universe
from repro.prt import MISR, PiIteration, ascending, descending, random_trajectory

from conftest import coverage_of

N = 28


def iteration_coverage(iteration):
    universe = single_cell_universe(N, classes=("SAF", "TF"))
    return coverage_of(lambda ram: not iteration.run(ram).passed, universe, N)


def test_factor1_generator_structure(benchmark):
    """The generator polynomial sets the automaton period (the pseudo-ring
    alignment constraint) and shifts *which* faults a single pass excites.

    Ablation finding worth recording: once the schedule's TDB uses
    inversion pairs (B, ~B), the *coverage totals* become insensitive to
    the generator -- the polarity guarantee dominates.  What the generator
    still controls is the period (memory sizes with Fin* = Init) and the
    per-iteration detected *sets* (diversity across iterations).
    """

    def sweep():
        weak = PiIteration(generator=(1, 1, 1), seed=(0, 1))          # period 3
        strong = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))  # period 7
        weak_report = iteration_coverage(weak)
        strong_report = iteration_coverage(strong)
        return weak, strong, weak_report, strong_report

    weak, strong, weak_report, strong_report = benchmark(sweep)

    # Structure -> period: the ring-closure sizes differ (N = 28 aligns
    # with the period-7 generator but not the period-3 one).
    assert weak.period == 3
    assert strong.period == 7
    assert not weak.ring_closes_for(N)
    assert strong.ring_closes_for(N)
    benchmark.extra_info["period3_coverage"] = round(weak_report.overall, 3)
    benchmark.extra_info["period7_coverage"] = round(strong_report.overall, 3)
    # Structure -> different detected sets (the diversity that multi-
    # iteration schedules exploit).
    assert set(weak_report.missed_faults) != set(strong_report.missed_faults)


def test_factor2_initial_values(benchmark):
    """Different seeds shift the stream phase: the detected fault *sets*
    differ, which is why the multi-iteration schedules vary the data."""

    def sweep():
        missed = []
        for seed in ((0, 0, 1), (1, 0, 0), (1, 1, 1)):
            iteration = PiIteration(generator=(1, 0, 1, 1), seed=seed)
            report = iteration_coverage(iteration)
            missed.append(frozenset(report.missed_faults))
        return missed

    missed_sets = benchmark(sweep)
    # At least two seeds must miss different fault sets.
    assert len(set(missed_sets)) > 1
    # And their intersection is smaller than any single miss set:
    # combining seeds genuinely helps.
    intersection = missed_sets[0] & missed_sets[1] & missed_sets[2]
    assert len(intersection) < min(len(s) for s in missed_sets)
    benchmark.extra_info["missed_by_seed"] = [len(s) for s in missed_sets]
    benchmark.extra_info["missed_intersection"] = len(intersection)


def test_factor3_trajectory(benchmark):
    """Ascending, descending and random trajectories all pass healthy
    memory and are interchangeable on single-cell faults; their role is
    the aggressor/victim ordering for coupling faults (see E3)."""

    def sweep():
        out = {}
        for trajectory in (ascending(N), descending(N),
                           random_trajectory(N, seed=9)):
            iteration = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1),
                                    trajectory=trajectory)
            out[trajectory.name] = iteration_coverage(iteration).overall
        return out

    by_trajectory = benchmark(sweep)
    values = list(by_trajectory.values())
    assert all(v > 0.3 for v in values)
    benchmark.extra_info["coverage_by_trajectory"] = {
        name: round(v, 3) for name, v in by_trajectory.items()
    }


def test_signature_ablation_misr_vs_window(benchmark):
    """Extension: compact a full read-back of the final background into a
    MISR instead of comparing only the k-cell window.

    This ablation demonstrates a real BIST pitfall the window compare is
    immune to: a fault's error pattern in the background is periodic with
    the *generator's* period (7 here), and the array holds 28 = 4 x 7
    cells.  A MISR whose feedback polynomial also has period 7
    (``x^3 + x + 1``) absorbs the four identical period-contributions,
    which cancel mod 2 -- systematic aliasing.  A MISR with a period
    coprime to the error structure (``x^4 + x + 1``, period 15) performs
    on par with the window compare, with only residual ~2^-m aliasing.
    """
    from repro.faults import FaultInjector, single_cell_universe
    from repro.memory import SinglePortRAM

    universe = single_cell_universe(N, classes=("SAF",))
    iteration = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))

    def misr_of_readback(ram, poly) -> int:
        misr = MISR(poly)
        misr.absorb_all(ram.read(addr) for addr in range(N))
        return misr.signature

    def campaign():
        goldens = {}
        for poly in (0b1011, 0b10011):
            golden_misr = MISR(poly)
            golden_misr.absorb_all(iteration.background_after(N))
            goldens[poly] = golden_misr.signature
        window_detected = 0
        aligned_detected = 0   # period-7 MISR: aligned with error period
        coprime_detected = 0   # period-15 MISR
        for fault in universe:
            ram = SinglePortRAM(N)
            injector = FaultInjector([fault])
            injector.install(ram)
            result = iteration.run(ram)
            if not result.passed:
                window_detected += 1
            if misr_of_readback(ram, 0b1011) != goldens[0b1011]:
                aligned_detected += 1
            if misr_of_readback(ram, 0b10011) != goldens[0b10011]:
                coprime_detected += 1
            injector.remove(ram)
        return window_detected, aligned_detected, coprime_detected

    window, aligned, coprime = benchmark(campaign)
    # The period-aligned MISR aliases systematically...
    assert aligned < coprime
    # ...while the well-chosen MISR matches the window compare up to its
    # small residual aliasing (neither scheme dominates: the window is
    # exact but narrow, the MISR is wide but can alias).
    assert coprime >= window - 2
    benchmark.extra_info["window_detected"] = window
    benchmark.extra_info["aligned_misr_detected"] = aligned
    benchmark.extra_info["coprime_misr_detected"] = coprime
    benchmark.extra_info["universe"] = len(universe)
