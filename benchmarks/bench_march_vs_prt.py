"""E9 -- Baseline comparison: March tests vs PRT.

The paper's §1 frames PRT against the March family.  This bench runs both
over the same standard fault universe and regenerates the comparison:
cost (operations per cell) against per-class coverage -- who wins, by what
factor, where the crossovers fall.
"""

from repro.analysis import (
    compare_tests,
    march_operations,
    march_runner,
    schedule_runner,
)
from repro.faults import standard_universe
from repro.march.library import MARCH_B, MARCH_C_MINUS, MARCH_X, MATS_PLUS
from repro.prt import extended_schedule, standard_schedule

N = 28


def run_comparison():
    universe = standard_universe(N)
    pure = standard_schedule(n=N, verify=False)
    verifying = standard_schedule(n=N, verify=True)
    extended = extended_schedule(n=N, verify=True)
    return compare_tests(
        [
            ("PRT-3 pure", schedule_runner(pure), pure.operation_count(N)),
            ("PRT-3 verify", schedule_runner(verifying),
             verifying.operation_count(N)),
            ("PRT-5 ext", schedule_runner(extended),
             extended.operation_count(N)),
            ("MATS+", march_runner(MATS_PLUS),
             march_operations(MATS_PLUS, N)),
            ("March X", march_runner(MARCH_X), march_operations(MARCH_X, N)),
            ("March C-", march_runner(MARCH_C_MINUS),
             march_operations(MARCH_C_MINUS, N)),
            ("March B", march_runner(MARCH_B), march_operations(MARCH_B, N)),
        ],
        universe, N,
    )


def test_march_vs_prt_table(benchmark):
    rows = benchmark(run_comparison)
    by_name = {row.name: row for row in rows}

    # Cost ordering: pure PRT (9n) < March C- (10n) < PRT verify (12n)
    # < March B (17n) < PRT-5 (20n).
    assert by_name["PRT-3 pure"].ops_per_cell < by_name["March C-"].ops_per_cell
    assert by_name["PRT-3 verify"].ops_per_cell < by_name["March B"].ops_per_cell

    # Coverage shape:
    # - verifying PRT-3 matches March C- on the single-cell classes;
    assert by_name["PRT-3 verify"].coverage("SAF") == 1.0
    assert by_name["PRT-3 verify"].coverage("TF") == 1.0
    assert by_name["March C-"].coverage("SAF") == 1.0
    # - PRT's LFSR background beats MATS+ overall;
    assert by_name["PRT-3 verify"].overall > by_name["MATS+"].overall
    # - March B (17n) still leads on the full universe: the CFid gap.
    assert by_name["March B"].overall >= by_name["PRT-3 verify"].overall
    # - the extended PRT closes most of it.
    assert by_name["PRT-5 ext"].overall > by_name["PRT-3 verify"].overall

    benchmark.extra_info["table"] = [
        {
            "test": row.name,
            "ops_per_cell": round(row.ops_per_cell, 2),
            "overall": round(row.overall, 4),
            **{c: round(row.coverage(c), 3) for c in row.report.classes},
        }
        for row in rows
    ]


def test_wom_comparison(benchmark):
    """Word-oriented memory: March pays the background multiplier
    (ceil(log2 m) + 1 passes); PRT's word automaton does not."""
    n, m = 16, 4
    universe = standard_universe(n, m)

    def run():
        from repro.gf2 import poly_from_string
        from repro.gf2m import GF2m

        field = GF2m(poly_from_string("1+z+z^4"))
        verifying = standard_schedule(field=field, n=n, verify=True)
        return compare_tests(
            [
                ("PRT-3 verify", schedule_runner(verifying),
                 verifying.operation_count(n)),
                ("March C-", march_runner(MARCH_C_MINUS),
                 march_operations(MARCH_C_MINUS, n, m=m)),
            ],
            universe, n, m=m,
        )

    rows = benchmark(run)
    by_name = {row.name: row for row in rows}
    # March C- on a WOM costs 3x its BOM cost (3 backgrounds); PRT doesn't.
    assert by_name["March C-"].ops_per_cell == 30.0
    assert by_name["PRT-3 verify"].ops_per_cell < 15.0
    assert by_name["PRT-3 verify"].coverage("SAF") == 1.0
    benchmark.extra_info["wom_table"] = [
        {"test": row.name, "ops_per_cell": row.ops_per_cell,
         "overall": round(row.overall, 4)}
        for row in rows
    ]
