"""E7 -- Claim C6: optimal XOR-only constant multipliers over GF(2^m).

The paper: "Multiplier by a constant contains only XOR-gates and can be
implemented inherently in the memory circuit.  It's proposed an algorithm
to design the optimal scheme of multiplication by a constant in GF."

This bench synthesizes multipliers for every constant of GF(2^4) (the
paper's field) and a sample of GF(2^8), comparing the naive column method
against the greedy common-subexpression optimizer, and verifies functional
equivalence of every network against the field arithmetic.
"""

from repro.gf2 import poly_from_string, primitive_polynomial
from repro.gf2m import (
    GF2m,
    constant_multiplier_matrix,
    synthesize_greedy,
    synthesize_naive,
)

F16 = GF2m(poly_from_string("1+z+z^4"))
F256 = GF2m(primitive_polynomial(8))


def synthesize_all_gf16():
    rows = []
    for constant in range(16):
        matrix = constant_multiplier_matrix(F16, constant)
        naive = synthesize_naive(matrix)
        greedy = synthesize_greedy(matrix)
        rows.append((constant, naive.gate_count, greedy.gate_count,
                     greedy.depth))
    return rows


def test_gf16_multiplier_table(benchmark):
    rows = benchmark(synthesize_all_gf16)

    for constant, naive_gates, greedy_gates, _depth in rows:
        # The optimizer never loses to the column method.
        assert greedy_gates <= naive_gates
        # Functional check: every network equals the field multiply.
        matrix = constant_multiplier_matrix(F16, constant)
        net = synthesize_greedy(matrix)
        for x in range(16):
            assert net.evaluate(x) == F16.mul(constant, x)

    total_naive = sum(r[1] for r in rows)
    total_greedy = sum(r[2] for r in rows)
    assert total_greedy < total_naive  # strictly better overall

    # The paper's own recurrence multiplier (x -> 2x) costs exactly 1 XOR.
    by_constant = {r[0]: r for r in rows}
    assert by_constant[2][2] == 1

    benchmark.extra_info["total_naive"] = total_naive
    benchmark.extra_info["total_greedy"] = total_greedy
    benchmark.extra_info["mul_by_2_gates"] = by_constant[2][2]


def test_gf256_sample(benchmark):
    constants = (0x02, 0x1D, 0x53, 0xCA, 0xFF)

    def synthesize_sample():
        out = []
        for constant in constants:
            matrix = constant_multiplier_matrix(F256, constant)
            naive = synthesize_naive(matrix)
            greedy = synthesize_greedy(matrix)
            out.append((constant, naive.gate_count, greedy.gate_count))
        return out

    rows = benchmark(synthesize_sample)
    for constant, naive_gates, greedy_gates in rows:
        assert greedy_gates <= naive_gates
        matrix = constant_multiplier_matrix(F256, constant)
        net = synthesize_greedy(matrix)
        for x in (0, 1, 0x80, 0xA5, 0xFF):
            assert net.evaluate(x) == F256.mul(constant, x)
    benchmark.extra_info["gf256_rows"] = rows
