"""E1 -- Figure 1(a): the bit-oriented π-test iteration.

The paper's figure shows a BOM whose cells, after one π-iteration, hold
the stream of the virtual bit LFSR, with Init and Fin windows at the two
ends of the (cyclic) array.  This bench regenerates the cell stream,
checks it against the reference LFSR bit-for-bit, and confirms the
pseudo-ring closure when the array length is a multiple of the period.
"""

from repro.lfsr import BitLFSR
from repro.memory import SinglePortRAM
from repro.prt import PiIteration


N = 999  # multiple of the g = 1+x+x^2 period (3)


def run_iteration():
    ram = SinglePortRAM(N)
    iteration = PiIteration(seed=(0, 1))
    result = iteration.run(ram, record=True)
    return ram, iteration, result


def test_fig1a_bom_stream(benchmark):
    ram, iteration, result = benchmark(run_iteration)

    # The cells hold the virtual LFSR's output stream.
    reference = BitLFSR(0b111, seed=[0, 1])
    reference.run(2)  # skip the seed window; cells hold s_2 onward
    assert result.written_stream == reference.sequence(N)

    # Pseudo-ring: period 3 divides N, so Fin == Init == Fin*.
    assert result.ring_closed
    assert result.passed
    assert result.init_state == (0, 1)

    # Complexity: the paper's O(3n) -- exactly 3n + 4 operations.
    assert result.operations == 3 * N + 4

    benchmark.extra_info["n"] = N
    benchmark.extra_info["stream_prefix"] = result.written_stream[:8]
    benchmark.extra_info["ring_closed"] = result.ring_closed
    benchmark.extra_info["operations"] = result.operations


def test_fig1a_ring_requires_period_alignment(benchmark):
    def run_misaligned():
        # 1000 is not a multiple of 3: the automaton does not return to
        # Init, but the test still passes because Fin* is computed for
        # exactly n steps.
        ram = SinglePortRAM(1000)
        return PiIteration(seed=(0, 1)).run(ram)

    result = benchmark(run_misaligned)
    assert result.passed
    assert not result.ring_closed
