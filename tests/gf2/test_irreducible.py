"""Tests for irreducibility, primitivity and order computations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf2 import (
    find_irreducible,
    find_primitive,
    is_irreducible,
    is_primitive,
    iter_irreducible,
    iter_primitive,
    order_of_x,
    poly_from_string,
    poly_mul,
)


class TestIsIrreducible:
    def test_paper_modulus_is_irreducible(self):
        assert is_irreducible(poly_from_string("1+z+z^4"))

    def test_known_reducible(self):
        # x^4 + x^2 + 1 = (x^2 + x + 1)^2
        assert not is_irreducible(0b10101)

    def test_product_is_reducible(self):
        assert not is_irreducible(poly_mul(0b111, 0b1011))

    def test_degree_one(self):
        assert is_irreducible(0b11)  # x + 1
        assert is_irreducible(0b10)  # x

    def test_constants_not_irreducible(self):
        assert not is_irreducible(0)
        assert not is_irreducible(1)

    def test_even_polynomial_reducible(self):
        assert not is_irreducible(0b10010)  # divisible by x

    def test_counts_by_degree(self):
        # Number of irreducible polynomials of degree m over GF(2):
        # (1/m) * sum_{d|m} mu(m/d) 2^d -> 1,2,3 for m=2,3,4 (excluding x for m=1)
        assert len(list(iter_irreducible(2))) == 1
        assert len(list(iter_irreducible(3))) == 2
        assert len(list(iter_irreducible(4))) == 3
        assert len(list(iter_irreducible(5))) == 6

    @given(st.integers(min_value=2, max_value=6))
    def test_products_never_irreducible(self, m):
        f = find_irreducible(m)
        assert not is_irreducible(poly_mul(f, 0b11))


class TestOrderOfX:
    def test_primitive_degree_4(self):
        assert order_of_x(0b10011) == 15

    def test_non_primitive_degree_4(self):
        # x^4+x^3+x^2+x+1 divides x^5 - 1: order 5
        assert order_of_x(0b11111) == 5

    def test_degree_one(self):
        assert order_of_x(0b11) == 1  # x = 1 mod (x+1)

    def test_rejects_reducible(self):
        with pytest.raises(ValueError):
            order_of_x(0b10101)

    @given(st.integers(min_value=2, max_value=8))
    def test_order_divides_group_size(self, m):
        for f in iter_irreducible(m):
            assert ((1 << m) - 1) % order_of_x(f) == 0


class TestIsPrimitive:
    def test_paper_modulus_primitive(self):
        assert is_primitive(poly_from_string("1+z+z^4"))

    def test_irreducible_non_primitive(self):
        assert is_irreducible(0b11111)
        assert not is_primitive(0b11111)

    def test_reducible_not_primitive(self):
        assert not is_primitive(0b10101)

    def test_counts_by_degree(self):
        # phi(2^m - 1)/m primitive polynomials of degree m: 2 for m=3, 2 for m=4, 6 for m=5
        assert len(list(iter_primitive(3))) == 2
        assert len(list(iter_primitive(4))) == 2
        assert len(list(iter_primitive(5))) == 6

    def test_mersenne_prime_degree_all_primitive(self):
        # 2^5 - 1 = 31 is prime, so every irreducible of degree 5 is primitive
        assert list(iter_irreducible(5)) == list(iter_primitive(5))


class TestSearch:
    def test_find_irreducible_smallest(self):
        assert find_irreducible(4) == 0b10011

    def test_find_primitive_smallest(self):
        assert find_primitive(4) == 0b10011

    @given(st.integers(min_value=1, max_value=10))
    def test_found_primitive_is_primitive(self, m):
        assert is_primitive(find_primitive(m))

    def test_rejects_degree_zero(self):
        with pytest.raises(ValueError):
            next(iter_irreducible(0))
