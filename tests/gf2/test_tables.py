"""Every tabulated polynomial must actually be primitive."""

import pytest

from repro.gf2 import PRIMITIVE_POLYNOMIALS, degree, is_primitive, primitive_polynomial


class TestTable:
    def test_covers_degrees_1_to_32(self):
        assert sorted(PRIMITIVE_POLYNOMIALS) == list(range(1, 33))

    def test_degrees_match_keys(self):
        for m, f in PRIMITIVE_POLYNOMIALS.items():
            assert degree(f) == m

    @pytest.mark.parametrize("m", range(1, 17))
    def test_primitive_small_degrees(self, m):
        # Full primitivity check is cheap up to degree 16.
        assert is_primitive(PRIMITIVE_POLYNOMIALS[m])

    @pytest.mark.parametrize("m", (17, 20, 24, 32))
    def test_primitive_larger_degrees(self, m):
        assert is_primitive(PRIMITIVE_POLYNOMIALS[m])

    def test_paper_modulus_is_the_degree_4_entry(self):
        assert primitive_polynomial(4) == 0b10011  # 1 + z + z^4

    def test_lookup_out_of_range(self):
        with pytest.raises(ValueError):
            primitive_polynomial(33)
