"""Tests for integer factorization utilities."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf2 import divisors, factorize_int
from repro.gf2.intfactor import is_prime


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 97):
            assert is_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 91, 2047):
            assert not is_prime(n)

    def test_mersenne(self):
        assert is_prime(2**13 - 1)
        assert is_prime(2**31 - 1)
        assert not is_prime(2**11 - 1)
        assert not is_prime(2**23 - 1)

    def test_carmichael(self):
        assert not is_prime(561)
        assert not is_prime(41041)


class TestFactorizeInt:
    def test_known(self):
        assert factorize_int(2**4 - 1) == {3: 1, 5: 1}
        assert factorize_int(2**8 - 1) == {3: 1, 5: 1, 17: 1}
        assert factorize_int(360) == {2: 3, 3: 2, 5: 1}

    def test_one(self):
        assert factorize_int(1) == {}

    def test_prime(self):
        assert factorize_int(8191) == {8191: 1}

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            factorize_int(0)

    def test_large_mersenne_composite(self):
        # 2^29 - 1 = 233 * 1103 * 2089
        assert factorize_int(2**29 - 1) == {233: 1, 1103: 1, 2089: 1}

    @given(st.integers(min_value=1, max_value=10**6))
    def test_product_reconstructs(self, n):
        product = 1
        for p, k in factorize_int(n).items():
            assert is_prime(p)
            product *= p**k
        assert product == n


class TestDivisors:
    def test_known(self):
        assert divisors(15) == [1, 3, 5, 15]
        assert divisors(1) == [1]
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    @given(st.integers(min_value=1, max_value=10**4))
    def test_all_divide(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(set(ds))
        # divisor count from factorization
        expected = math.prod(k + 1 for k in factorize_int(n).values())
        assert len(ds) == expected
