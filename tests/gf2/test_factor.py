"""Tests for polynomial factorization over GF(2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2 import (
    distinct_degree_factorization,
    equal_degree_factorization,
    factorize,
    is_irreducible,
    poly_mul,
    squarefree_part,
)
from repro.gf2.factor import squarefree_decomposition

nonzero_polys = st.integers(min_value=1, max_value=(1 << 16) - 1)


def rebuild(factors: dict[int, int]) -> int:
    product = 1
    for f, mult in factors.items():
        for _ in range(mult):
            product = poly_mul(product, f)
    return product


class TestSquarefree:
    def test_square_stripped(self):
        assert squarefree_part(poly_mul(0b111, 0b111)) == 0b111

    def test_already_squarefree(self):
        f = poly_mul(0b11, 0b111)
        assert squarefree_part(f) == f

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            squarefree_part(0)

    def test_decomposition_multiplicities(self):
        # (x+1)^3 * (x^2+x+1)
        f = poly_mul(poly_mul(poly_mul(0b11, 0b11), 0b11), 0b111)
        decomp = dict((e, g) for g, e in squarefree_decomposition(f))
        assert decomp[3] == 0b11
        assert decomp[1] == 0b111

    def test_fourth_power(self):
        f = 0b11
        for _ in range(3):
            f = poly_mul(f, 0b11)
        decomp = squarefree_decomposition(f)
        assert decomp == [(0b11, 4)]


class TestDistinctDegree:
    def test_mixed_degrees(self):
        f = poly_mul(0b11, 0b111)  # deg1 * deg2
        assert distinct_degree_factorization(f) == [(0b11, 1), (0b111, 2)]

    def test_single_irreducible(self):
        assert distinct_degree_factorization(0b10011) == [(0b10011, 4)]

    def test_two_same_degree(self):
        f = poly_mul(0b1011, 0b1101)
        assert distinct_degree_factorization(f) == [(f, 3)]


class TestEqualDegree:
    def test_splits_pair(self):
        f = poly_mul(0b1011, 0b1101)
        assert sorted(equal_degree_factorization(f, 3)) == [0b1011, 0b1101]

    def test_single_factor_fast_path(self):
        assert equal_degree_factorization(0b10011, 4) == [0b10011]

    def test_wrong_degree_rejected(self):
        with pytest.raises(ValueError):
            equal_degree_factorization(0b10011, 3)

    def test_three_way_split(self):
        # all three irreducible quadratics... there is only one; use cubics
        f = poly_mul(poly_mul(0b1011, 0b1101), 1)
        parts = equal_degree_factorization(f, 3)
        assert sorted(parts) == [0b1011, 0b1101]


class TestFactorize:
    def test_paper_style_example(self):
        f = poly_mul(poly_mul(0b10, 0b11), 0b111)  # x(x+1)(x^2+x+1)
        assert factorize(f) == {0b10: 1, 0b11: 1, 0b111: 1}

    def test_with_multiplicity(self):
        f = poly_mul(poly_mul(0b11, 0b11), 0b10011)
        assert factorize(f) == {0b11: 2, 0b10011: 1}

    def test_irreducible_is_its_own_factorization(self):
        assert factorize(0b10011) == {0b10011: 1}

    def test_one(self):
        assert factorize(1) == {}

    def test_pure_x_power(self):
        assert factorize(0b1000) == {0b10: 3}

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            factorize(0)

    @settings(max_examples=50)
    @given(nonzero_polys)
    def test_factorization_rebuilds_input(self, f):
        factors = factorize(f)
        assert rebuild(factors) == f

    @settings(max_examples=50)
    @given(nonzero_polys)
    def test_all_factors_irreducible(self, f):
        for factor in factorize(f):
            assert is_irreducible(factor)
