"""Unit and property tests for repro.gf2.poly."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf2 import (
    PolyParseError,
    degree,
    poly_add,
    poly_derivative,
    poly_divmod,
    poly_egcd,
    poly_eval,
    poly_from_coeffs,
    poly_from_exponents,
    poly_from_string,
    poly_gcd,
    poly_mod,
    poly_modexp,
    poly_modinv,
    poly_modmul,
    poly_mul,
    poly_sub,
    poly_to_coeffs,
    poly_to_exponents,
    poly_to_string,
    poly_weight,
    reciprocal,
)

polys = st.integers(min_value=0, max_value=(1 << 24) - 1)
nonzero_polys = st.integers(min_value=1, max_value=(1 << 24) - 1)


class TestDegree:
    def test_zero_polynomial(self):
        assert degree(0) == -1

    def test_constant(self):
        assert degree(1) == 0

    def test_paper_modulus(self):
        assert degree(poly_from_string("1+z+z^4")) == 4

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            degree(-1)

    def test_rejects_non_int(self):
        with pytest.raises(TypeError):
            degree("x^2")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            degree(True)


class TestAddSub:
    def test_add_is_xor(self):
        assert poly_add(0b1010, 0b0110) == 0b1100

    def test_sub_equals_add(self):
        assert poly_sub(0b1010, 0b0110) == poly_add(0b1010, 0b0110)

    @given(polys, polys)
    def test_add_commutative(self, a, b):
        assert poly_add(a, b) == poly_add(b, a)

    @given(polys)
    def test_add_self_inverse(self, a):
        assert poly_add(a, a) == 0


class TestMul:
    def test_times_zero(self):
        assert poly_mul(0b1011, 0) == 0

    def test_times_one(self):
        assert poly_mul(0b1011, 1) == 0b1011

    def test_times_x_is_shift(self):
        assert poly_mul(0b1011, 0b10) == 0b10110

    def test_freshmans_dream(self):
        # (x+1)^2 = x^2 + 1 over GF(2)
        assert poly_mul(0b11, 0b11) == 0b101

    @given(polys, polys)
    def test_commutative(self, a, b):
        assert poly_mul(a, b) == poly_mul(b, a)

    @given(polys, polys, polys)
    def test_distributive(self, a, b, c):
        assert poly_mul(a, b ^ c) == poly_mul(a, b) ^ poly_mul(a, c)

    @given(nonzero_polys, nonzero_polys)
    def test_degree_adds(self, a, b):
        assert degree(poly_mul(a, b)) == degree(a) + degree(b)


class TestDivMod:
    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            poly_divmod(0b101, 0)

    def test_exact_division(self):
        product = poly_mul(0b111, 0b1011)
        q, r = poly_divmod(product, 0b111)
        assert (q, r) == (0b1011, 0)

    @given(polys, nonzero_polys)
    def test_divmod_identity(self, a, b):
        q, r = poly_divmod(a, b)
        assert poly_mul(q, b) ^ r == a
        assert degree(r) < degree(b)

    def test_mod_smaller_is_identity(self):
        assert poly_mod(0b11, 0b10011) == 0b11


class TestGcd:
    def test_gcd_with_zero(self):
        assert poly_gcd(0b1011, 0) == 0b1011

    def test_common_factor(self):
        a = poly_mul(0b111, 0b10)
        b = poly_mul(0b111, 0b11)
        assert poly_gcd(a, b) == 0b111

    @given(polys, polys)
    def test_gcd_divides_both(self, a, b):
        g = poly_gcd(a, b)
        if g:
            assert poly_mod(a, g) == 0
            assert poly_mod(b, g) == 0

    @given(nonzero_polys, nonzero_polys)
    def test_egcd_bezout(self, a, b):
        g, s, t = poly_egcd(a, b)
        assert poly_mul(s, a) ^ poly_mul(t, b) == g
        assert g == poly_gcd(a, b)


class TestModularArithmetic:
    MOD = 0b10011  # x^4 + x + 1, primitive

    def test_modexp_x4(self):
        # x^4 = x + 1 mod (x^4+x+1)
        assert poly_modexp(0b10, 4, self.MOD) == 0b11

    def test_modexp_full_cycle(self):
        # order of x is 15 for a degree-4 primitive polynomial
        assert poly_modexp(0b10, 15, self.MOD) == 1

    def test_modexp_zero_exponent(self):
        assert poly_modexp(0b1101, 0, self.MOD) == 1

    def test_modexp_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            poly_modexp(0b10, -1, self.MOD)

    @given(st.integers(min_value=1, max_value=15))
    def test_modinv(self, a):
        inv = poly_modinv(a, self.MOD)
        assert poly_modmul(a, inv, self.MOD) == 1

    def test_modinv_zero_fails(self):
        with pytest.raises(ZeroDivisionError):
            poly_modinv(0, self.MOD)

    def test_modinv_shared_factor_fails(self):
        # x is not invertible modulo x^2 (shares the factor x)
        with pytest.raises(ZeroDivisionError):
            poly_modinv(0b10, 0b100)


class TestDerivativeEval:
    def test_derivative_paper_modulus(self):
        # d/dz (1 + z + z^4) = 1 over GF(2)
        assert poly_derivative(poly_from_string("1+z+z^4")) == 1

    def test_derivative_of_square_is_zero(self):
        assert poly_derivative(poly_mul(0b111, 0b111)) == 0

    @given(polys, polys)
    def test_derivative_is_linear(self, a, b):
        assert poly_derivative(a ^ b) == poly_derivative(a) ^ poly_derivative(b)

    def test_eval_at_zero_is_constant_term(self):
        assert poly_eval(0b1011, 0) == 1
        assert poly_eval(0b1010, 0) == 0

    def test_eval_at_one_is_parity(self):
        assert poly_eval(0b10011, 1) == 1  # weight 3
        assert poly_eval(0b1001, 1) == 0  # weight 2

    def test_eval_rejects_non_gf2_point(self):
        with pytest.raises(ValueError):
            poly_eval(0b101, 2)


class TestConversions:
    def test_coeffs_roundtrip(self):
        coeffs = [1, 1, 0, 0, 1]
        assert poly_to_coeffs(poly_from_coeffs(coeffs)) == coeffs

    def test_coeffs_zero(self):
        assert poly_to_coeffs(0) == [0]

    def test_coeffs_reject_non_binary(self):
        with pytest.raises(ValueError):
            poly_from_coeffs([1, 2])

    def test_exponents_roundtrip(self):
        assert poly_from_exponents([4, 1, 0]) == 0b10011
        assert poly_to_exponents(0b10011) == [4, 1, 0]

    def test_exponents_duplicate_rejected(self):
        with pytest.raises(ValueError):
            poly_from_exponents([1, 1])

    def test_exponents_negative_rejected(self):
        with pytest.raises(ValueError):
            poly_from_exponents([-1])

    @given(polys)
    def test_coeffs_roundtrip_property(self, p):
        assert poly_from_coeffs(poly_to_coeffs(p)) == p


class TestStringFormat:
    def test_parse_paper_p(self):
        assert poly_from_string("1 + z + z^4") == 0b10011

    def test_parse_compact(self):
        assert poly_from_string("x^4+x+1") == 0b10011

    def test_parse_cancellation(self):
        assert poly_from_string("x^2 + x^2") == 0

    def test_parse_bare_variable(self):
        assert poly_from_string("x") == 0b10

    def test_parse_mixed_variables_rejected(self):
        with pytest.raises(PolyParseError):
            poly_from_string("x + z^2")

    def test_parse_empty_rejected(self):
        with pytest.raises(PolyParseError):
            poly_from_string("  ")

    def test_parse_garbage_rejected(self):
        with pytest.raises(PolyParseError):
            poly_from_string("x^")

    def test_format_zero(self):
        assert poly_to_string(0) == "0"

    def test_format_with_variable(self):
        assert poly_to_string(0b10011, variable="z") == "z^4 + z + 1"

    @given(polys)
    def test_string_roundtrip(self, p):
        assert poly_from_string(poly_to_string(p)) == p or p == 0


class TestReciprocal:
    def test_paper_polynomial(self):
        assert reciprocal(0b10011) == 0b11001  # x^4+x+1 -> x^4+x^3+1

    def test_zero(self):
        assert reciprocal(0) == 0

    @given(st.integers(min_value=1, max_value=(1 << 20) - 1).filter(lambda p: p & 1))
    def test_involution_for_odd_constant_term(self, p):
        # reciprocal is an involution when the constant term is non-zero
        assert reciprocal(reciprocal(p)) == p

    @given(nonzero_polys)
    def test_weight_preserved(self, p):
        assert poly_weight(reciprocal(p)) == poly_weight(p)
