"""Tests for March notation parsing and the data model."""

import pytest

from repro.march import (
    MarchElement,
    MarchOperation,
    MarchParseError,
    MarchTest,
    format_march,
    parse_march,
)


class TestMarchOperation:
    def test_symbol(self):
        assert MarchOperation("r", 0).symbol == "r0"
        assert MarchOperation("w", 1).symbol == "w1"

    def test_validation(self):
        with pytest.raises(ValueError):
            MarchOperation("x", 0)
        with pytest.raises(ValueError):
            MarchOperation("r", 2)


class TestMarchElement:
    def test_addresses_up(self):
        element = MarchElement("up", (MarchOperation("r", 0),))
        assert list(element.addresses(4)) == [0, 1, 2, 3]

    def test_addresses_down(self):
        element = MarchElement("down", (MarchOperation("r", 0),))
        assert list(element.addresses(4)) == [3, 2, 1, 0]

    def test_addresses_any_is_up(self):
        element = MarchElement("any", (MarchOperation("w", 0),))
        assert list(element.addresses(3)) == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            MarchElement("sideways", (MarchOperation("r", 0),))
        with pytest.raises(ValueError):
            MarchElement("up", ())

    def test_str(self):
        element = MarchElement(
            "up", (MarchOperation("r", 0), MarchOperation("w", 1))
        )
        assert str(element) == "⇑(r0,w1)"


class TestParse:
    def test_paper_example(self):
        """The paper's §1 notation parses exactly."""
        test = parse_march("{c(w0); ⇑(r0w1); ⇓(r1w0)}", name="MarchA-paper")
        assert len(test.elements) == 3
        assert test.elements[0].order == "any"
        assert test.elements[1].order == "up"
        assert test.elements[2].order == "down"
        assert test.ops_per_cell == 5

    def test_ascii_aliases(self):
        a = parse_march("{c(w0); u(r0,w1); d(r1,w0)}")
        b = parse_march("{a(w0); ⇑(r0,w1); ⇓(r1,w0)}")
        assert str(a) == str(b)

    def test_single_arrows(self):
        test = parse_march("{↑(w0); ↓(r0)}")
        assert test.elements[0].order == "up"
        assert test.elements[1].order == "down"

    def test_juxtaposed_and_comma_ops_equal(self):
        assert str(parse_march("{u(r0w1r1)}")) == str(parse_march("{u(r0,w1,r1)}"))

    def test_whitespace_tolerant(self):
        test = parse_march("{ c ( w0 ) ;  u ( r0 , w1 ) }")
        assert test.ops_per_cell == 3

    def test_missing_braces(self):
        with pytest.raises(MarchParseError):
            parse_march("c(w0)")

    def test_empty_test(self):
        with pytest.raises(MarchParseError):
            parse_march("{}")

    def test_empty_element(self):
        with pytest.raises(MarchParseError):
            parse_march("{u()}")

    def test_garbage_ops(self):
        with pytest.raises(MarchParseError):
            parse_march("{u(x0)}")
        with pytest.raises(MarchParseError):
            parse_march("{u(r0w)}")

    def test_bad_order_symbol(self):
        with pytest.raises(MarchParseError):
            parse_march("{z(r0)}")


class TestFormat:
    def test_roundtrip(self):
        text = "{c(w0); ⇑(r0,w1); ⇓(r1,w0,r0)}"
        assert format_march(parse_march(text)) == text

    def test_complexity(self):
        test = parse_march("{c(w0); ⇑(r0,w1); ⇓(r1,w0)}")
        assert test.ops_per_cell == 5
        assert test.operation_count(100) == 500

    def test_empty_test_model_rejected(self):
        with pytest.raises(ValueError):
            MarchTest(name="x", elements=())
