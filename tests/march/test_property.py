"""Property-based tests for the March notation and engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.march import format_march, parse_march, run_march
from repro.march.model import MarchElement, MarchOperation, MarchTest
from repro.memory import SinglePortRAM

operations = st.builds(
    MarchOperation,
    kind=st.sampled_from(["r", "w"]),
    data=st.integers(0, 1),
)
elements = st.builds(
    MarchElement,
    order=st.sampled_from(["up", "down", "any"]),
    ops=st.lists(operations, min_size=1, max_size=5).map(tuple),
)
march_tests = st.builds(
    MarchTest,
    name=st.just("generated"),
    elements=st.lists(elements, min_size=1, max_size=6).map(tuple),
)


def _consistent(test: MarchTest) -> bool:
    """A March test whose reads always match what was last written.

    Track the symbolic cell state through the elements: an ``r d`` is
    consistent only when the last write (in this element or any earlier
    one) wrote ``d``.  Because every element applies the same op string to
    every address, a single symbolic state suffices.
    """
    state = None
    for element in test.elements:
        for op in element.ops:
            if op.kind == "w":
                state = op.data
            else:
                if state is None or state != op.data:
                    return False
    return True


class TestNotationRoundtrip:
    @settings(max_examples=60)
    @given(march_tests)
    def test_format_parse_roundtrip(self, test):
        assert parse_march(format_march(test)).elements == test.elements

    @settings(max_examples=60)
    @given(march_tests)
    def test_ops_per_cell_consistent(self, test):
        assert test.ops_per_cell == sum(len(e.ops) for e in test.elements)


class TestEngineProperties:
    @settings(max_examples=40, deadline=None)
    @given(march_tests.filter(_consistent), st.integers(4, 24))
    def test_consistent_tests_pass_healthy_memory(self, test, n):
        """Any read-consistent March test passes a healthy memory."""
        assert run_march(test, SinglePortRAM(n)).passed

    @settings(max_examples=40, deadline=None)
    @given(march_tests, st.integers(4, 16))
    def test_operation_count_exact(self, test, n):
        ram = SinglePortRAM(n)
        result = run_march(test, ram)
        assert result.operations == test.ops_per_cell * n
        assert ram.stats.operations == result.operations

    @settings(max_examples=30, deadline=None)
    @given(march_tests.filter(_consistent), st.integers(4, 12))
    def test_wom_backgrounds_pass_healthy(self, test, n):
        assert run_march(test, SinglePortRAM(n, m=4)).passed
