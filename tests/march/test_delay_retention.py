"""Tests for delay elements and data-retention testing (March + PRT)."""

import pytest

from repro.faults import DataRetentionFault, FaultInjector, single_cell_universe
from repro.march import (
    MATS_PLUS,
    MATS_PLUS_RETENTION,
    MarchDelay,
    format_march,
    parse_march,
    run_march,
)
from repro.memory import DualPortRAM, SinglePortRAM
from repro.prt import standard_schedule


class TestMarchDelayModel:
    def test_str(self):
        assert str(MarchDelay(100)) == "D100"

    def test_validation(self):
        with pytest.raises(ValueError):
            MarchDelay(0)

    def test_parse_delay(self):
        test = parse_march("{c(w0); D64; c(r0)}")
        assert isinstance(test.elements[1], MarchDelay)
        assert test.elements[1].cycles == 64

    def test_delay_not_counted_in_ops(self):
        test = parse_march("{c(w0); D64; c(r0)}")
        assert test.ops_per_cell == 2
        assert test.delay_cycles == 64

    def test_format_roundtrip(self):
        text = "{c(w0); D64; c(r0)}"
        assert format_march(parse_march(text)) == text

    def test_delay_only_test_rejected(self):
        from repro.march.model import MarchTest

        with pytest.raises(ValueError):
            MarchTest(name="x", elements=(MarchDelay(5),))

    def test_lowercase_d_is_still_down(self):
        test = parse_march("{d(r0)}")
        assert test.elements[0].order == "down"


class TestRamIdle:
    def test_idle_advances_cycles(self):
        ram = SinglePortRAM(8)
        ram.idle(100)
        assert ram.stats.cycles == 100
        assert ram.stats.operations == 0

    def test_idle_validation(self):
        with pytest.raises(ValueError):
            SinglePortRAM(8).idle(-1)

    def test_multiport_idle(self):
        ram = DualPortRAM(8)
        ram.idle(50)
        assert ram.stats.cycles == 50
        with pytest.raises(ValueError):
            ram.idle(-2)


class TestMarchRetention:
    def make_faulty(self, retention=100):
        ram = SinglePortRAM(16)
        injector = FaultInjector([DataRetentionFault(5, retention=retention)])
        injector.install(ram)
        return ram

    def test_mats_plus_misses_drf(self):
        """Without a pause, the cell never sits idle long enough."""
        ram = self.make_faulty(retention=1000)
        assert run_march(MATS_PLUS, ram).passed

    def test_retention_variant_catches_drf(self):
        ram = self.make_faulty(retention=100)
        assert not run_march(MATS_PLUS_RETENTION, ram).passed

    def test_retention_variant_passes_healthy(self):
        assert run_march(MATS_PLUS_RETENTION, SinglePortRAM(16)).passed

    def test_delay_covers_drf_universe(self):
        universe = single_cell_universe(16, classes=("DRF",), retention=64)
        detected = 0
        for fault in universe:
            ram = SinglePortRAM(16)
            injector = FaultInjector([fault])
            injector.install(ram)
            if not run_march(MATS_PLUS_RETENTION, ram).passed:
                detected += 1
            injector.remove(ram)
        assert detected == len(universe)


class TestPrtRetentionPause:
    def test_pause_validation(self):
        from repro.prt import PiIteration, PiTestSchedule

        with pytest.raises(ValueError):
            PiTestSchedule([PiIteration(seed=(0, 1))], pause_between=-1)

    def test_pause_property(self):
        sched = standard_schedule(n=14, pause_between=256)
        assert sched.pause_between == 256

    def test_paused_schedule_passes_healthy(self):
        sched = standard_schedule(n=14, pause_between=256)
        assert sched.run(SinglePortRAM(14)).passed

    def test_unpaused_schedule_misses_long_retention_drf(self):
        ram = SinglePortRAM(14)
        FaultInjector([DataRetentionFault(5, retention=5000)]).install(ram)
        assert not standard_schedule(n=14).run(ram).detected

    def test_paused_schedule_catches_drf(self):
        """The PRT counterpart of the March Del element: pause between
        iterations, then the verify pass reads the decayed cell."""
        ram = SinglePortRAM(14)
        FaultInjector([DataRetentionFault(5, retention=500)]).install(ram)
        sched = standard_schedule(n=14, verify=True, pause_between=1000)
        assert sched.run(ram).detected

    def test_paused_drf_universe_coverage(self):
        universe = single_cell_universe(14, classes=("DRF",), retention=64)
        sched = standard_schedule(n=14, verify=True, pause_between=256)
        detected = 0
        for fault in universe:
            ram = SinglePortRAM(14)
            injector = FaultInjector([fault])
            injector.install(ram)
            if sched.run(ram).detected:
                detected += 1
            injector.remove(ram)
        assert detected == len(universe)
