"""Tests for March execution, backgrounds, and library complexities."""

import pytest

from repro.faults import FaultInjector, StuckAtFault, TransitionFault
from repro.march import (
    ALL_MARCH_TESTS,
    MARCH_C_MINUS,
    MATS,
    MATS_PLUS,
    MarchResult,
    run_march,
    word_backgrounds,
)
from repro.memory import SinglePortRAM


class TestWordBackgrounds:
    def test_bit_oriented(self):
        assert word_backgrounds(1) == [0]

    def test_m4(self):
        assert word_backgrounds(4) == [0b0000, 0b0101, 0b0011]

    def test_m8(self):
        assert word_backgrounds(8) == [0, 0b01010101, 0b00110011, 0b00001111]

    def test_count_is_log2_plus_one(self):
        for m in (1, 2, 4, 8, 16):
            assert len(word_backgrounds(m)) == m.bit_length()

    def test_distinguishes_every_bit_pair(self):
        """Any two bits differ in some background or its complement."""
        m = 8
        backgrounds = word_backgrounds(m)
        for i in range(m):
            for j in range(i + 1, m):
                assert any(
                    ((b >> i) & 1) != ((b >> j) & 1) for b in backgrounds
                ), f"bits {i},{j} never distinguished"

    def test_validation(self):
        with pytest.raises(ValueError):
            word_backgrounds(0)


class TestRunMarch:
    def test_passes_on_healthy_bom(self):
        for test in ALL_MARCH_TESTS:
            assert run_march(test, SinglePortRAM(32)).passed

    def test_passes_on_healthy_wom(self):
        for test in ALL_MARCH_TESTS:
            assert run_march(test, SinglePortRAM(16, m=4)).passed

    def test_operation_count_bom(self):
        ram = SinglePortRAM(32)
        result = run_march(MATS_PLUS, ram)
        assert result.operations == 5 * 32
        assert ram.stats.operations == 5 * 32

    def test_operation_count_wom_backgrounds(self):
        ram = SinglePortRAM(16, m=4)
        result = run_march(MATS, ram)
        # 3 backgrounds x 4n
        assert result.operations == 3 * 4 * 16

    def test_detects_saf(self):
        ram = SinglePortRAM(32)
        FaultInjector([StuckAtFault(7, 0)]).install(ram)
        result = run_march(MATS, ram)
        assert not result.passed
        assert any(failure[2] == 7 for failure in result.failures)

    def test_detects_tf_with_matspp_not_mats(self):
        # A TF-down needs w1...w0,r0; MATS's {c(w0);c(r0,w1);c(r1)} ends
        # reading 1s and never re-reads a 0 after a 1->0 write.
        from repro.march import MATS_PLUS_PLUS

        ram = SinglePortRAM(16)
        FaultInjector([TransitionFault(3, rising=False)]).install(ram)
        assert not run_march(MATS_PLUS_PLUS, ram).passed

    def test_stop_on_first_failure(self):
        ram = SinglePortRAM(32)
        FaultInjector([StuckAtFault(0, 1), StuckAtFault(1, 1)]).install(ram)
        result = run_march(MARCH_C_MINUS, ram, stop_on_first_failure=True)
        assert not result.passed
        assert len(result.failures) == 1

    def test_failure_record_shape(self):
        ram = SinglePortRAM(8)
        FaultInjector([StuckAtFault(2, 1)]).install(ram)
        result = run_march(MATS, ram)
        background, element_index, addr, expected, actual = result.failures[0]
        assert background == 0
        assert addr == 2
        assert expected == 0
        assert actual == 1
        assert 0 <= element_index < len(MATS.elements)

    def test_custom_backgrounds(self):
        ram = SinglePortRAM(8, m=4)
        result = run_march(MATS, ram, backgrounds=[0b1010])
        assert result.passed
        assert result.operations == 4 * 8

    def test_background_out_of_range(self):
        ram = SinglePortRAM(8, m=2)
        with pytest.raises(ValueError):
            run_march(MATS, ram, backgrounds=[7])

    def test_result_repr(self):
        assert "PASS" in repr(MarchResult())
        failing = MarchResult(passed=False, failures=[(0, 0, 0, 0, 1)])
        assert "FAIL" in repr(failing)


class TestLibraryComplexities:
    EXPECTED = {
        "MATS": 4,
        "MATS+": 5,
        "MATS++": 6,
        "March X": 6,
        "March Y": 8,
        "March C-": 10,
        "March A": 15,
        "March B": 17,
    }

    def test_ops_per_cell(self):
        for test in ALL_MARCH_TESTS:
            assert test.ops_per_cell == self.EXPECTED[test.name], test.name

    def test_names_unique(self):
        names = [t.name for t in ALL_MARCH_TESTS]
        assert len(names) == len(set(names))

    def test_all_start_with_initialization(self):
        for test in ALL_MARCH_TESTS:
            first = test.elements[0]
            assert first.ops[0].kind == "w"
