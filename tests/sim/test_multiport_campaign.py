"""Compiled port-parallel π-tests == interpreted, cycle for cycle.

The contract of the cycle-grouped IR: lowering the dual-/quad-port
schemes (``repro.prt.dual_port``) to grouped records and replaying them
through ``MultiPortRAM.apply_stream`` must produce *identical* results
to the interpreted engines -- same ``PiIterationResult`` /
``QuadPortResult`` objects, same memory images, same ``RamStats``
(including the paper's 2n and n cycle claims, which the old
one-op-per-record executor inflated to ~3n) -- on healthy and faulted
memories, and the campaign engines built on top -- the per-fault scalar
replay *and* the lane-parallel batched engine -- must reproduce the
interpreted ``CoverageReport`` byte for byte over the full
``standard_universe(256)``.
"""

import pickle

import pytest

from repro.analysis import (
    dual_port_runner,
    multi_schedule_runner,
    quad_port_runner,
    run_coverage,
)
from repro.faults import FaultInjector, standard_universe
from repro.gf2 import poly_from_string, primitive_polynomial
from repro.gf2m import GF2m
from repro.memory import (
    DualPortRAM,
    MultiPortRAM,
    PackedMemoryArray,
    PortConflictError,
    QuadPortRAM,
    SinglePortRAM,
    apply_stream_generic,
)
from repro.memory.decoder import AddressDecoder
from repro.prt import (
    DualPortPiIteration,
    QuadPortPiIteration,
    standard_multi_schedule,
)
from repro.sim import (
    OpStream,
    build_lane_model,
    cached_dual_port_stream,
    cached_multi_schedule_stream,
    cached_quad_port_stream,
    compile_dual_port_pi,
    compile_multi_schedule,
    compile_quad_port_pi,
    replay_dual_port_iteration,
    replay_multi_schedule,
    replay_quad_port_iteration,
    run_campaign,
    run_campaign_batched,
)
from tests.sim.conftest import assert_reports_identical, report_key

F16 = GF2m(poly_from_string("1+z+z^4"))
F256 = GF2m(primitive_polynomial(8))


def _stats_tuple(ram):
    return (ram.stats.reads, ram.stats.writes, ram.stats.cycles)


def _run_both(iteration, stream, replay, ram_a, ram_b, fault=None):
    """(compiled, interpreted) results; PortConflictError -> "conflict"."""
    injectors = (FaultInjector([fault]), FaultInjector([fault])) \
        if fault is not None else (None, None)
    results = []
    for ram, injector, run in ((ram_a, injectors[0],
                                lambda r: replay(stream, r)),
                               (ram_b, injectors[1], iteration.run)):
        if injector is not None:
            injector.install(ram)
        try:
            result = run(ram)
        except PortConflictError:
            result = "conflict"
        if injector is not None:
            injector.remove(ram)
        results.append(result)
    return results


class TestDualPortEquivalence:
    @pytest.mark.parametrize("n", [9, 14, 50])
    def test_healthy(self, n):
        iteration = DualPortPiIteration(seed=(0, 1))
        stream = compile_dual_port_pi(iteration, n)
        ram_c, ram_i = DualPortRAM(n), DualPortRAM(n)
        compiled = replay_dual_port_iteration(stream, ram_c)
        interpreted = iteration.run(ram_i)
        assert compiled == interpreted
        assert compiled.passed
        assert _stats_tuple(ram_c) == _stats_tuple(ram_i)
        assert ram_c.dump() == ram_i.dump()

    def test_cycle_count_is_2n_claim_c4(self):
        """Compiled replay must keep the paper's 2n cycles -- the old
        one-op-per-record path charged ~3n (the cycle-accounting drift
        the grouped IR exists to fix)."""
        n = 50
        iteration = DualPortPiIteration(seed=(0, 1))
        stream = compile_dual_port_pi(iteration, n)
        assert stream.replay_cycles == 2 * n + 2 == iteration.cycle_count(n)
        ram = DualPortRAM(n)
        replay_dual_port_iteration(stream, ram)
        assert ram.stats.cycles == 2 * n + 2

    def test_healthy_wom(self):
        iteration = DualPortPiIteration(field=F16, generator=(1, 2, 2),
                                        seed=(0, 1))
        stream = compile_dual_port_pi(iteration, 16, m=4)
        ram_c, ram_i = DualPortRAM(16, m=4), DualPortRAM(16, m=4)
        compiled = replay_dual_port_iteration(stream, ram_c)
        interpreted = iteration.run(ram_i)
        assert compiled == interpreted
        assert _stats_tuple(ram_c) == _stats_tuple(ram_i)

    def test_null_tap_still_reads(self):
        # g = 1 + x^2 has a zero middle coefficient: the port-1 read
        # still issues (fixed cycle pattern) but contributes nothing.
        iteration = DualPortPiIteration(generator=(1, 0, 1), seed=(0, 1))
        n = 10
        stream = compile_dual_port_pi(iteration, n)
        assert stream.counts_by_kind()["ra"] == 2 * n
        ram_c, ram_i = DualPortRAM(n), DualPortRAM(n)
        compiled = replay_dual_port_iteration(stream, ram_c)
        interpreted = iteration.run(ram_i)
        assert compiled == interpreted
        assert _stats_tuple(ram_c) == _stats_tuple(ram_i)
        assert ram_c.dump() == ram_i.dump()

    def test_faulted_equivalence_and_stats(self):
        n = 14
        iteration = DualPortPiIteration(seed=(0, 1))
        stream = compile_dual_port_pi(iteration, n)
        for fault in standard_universe(n):
            compiled, interpreted = _run_both(
                iteration, stream, replay_dual_port_iteration,
                DualPortRAM(n), DualPortRAM(n), fault)
            assert compiled == interpreted, fault.name

    def test_trace_matches_interpreted(self):
        n = 9
        iteration = DualPortPiIteration(seed=(0, 1))
        stream = compile_dual_port_pi(iteration, n)
        ram_c, ram_i = DualPortRAM(n, trace=True), DualPortRAM(n, trace=True)
        replay_dual_port_iteration(stream, ram_c)
        iteration.run(ram_i)
        assert list(ram_c.trace) == list(ram_i.trace)

    def test_compile_validation(self):
        iteration = DualPortPiIteration(seed=(0, 1))
        with pytest.raises(ValueError, match="more than 2 cells"):
            compile_dual_port_pi(iteration, 2)
        wom = DualPortPiIteration(field=F16, generator=(1, 2, 2), seed=(0, 1))
        with pytest.raises(ValueError, match="does not match field"):
            compile_dual_port_pi(wom, 16, m=1)


class TestQuadPortEquivalence:
    @pytest.mark.parametrize("n", [12, 40])
    def test_healthy(self, n):
        iteration = QuadPortPiIteration(seed=(0, 1))
        stream = compile_quad_port_pi(iteration, n)
        ram_c, ram_i = QuadPortRAM(n), QuadPortRAM(n)
        compiled = replay_quad_port_iteration(stream, ram_c)
        interpreted = iteration.run(ram_i)
        assert compiled == interpreted
        assert compiled.passed
        assert _stats_tuple(ram_c) == _stats_tuple(ram_i)
        assert ram_c.dump() == ram_i.dump()

    def test_cycle_count_is_n(self):
        """Two concurrent automata: a full pass in n + 2 cycles."""
        n = 40
        iteration = QuadPortPiIteration(seed=(0, 1))
        stream = compile_quad_port_pi(iteration, n)
        assert stream.replay_cycles == n + 2 == iteration.cycle_count(n)
        ram = QuadPortRAM(n)
        replay_quad_port_iteration(stream, ram)
        assert ram.stats.cycles == n + 2

    def test_faulted_equivalence(self):
        n = 12
        iteration = QuadPortPiIteration(seed=(0, 1))
        stream = compile_quad_port_pi(iteration, n)
        for fault in standard_universe(n):
            compiled, interpreted = _run_both(
                iteration, stream, replay_quad_port_iteration,
                QuadPortRAM(n), QuadPortRAM(n), fault)
            assert compiled == interpreted, fault.name

    def test_per_automaton_accumulators_are_independent(self):
        # A fault in one half must corrupt only that automaton's
        # accumulator chain: the grouped records interleave both
        # automata's reads, so a shared accumulator would cross-talk.
        from repro.faults import StuckAtFault

        n = 12
        iteration = QuadPortPiIteration(seed=(1, 1))
        stream = compile_quad_port_pi(iteration, n)
        for cell, faulty_half in ((2, 0), (8, 1)):
            probe = QuadPortRAM(n)
            replay_quad_port_iteration(stream, probe)
            target = probe.dump()[cell] ^ 1
            ram = QuadPortRAM(n)
            FaultInjector([StuckAtFault(cell, target)]).install(ram)
            result = replay_quad_port_iteration(stream, ram)
            ram_i = QuadPortRAM(n)
            FaultInjector([StuckAtFault(cell, target)]).install(ram_i)
            assert result == iteration.run(ram_i)
            assert not result.halves[faulty_half].passed
            assert result.halves[1 - faulty_half].passed

    def test_compile_validation(self):
        iteration = QuadPortPiIteration(seed=(0, 1))
        with pytest.raises(ValueError, match="even n"):
            compile_quad_port_pi(iteration, 13)
        with pytest.raises(ValueError, match="even n"):
            compile_quad_port_pi(iteration, 4)


class TestGroupedConflictSemantics:
    """The cycle-group conflict contract (issue satellite): write/write
    raises with the offending cycle, read+write same cell returns the
    old value, and grouped streams survive pickling unchanged."""

    def test_same_address_writes_rejected_at_compile_time(self):
        with pytest.raises(ValueError, match="two simultaneous writes"):
            OpStream(source="dual-port", name="bad", n=4, m=1,
                     ops=(("grp", 0, 0, 2, None, 0),
                          ("w", 0, 1, 1, None, 0),
                          ("w", 1, 1, 0, None, 0)),
                     info=((0, "grp"), (0, "w"), (0, "w")), ports=2)

    def test_replay_conflict_names_the_cycle(self):
        # A hand-built record list bypasses OpStream validation; the
        # replay-time check must still fire, naming the cycle index.
        ram = DualPortRAM(8)
        ram.apply_stream([("grp", 0, 0, 2, None, 0),
                          ("w", 0, 3, 1, None, 0),
                          ("w", 1, 4, 1, None, 0)])  # fine: distinct cells
        with pytest.raises(PortConflictError, match="cycle 1"):
            ram.apply_stream([("grp", 0, 0, 2, None, 0),
                              ("w", 0, 5, 1, None, 0),
                              ("w", 1, 5, 0, None, 0)])

    def test_decoder_alias_conflict_surfaces_from_grouped_replay(self):
        # AF-C: two logical addresses share one physical cell, so a
        # compile-time-clean double write becomes a physical conflict.
        decoder = AddressDecoder(8, overrides={1: (1, 2)})
        ram = DualPortRAM(8, decoder=decoder)
        with pytest.raises(PortConflictError, match="cycle 0"):
            ram.apply_stream([("grp", 0, 0, 2, None, 0),
                              ("w", 0, 1, 1, None, 0),
                              ("w", 1, 2, 0, None, 0)])

    def test_campaign_counts_decoder_conflict_as_detection(self):
        from repro.faults import decoder_universe

        n = 14
        iteration = DualPortPiIteration(seed=(0, 1))
        stream = compile_dual_port_pi(iteration, n)
        universe = decoder_universe(n)
        campaign = run_campaign(stream, universe)
        report = run_coverage(dual_port_runner(iteration), universe, n,
                              engine="interpreted")
        detected = {fault.name for fault, hit in campaign.outcomes if hit}
        missed = set(report.missed_faults)
        assert detected.isdisjoint(missed)
        assert len(detected) + len(missed) == len(universe)

    def test_read_racing_write_returns_old_value(self):
        ram = DualPortRAM(8)
        ram.write(3, 1, port=0)
        mismatches = []
        # One cycle: port 0 reads cell 3 (expects the OLD value 1),
        # port 1 writes 0 over it.
        ram.apply_stream([("grp", 0, 0, 2, None, 0),
                          ("r", 0, 3, None, 1, 0),
                          ("w", 1, 3, 0, None, 0)],
                         mismatches=mismatches)
        assert mismatches == []
        assert ram.read(3) == 0  # the write did commit

    def test_group_structure_validation(self):
        def stream(ops, info, ports=2):
            return OpStream(source="dual-port", name="bad", n=4, m=1,
                            ops=ops, info=info, ports=ports)

        with pytest.raises(ValueError, match="grouped into one cycle"):
            stream((("grp", 0, 0, 3, None, 0),
                    ("r", 0, 0, None, 0, 0),
                    ("r", 1, 1, None, 0, 0),
                    ("r", 2, 2, None, 0, 0)),
                   ((0, "g"), (0, "r"), (0, "r"), (0, "r")))
        with pytest.raises(ValueError, match="only .* records follow"):
            stream((("grp", 0, 0, 2, None, 0),
                    ("r", 0, 0, None, 0, 0)),
                   ((0, "g"), (0, "r")))
        with pytest.raises(ValueError, match="cannot appear inside"):
            stream((("grp", 0, 0, 2, None, 0),
                    ("i", 0, 0, 0, None, 4),
                    ("r", 1, 1, None, 0, 0)),
                   ((0, "g"), (0, "i"), (0, "r")))
        with pytest.raises(ValueError, match="used twice"):
            stream((("grp", 0, 0, 2, None, 0),
                    ("r", 0, 0, None, 0, 0),
                    ("r", 0, 1, None, 0, 0)),
                   ((0, "g"), (0, "r"), (0, "r")))
        with pytest.raises(ValueError, match="port 5 out of range"):
            stream((("grp", 0, 0, 2, None, 0),
                    ("r", 0, 0, None, 0, 0),
                    ("r", 5, 1, None, 0, 0)),
                   ((0, "g"), (0, "r"), (0, "r")))
        with pytest.raises(ValueError, match="positive int"):
            stream((("grp", 0, 0, 0, None, 0),), ((0, "g"),))

    def test_single_port_ram_rejects_grouped_streams(self):
        stream = compile_dual_port_pi(DualPortPiIteration(seed=(0, 1)), 9)
        with pytest.raises(ValueError, match="multi-port front-end"):
            SinglePortRAM(9).apply_stream(stream.ops, tables=stream.tables)

    def test_grouped_stream_pickle_roundtrip(self):
        stream = cached_dual_port_stream(DualPortPiIteration(seed=(0, 1)), 14)
        clone = pickle.loads(pickle.dumps(stream))
        assert clone == stream
        assert clone.ops == stream.ops and clone.ports == stream.ports
        ram_a, ram_b = DualPortRAM(14), DualPortRAM(14)
        assert replay_dual_port_iteration(stream, ram_a) == \
            replay_dual_port_iteration(clone, ram_b)
        assert _stats_tuple(ram_a) == _stats_tuple(ram_b)

    def test_grouped_stream_broadcast_roundtrip(self):
        # The WorkerPool broadcast is the pickle path campaigns actually
        # use: a worker must replay the exact same grouped records.
        from repro.sim import PoolUnavailable, WorkerPool

        stream = cached_quad_port_stream(QuadPortPiIteration(seed=(0, 1)), 12)
        universe = standard_universe(12)
        serial = run_campaign(stream, universe)
        try:
            with WorkerPool(2) as pool:
                sharded = run_campaign(stream, universe, workers=2,
                                       pool=pool)
        except PoolUnavailable:
            pytest.skip("platform cannot spawn worker processes")
        if sharded.workers_used == 0:
            pytest.skip("pool degraded to serial on this platform")
        assert [d for _, d in sharded.outcomes] == \
            [d for _, d in serial.outcomes]


class TestGenericGroupedExecutor:
    """The portable fallback (`apply_stream_generic`) must match the
    native multi-port executor op for op, cycle for cycle."""

    def test_matches_native_on_cycle_capable_front_end(self):
        iteration = DualPortPiIteration(seed=(0, 1))
        stream = compile_dual_port_pi(iteration, 14)
        ram_n, ram_g = DualPortRAM(14), DualPortRAM(14)
        mm_n, mm_g, cap_n, cap_g = [], [], [], []
        a = ram_n.apply_stream(stream.ops, tables=stream.tables,
                               mismatches=mm_n, captured=cap_n)
        b = apply_stream_generic(ram_g, stream.ops, tables=stream.tables,
                                 mismatches=mm_g, captured=cap_g)
        assert (a, mm_n, cap_n) == (b, mm_g, cap_g)
        assert _stats_tuple(ram_n) == _stats_tuple(ram_g)
        assert ram_n.dump() == ram_g.dump()

    def test_quad_stream_through_generic(self):
        iteration = QuadPortPiIteration(seed=(0, 1))
        stream = compile_quad_port_pi(iteration, 12)
        ram_n, ram_g = QuadPortRAM(12), QuadPortRAM(12)
        cap_n, cap_g = [], []
        ram_n.apply_stream(stream.ops, tables=stream.tables, captured=cap_n)
        apply_stream_generic(ram_g, stream.ops, tables=stream.tables,
                             captured=cap_g)
        assert cap_n == cap_g
        assert _stats_tuple(ram_n) == _stats_tuple(ram_g)

    def test_cycle_less_front_end_preserves_data_semantics(self):
        # No cycle() method: grouped execution degrades to
        # reads-then-writes through the public per-op API -- values and
        # verdicts identical, only the cycle count inflates.
        class BareRAM:
            def __init__(self, n):
                self._inner = SinglePortRAM(n)
                self.n, self.m = n, 1

            def read(self, addr):
                return self._inner.read(addr)

            def write(self, addr, value):
                self._inner.write(addr, value)

            def idle(self, cycles):
                self._inner.idle(cycles)

        iteration = DualPortPiIteration(seed=(0, 1))
        stream = compile_dual_port_pi(iteration, 14)
        bare = BareRAM(14)
        native = DualPortRAM(14)
        cap_b, cap_n = [], []
        apply_stream_generic(bare, stream.ops, tables=stream.tables,
                             captured=cap_b)
        native.apply_stream(stream.ops, tables=stream.tables, captured=cap_n)
        assert cap_b == cap_n
        assert bare._inner.dump() == native.dump()


class TestGroupedRetentionClock:
    """The DRF ``clock(cycle)`` pre-increment contract under grouped
    streams: one cycle group advances the clock by exactly one tick,
    ``"i"`` idles advance retention by their full count, and decay fires
    at ``elapsed > retention`` -- identically on the native multi-port
    executor, the generic executor and both packed backends.  Off-by-one
    cycle accounting in any executor shifts the decay boundary and fails
    the sweep."""

    RETENTION = 8

    @staticmethod
    def _stream(pause):
        # clock 0: seed cell 2; clock 1: one grouped cycle not touching
        # cell 2; clock 2: pause; clock 2+pause: grouped read-back.
        # Decay iff (2 + pause) - 0 > retention, i.e. pause >= 7.
        return (
            ("w", 0, 2, 1, None, 0),
            ("grp", 0, 0, 2, None, 0),
            ("r", 0, 3, None, 0, 0),
            ("r", 1, 4, None, 0, 0),
            ("i", 0, 0, 0, None, pause),
            ("grp", 0, 0, 2, None, 0),
            ("r", 0, 2, None, 1, 0),
            ("r", 1, 3, None, 0, 0),
        )

    def _scalar(self, ops, apply):
        from repro.faults import DataRetentionFault

        ram = MultiPortRAM(8, ports=2)
        injector = FaultInjector(
            [DataRetentionFault(2, retention=self.RETENTION)])
        injector.install(ram)
        mismatches = []
        apply(ram, ops, mismatches)
        injector.remove(ram)
        return bool(mismatches), ram.dump()

    def test_decay_boundary_identical_across_executors(self):
        from repro.faults import DataRetentionFault

        verdicts = []
        for pause in range(4, 10):
            ops = self._stream(pause)
            detected, dump = self._scalar(
                ops,
                lambda ram, ops, mm: ram.apply_stream(ops, mismatches=mm))
            # Pin the scalar contract itself, not just cross-engine
            # agreement: the read-back executes at clock 2 + pause.
            assert detected == (2 + pause > self.RETENTION), pause
            verdicts.append(detected)
            generic = self._scalar(
                ops,
                lambda ram, ops, mm: apply_stream_generic(ram, ops,
                                                          mismatches=mm))
            assert generic == (detected, dump), pause
            fault = DataRetentionFault(2, retention=self.RETENTION)
            for backend in ("int", "numpy"):
                model = build_lane_model("retention",
                                         [fault.vector_semantics()])
                packed = PackedMemoryArray(8, lanes=1, backend=backend)
                model.install(packed)
                lanes, _ = packed.apply_stream(
                    ops, model=model, stop_when_all_detected=False)
                assert bool(lanes) == detected, (backend, pause)
                assert packed.dump_lane(0) == dump, (backend, pause)
        assert verdicts == [False, False, False, True, True, True]


class TestMultiPortCampaign256:
    """The acceptance sweep: CoverageReport byte-identical between the
    interpreted, compiled and *batched* dual-/quad-port campaigns over
    the full ``standard_universe(256)``.  The batched engine resolves
    grouped multi-port streams in lane passes on the packed backend --
    no scalar delegation -- so its report is pinned against the proven
    per-fault path too."""

    def test_dual_port_byte_identical(self, universe_256):
        iteration = DualPortPiIteration(seed=(0, 1))
        compiled = run_coverage(dual_port_runner(iteration), universe_256,
                                256, engine="compiled")
        interpreted = run_coverage(dual_port_runner(iteration), universe_256,
                                   256, engine="interpreted")
        batched = run_coverage(dual_port_runner(iteration), universe_256,
                               256, engine="batched")
        assert_reports_identical(compiled, interpreted, batched)

    def test_quad_port_byte_identical(self, universe_256):
        iteration = QuadPortPiIteration(seed=(0, 1))
        compiled = run_coverage(quad_port_runner(iteration), universe_256,
                                256, engine="compiled")
        interpreted = run_coverage(quad_port_runner(iteration), universe_256,
                                   256, engine="interpreted")
        batched = run_coverage(quad_port_runner(iteration), universe_256,
                               256, engine="batched")
        assert_reports_identical(compiled, interpreted, batched)

    def test_batched_engine_lane_resolves_identically(self, universe_256):
        # The tentpole acceptance: the whole standard universe rides
        # lane passes through the grouped packed executor -- zero
        # faults delegated to the per-fault scalar path.
        iteration = DualPortPiIteration(seed=(0, 1))
        stream = cached_dual_port_stream(iteration, 256)
        batched = run_campaign_batched(stream, universe_256)
        assert batched.faults_batched == len(universe_256)
        compiled = run_campaign(stream, universe_256)
        assert [d for _, d in batched.outcomes] == \
            [d for _, d in compiled.outcomes]

    def test_word_oriented_dual_port_byte_identical(self, universe_m8):
        # m=8 acceptance: the word-lane packed backend executes the
        # grouped dual-port stream over GF(2^8) bit planes.
        iteration = DualPortPiIteration(field=F256, generator=(1, 2, 2),
                                        seed=(0, 1))
        runner = dual_port_runner(iteration)
        compiled = run_coverage(runner, universe_m8, 32, m=8,
                                engine="compiled")
        batched = run_coverage(runner, universe_m8, 32, m=8,
                               engine="batched")
        assert_reports_identical(compiled, batched)

    def test_sharded_workers_byte_identical(self, universe_256):
        iteration = QuadPortPiIteration(seed=(0, 1))
        runner = quad_port_runner(iteration)
        serial = run_coverage(runner, universe_256, 256)
        sharded = run_coverage(runner, universe_256, 256, workers=2)
        assert_reports_identical(serial, sharded)

    def test_batched_sharded_workers_byte_identical(self, universe_256):
        iteration = DualPortPiIteration(seed=(0, 1))
        runner = dual_port_runner(iteration)
        serial = run_coverage(runner, universe_256, 256, engine="batched")
        sharded = run_coverage(runner, universe_256, 256, engine="batched",
                               workers=2)
        assert_reports_identical(serial, sharded)


class TestMultiScheduleEquivalence:
    """Verifying multi-port schedules (``repro.prt.multi_schedule``):
    the interpreted chain of dual-/quad-port iterations and its compiled
    grouped-stream lowering must agree result for result, stat for stat,
    and the coverage harness must reach the schedules on every engine."""

    @pytest.mark.parametrize("ports,n", [(2, 14), (4, 12)])
    def test_healthy_interpreted_vs_compiled(self, ports, n):
        schedule = standard_multi_schedule(ports=ports)
        ram_i = MultiPortRAM(n, ports=ports)
        ram_c = MultiPortRAM(n, ports=ports)
        interpreted = schedule.run_interpreted(ram_i)
        stream = cached_multi_schedule_stream(schedule, n)
        compiled = replay_multi_schedule(stream, ram_c)
        assert compiled == interpreted
        assert compiled.passed
        assert _stats_tuple(ram_c) == _stats_tuple(ram_i)
        assert ram_c.dump() == ram_i.dump()
        assert stream.operation_count == schedule.operation_count(n)
        assert stream.replay_cycles == ram_c.stats.cycles

    def test_run_dispatches_to_compiled_path(self):
        n = 14
        schedule = standard_multi_schedule(ports=2)
        via_run = schedule.run(MultiPortRAM(n, ports=2))
        interpreted = schedule.run_interpreted(MultiPortRAM(n, ports=2))
        assert via_run == interpreted

    @pytest.mark.parametrize("ports", [2, 4])
    def test_faulted_equivalence(self, ports):
        n = 12
        schedule = standard_multi_schedule(ports=ports)
        stream = cached_multi_schedule_stream(schedule, n)
        for fault in standard_universe(n):
            results = []
            for run in (lambda r: replay_multi_schedule(stream, r),
                        schedule.run_interpreted):
                ram = MultiPortRAM(n, ports=ports)
                injector = FaultInjector([fault])
                injector.install(ram)
                try:
                    result = run(ram)
                except PortConflictError:
                    result = "conflict"
                injector.remove(ram)
                results.append(result)
            assert results[0] == results[1], fault.name

    @pytest.mark.parametrize("ports", [2, 4])
    def test_coverage_engines_byte_identical(self, ports):
        n = 24
        runner = multi_schedule_runner(standard_multi_schedule(ports=ports))
        universe = standard_universe(n)
        interpreted = run_coverage(runner, universe, n, engine="interpreted")
        compiled = run_coverage(runner, universe, n, engine="compiled")
        batched = run_coverage(runner, universe, n, engine="batched")
        assert_reports_identical(compiled, interpreted, batched)

    def test_word_schedule_byte_identical(self):
        n, m = 16, 8
        runner = multi_schedule_runner(
            standard_multi_schedule(ports=2, field=F256))
        universe = standard_universe(n, m=m)
        compiled = run_coverage(runner, universe, n, m=m, engine="compiled")
        batched = run_coverage(runner, universe, n, m=m, engine="batched")
        assert_reports_identical(compiled, batched)

    def test_readback_mismatch_lands_on_last_iteration(self):
        # Flip one read-back expectation in an otherwise healthy stream:
        # the mismatch must be charged to the *last* iteration's
        # verify_mismatches, matching the interpreted attribution.
        n = 12
        schedule = standard_multi_schedule(ports=2)
        stream = compile_multi_schedule(schedule, n)
        readback = next(s for s in stream.segments if s.label == "readback")
        ops = list(stream.ops)
        index = next(i for i in range(readback.start, readback.stop)
                     if ops[i][0] == "r")
        kind, port, addr, value, expected, idle = ops[index]
        ops[index] = (kind, port, addr, value, expected ^ 1, idle)
        poisoned = OpStream(source=stream.source, name="poisoned",
                            n=n, m=1, ops=tuple(ops), info=stream.info,
                            tables=stream.tables, segments=stream.segments,
                            ports=stream.ports)
        result = replay_multi_schedule(poisoned, MultiPortRAM(n, ports=2))
        assert not result.passed
        assert result.iteration_results[-1].verify_mismatches == 1
        assert all(r.passed for r in result.iteration_results[:-1])

    def test_standard_multi_schedule_factory(self):
        schedule = standard_multi_schedule(ports=2)
        assert len(schedule) == 3
        assert schedule.ports == 2
        assert schedule.verify
        assert schedule.name == "multi-2p-3"
        quad = standard_multi_schedule(ports=4, verify=False,
                                       pause_between=3)
        assert quad.ports == 4
        assert not quad.verify
        assert quad.pause_between == 3
        with pytest.raises(ValueError):
            standard_multi_schedule(ports=3)


class TestCampaignFrontEndGuards:
    def test_default_factory_builds_matching_multiport_ram(self):
        stream = compile_dual_port_pi(DualPortPiIteration(seed=(0, 1)), 9)
        result = run_campaign(stream, standard_universe(9))
        assert result.faults_total == len(standard_universe(9))

    def test_too_few_ports_rejected(self):
        stream = compile_quad_port_pi(QuadPortPiIteration(seed=(0, 1)), 12)
        with pytest.raises(ValueError, match="needs 4 ports"):
            run_campaign(stream, standard_universe(12),
                         ram_factory=lambda: DualPortRAM(12),
                         reference_check=False)

    def test_run_coverage_default_front_end_per_engine(self):
        # No ram_factory on any engine: the runner's `ports` attribute
        # picks a perfect MultiPortRAM for the interpreted loop, the
        # stream's `ports` for the compiled campaign.
        iteration = DualPortPiIteration(seed=(0, 1))
        universe = standard_universe(14)
        compiled = run_coverage(dual_port_runner(iteration), universe, 14)
        interpreted = run_coverage(dual_port_runner(iteration), universe, 14,
                                   engine="interpreted")
        assert report_key(compiled) == report_key(interpreted)

    def test_reference_pass_uses_multiport_ram(self):
        stream = compile_dual_port_pi(DualPortPiIteration(seed=(0, 1)), 9)
        assert not stream.reference_verified
        run_campaign(stream, [])
        assert stream.reference_verified
        assert stream.reference_operations == stream.operation_count

    def test_multiport_ram_factory_with_single_port_stream(self):
        # The other direction: a flat stream on a multi-port front-end
        # keeps the sequential one-op-per-cycle discipline.
        from repro.march.library import MARCH_C_MINUS
        from repro.sim import compile_march

        stream = compile_march(MARCH_C_MINUS, 14)
        result = run_campaign(stream, standard_universe(14),
                              ram_factory=lambda: MultiPortRAM(14, ports=2))
        baseline = run_campaign(stream, standard_universe(14))
        assert [d for _, d in result.outcomes] == \
            [d for _, d in baseline.outcomes]
