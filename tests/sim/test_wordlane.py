"""Word-lane packed backend + CFst lanes == scalar engines, byte for byte.

PR contract: the plane-packed executor must reproduce the scalar
engines' verdicts on *word-oriented* geometries (m bit planes per lane,
GF(2^m) recurrence tables lowered to shift/XOR plans) and for the CFst
state-coupling class (the last coupling class that used to take the
per-fault fallback).  The headline checks are full ``standard_universe``
sweeps at m in {4, 8} pinned byte-identical (pickled
``CoverageReport``) against the compiled scalar engine, with the
interpreted engine as ground truth at small n.
"""

import pytest

from repro.analysis import march_runner, run_coverage, schedule_runner
from repro.faults import (
    BitLocation,
    FaultInjector,
    StateCouplingFault,
    bridging_universe,
    coupling_universe,
    intra_word_universe,
    linked_universe,
    npsf_universe,
    single_cell_universe,
    standard_universe,
)
from repro.gf2 import primitive_polynomial
from repro.gf2m import GF2m
from repro.march.library import MARCH_C_MINUS, MATS, MATS_PLUS_RETENTION
from repro.memory import PackedMemoryArray, SinglePortRAM
from repro.prt import standard_schedule
from repro.sim import (
    build_lane_model,
    compile_march,
    compile_schedule,
    partition_universe,
    run_campaign,
    run_campaign_batched,
)
from tests.sim.conftest import assert_reports_identical, report_key


def _word_schedule(n, m):
    """The standard 3-iteration schedule over GF(2^m)."""
    return standard_schedule(field=GF2m(primitive_polynomial(m)), n=n)


class TestWordLanePackedArray:
    def test_plane_layout(self):
        packed = PackedMemoryArray(4, lanes=3, m=4)
        assert (packed.n, packed.lanes, packed.m) == (4, 3, 4)
        assert packed.ones == 0b111
        assert packed.full == (1 << 12) - 1
        packed.write_lanes(2, packed.broadcast(0b1001))
        assert [packed.lane_value(2, lane) for lane in range(3)] == [9, 9, 9]
        assert packed.dump_lane(1) == [0, 0, 9, 0]
        assert "m=4" in repr(packed)

    def test_broadcast_validation(self):
        packed = PackedMemoryArray(2, lanes=2, m=2)
        assert packed.broadcast(0) == 0
        assert packed.broadcast(0b11) == packed.full
        with pytest.raises(ValueError, match="does not fit"):
            packed.broadcast(4)
        with pytest.raises(ValueError):
            PackedMemoryArray(2, lanes=2, m=0)

    def test_lane_mask_folds_planes(self):
        packed = PackedMemoryArray(2, lanes=4, m=3)
        # lane 0 differs in plane 2 only, lane 3 in plane 0 only.
        column = (1 << (2 * 4)) | (1 << 3)
        assert packed.lane_mask(column) == 0b1001

    def test_word_stream_healthy_replay(self):
        stream = compile_march(MARCH_C_MINUS, 8, m=4)
        packed = PackedMemoryArray(8, lanes=16, m=4)
        detected, executed = packed.apply_stream(stream.ops,
                                                 tables=stream.tables)
        assert detected == 0
        assert executed == stream.operation_count

    def test_word_schedule_healthy_replay(self):
        # π-test schedules exercise the GF(2^m) table lowering:
        # non-trivial multipliers must lower to per-plane shift/XOR
        # plans that reproduce the field arithmetic exactly.
        stream = compile_schedule(_word_schedule(15, 4), 15, m=4)
        packed = PackedMemoryArray(15, lanes=8, m=4)
        detected, executed = packed.apply_stream(stream.ops,
                                                 tables=stream.tables)
        assert detected == 0
        assert executed == stream.operation_count

    def test_lowered_tables_match_field_arithmetic(self):
        # The shift/XOR plan of every table of a mixed-multiplier stream
        # must agree with the table lookup for every operand value.
        stream = compile_schedule(_word_schedule(15, 4), 15, m=4)
        assert stream.tables, "schedule streams carry multiplier tables"
        packed = PackedMemoryArray(15, lanes=3, m=4)
        for table in stream.tables:
            plan = packed._lower_table(table)
            for operand in range(1 << 4):
                column = packed.broadcast(operand)
                result = 0
                for src_shift, dst_shifts in plan:
                    plane = (column >> src_shift) & packed.ones
                    if plane:
                        for dst_shift in dst_shifts:
                            result ^= plane << dst_shift
                assert result == packed.broadcast(table[operand]), \
                    f"operand {operand} through {table}"


class TestWordLaneStateTrace:
    """Per-lane memory images must equal the dedicated scalar replays --
    stronger than verdict equality -- on a word-oriented geometry, for
    every lane class including the new CFst lanes."""

    @pytest.mark.parametrize("m", [4, 8])
    def test_single_fault_state_trace(self, m):
        stream = compile_march(MATS, 5, m=m)
        universe = single_cell_universe(5, m=m,
                                        classes=("SAF", "TF", "SOF")) \
            + intra_word_universe(5, m, max_cells=3) \
            + coupling_universe(5, m, classes=("CFst",))
        classes, fallback = partition_universe(universe, n=5, m=m)
        assert not fallback
        assert "state" in classes
        for kind, group in classes.items():
            model = build_lane_model(kind, [sem for _, _, sem in group])
            packed = PackedMemoryArray(5, lanes=len(group), m=m)
            model.install(packed)
            packed.apply_stream(stream.ops, tables=stream.tables,
                                model=model, stop_when_all_detected=False)
            for lane, (_, fault, _) in enumerate(group):
                ram = SinglePortRAM(5, m=m)
                injector = FaultInjector([fault])
                injector.install(ram)
                ram.apply_stream(stream.ops, tables=stream.tables)
                injector.remove(ram)
                assert packed.dump_lane(lane) == ram.dump(), \
                    f"{kind}: {fault.name}"


class TestStateCouplingLanes:
    """CFst joins the lane classes: the settle-hook model must reproduce
    the scalar enforce-after-every-cycle semantics verdict for verdict."""

    def test_cfst_universe_fully_batched(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = coupling_universe(16, classes=("CFst",))
        result = run_campaign_batched(stream, universe)
        assert result.faults_batched == len(universe)
        scalar = run_campaign(stream, universe, reference_check=False)
        assert [d for _, d in result.outcomes] == \
            [d for _, d in scalar.outcomes]

    def test_cfst_through_pi_schedule(self):
        stream = compile_schedule(standard_schedule(n=14), 14)
        universe = coupling_universe(14, classes=("CFst",))
        batched = run_campaign_batched(stream, universe)
        assert batched.faults_batched == len(universe)
        scalar = run_campaign(stream, universe, reference_check=False)
        assert [d for _, d in batched.outcomes] == \
            [d for _, d in scalar.outcomes]

    def test_first_cycle_read_sees_unforced_state(self):
        # The scalar engines enforce CFst in settle() -- i.e. only after
        # the first cycle completes.  A read issued as the very first
        # operation must observe the raw power-up state, and the read
        # right after it the forced state; the lane model keys its full
        # first enforcement off the first executed record.
        fault = StateCouplingFault(0, 1, aggressor_state=0, force_to=1)
        ops = (
            ("r", 0, 1, None, 0, 0),  # pre-settle: victim still 0
            ("r", 0, 1, None, 0, 0),  # post-settle: forced to 1 -> detect
        )
        model = build_lane_model("state", [fault.vector_semantics()])
        packed = PackedMemoryArray(2, lanes=1)
        model.install(packed)
        detected, executed = packed.apply_stream(ops, model=model)
        assert (detected, executed) == (1, 2)
        ram = SinglePortRAM(2)
        injector = FaultInjector([fault])
        injector.install(ram)
        mismatches = []
        ram.apply_stream(ops, mismatches=mismatches)
        injector.remove(ram)
        assert [index for index, _ in mismatches] == [1]

    def test_intra_word_cfst_lanes(self):
        stream = compile_march(MARCH_C_MINUS, 8, m=4)
        universe = intra_word_universe(8, 4, classes=("CFst",))
        batched = run_campaign_batched(stream, universe)
        assert batched.faults_batched == len(universe)
        scalar = run_campaign(stream, universe, reference_check=False)
        assert [d for _, d in batched.outcomes] == \
            [d for _, d in scalar.outcomes]

    def test_aggressor_written_into_and_out_of_state(self):
        # Forcing only applies while the aggressor holds the state;
        # writes moving it out must stop the forcing (but not restore
        # the victim).
        fault = StateCouplingFault(BitLocation(0, 0), BitLocation(1, 0),
                                   aggressor_state=1, force_to=0)
        ops = (
            ("w", 0, 1, 1, None, 0),
            ("r", 0, 1, None, 1, 0),  # aggressor 0: victim untouched
            ("w", 0, 0, 1, None, 0),  # aggressor enters state 1
            ("r", 0, 1, None, 1, 0),  # victim forced to 0 -> detect
        )
        model = build_lane_model("state", [fault.vector_semantics()])
        packed = PackedMemoryArray(2, lanes=1)
        model.install(packed)
        detected, executed = packed.apply_stream(ops, model=model)
        assert (detected, executed) == (1, 4)


class TestWordLaneEquivalence:
    """The acceptance sweeps: full word-oriented ``standard_universe``
    (single-cell per bit, inter-cell and intra-word coupling, bridges,
    decoder faults), batched vs compiled byte-identical at m in {4, 8},
    with the interpreted engine as ground truth at small n."""

    def test_interpreted_ground_truth_m4(self):
        universe = standard_universe(10, m=4)
        runner = march_runner(MARCH_C_MINUS)
        batched = run_coverage(runner, universe, 10, m=4, engine="batched")
        interpreted = run_coverage(runner, universe, 10, m=4,
                                   engine="interpreted")
        assert report_key(batched) == report_key(interpreted)

    @pytest.mark.parametrize("make_runner", [
        lambda n: march_runner(MARCH_C_MINUS),
        lambda n: schedule_runner(_word_schedule(n, 4)),
    ], ids=["march-c", "prt-3"])
    def test_m4_byte_identical(self, make_runner, universe_m4):
        runner = make_runner(48)
        batched = run_coverage(runner, universe_m4, 48, m=4,
                               engine="batched")
        compiled = run_coverage(runner, universe_m4, 48, m=4,
                                engine="compiled")
        assert_reports_identical(compiled, batched)

    @pytest.mark.parametrize("make_runner", [
        lambda n: march_runner(MARCH_C_MINUS),
        lambda n: schedule_runner(_word_schedule(n, 8)),
    ], ids=["march-c", "prt-3"])
    def test_m8_byte_identical(self, make_runner, universe_m8):
        runner = make_runner(32)
        batched = run_coverage(runner, universe_m8, 32, m=8,
                               engine="batched")
        compiled = run_coverage(runner, universe_m8, 32, m=8,
                                engine="compiled")
        assert_reports_identical(compiled, batched)

    def test_m8_campaign_batches_word_faults(self, universe_m8):
        # The acceptance criterion: an m=8 word-oriented campaign is
        # resolved *entirely* in lane passes (CFst, bridging and decoder
        # faults included) -- no scalar delegation, no fallback rows.
        stream = compile_march(MARCH_C_MINUS, 32, m=8)
        result = run_campaign_batched(stream, universe_m8)
        classes, fallback = partition_universe(universe_m8, n=32, m=8)
        assert fallback == []
        assert result.faults_batched == len(list(universe_m8))
        assert "state" in classes  # CFst resolved in lane passes
        assert "bridge" in classes and "decoder" in classes

    def test_m8_new_lane_classes_sweep(self):
        # The classes this PR moved off the scalar fallback -- NPSF,
        # bridging, DRF (real idle decay) and linked faults -- swept on
        # an m=8 geometry under a retention-pause march: batched vs
        # compiled byte-identical, fully lane-resolved, and stable under
        # workers=2 (pickled reports equal; nothing left to shard).
        n = 20
        universe = npsf_universe(n) + bridging_universe(n) + \
            linked_universe(n) + \
            single_cell_universe(n, m=8, classes=("DRF",), retention=64)
        _classes, fallback = partition_universe(universe, n=n, m=8)
        assert fallback == []
        runner = march_runner(MATS_PLUS_RETENTION)
        batched = run_coverage(runner, universe, n, m=8, engine="batched")
        compiled = run_coverage(runner, universe, n, m=8,
                                engine="compiled")
        sharded = run_coverage(runner, universe, n, m=8, engine="batched",
                               workers=2)
        assert_reports_identical(compiled, batched, sharded)

    def test_sharded_word_campaign_byte_identical(self, universe_m4):
        runner = march_runner(MARCH_C_MINUS)
        serial = run_coverage(runner, universe_m4, 48, m=4,
                              engine="batched")
        sharded = run_coverage(runner, universe_m4, 48, m=4,
                               engine="batched", workers=2)
        assert_reports_identical(serial, sharded)
