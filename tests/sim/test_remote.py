"""Multi-host dispatch over loopback daemons.

Everything here runs against real sockets on 127.0.0.1 -- in-process
:class:`ReproDaemon` instances, which to the pool are indistinguishable
from daemons on another machine.  The contract under test is the
ISSUE's: reports byte-identical to serial execution, streams shipped to
a host at most once, shards re-queued (not lost, not duplicated) when a
daemon dies mid-campaign, and graceful serial degradation when every
daemon is gone.
"""

import pickle
import threading

import pytest

from repro.analysis import march_runner, run_coverage
from repro.faults import standard_universe
from repro.march.library import MARCH_C_MINUS, MATS
from repro.sim import (
    PoolUnavailable,
    RemotePool,
    ReproDaemon,
    compile_march,
    run_campaign,
    run_campaign_batched,
)
from repro.sim.remote import _parse_address


def _verdicts(result):
    return [(repr(fault), detected) for fault, detected in result.outcomes]


@pytest.fixture
def daemon_pair():
    with ReproDaemon().start() as one, ReproDaemon().start() as two:
        yield one, two


class TestAddressParsing:
    def test_host_port(self):
        assert _parse_address("10.0.0.7:9009") == ("10.0.0.7", 9009)
        assert _parse_address(":9009") == ("127.0.0.1", 9009)

    def test_rejects_portless(self):
        for bad in ("just-a-host", "host:", "host:abc"):
            with pytest.raises(ValueError, match="host:port"):
                _parse_address(bad)

    def test_pool_fails_fast_on_typo(self):
        with pytest.raises(ValueError, match="host:port"):
            RemotePool(["nope"])
        with pytest.raises(ValueError, match="at least one"):
            RemotePool([])


class TestLoopbackParity:
    def test_campaign_matches_serial(self, daemon_pair):
        one, two = daemon_pair
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        serial = run_campaign(stream, universe)
        with RemotePool([one.address, two.address]) as pool:
            remote = run_campaign(stream, universe, pool=pool)
        assert remote.workers_used == 2
        assert _verdicts(remote) == _verdicts(serial)

    def test_batched_campaign_matches_serial(self, daemon_pair):
        one, two = daemon_pair
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        serial = run_campaign_batched(stream, universe)
        with RemotePool([one.address, two.address]) as pool:
            remote = run_campaign_batched(stream, universe, pool=pool)
        assert _verdicts(remote) == _verdicts(serial)

    def test_coverage_report_byte_identical(self, daemon_pair):
        # The acceptance criterion verbatim: a loopback RemotePool
        # produces a CoverageReport byte-identical to serial execution
        # over the full standard universe.
        one, two = daemon_pair
        universe = standard_universe(256)
        serial = run_coverage(march_runner(MARCH_C_MINUS),
                              standard_universe(256), n=256)
        with RemotePool([one.address, two.address]) as pool:
            remote = run_coverage(march_runner(MARCH_C_MINUS), universe,
                                  n=256, pool=pool)
        assert pickle.dumps(remote) == pickle.dumps(serial)

    def test_stream_ships_once_per_host(self, daemon_pair):
        one, two = daemon_pair
        stream = compile_march(MARCH_C_MINUS, 16)
        other = compile_march(MATS, 16)
        universe = standard_universe(16)
        with RemotePool([one.address, two.address]) as pool:
            run_campaign(stream, universe, pool=pool)
            run_campaign(stream, universe, pool=pool)  # same digest
            stats = pool.broadcast_stats()
            assert stats["streams"] == 1
            assert stats["sent"] == 2          # once per host, not per run
            assert stats["dedup_hits"] == 1
            run_campaign(other, universe, pool=pool)
            stats = pool.broadcast_stats()
            assert stats["streams"] == 2
            assert stats["sent"] == 4


class TestWorkerLoss:
    def test_daemon_killed_mid_campaign_requeues_shards(self):
        # One slow daemon is killed while it holds a shard; the survivor
        # must pick the shard back up -- verdicts neither lost (the
        # covered-count check would throw) nor duplicated (the reply
        # died with the socket).
        slow = ReproDaemon(delay_s=0.05).start()
        survivor = ReproDaemon().start()
        try:
            stream = compile_march(MARCH_C_MINUS, 16)
            universe = standard_universe(16)
            serial = run_campaign(stream, universe)
            pool = RemotePool([slow.address, survivor.address])
            killer = threading.Timer(0.1, slow.close)
            killer.start()
            try:
                remote = run_campaign(stream, universe, pool=pool)
            finally:
                killer.cancel()
                killer.join()
            assert _verdicts(remote) == _verdicts(serial)
            assert not pool.broken  # one daemon lost is not a failure
            pool.close()
        finally:
            slow.close()
            survivor.close()

    def test_report_identical_after_daemon_kill(self):
        slow = ReproDaemon(delay_s=0.05).start()
        survivor = ReproDaemon().start()
        try:
            serial = run_coverage(march_runner(MARCH_C_MINUS),
                                  standard_universe(256), n=256)
            pool = RemotePool([slow.address, survivor.address])
            killer = threading.Timer(0.1, slow.close)
            killer.start()
            try:
                remote = run_coverage(march_runner(MARCH_C_MINUS),
                                      standard_universe(256), n=256,
                                      pool=pool)
            finally:
                killer.cancel()
                killer.join()
            assert pickle.dumps(remote) == pickle.dumps(serial)
            pool.close()
        finally:
            slow.close()
            survivor.close()

    def test_all_daemons_dead_degrades_to_serial(self):
        daemon = ReproDaemon().start()
        address = daemon.address
        daemon.close()
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        serial = run_campaign(stream, universe)
        pool = RemotePool([address])
        degraded = run_campaign(stream, universe, pool=pool)
        assert pool.broken
        assert degraded.workers_used == 0
        assert _verdicts(degraded) == _verdicts(serial)

    def test_broken_pool_refuses_further_work(self):
        daemon = ReproDaemon().start()
        address = daemon.address
        daemon.close()
        pool = RemotePool([address])
        stream = compile_march(MATS, 8)
        with pytest.raises(PoolUnavailable):
            pool.broadcast_stream(stream)
        assert pool.broken
        with pytest.raises(PoolUnavailable):
            pool.flow()

    def test_daemon_restart_is_picked_up(self):
        # A daemon restarted between campaigns reconnects at the next
        # broadcast -- and, being a fresh process, is re-shipped the
        # stream (has-stream says no).
        first = ReproDaemon().start()
        port = first.port
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        serial = run_campaign(stream, universe)
        pool = RemotePool([first.address])
        before = run_campaign(stream, universe, pool=pool)
        assert _verdicts(before) == _verdicts(serial)
        first.close()
        second = ReproDaemon(port=port).start()
        try:
            after = run_campaign(stream, universe, pool=pool)
            assert _verdicts(after) == _verdicts(serial)
            assert pool.broadcast_stats()["sent"] == 2  # re-shipped once
            pool.close()
        finally:
            second.close()


class TestProtocol:
    def test_version_mismatch_refuses(self):
        import socket as socket_module

        from repro.sim.remote import _recv_frame, _send_frame

        with ReproDaemon().start() as daemon:
            sock = socket_module.create_connection(
                (daemon.host, daemon.port), timeout=5.0)
            try:
                _send_frame(sock, ("hello", 999))
                reply = _recv_frame(sock)
                assert reply[0] == "error"
            finally:
                sock.close()

    def test_daemon_side_error_reply(self):
        from repro.sim.remote import _recv_frame, _send_frame
        import socket as socket_module

        with ReproDaemon().start() as daemon:
            sock = socket_module.create_connection(
                (daemon.host, daemon.port), timeout=5.0)
            try:
                _send_frame(sock, ("hello", 1))
                assert _recv_frame(sock)[0] == "ok"
                # A shard naming a stream this daemon never saw.
                _send_frame(sock, ("shard", ("list", "no-such-digest",
                                             None, 0, 1, [], None, 8, 1,
                                             None)))
                reply = _recv_frame(sock)
                assert reply[0] == "error"
                _send_frame(sock, ("stop",))
                assert _recv_frame(sock)[0] == "ok"
            finally:
                sock.close()


class TestCli:
    def test_main_requires_listen(self, capsys):
        from repro.sim.remote import main

        with pytest.raises(SystemExit):
            main([])
