"""Compiled replay == interpreted execution, byte for byte.

The contract of the repro.sim refactor: lowering a test to an OpStream
and replaying it must produce *identical* results to the legacy
interpreted engines -- same result objects, same operation counts, same
RAM statistics -- on healthy and faulted, bit- and word-oriented
memories.  These tests are what allows every caller to route through the
compiled kernel without re-validating the paper's coverage numbers.
"""

import pytest

from repro.faults import FaultInjector, single_cell_universe, standard_universe
from repro.gf2 import poly_from_string
from repro.gf2m import GF2m
from repro.march import (
    ALL_MARCH_TESTS,
    MATS_PLUS_RETENTION,
    run_march,
    run_march_interpreted,
)
from repro.march.library import MARCH_C_MINUS
from repro.memory import DualPortRAM, SinglePortRAM
from repro.prt import PiIteration, extended_schedule, standard_schedule
from repro.sim import compile_pi_iteration, replay_iteration

F16 = GF2m(poly_from_string("1+z+z^4"))

ALL_TESTS = list(ALL_MARCH_TESTS) + [MATS_PLUS_RETENTION]


def _stats_tuple(ram):
    return (ram.stats.reads, ram.stats.writes, ram.stats.cycles)


class TestMarchEquivalence:
    @pytest.mark.parametrize("test", ALL_TESTS, ids=lambda t: t.name)
    @pytest.mark.parametrize("n,m", [(24, 1), (12, 4)])
    def test_healthy(self, test, n, m):
        ram_c, ram_i = SinglePortRAM(n, m=m), SinglePortRAM(n, m=m)
        compiled = run_march(test, ram_c)
        interpreted = run_march_interpreted(test, ram_i)
        assert compiled == interpreted
        assert _stats_tuple(ram_c) == _stats_tuple(ram_i)

    @pytest.mark.parametrize("test", [MARCH_C_MINUS, MATS_PLUS_RETENTION],
                             ids=lambda t: t.name)
    def test_faulted_bom(self, test):
        # standard_universe covers SAF/TF/SOF/CF/bridging/AF; the retention
        # variant adds DRF (delay elements must idle identically).
        universe = standard_universe(16) + single_cell_universe(
            16, classes=("DRF",), retention=64
        )
        for fault in universe:
            ram_c, ram_i = SinglePortRAM(16), SinglePortRAM(16)
            inj_c, inj_i = FaultInjector([fault]), FaultInjector([fault])
            inj_c.install(ram_c)
            compiled = run_march(test, ram_c)
            inj_c.remove(ram_c)
            inj_i.install(ram_i)
            interpreted = run_march_interpreted(test, ram_i)
            inj_i.remove(ram_i)
            assert compiled == interpreted, fault.name
            assert _stats_tuple(ram_c) == _stats_tuple(ram_i), fault.name

    def test_faulted_wom(self):
        for fault in standard_universe(8, m=4).sample(120):
            ram_c, ram_i = SinglePortRAM(8, m=4), SinglePortRAM(8, m=4)
            inj_c, inj_i = FaultInjector([fault]), FaultInjector([fault])
            inj_c.install(ram_c)
            compiled = run_march(MARCH_C_MINUS, ram_c)
            inj_c.remove(ram_c)
            inj_i.install(ram_i)
            interpreted = run_march_interpreted(MARCH_C_MINUS, ram_i)
            inj_i.remove(ram_i)
            assert compiled == interpreted, fault.name

    def test_stop_on_first_failure(self):
        from repro.faults import StuckAtFault

        for stop in (False, True):
            ram_c, ram_i = SinglePortRAM(16), SinglePortRAM(16)
            fault_c = FaultInjector([StuckAtFault(3, 1), StuckAtFault(9, 1)])
            fault_i = FaultInjector([StuckAtFault(3, 1), StuckAtFault(9, 1)])
            fault_c.install(ram_c)
            compiled = run_march(MARCH_C_MINUS, ram_c,
                                 stop_on_first_failure=stop)
            fault_i.install(ram_i)
            interpreted = run_march_interpreted(MARCH_C_MINUS, ram_i,
                                                stop_on_first_failure=stop)
            assert compiled == interpreted
            assert _stats_tuple(ram_c) == _stats_tuple(ram_i)

    def test_custom_backgrounds(self):
        compiled = run_march(MARCH_C_MINUS, SinglePortRAM(8, m=4),
                             backgrounds=[0b1010])
        interpreted = run_march_interpreted(MARCH_C_MINUS,
                                            SinglePortRAM(8, m=4),
                                            backgrounds=[0b1010])
        assert compiled == interpreted

    def test_background_out_of_range_raises(self):
        with pytest.raises(ValueError):
            run_march(MARCH_C_MINUS, SinglePortRAM(8, m=2), backgrounds=[7])

    def test_multiport_sequential(self):
        compiled = run_march(MARCH_C_MINUS, DualPortRAM(16))
        interpreted = run_march_interpreted(MARCH_C_MINUS, DualPortRAM(16))
        assert compiled == interpreted


class _BareWrapperRAM:
    """A duck-typed front-end honouring only the documented contract
    (read/write/idle/n/m) -- no ``apply_stream``."""

    def __init__(self, n, m=1):
        self._inner = SinglePortRAM(n, m=m)
        self.n, self.m = n, m

    def read(self, addr):
        return self._inner.read(addr)

    def write(self, addr, value):
        self._inner.write(addr, value)

    def idle(self, cycles):
        self._inner.idle(cycles)


class TestDuckTypedFrontEnds:
    def test_run_march_falls_back_without_apply_stream(self):
        wrapped = run_march(MARCH_C_MINUS, _BareWrapperRAM(16))
        native = run_march(MARCH_C_MINUS, SinglePortRAM(16))
        assert wrapped == native

    def test_schedule_falls_back_without_apply_stream(self):
        schedule = standard_schedule(n=14)
        wrapped = schedule.run(_BareWrapperRAM(14))
        native = schedule.run(SinglePortRAM(14))
        assert wrapped == native

    def test_generic_executor_matches_inlined(self):
        from repro.memory import apply_stream_generic
        from repro.sim import compile_march

        stream = compile_march(MARCH_C_MINUS, 16)
        ram_a, ram_b = SinglePortRAM(16), SinglePortRAM(16)
        mm_a, mm_b = [], []
        a = apply_stream_generic(ram_a, stream.ops, tables=stream.tables,
                                 mismatches=mm_a)
        b = ram_b.apply_stream(stream.ops, tables=stream.tables,
                               mismatches=mm_b)
        assert (a, mm_a) == (b, mm_b)
        assert _stats_tuple(ram_a) == _stats_tuple(ram_b)


class TestScheduleEquivalence:
    @pytest.mark.parametrize("build", [standard_schedule, extended_schedule],
                             ids=["standard-3", "extended-5"])
    @pytest.mark.parametrize("verify", [True, False])
    def test_healthy_bom(self, build, verify):
        schedule = build(n=14, verify=verify)
        ram_c, ram_i = SinglePortRAM(14), SinglePortRAM(14)
        assert schedule.run(ram_c) == schedule.run_interpreted(ram_i)
        assert _stats_tuple(ram_c) == _stats_tuple(ram_i)

    @pytest.mark.parametrize("build", [standard_schedule, extended_schedule],
                             ids=["standard-3", "extended-5"])
    def test_healthy_wom(self, build):
        schedule = build(field=F16, n=16)
        ram_c, ram_i = SinglePortRAM(16, m=4), SinglePortRAM(16, m=4)
        assert schedule.run(ram_c) == schedule.run_interpreted(ram_i)
        assert _stats_tuple(ram_c) == _stats_tuple(ram_i)

    @pytest.mark.parametrize("build", [standard_schedule, extended_schedule],
                             ids=["standard-3", "extended-5"])
    def test_faulted_bom(self, build):
        schedule = build(n=14)
        for fault in standard_universe(14):
            ram_c, ram_i = SinglePortRAM(14), SinglePortRAM(14)
            inj_c, inj_i = FaultInjector([fault]), FaultInjector([fault])
            inj_c.install(ram_c)
            compiled = schedule.run(ram_c)
            inj_c.remove(ram_c)
            inj_i.install(ram_i)
            interpreted = schedule.run_interpreted(ram_i)
            inj_i.remove(ram_i)
            assert compiled == interpreted, fault.name
            assert _stats_tuple(ram_c) == _stats_tuple(ram_i), fault.name

    def test_faulted_wom(self):
        schedule = standard_schedule(field=F16, n=8)
        for fault in standard_universe(8, m=4).sample(120):
            ram_c, ram_i = SinglePortRAM(8, m=4), SinglePortRAM(8, m=4)
            inj_c, inj_i = FaultInjector([fault]), FaultInjector([fault])
            inj_c.install(ram_c)
            compiled = schedule.run(ram_c)
            inj_c.remove(ram_c)
            inj_i.install(ram_i)
            interpreted = schedule.run_interpreted(ram_i)
            inj_i.remove(ram_i)
            assert compiled == interpreted, fault.name

    def test_pause_between_and_retention(self):
        from repro.faults import DataRetentionFault

        schedule = standard_schedule(n=14, pause_between=128)
        for fault in [DataRetentionFault(3, retention=64),
                      DataRetentionFault(10, retention=64)]:
            ram_c, ram_i = SinglePortRAM(14), SinglePortRAM(14)
            inj_c, inj_i = FaultInjector([fault]), FaultInjector([fault])
            inj_c.install(ram_c)
            compiled = schedule.run(ram_c)
            inj_c.remove(ram_c)
            inj_i.install(ram_i)
            interpreted = schedule.run_interpreted(ram_i)
            inj_i.remove(ram_i)
            assert compiled == interpreted, fault.name
            assert _stats_tuple(ram_c) == _stats_tuple(ram_i), fault.name

    def test_stop_on_failure(self):
        from repro.faults import StuckAtFault

        schedule = standard_schedule(n=14)
        for stop in (False, True):
            ram_c, ram_i = SinglePortRAM(14), SinglePortRAM(14)
            inj_c = FaultInjector([StuckAtFault(4, 1)])
            inj_i = FaultInjector([StuckAtFault(4, 1)])
            inj_c.install(ram_c)
            compiled = schedule.run(ram_c, stop_on_failure=stop)
            inj_i.install(ram_i)
            interpreted = schedule.run_interpreted(ram_i, stop_on_failure=stop)
            assert compiled == interpreted
            assert _stats_tuple(ram_c) == _stats_tuple(ram_i)

    def test_operation_count_matches_model(self):
        for build in (standard_schedule, extended_schedule):
            schedule = build(n=14)
            result = schedule.run(SinglePortRAM(14))
            assert result.operations == schedule.operation_count(14)


class TestIterationEquivalence:
    def test_standalone_iteration(self):
        iteration = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))
        for fault in standard_universe(14).sample(80):
            ram_c, ram_i = SinglePortRAM(14), SinglePortRAM(14)
            stream = compile_pi_iteration(iteration, 14)
            inj_c, inj_i = FaultInjector([fault]), FaultInjector([fault])
            inj_c.install(ram_c)
            compiled = replay_iteration(stream, ram_c)
            inj_c.remove(ram_c)
            inj_i.install(ram_i)
            interpreted = iteration.run(ram_i)
            inj_i.remove(ram_i)
            assert compiled == interpreted, fault.name

    def test_wom_iteration(self):
        iteration = PiIteration(field=F16, generator=(1, 2, 2), seed=(0, 1))
        stream = compile_pi_iteration(iteration, 15, m=4)
        compiled = replay_iteration(stream, SinglePortRAM(15, m=4))
        interpreted = iteration.run(SinglePortRAM(15, m=4))
        assert compiled == interpreted

    def test_mixed_field_schedule(self):
        # Two GF(2^4) fields with different moduli in one schedule: each
        # iteration's recurrence must be compiled in its *own* field.
        from repro.prt import PiTestSchedule

        other = GF2m(poly_from_string("1+z^3+z^4"))
        schedule = PiTestSchedule(
            [
                PiIteration(field=F16, generator=(1, 2, 2), seed=(0, 1)),
                PiIteration(field=other, generator=(1, 2, 2), seed=(0, 1)),
            ],
            verify=True,
        )
        ram_c, ram_i = SinglePortRAM(15, m=4), SinglePortRAM(15, m=4)
        compiled = schedule.run(ram_c)
        interpreted = schedule.run_interpreted(ram_i)
        assert compiled == interpreted
        assert compiled.passed
        for fault in standard_universe(15, m=4).sample(40):
            ram_c, ram_i = SinglePortRAM(15, m=4), SinglePortRAM(15, m=4)
            inj_c, inj_i = FaultInjector([fault]), FaultInjector([fault])
            inj_c.install(ram_c)
            compiled = schedule.run(ram_c)
            inj_c.remove(ram_c)
            inj_i.install(ram_i)
            interpreted = schedule.run_interpreted(ram_i)
            inj_i.remove(ram_i)
            assert compiled == interpreted, fault.name
