"""Tests for the batched campaign engine and the run_coverage routing."""

import pytest

from repro.analysis import (
    iteration_runner,
    march_runner,
    run_coverage,
    schedule_runner,
)
from repro.faults import single_cell_universe, standard_universe
from repro.march.library import MARCH_C_MINUS, MATS
from repro.memory import SinglePortRAM
from repro.prt import PiIteration, standard_schedule
from repro.sim import compile_march, run_campaign


def _report_key(report):
    return (report.detected, report.total, report.missed_faults)


class TestRunCampaign:
    def test_full_saf_detection(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = single_cell_universe(16, classes=("SAF", "TF"))
        result = run_campaign(stream, universe)
        assert result.detection_ratio == 1.0
        assert result.faults_total == len(universe)
        assert result.missed == []

    def test_outcomes_preserve_universe_order(self):
        stream = compile_march(MATS, 8)
        universe = standard_universe(8)
        result = run_campaign(stream, universe)
        assert [fault for fault, _ in result.outcomes] == list(universe)

    def test_reference_pass_cached(self):
        stream = compile_march(MATS, 8)
        assert not stream.reference_verified
        run_campaign(stream, single_cell_universe(8, classes=("SAF",)))
        assert stream.reference_verified
        assert stream.reference_operations == stream.operation_count
        # Second campaign reuses the cache (no way to observe directly,
        # but it must not clear it).
        run_campaign(stream, single_cell_universe(8, classes=("SAF",)))
        assert stream.reference_verified

    def test_reference_pass_rejects_inconsistent_stream(self):
        stream = compile_march(MATS, 8)
        broken = type(stream)(
            source=stream.source, name=stream.name, n=stream.n, m=stream.m,
            ops=stream.ops[:-1] + (("r", 0, 0, None, 0, 0),),
            info=stream.info,
        )
        with pytest.raises(ValueError, match="fault-free"):
            run_campaign(broken, single_cell_universe(8, classes=("SAF",)))

    def test_early_abort_replays_fewer_operations(self):
        stream = compile_march(MARCH_C_MINUS, 32)
        universe = single_cell_universe(32, classes=("SAF",))
        result = run_campaign(stream, universe)
        # Every fault is detected well before the full 10n replay.
        assert result.operations_replayed < len(universe) * stream.operation_count

    def test_ram_factory_geometry_mismatch_rejected(self):
        stream = compile_march(MARCH_C_MINUS, 8)
        universe = single_cell_universe(8, classes=("SAF",))
        with pytest.raises(ValueError, match="compiled for"):
            run_campaign(stream, universe,
                         ram_factory=lambda: SinglePortRAM(16))

    def test_geometry_mismatch_rejected_on_every_engine(self):
        universe = single_cell_universe(8, classes=("SAF",))
        for engine in ("auto", "interpreted"):
            with pytest.raises(ValueError):
                run_coverage(march_runner(MARCH_C_MINUS), universe, 8,
                             ram_factory=lambda: SinglePortRAM(16),
                             engine=engine)

    def test_duck_typed_ram_factory(self):
        # A front-end honouring only the read/write/idle/n/m contract must
        # still work on the compiled campaign path (portable executor).
        class Bare:
            def __init__(self, n):
                self._inner = SinglePortRAM(n)
                self.n, self.m = n, 1

            def read(self, addr):
                return self._inner.read(addr)

            def write(self, addr, value):
                self._inner.write(addr, value)

            def idle(self, cycles):
                self._inner.idle(cycles)

            def attach_behavior(self, behavior):
                self._inner.attach_behavior(behavior)

            def detach_behavior(self):
                self._inner.detach_behavior()

            @property
            def decoder(self):
                return self._inner.decoder

        universe = single_cell_universe(8, classes=("SAF", "TF"))
        report = run_coverage(march_runner(MARCH_C_MINUS), universe, 8,
                              ram_factory=lambda: Bare(8))
        native = run_coverage(march_runner(MARCH_C_MINUS), universe, 8)
        assert _report_key(report) == _report_key(native)

    def test_compile_memoized_across_runs(self):
        from repro.sim import cached_schedule_stream

        schedule = standard_schedule(n=14)
        first = cached_schedule_stream(schedule, 14, 1)
        assert cached_schedule_stream(schedule, 14, 1) is first
        # The adapters hit the same cache: repeated runs do not re-lower.
        ram = SinglePortRAM(14)
        assert schedule.run(ram).passed
        assert cached_schedule_stream(schedule, 14, 1) is first

    def test_workers_progress_fires_per_chunk(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        seen = []
        run_campaign(stream, universe, workers=2, chunk_size=100,
                     progress=lambda done, total: seen.append((done, total)))
        assert len(seen) >= 2  # one callback per chunk, not one at the end
        assert seen[-1] == (len(universe), len(universe))

    def test_chunk_size_validation(self):
        stream = compile_march(MATS, 8)
        with pytest.raises(ValueError):
            run_campaign(stream, [], chunk_size=0)

    def test_progress_callback(self):
        stream = compile_march(MATS, 8)
        universe = single_cell_universe(8, classes=("SAF",))
        seen = []
        run_campaign(stream, universe, chunk_size=5,
                     progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (len(universe), len(universe))
        assert [done for done, _ in seen] == sorted(done for done, _ in seen)

    def test_workers_match_serial(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        serial = run_campaign(stream, universe)
        parallel = run_campaign(stream, universe, workers=2, chunk_size=64)
        assert [d for _, d in serial.outcomes] == [d for _, d in parallel.outcomes]

    def test_repr(self):
        stream = compile_march(MATS, 8)
        result = run_campaign(stream, single_cell_universe(8, classes=("SAF",)))
        assert "detected" in repr(result)


class TestRunCoverageRouting:
    """run_coverage(engine=...) must give identical reports on every path."""

    def test_march_compiled_matches_interpreted(self):
        universe = standard_universe(16)
        compiled = run_coverage(march_runner(MARCH_C_MINUS), universe, 16)
        interpreted = run_coverage(march_runner(MARCH_C_MINUS), universe, 16,
                                   engine="interpreted")
        assert _report_key(compiled) == _report_key(interpreted)

    def test_schedule_compiled_matches_interpreted(self):
        universe = standard_universe(14)
        runner = schedule_runner(standard_schedule(n=14))
        compiled = run_coverage(runner, universe, 14)
        interpreted = run_coverage(runner, universe, 14, engine="interpreted")
        assert _report_key(compiled) == _report_key(interpreted)

    def test_iteration_compiled_matches_interpreted(self):
        universe = standard_universe(14)
        iteration = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))
        compiled = run_coverage(iteration_runner(iteration), universe, 14)
        interpreted = run_coverage(iteration_runner(iteration), universe, 14,
                                   engine="interpreted")
        assert _report_key(compiled) == _report_key(interpreted)

    def test_opaque_runner_falls_back(self):
        universe = single_cell_universe(8, classes=("SAF",))
        calls = []

        def custom_runner(ram):
            calls.append(1)
            ram.write(0, 1)
            return ram.read(0) != 1

        report = run_coverage(custom_runner, universe, 8)
        assert len(calls) == len(universe)
        assert report.coverage_of("SAF") == 1 / 16  # only SA0 at cell 0

    def test_engine_compiled_requires_compilable(self):
        with pytest.raises(ValueError, match="compilable"):
            run_coverage(lambda ram: False,
                         single_cell_universe(8, classes=("SAF",)), 8,
                         engine="compiled")

    def test_engine_validation(self):
        with pytest.raises(ValueError, match="engine"):
            run_coverage(march_runner(MATS),
                         single_cell_universe(8, classes=("SAF",)), 8,
                         engine="bogus")

    def test_ram_factory_called_once_per_fault(self):
        universe = single_cell_universe(8, classes=("SAF",))
        calls = []

        def factory():
            calls.append(1)
            return SinglePortRAM(8)

        run_coverage(march_runner(MATS), universe, 8, ram_factory=factory)
        assert len(calls) == len(universe)

    def test_runner_is_still_callable(self):
        runner = march_runner(MATS)
        assert runner(SinglePortRAM(8)) is False
        assert runner.compile(8, 1).operation_count == MATS.operation_count(8)

    def test_duck_typed_iteration_runner_not_compilable(self):
        class FakeIteration:
            def run(self, ram):
                class R:
                    passed = True
                return R()

        runner = iteration_runner(FakeIteration())
        assert not hasattr(runner, "compile")
        report = run_coverage(runner, single_cell_universe(4, classes=("SAF",)), 4)
        assert report.overall == 0.0
