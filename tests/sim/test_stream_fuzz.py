"""Differential executor fuzzing: random valid OpStreams, six executors.

Hypothesis generates random *valid* operation streams -- flat and
cycle-grouped records, mixed ``w/r/s/ra/wa/i`` kinds, word widths m in
{1, 4, 8}, 1/2/4 ports -- and replays each through every executor in the
codebase:

* ``MultiPortRAM.apply_stream`` (the native grouped executor, baseline),
* ``apply_stream_generic`` on a cycle-capable front-end,
* ``apply_stream_generic`` on a cycle-less wrapper (data semantics only:
  its cycle accounting legitimately inflates, see the stream_exec module
  docstring, so it is excluded from the clock assertions),
* ``SinglePortRAM.apply_stream`` (flat single-port streams),
* ``PackedMemoryArray.apply_stream``, one fault-free lane, int backend,
* ``PackedMemoryArray.apply_stream``, one fault-free lane, numpy backend.

Every executor must agree on the final memory image (trailing ``"wa"``
flush records fold the per-id accumulators into it), the executed-record
count, the captured signature values and the detection verdict; the
cycle-capable executors must additionally agree on the exact clock trace
(observed on the packed backends through a timed no-fault probe model).
Recurrence tables are GF(2)-linear by construction -- generated from
random basis images -- which is the invariant the packed backend's
shift/XOR table lowering assumes and the compilers guarantee.
"""

from hypothesis import find, given, settings
from hypothesis import strategies as st

from repro.memory import (
    MultiPortRAM,
    PackedMemoryArray,
    SinglePortRAM,
    apply_stream_generic,
)
from repro.memory.packed import LaneFaultModel
from repro.sim import OpStream

FLAT_KINDS = ("w", "r", "s", "ra", "wa", "i")
GROUP_KINDS = ("w", "r", "s", "ra", "wa")


def _linear_table(images):
    """The GF(2)-linear map sending basis vector ``b`` to ``images[b]``."""
    table = []
    for operand in range(1 << len(images)):
        acc = 0
        for bit, image in enumerate(images):
            if (operand >> bit) & 1:
                acc ^= image
        table.append(acc)
    return tuple(table)


@st.composite
def op_streams(draw):
    """A random valid :class:`OpStream` (construction re-validates it)."""
    ports = draw(st.sampled_from([1, 2, 4]))
    m = draw(st.sampled_from([1, 4, 8]))
    n = draw(st.integers(min_value=max(2, ports), max_value=6))
    mask = (1 << m) - 1
    tables = tuple(
        _linear_table([draw(st.integers(0, mask)) for _ in range(m)])
        for _ in range(draw(st.integers(0, 2)))
    )
    addr = st.integers(0, n - 1)
    value = st.integers(0, mask)
    acc_id = st.integers(0, 1)
    table_ref = st.sampled_from((None,) + tuple(range(len(tables))))

    def flat(kind):
        port = draw(st.integers(0, ports - 1))
        if kind == "w":
            return ("w", port, draw(addr), draw(value), None, 0)
        if kind in ("r", "s"):
            return (kind, port, draw(addr), None, draw(value), 0)
        if kind == "ra":
            return ("ra", port, draw(addr), draw(table_ref), draw(value),
                    draw(acc_id))
        if kind == "wa":
            return ("wa", port, draw(addr), draw(value), None, draw(acc_id))
        return ("i", 0, 0, 0, None, draw(st.integers(1, 4)))

    def group():
        count = draw(st.integers(1, ports))
        member_ports = draw(st.permutations(range(ports)))[:count]
        members, written = [], set()
        for port in member_ports:
            kind = draw(st.sampled_from(GROUP_KINDS))
            if kind in ("w", "wa"):
                free = [cell for cell in range(n) if cell not in written]
                if not free:
                    kind = "r"  # every cell already written this cycle
                else:
                    cell = draw(st.sampled_from(free))
                    written.add(cell)
                    if kind == "w":
                        members.append(("w", port, cell, draw(value),
                                        None, 0))
                    else:
                        members.append(("wa", port, cell, draw(value),
                                        None, draw(acc_id)))
                    continue
            if kind == "ra":
                members.append(("ra", port, draw(addr), draw(table_ref),
                                draw(value), draw(acc_id)))
            else:
                members.append((kind, port, draw(addr), None, draw(value), 0))
        return [("grp", 0, 0, count, None, 0)] + members

    ops = []
    for _ in range(draw(st.integers(1, 10))):
        if ports > 1 and draw(st.booleans()):
            ops.extend(group())
        else:
            ops.append(flat(draw(st.sampled_from(FLAT_KINDS))))
    # Trailing flushes fold the per-id accumulators into the memory
    # image, so the final-state comparison covers them too.
    ops.append(("wa", 0, 0, 0, None, 0))
    ops.append(("wa", 0, 1, 0, None, 1))
    return OpStream(source="fuzz", name="fuzz", n=n, m=m, ops=tuple(ops),
                    info=((0, "fuzz"),) * len(ops), tables=tables,
                    ports=ports)


class _ClockProbe(LaneFaultModel):
    """Timed no-fault model recording the packed executor's clock calls."""

    timed = True

    def __init__(self):
        self.ticks = []

    def clock(self, cycle):
        # A one-member group funnels its member through the flat path
        # after the marker record, so the executor clocks the same
        # instant twice; consecutive duplicates carry no information.
        if not self.ticks or self.ticks[-1] != cycle:
            self.ticks.append(cycle)


class _BareRAM:
    """Cycle-less front-end: public per-op API only, no ``cycle``."""

    def __init__(self, n, m):
        self._inner = SinglePortRAM(n, m=m)
        self.n, self.m = n, m

    def read(self, addr):
        return self._inner.read(addr)

    def write(self, addr, value):
        self._inner.write(addr, value)

    def idle(self, cycles):
        self._inner.idle(cycles)

    def dump(self):
        return self._inner.dump()


def _expected_clock(ops):
    """(pre-increment clock value per executed record, final cycle count).

    The contract every cycle-capable executor must honour: flat reads and
    writes cost one cycle each, a whole ``"grp"`` cycle group costs one,
    and ``"i"`` records add their idle count.
    """
    ticks = []
    cycle = index = 0
    while index < len(ops):
        record = ops[index]
        ticks.append(cycle)
        if record[0] == "grp":
            cycle += 1
            index += 1 + record[3]
        elif record[0] == "i":
            cycle += record[5]
            index += 1
        else:
            cycle += 1
            index += 1
    return ticks, cycle


def _scalar_run(apply, ram, stream):
    mismatches, captured = [], []
    executed = apply(ram, stream.ops, tables=stream.tables,
                     mismatches=mismatches, captured=captured)
    return executed, mismatches, captured


def _native(ram, ops, **kwargs):
    return ram.apply_stream(ops, **kwargs)


@given(op_streams())
@settings(max_examples=50, deadline=None)
def test_all_executors_agree(stream):
    ticks, total_cycles = _expected_clock(stream.ops)
    ports = max(stream.ports, 2)

    # Baseline: the native multi-port grouped executor.
    ram = MultiPortRAM(stream.n, m=stream.m, ports=ports)
    base_exec, base_mm, base_cap = _scalar_run(_native, ram, stream)
    base_dump = ram.dump()
    assert base_exec == stream.operation_count
    assert ram.stats.cycles == total_cycles

    # Generic executor on a cycle-capable front-end.
    generic = MultiPortRAM(stream.n, m=stream.m, ports=ports)
    result = _scalar_run(apply_stream_generic, generic, stream)
    assert result == (base_exec, base_mm, base_cap)
    assert generic.dump() == base_dump
    assert generic.stats.cycles == total_cycles

    # Generic executor on a cycle-less front-end: values, verdicts and
    # accumulators identical; only the cycle count may inflate.
    bare = _BareRAM(stream.n, stream.m)
    result = _scalar_run(apply_stream_generic, bare, stream)
    assert result == (base_exec, base_mm, base_cap)
    assert bare.dump() == base_dump

    # Native single-port executor (flat streams only -- it rejects
    # grouped records by contract).
    if not stream.grouped:
        single = SinglePortRAM(stream.n, m=stream.m)
        result = _scalar_run(_native, single, stream)
        assert result == (base_exec, base_mm, base_cap)
        assert single.dump() == base_dump
        assert single.stats.cycles == total_cycles

    # Packed executors: one fault-free lane per backend.  The detection
    # mask is monotone (no per-mismatch list), so the verdict compares
    # as a boolean; the clock trace is observed through the probe model.
    for backend in ("int", "numpy"):
        probe = _ClockProbe()
        captured = []
        packed = PackedMemoryArray(stream.n, lanes=1, m=stream.m,
                                   backend=backend)
        detected, executed = packed.apply_stream(
            stream.ops, tables=stream.tables, model=probe,
            stop_when_all_detected=False, captured=captured)
        assert executed == base_exec, backend
        assert bool(detected) == bool(base_mm), backend
        assert captured == base_cap, backend
        assert packed.dump_lane(0) == base_dump, backend
        assert probe.ticks == ticks, backend


def test_shrinking_finds_minimal_failing_stream():
    # The shrinker meta-test: ask Hypothesis for the smallest stream
    # whose replay detects a mismatch.  It must collapse to the
    # degenerate geometry -- one port, one bit, two cells -- and a single
    # checked read expecting 1 from power-up-zero memory (plus the two
    # fixed accumulator flush records every generated stream carries).
    def detects(stream):
        ram = MultiPortRAM(stream.n, m=stream.m, ports=max(stream.ports, 2))
        mismatches = []
        ram.apply_stream(stream.ops, tables=stream.tables,
                         mismatches=mismatches)
        return bool(mismatches)

    minimal = find(op_streams(), detects)
    assert (minimal.ports, minimal.m, minimal.n) == (1, 1, 2)
    body = minimal.ops[:-2]  # strip the fixed accumulator flushes
    assert body == (("r", 0, 0, None, 1, 0),)
