"""Scheduler determinism: every execution path, byte-identical results.

The parallel scheduler's core promise is that parallelism is *invisible*
in the results: serial execution, static cost-model shards, work
stealing (where shards split at run time and remainders migrate between
workers), and loopback remote dispatch must all produce identical
verdicts -- and identical pickled :class:`CoverageReport`s -- for
arbitrary universes and streams.  Hypothesis drives the universe/stream
choice; fixed seeds keep the suite reproducible.

The re-queue mechanics are additionally pinned down deterministically:
a fake flow injects mid-shard splits (exactly what a stealing worker
emits when it runs out of budget) and the drain must merge the pieces
into the same positions the unsplit shard would have filled.
"""

import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import march_runner, run_coverage
from repro.faults import standard_universe
from repro.march.library import MARCH_C_MINUS, MARCH_X, MATS
from repro.sim import (
    RemotePool,
    ReproDaemon,
    WorkerPool,
    compile_march,
    run_campaign,
)
from repro.sim.campaign import _drain_flow

_TESTS = {"mats": MATS, "march-x": MARCH_X, "march-c-": MARCH_C_MINUS}


@pytest.fixture(scope="module")
def local_pool():
    with WorkerPool(2) as pool:
        yield pool


@pytest.fixture(scope="module")
def remote_pool():
    with ReproDaemon().start() as one, ReproDaemon().start() as two, \
            RemotePool([one.address, two.address]) as pool:
        yield pool


def _verdicts(result):
    return [detected for _fault, detected in result.outcomes]


class TestSchedulerDeterminism:
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(test_name=st.sampled_from(sorted(_TESTS)),
           n=st.integers(min_value=4, max_value=12),
           data=st.data())
    def test_all_paths_agree(self, local_pool, remote_pool, test_name, n,
                             data):
        stream = compile_march(_TESTS[test_name], n)
        everything = list(standard_universe(n))
        # A random sub-universe: list-mode shards, arbitrary class mix.
        keep = data.draw(st.lists(
            st.integers(min_value=0, max_value=len(everything) - 1),
            min_size=2, max_size=min(len(everything), 200), unique=True))
        faults = [everything[index] for index in sorted(keep)]

        serial = run_campaign(stream, list(faults))
        static = run_campaign(stream, list(faults), pool=local_pool,
                              scheduler="static")
        stealing = run_campaign(stream, list(faults), pool=local_pool,
                                scheduler="stealing")
        remote = run_campaign(stream, list(faults), pool=remote_pool)

        # The parallel paths must actually have engaged (degradation
        # would make this test vacuous).
        assert static.workers_used == 2
        assert stealing.workers_used == 2
        assert remote.workers_used == 2
        assert _verdicts(static) == _verdicts(serial)
        assert _verdicts(stealing) == _verdicts(serial)
        assert _verdicts(remote) == _verdicts(serial)
        # Scalar replay counts are per-fault deterministic, so even the
        # operation totals agree on every scalar path.
        assert static.operations_replayed == serial.operations_replayed
        assert stealing.operations_replayed == serial.operations_replayed
        assert remote.operations_replayed == serial.operations_replayed

    def test_reports_byte_identical_across_paths(self, local_pool,
                                                 remote_pool):
        def report(**kwargs):
            return run_coverage(march_runner(MARCH_C_MINUS),
                                standard_universe(24), n=24, **kwargs)

        serial = pickle.dumps(report())
        assert pickle.dumps(report(pool=local_pool)) == serial
        assert pickle.dumps(report(workers=2)) == serial
        assert pickle.dumps(report(pool=remote_pool)) == serial


class _SplittingFlow:
    """A fake flow that splits every shard once, mid-range.

    First delivery of a shard covers ``[lo, mid)`` and hands back a
    remainder task for ``[mid, hi)`` -- the exact payload shape a
    stealing worker produces when its budget expires.  The drain must
    re-queue the remainder and merge both halves.
    """

    def __init__(self, tasks):
        self._queue = list(tasks)

    def put(self, task):
        self._queue.append(task)

    def next(self, timeout):
        if not self._queue:
            raise StopIteration
        mode, token, spec, lo, hi, faults, rf, n, m, budget = \
            self._queue.pop(0)
        if hi - lo > 1:
            mid = lo + (hi - lo) // 2
            remainder = (mode, token, spec, mid, hi,
                         faults[mid - lo:] if faults else None,
                         rf, n, m, budget)
            return ("scalar", lo, mid,
                    [(True, index) for index in range(lo, mid)],
                    remainder, 0.0)
        return ("scalar", lo, hi,
                [(True, index) for index in range(lo, hi)], None, 0.0)


class TestStealInjection:
    def test_drain_merges_split_shards_in_position(self):
        total = 37
        tasks = [("list", 0, None, lo, min(lo + 10, total),
                  list(range(lo, min(lo + 10, total))), None, 8, 1, 0.0)
                 for lo in range(0, total, 10)]
        outcomes = [None] * total

        def merge(tag, lo, hi, data):
            assert tag == "scalar"
            assert outcomes[lo:hi] == [None] * (hi - lo)  # no duplicates
            outcomes[lo:hi] = data
            return hi - lo

        seen = []
        done = _drain_flow(_SplittingFlow(tasks), len(tasks), total,
                           lambda d, t: seen.append(d), 0, total, merge)
        assert done == total
        # Every position filled exactly once, with its own index: the
        # splits landed where the unsplit shards would have.
        assert outcomes == [(True, index) for index in range(total)]
        assert seen == sorted(seen)  # progress is monotonic

    def test_drain_rejects_short_coverage(self):
        # A worker that silently covers fewer faults than expected must
        # fail the campaign loudly, never merge truncated verdicts.
        flow = _SplittingFlow([("list", 0, None, 0, 1, [0], None, 8, 1,
                                None)])
        with pytest.raises(RuntimeError, match="covered 1"):
            _drain_flow(flow, 1, 5, None, 0, 5, lambda *a: 1)
