"""Process sharding: persistent pools, spec shards, graceful fallback.

The sharded paths must be *invisible* in the results: ``workers=N``
produces byte-identical outcomes to single-process execution on both
campaign engines, whether the universe ships as a spec or as pickled
fault lists, and an environment that cannot spawn processes silently
degrades to the serial path.
"""

import pytest

from repro.analysis import march_runner, run_coverage
from repro.faults import StuckAtFault, single_cell_universe, standard_universe
from repro.faults.base import VectorSemantics
from repro.faults.universe import FaultUniverse, UniverseSpec
from repro.march.library import MARCH_C_MINUS, MATS
from repro.sim import (
    PoolUnavailable,
    WorkerPool,
    compile_march,
    run_campaign,
    run_campaign_batched,
    shared_pool,
)
from repro.sim import pool as pool_module


def _broken_pool(workers=2):
    """A pool whose start always fails (invalid context name)."""
    return WorkerPool(workers, context="no-such-start-method")


def _verdicts(result):
    return [detected for _, detected in result.outcomes]


class ExoticKindFault(StuckAtFault):
    """A stuck-at under a vector-semantics kind no lane model knows.

    Module-level so the fault-list shard path can pickle it.
    """

    def vector_semantics(self):
        base = StuckAtFault.vector_semantics(self)
        return VectorSemantics("exotic-kind", cell=base.cell,
                               value=base.value)


class TestWorkerPool:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_lazy_start(self):
        pool = WorkerPool(2)
        assert not pool.started
        assert "idle" in repr(pool)
        pool.close()

    def test_broadcast_deduplicates_streams(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        other = compile_march(MATS, 16)
        universe = standard_universe(16)
        with WorkerPool(2) as pool:
            run_campaign(stream, universe, workers=2, pool=pool)
            run_campaign(stream, universe, workers=2, pool=pool)
            assert pool.streams_broadcast == 1
            run_campaign(other, universe, workers=2, pool=pool)
            assert pool.streams_broadcast == 2
            # The transport counters prove each distinct digest shipped
            # to this host exactly once, whichever path it took.
            stats = pool.broadcast_stats()
            assert stats["streams"] == 2
            assert stats["shm"] + stats["pickle"] == 2
            assert stats["dedup_hits"] >= 1

    def test_large_stream_broadcasts_via_shared_memory(self):
        # Far past SHM_MIN_BYTES: must ship through one shared-memory
        # segment, not once per worker over the task queue.  (Skipped
        # implicitly in environments without shared memory -- the
        # fallback counter test below covers those.)
        try:
            from multiprocessing import shared_memory
            probe = shared_memory.SharedMemory(create=True, size=16)
            probe.close()
            probe.unlink()
        except Exception:
            pytest.skip("no shared memory in this environment")
        stream = compile_march(MARCH_C_MINUS, 512)
        universe = single_cell_universe(16, classes=("SAF",))
        serial = run_campaign(stream, universe)
        with WorkerPool(2) as pool:
            sharded = run_campaign(stream, universe, workers=2, pool=pool)
            stats = pool.broadcast_stats()
        assert stats["shm"] == 1
        assert stats["pickle"] == 0
        assert stats["shm_bytes"] >= pool_module.SHM_MIN_BYTES
        assert _verdicts(sharded) == _verdicts(serial)

    def test_shm_failure_falls_back_to_pickle(self, monkeypatch):
        # Shared memory denied (sandbox): the broadcast must degrade to
        # the per-worker pickle payload with identical results.
        import multiprocessing.shared_memory as shm_module

        def refuse(*args, **kwargs):
            raise OSError("no shared memory here")

        monkeypatch.setattr(shm_module.SharedMemory, "__init__", refuse)
        stream = compile_march(MARCH_C_MINUS, 512)
        universe = single_cell_universe(16, classes=("SAF",))
        serial = run_campaign(stream, universe)
        with WorkerPool(2) as pool:
            sharded = run_campaign(stream, universe, workers=2, pool=pool)
            stats = pool.broadcast_stats()
        assert stats["pickle"] == 1
        assert stats["shm"] == 0
        assert sharded.workers_used == 2
        assert _verdicts(sharded) == _verdicts(serial)

    def test_max_streams_recycles_the_pool(self):
        def saf_universe(n):
            return single_cell_universe(n, classes=("SAF",))

        with WorkerPool(2, max_streams=2) as pool:
            for n in (8, 12):
                run_campaign(compile_march(MARCH_C_MINUS, n),
                             saf_universe(n), workers=2, pool=pool)
            assert pool.streams_broadcast == 2
            # A third distinct stream exceeds the cap: the pool recycles
            # (bounded stream memory) and keeps working.
            result = run_campaign(compile_march(MARCH_C_MINUS, 16),
                                  saf_universe(16), workers=2, pool=pool)
            assert pool.streams_broadcast == 1
            assert not pool.broken
            assert result.workers_used == 2
            assert result.detection_ratio == 1.0
        with pytest.raises(ValueError):
            WorkerPool(2, max_streams=0)

    def test_unavailable_pool_raises(self):
        pool = _broken_pool()
        with pytest.raises(PoolUnavailable):
            pool.broadcast_stream(compile_march(MATS, 8))
        assert pool.broken

    def test_shared_pool_reused_and_replaced_when_broken(self):
        first = shared_pool(2)
        assert shared_pool(2) is first
        first.mark_broken()
        replacement = shared_pool(2)
        assert replacement is not first
        assert not replacement.broken

    def test_close_is_idempotent(self):
        pool = WorkerPool(2)
        pool.close()
        pool.close()


class TestShardedRunCampaign:
    def test_spec_sharded_matches_serial(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        assert universe.spec is not None
        serial = run_campaign(stream, universe)
        with WorkerPool(2) as pool:
            sharded = run_campaign(stream, universe, workers=2, pool=pool)
        assert sharded.workers_used == 2
        assert _verdicts(sharded) == _verdicts(serial)
        assert sharded.operations_replayed == serial.operations_replayed

    def test_list_sharded_matches_serial(self):
        # No spec: shards carry explicit pickled fault chunks.
        stream = compile_march(MARCH_C_MINUS, 16)
        faults = list(standard_universe(16))
        serial = run_campaign(stream, faults)
        with WorkerPool(2) as pool:
            sharded = run_campaign(stream, faults, workers=2, pool=pool,
                                   chunk_size=64)
        assert sharded.workers_used == 2
        assert _verdicts(sharded) == _verdicts(serial)

    def test_pool_unavailable_degrades_to_serial(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        pool = _broken_pool()
        result = run_campaign(stream, universe, workers=2, pool=pool)
        assert result.workers_used == 0
        assert _verdicts(result) == _verdicts(run_campaign(stream, universe))

    def test_sandboxed_shared_pool_degrades(self, monkeypatch):
        # Simulate a sandbox where no pool can ever start: the shared
        # registry hands out broken pools, the campaign stays correct.
        def refuse(self):
            raise PoolUnavailable("sandboxed")

        monkeypatch.setattr(pool_module.WorkerPool, "_ensure", refuse)
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        result = run_campaign(stream, universe, workers=2,
                              pool=pool_module.WorkerPool(2))
        assert result.workers_used == 0
        assert result.detection_ratio > 0.9

    def test_progress_monotonic_with_workers(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        seen = []
        with WorkerPool(2) as pool:
            run_campaign(stream, universe, workers=2, chunk_size=100,
                         pool=pool,
                         progress=lambda done, total:
                         seen.append((done, total)))
        assert seen[-1] == (len(universe), len(universe))
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)

    def test_lost_shard_result_raises_pool_unavailable(self):
        # A worker killed mid-shard loses its task: the flow's next()
        # would block forever, so the drain's timeout must surface
        # PoolUnavailable (which callers turn into serial degradation).
        import multiprocessing

        from repro.sim.campaign import _drain_flow

        class LostFlow:
            def next(self, timeout=None):
                assert timeout is not None  # a bare next() would hang
                raise multiprocessing.TimeoutError

            def put(self, task):  # pragma: no cover - nothing re-queues
                raise AssertionError("no remainders expected")

        with pytest.raises(PoolUnavailable, match="worker lost"):
            _drain_flow(LostFlow(), 1, 5, None, 0, 5, lambda *a: 0)


class TestShardedRunCampaignBatched:
    def test_sharded_matches_serial(self):
        # Every built-in class vectorizes now, so a genuine scalar
        # remainder (what the pool exists for) needs faults with an
        # unregistered lane kind mixed into the universe.
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = list(standard_universe(16)) + \
            [ExoticKindFault(cell, 1) for cell in range(16)]
        serial = run_campaign_batched(stream, universe)
        with WorkerPool(2) as pool:
            sharded = run_campaign_batched(stream, universe, workers=2,
                                           pool=pool, chunk_size=4)
        assert sharded.workers_used == 2
        assert sharded.faults_batched == serial.faults_batched
        assert sharded.faults_batched == len(universe) - 16
        assert _verdicts(sharded) == _verdicts(serial)
        assert sharded.operations_replayed == serial.operations_replayed

    def test_no_fallback_skips_the_pool(self):
        # A fully vectorizable universe has nothing to shard; the lane
        # passes are the batch, and no pool should ever start.  The
        # full standard universe qualifies now that bridging and decoder
        # faults carry lane semantics.
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        pool = WorkerPool(2)
        result = run_campaign_batched(stream, universe, workers=2, pool=pool)
        assert not pool.started
        assert result.workers_used == 0
        assert result.faults_batched == len(universe)
        pool.close()

    def test_pool_unavailable_degrades_to_serial(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        pool = _broken_pool()
        result = run_campaign_batched(stream, universe, workers=2, pool=pool)
        assert result.workers_used == 0
        serial = run_campaign_batched(stream, universe)
        assert _verdicts(result) == _verdicts(serial)

    def test_progress_monotonic_with_workers(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        seen = []
        with WorkerPool(2) as pool:
            run_campaign_batched(stream, universe, workers=2, chunk_size=64,
                                 pool=pool,
                                 progress=lambda done, total:
                                 seen.append((done, total)))
        assert seen[-1] == (len(universe), len(universe))
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)
        assert all(total == len(universe) for _, total in seen)

    def test_unknown_lane_kind_ships_fault_lists(self):
        # A runtime-registered vector kind may not exist in the workers,
        # so spec sharding is unsound for that partition; explicit fault
        # chunks must be shipped instead -- still with correct verdicts.
        universe = FaultUniverse(
            [StuckAtFault(1, 1), ExoticKindFault(3, 1), StuckAtFault(5, 0)],
            # A lying spec: if a worker used it, it would enumerate the
            # wrong faults and verdict counts would diverge.
            spec=UniverseSpec.call("bridging", n=16),
        )
        stream = compile_march(MARCH_C_MINUS, 16)
        with WorkerPool(2) as pool:
            result = run_campaign_batched(stream, universe, workers=2,
                                          pool=pool, chunk_size=1)
        assert [f for f, _ in result.outcomes] == list(universe)
        assert result.detection_ratio == 1.0


class TestRunCoverageSharded:
    def test_engine_batched_workers_matches_serial(self):
        universe = standard_universe(16)
        runner = march_runner(MARCH_C_MINUS)
        serial = run_coverage(runner, universe, 16, engine="batched")
        with WorkerPool(2) as pool:
            sharded = run_coverage(runner, universe, 16, engine="batched",
                                   workers=2, pool=pool)
        assert (sharded.detected, sharded.total, sharded.missed_faults) == \
            (serial.detected, serial.total, serial.missed_faults)
