"""The static verifier: round-trips, mutation operators, per-code pins.

Three layers of assurance for :mod:`repro.sim.verify`:

* **round-trip** -- every stream the fuzz strategy of
  :mod:`tests.sim.test_stream_fuzz` generates (the same population the
  differential executor suite replays) verifies with zero
  error-severity diagnostics: the analyzer never cries wolf on a
  stream the executors demonstrably agree on.

* **mutation operators** -- structured corruptions of compiled streams
  (drop a group member, collapse group ports, orphan an accumulator,
  stretch a segment) always produce at least one error diagnostic.

* **per-code pins** -- each diagnostic code is pinned to a minimal
  hand-built stream so a regression in one rule fails one test, by
  name.  Post-construction corruptions bypass ``__post_init__`` via
  ``object.__new__`` so the deep pass (not the constructor) is what is
  exercised.
"""

import pytest
from hypothesis import given, settings

from repro.march import library
from repro.sim import (
    CODES,
    Diagnostic,
    OpStream,
    Segment,
    StreamError,
    compile_dual_port_pi,
    compile_march,
    compile_quad_port_pi,
    verify,
    verify_or_raise,
)
from repro.prt import DualPortPiIteration, QuadPortPiIteration
from tests.sim.test_stream_fuzz import op_streams


def raw_stream(**overrides):
    """An :class:`OpStream` built *without* construction validation.

    ``object.__new__`` bypasses ``__post_init__`` so deliberately
    malformed streams reach :func:`verify`'s deep pass instead of
    raising at construction time.
    """
    fields = dict(source="test", name="test", n=4, m=1, ops=(),
                  info=(), tables=(), segments=(), ports=1,
                  reference_verified=False)
    ops = overrides.get("ops", ())
    fields["info"] = tuple((0, i) for i in range(len(ops)))
    fields.update(overrides)
    stream = object.__new__(OpStream)
    stream.__dict__.update(fields)
    return stream


def codes_of(stream, *, dataflow=True):
    return [d.code for d in verify(stream, dataflow=dataflow)]


# -- round-trip: fuzzed valid streams verify clean ---------------------------


@settings(max_examples=120, deadline=None)
@given(op_streams())
def test_fuzzed_streams_verify_without_errors(stream):
    report = verify(stream)
    assert report.errors == (), [str(d) for d in report.errors]
    assert report.ok == (not report.errors)
    verify_or_raise(stream)  # must not raise either


# -- mutation operators: structured corruption is always caught --------------


def _dual():
    return compile_dual_port_pi(DualPortPiIteration(seed=(0, 1)), 9)


def _diagnose(build):
    """Error codes whichever pass (construction or deep) rejects with."""
    try:
        stream = build()
    except StreamError as exc:
        return [d.code for d in exc.diagnostics]
    return [d.code for d in verify(stream).errors]


def test_mutation_drop_group_member():
    stream = _dual()
    marker = max(i for i, r in enumerate(stream.ops) if r[0] == "grp")
    mutated = raw_stream(
        n=stream.n, m=stream.m, ports=stream.ports,
        ops=stream.ops[:marker + 1], info=stream.info[:marker + 1])
    assert "E103" in codes_of(mutated)


def test_mutation_swap_group_ports():
    stream = _dual()
    marker = next(i for i, r in enumerate(stream.ops)
                  if r[0] == "grp" and r[3] == 2)
    ops = list(stream.ops)
    for member in (marker + 1, marker + 2):
        ops[member] = (ops[member][0], 0) + ops[member][2:]

    def build():
        return OpStream(source=stream.source, name=stream.name,
                        n=stream.n, m=stream.m, ops=tuple(ops),
                        info=stream.info, tables=stream.tables,
                        segments=stream.segments, ports=stream.ports)

    assert "E106" in _diagnose(build)


def test_mutation_orphan_accumulator():
    stream = compile_quad_port_pi(QuadPortPiIteration(), 12)
    index = next(i for i, r in enumerate(stream.ops) if r[0] == "ra")
    ops = list(stream.ops)
    ops[index] = ops[index][:5] + (9,)
    mutated = raw_stream(n=stream.n, m=stream.m, ports=stream.ports,
                         ops=tuple(ops), info=stream.info,
                         tables=stream.tables, segments=stream.segments)
    assert "E207" in codes_of(mutated)


def test_mutation_stretch_segment():
    stream = _dual()
    assert stream.segments
    bad = Segment(label="iteration", index=0, start=0,
                  stop=len(stream.ops) + 3)
    mutated = raw_stream(n=stream.n, m=stream.m, ports=stream.ports,
                         ops=stream.ops, info=stream.info,
                         tables=stream.tables, segments=(bad,))
    assert "E301" in codes_of(mutated)


# -- per-code pins: one minimal stream per diagnostic code -------------------


def test_e001_ops_info_mismatch():
    mutated = raw_stream(ops=(("w", 0, 0, 1, None, 0),), info=((0, 0),) * 2)
    assert "E001" in codes_of(mutated)


def test_e002_zero_ports():
    mutated = raw_stream(ops=(("w", 0, 0, 1, None, 0),), ports=0)
    assert "E002" in codes_of(mutated)


def test_e003_unknown_kind():
    mutated = raw_stream(ops=(("z", 0, 0, 1, None, 0),))
    assert "E003" in codes_of(mutated)


def test_e101_bad_group_count():
    for count in (0, -1, "2", None):
        mutated = raw_stream(ops=(("grp", 0, 0, count, None, 0),), ports=2)
        assert "E101" in codes_of(mutated), count


def test_e102_group_wider_than_ports():
    mutated = raw_stream(ops=(("grp", 0, 0, 2, None, 0),
                              ("w", 0, 0, 1, None, 0),
                              ("w", 1, 1, 1, None, 0)), ports=1)
    assert "E102" in codes_of(mutated)


def test_e103_truncated_group():
    mutated = raw_stream(ops=(("grp", 0, 0, 2, None, 0),
                              ("w", 0, 0, 1, None, 0)), ports=2)
    assert "E103" in codes_of(mutated)


def test_e104_non_groupable_member():
    mutated = raw_stream(ops=(("grp", 0, 0, 2, None, 0),
                              ("w", 0, 0, 1, None, 0),
                              ("i", 1, 0, 0, None, 3)), ports=2)
    assert "E104" in codes_of(mutated)


def test_e105_port_out_of_range():
    grouped = raw_stream(ops=(("grp", 0, 0, 2, None, 0),
                              ("w", 0, 0, 1, None, 0),
                              ("w", 7, 1, 1, None, 0)), ports=2)
    assert "E105" in codes_of(grouped)
    flat = raw_stream(ops=(("w", 3, 0, 1, None, 0),))
    assert "E105" in codes_of(flat)


def test_e106_duplicate_port():
    mutated = raw_stream(ops=(("grp", 0, 0, 2, None, 0),
                              ("w", 0, 0, 1, None, 0),
                              ("w", 0, 1, 1, None, 0)), ports=2)
    assert "E106" in codes_of(mutated)


def test_e107_double_write_same_address():
    mutated = raw_stream(ops=(("grp", 0, 0, 2, None, 0),
                              ("w", 0, 2, 1, None, 0),
                              ("w", 1, 2, 0, None, 0)), ports=2)
    assert "E107" in codes_of(mutated)


def test_e201_address_out_of_range():
    for addr in (-1, 4, "0"):
        mutated = raw_stream(ops=(("w", 0, addr, 1, None, 0),))
        assert "E201" in codes_of(mutated), addr


def test_e202_value_overflow():
    write = raw_stream(ops=(("w", 0, 0, 2, None, 0),))
    assert "E202" in codes_of(write)
    read = raw_stream(ops=(("r", 0, 0, None, 2, 0),))
    assert "E202" in codes_of(read)


def test_e203_table_ref_out_of_range():
    mutated = raw_stream(ops=(("ra", 0, 0, 3, 0, 0),), tables=((0, 1),))
    assert "E203" in codes_of(mutated)


def test_e204_malformed_table():
    short = raw_stream(ops=(("ra", 0, 0, 0, 0, 0),), tables=((0,),))
    assert "E204" in codes_of(short)
    overflow = raw_stream(ops=(("ra", 0, 0, 0, 0, 0),), tables=((0, 2),))
    assert "E204" in codes_of(overflow)


def test_e205_bad_accumulator_id():
    mutated = raw_stream(ops=(("ra", 0, 0, None, 0, -1),))
    assert "E205" in codes_of(mutated)


def test_e206_negative_idle():
    mutated = raw_stream(ops=(("i", 0, 0, 0, None, -2),))
    assert "E206" in codes_of(mutated)


def test_e207_unflushed_accumulator():
    mutated = raw_stream(ops=(("ra", 0, 0, None, 0, 0),))
    assert "E207" in codes_of(mutated)
    flushed = raw_stream(ops=(("ra", 0, 0, None, 0, 0),
                              ("wa", 0, 1, None, None, 0)))
    assert "E207" not in codes_of(flushed)


def test_e301_segment_out_of_bounds():
    mutated = raw_stream(
        ops=(("w", 0, 0, 1, None, 0),),
        segments=(Segment(label="iteration", index=0, start=0, stop=5),))
    assert "E301" in codes_of(mutated)


def test_w401_dead_write():
    stream = raw_stream(ops=(("w", 0, 0, 1, None, 0),
                             ("w", 0, 0, 0, None, 0),
                             ("r", 0, 0, None, 0, 0)))
    assert "W401" in codes_of(stream)
    assert "W401" not in codes_of(stream, dataflow=False)


def test_w402_uninitialized_read():
    stream = raw_stream(ops=(("r", 0, 0, None, 0, 0),))
    assert "W402" in codes_of(stream)


def test_w403_dead_idle():
    stream = raw_stream(ops=(("w", 0, 0, 1, None, 0),
                             ("r", 0, 0, None, 1, 0),
                             ("i", 0, 0, 0, None, 5)))
    assert "W403" in codes_of(stream)
    live = raw_stream(ops=(("w", 0, 0, 1, None, 0),
                           ("i", 0, 0, 0, None, 5),
                           ("r", 0, 0, None, 1, 0)))
    assert "W403" not in codes_of(live)


def test_w404_constant_accumulator():
    stream = raw_stream(ops=(("wa", 0, 0, None, None, 0),))
    assert "W404" in codes_of(stream)
    fed = raw_stream(ops=(("ra", 0, 0, None, 0, 0),
                          ("wa", 0, 1, None, None, 0)))
    assert "W404" not in codes_of(fed)


def test_w405_unused_table():
    stream = raw_stream(ops=(("w", 0, 0, 1, None, 0),), tables=((0, 1),))
    assert "W405" in codes_of(stream)


# -- the machinery itself ----------------------------------------------------


def test_every_code_is_registered():
    report = verify(compile_march(library.MARCH_C_MINUS, 8))
    assert set(report.codes()) <= set(CODES)


def test_diagnostic_str_and_severity():
    diagnostic = Diagnostic(code="E201", severity="error", index=3,
                            message="op 3: address 9 outside the 4-cell array")
    assert str(diagnostic) == "[E201] op 3: address 9 outside the 4-cell array"
    assert diagnostic.is_error


def test_stream_error_is_value_error_with_verbatim_message():
    with pytest.raises(ValueError) as excinfo:
        OpStream(source="t", name="t", n=4, m=1,
                 ops=(("w", 0, 0, 1, None, 0),), info=((0, 0), (0, 1)))
    assert isinstance(excinfo.value, StreamError)
    diagnostics = excinfo.value.diagnostics
    assert diagnostics and diagnostics[0].code == "E001"
    assert str(excinfo.value) == diagnostics[0].message


def test_verify_or_raise_raises_stream_error():
    mutated = raw_stream(ops=(("w", 3, 0, 1, None, 0),))
    with pytest.raises(StreamError) as excinfo:
        verify_or_raise(mutated)
    assert any(d.code == "E105" for d in excinfo.value.diagnostics)


def test_report_is_sorted_and_sized():
    mutated = raw_stream(ops=(("w", 3, 0, 1, None, 0),
                              ("r", 0, 9, None, 0, 0)))
    report = verify(mutated)
    assert len(report) == len(tuple(report))
    indices = [d.index for d in report if d.index is not None]
    assert indices == sorted(indices)


def test_compiler_verify_flag_passes_clean_streams():
    stream = compile_march(library.MARCH_C_MINUS, 8, verify=True)
    assert stream.operation_count > 0
