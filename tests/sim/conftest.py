"""Shared fixtures and helpers for the campaign-engine sweep suites.

The acceptance sweeps in ``test_batched.py``, ``test_wordlane.py`` and
``test_multiport_campaign.py`` all revolve around the same two pieces of
boilerplate: a full ``standard_universe`` at the acceptance geometry,
and a byte-identical ``CoverageReport`` comparison (tally equality plus
pickled-bytes equality, so serialization-visible drift -- float
representation, missed-fault ordering, extra attributes -- fails too).
They live here once; the suites import the helpers as
``from tests.sim.conftest import assert_reports_identical, report_key``.
"""

import pickle

import pytest

from repro.faults import standard_universe


@pytest.fixture(scope="module")
def universe_256():
    """The bit-oriented acceptance universe: ``standard_universe(256)``."""
    return standard_universe(256)


@pytest.fixture(scope="module")
def universe_m4():
    """Word-oriented acceptance universe at m=4."""
    return standard_universe(48, m=4)


@pytest.fixture(scope="module")
def universe_m8():
    """Word-oriented acceptance universe at m=8."""
    return standard_universe(32, m=8)


def report_key(report):
    """The identity of a ``CoverageReport`` for equivalence checks."""
    return (report.detected, report.total, report.missed_faults)


def assert_reports_identical(baseline, *others):
    """Assert every report equals ``baseline`` byte for byte.

    Checks the tally key first (for a readable diff on mismatch), then
    pickled-bytes equality -- the representation campaigns actually ship
    across worker processes, so anything serialization-visible is pinned.
    """
    for other in others:
        assert report_key(other) == report_key(baseline)
        assert pickle.dumps(other) == pickle.dumps(baseline)
