"""Bit-packed campaign engine == scalar engines, verdict for verdict.

The contract of ``repro.sim.batched``: resolving a fault lane-parallel on
the ``PackedMemoryArray`` must produce exactly the verdict the scalar
engines produce for that fault -- for every vectorizable class, on
healthy and corrupted pseudo-ring data, with the non-vectorizable
remainder routed through the proven per-fault path.  The headline check
is the full ``standard_universe(256)`` sweep over every library March
test and both π-test schedules.
"""

import pytest

from repro.analysis import march_runner, run_coverage, schedule_runner
from repro.faults import (
    BitLocation,
    FaultInjector,
    IdempotentCouplingFault,
    InversionCouplingFault,
    StuckAtFault,
    TransitionFault,
    single_cell_universe,
    standard_universe,
)
from repro.faults.base import VectorSemantics
from repro.march import ALL_MARCH_TESTS, MATS_PLUS_RETENTION
from repro.march.library import MARCH_C_MINUS, MATS
from repro.memory import PackedMemoryArray, SinglePortRAM
from repro.prt import extended_schedule, standard_schedule
from repro.sim import (
    build_lane_model,
    compile_march,
    partition_universe,
    register_lane_model,
    run_campaign,
    run_campaign_batched,
)
from tests.sim.conftest import assert_reports_identical, report_key


class TestPackedMemoryArray:
    def test_lane_isolation(self):
        packed = PackedMemoryArray(4, lanes=8)
        packed.write_lanes(1, 0b0101_0001)
        assert packed.lane_value(1, 0) == 1
        assert packed.lane_value(1, 1) == 0
        assert packed.lane_value(1, 4) == 1
        assert packed.read_lanes(2) == 0
        assert packed.dump_lane(0) == [0, 1, 0, 0]

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            PackedMemoryArray(0, lanes=4)
        with pytest.raises(ValueError):
            PackedMemoryArray(4, lanes=0)
        with pytest.raises(IndexError):
            PackedMemoryArray(4, lanes=2).lane_value(0, 2)
        with pytest.raises(IndexError):
            PackedMemoryArray(4, lanes=2).dump_lane(-1)

    def test_healthy_stream_detects_nothing(self):
        stream = compile_march(MARCH_C_MINUS, 8)
        packed = PackedMemoryArray(8, lanes=16)
        detected, executed = packed.apply_stream(stream.ops,
                                                 tables=stream.tables)
        assert detected == 0
        assert executed == stream.operation_count

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            PackedMemoryArray(2, lanes=1).apply_stream(
                [("x", 0, 0, None, None, 0)]
            )

    def test_early_abort_when_all_lanes_detected(self):
        # Two checked reads both mismatching in the only lane: replay must
        # stop at the first one.
        ops = [("w", 0, 0, 0, None, 0),
               ("r", 0, 0, None, 1, 0),
               ("r", 0, 0, None, 1, 0)]
        detected, executed = PackedMemoryArray(1, lanes=1).apply_stream(ops)
        assert detected == 1
        assert executed == 2  # write + first read only


class TestVectorSemantics:
    def test_vectorizable_fault_types(self):
        assert StuckAtFault(3, 1).vector_semantics() == VectorSemantics(
            "stuck", cell=3, value=1)
        assert TransitionFault(2, rising=True).vector_semantics() == \
            VectorSemantics("transition", cell=2, rising=True)
        cfin = InversionCouplingFault(1, 3, rising=False).vector_semantics()
        assert (cfin.kind, cfin.cell, cfin.victim_cell, cfin.rising,
                cfin.value) == ("coupling", 1, 3, False, None)
        cfid = IdempotentCouplingFault(0, 2, rising=True,
                                       force_to=1).vector_semantics()
        assert (cfid.kind, cfid.victim_cell, cfid.value) == ("coupling", 2, 1)

    def test_stuck_open_vectorizes(self):
        from repro.faults import StuckOpenFault

        assert StuckOpenFault(2).vector_semantics() == VectorSemantics(
            "stuck-open", cell=2, value=0)
        assert StuckOpenFault(5, initial_sense=1).vector_semantics() == \
            VectorSemantics("stuck-open", cell=5, value=1)
        # A word-oriented power-up value cannot ride a 1-bit lane.
        assert StuckOpenFault(1, initial_sense=3).vector_semantics() is None

    def test_state_coupling_vectorizes(self):
        from repro.faults import StateCouplingFault

        cfst = StateCouplingFault(BitLocation(1, 2), BitLocation(4, 0),
                                  aggressor_state=0,
                                  force_to=1).vector_semantics()
        assert (cfst.kind, cfst.cell, cfst.bit, cfst.victim_cell,
                cfst.victim_bit) == ("state", 1, 2, 4, 0)
        assert cfst.rising is False  # aggressor holds 0
        assert cfst.value == 1  # victim forced to 1

    def test_structural_fault_types_vectorize(self):
        from repro.faults import BridgingFault, DataRetentionFault

        drf = DataRetentionFault(2, retention=8).vector_semantics()
        assert (drf.kind, drf.cell, drf.value, drf.extra) == \
            ("retention", 2, 0, (8,))
        bf = BridgingFault(0, 1, kind="or").vector_semantics()
        assert (bf.kind, bf.cell, bf.victim_cell, bf.value) == \
            ("bridge", 0, 1, 1)
        assert BridgingFault(0, 1, kind="and").vector_semantics().value == 0

    def test_npsf_and_decoder_vectorize(self):
        from repro.faults import af_multi_access
        from repro.faults.npsf import StaticNPSF

        npsf = StaticNPSF(4, neighbors=(3, 5), pattern=(1, 0),
                          force_to=1).vector_semantics()
        assert (npsf.kind, npsf.cell, npsf.value) == ("npsf", 4, 1)
        assert npsf.extra == ((3, 1), (5, 0))
        af = af_multi_access(1, (4,)).vector_semantics()
        assert (af.kind, af.extra) == ("decoder", ((1, (1, 4)),))

    def test_linked_vectorizes_only_pure_coupling(self):
        from repro.faults import StuckAtFault
        from repro.faults.linked import LinkedFault, linked_cfin_pair

        linked = linked_cfin_pair(0, 4, 2).vector_semantics()
        assert linked.kind == "linked"
        assert [part.kind for part in linked.extra] == \
            ["coupling", "coupling"]
        # A composite with a non-coupling member has no shared-edge lane
        # form and must take the per-fault path.
        mixed = LinkedFault([InversionCouplingFault(0, 2, rising=True),
                             StuckAtFault(2, 1)])
        assert mixed.vector_semantics() is None

    def test_default_fault_is_not_vectorizable(self):
        from repro.faults.base import Fault

        class AnalogueFault(Fault):
            fault_class = "X"
            name = "analogue"

            def cells(self):
                return (0,)

        assert AnalogueFault().vector_semantics() is None

    def test_word_oriented_bits_fall_back(self):
        # A bit > 0 descriptor cannot live in a 1-bit-per-cell plane.
        universe = [StuckAtFault(1, 1, bit=2),
                    InversionCouplingFault(BitLocation(0, 1),
                                           BitLocation(0, 2), rising=True)]
        classes, fallback = partition_universe(universe, n=4, m=1)
        assert classes == {}
        assert [fault for _, fault in fallback] == universe


class TestPartitionUniverse:
    def test_standard_universe_split(self):
        universe = standard_universe(16)
        classes, fallback = partition_universe(universe, n=16)
        counts = {kind: len(group) for kind, group in classes.items()}
        # SAF -> stuck, TF -> transition, SOF -> stuck-open,
        # CFin+CFid -> coupling, CFst -> state, BF -> bridge,
        # AF -> decoder: the whole standard universe vectorizes.
        assert counts["stuck"] == 32
        assert counts["transition"] == 32
        assert counts["stuck-open"] == 16
        assert counts["coupling"] == 30 * 2 + 30 * 4
        assert counts["state"] == 30 * 4
        assert counts["bridge"] == 30
        assert counts["decoder"] == 32
        assert sum(counts.values()) == len(universe)
        assert fallback == []

    def test_indices_reassemble_universe_order(self):
        universe = standard_universe(8)
        classes, fallback = partition_universe(universe, n=8)
        indices = sorted(
            [index for group in classes.values() for index, _, _ in group]
            + [index for index, _ in fallback]
        )
        assert indices == list(range(len(universe)))

    def test_word_oriented_geometry_vectorizes(self):
        universe = single_cell_universe(8, m=4, classes=("SAF", "TF"))
        classes, fallback = partition_universe(universe, n=8, m=4)
        assert not fallback
        counts = {kind: len(group) for kind, group in classes.items()}
        assert counts == {"stuck": 64, "transition": 64}

    def test_bits_beyond_m_fall_back(self):
        # A descriptor naming bit 4 of a 4-bit word does not fit the
        # geometry and must take the scalar path.
        universe = [StuckAtFault(1, 1, bit=4), StuckAtFault(1, 1, bit=3)]
        classes, fallback = partition_universe(universe, n=8, m=4)
        assert [fault for _, fault in fallback] == [universe[0]]
        assert len(classes["stuck"]) == 1

    def test_out_of_range_sites_fall_back(self):
        classes, fallback = partition_universe([StuckAtFault(9, 1)], n=8)
        assert classes == {}
        assert len(fallback) == 1

    def test_build_lane_model_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="no lane model"):
            build_lane_model("bogus", [])


class TestRunCampaignBatched:
    def test_outcomes_preserve_universe_order(self):
        stream = compile_march(MATS, 8)
        universe = standard_universe(8)
        result = run_campaign_batched(stream, universe)
        assert [fault for fault, _ in result.outcomes] == list(universe)

    def test_faults_batched_accounting(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        result = run_campaign_batched(stream, universe)
        classes, fallback = partition_universe(universe, n=16)
        assert result.faults_batched == sum(
            len(group) for group in classes.values())
        assert result.faults_batched + len(fallback) == result.faults_total

    def test_fewer_operations_than_scalar_replay(self):
        stream = compile_march(MARCH_C_MINUS, 64)
        universe = single_cell_universe(64, classes=("SAF", "TF"))
        batched = run_campaign_batched(stream, universe)
        scalar = run_campaign(stream, universe)
        assert batched.faults_batched == len(universe)
        # One pass per class vs one (partial) replay per fault.
        assert batched.operations_replayed < scalar.operations_replayed / 10

    def test_progress_covers_whole_universe(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = standard_universe(16)
        seen = []
        run_campaign_batched(stream, universe, chunk_size=64,
                             progress=lambda done, total:
                             seen.append((done, total)))
        assert seen[-1] == (len(universe), len(universe))
        assert [done for done, _ in seen] == sorted(d for d, _ in seen)
        assert all(total == len(universe) for _, total in seen)

    def test_max_lanes_chunking_matches_single_pass(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = single_cell_universe(16, classes=("SAF", "TF"))
        wide = run_campaign_batched(stream, universe)
        narrow = run_campaign_batched(stream, universe, max_lanes=5)
        assert [d for _, d in wide.outcomes] == [d for _, d in narrow.outcomes]
        with pytest.raises(ValueError):
            run_campaign_batched(stream, universe, max_lanes=0)

    def test_ram_factory_delegates_to_scalar_engine(self):
        stream = compile_march(MARCH_C_MINUS, 8)
        universe = single_cell_universe(8, classes=("SAF",))
        result = run_campaign_batched(stream, universe,
                                      ram_factory=lambda: SinglePortRAM(8))
        assert result.faults_batched == 0
        assert result.detection_ratio == 1.0

    def test_word_oriented_stream_batches(self):
        stream = compile_march(MARCH_C_MINUS, 8, m=4)
        universe = single_cell_universe(8, m=4, classes=("SAF",))
        result = run_campaign_batched(stream, universe)
        assert result.faults_batched == len(universe)
        assert result.detection_ratio == 1.0

    def test_unknown_vector_kind_falls_back_to_scalar(self):
        # A third-party fault may return a VectorSemantics kind nobody
        # registered a lane model for: the campaign must take the scalar
        # path for it, not crash (the any-universe contract).
        class ExoticFault(StuckAtFault):
            def vector_semantics(self):
                return VectorSemantics("read-disturb", cell=3)

        stream = compile_march(MARCH_C_MINUS, 8)
        universe = [StuckAtFault(1, 1), ExoticFault(3, 1), StuckAtFault(5, 0)]
        result = run_campaign_batched(stream, universe)
        assert [fault for fault, _ in result.outcomes] == universe
        assert result.detection_ratio == 1.0
        assert result.faults_batched == 2  # the exotic one went scalar

    def test_register_lane_model_extends_vectorization(self):
        from repro.sim.batched import _MODELS, _StuckLanes

        class PinnedHighFault(StuckAtFault):
            """A stuck-at-1 under a custom vector-semantics kind."""

            def __init__(self, cell):
                super().__init__(cell, 1)

            def vector_semantics(self):
                base = super().vector_semantics()
                return VectorSemantics("pinned-high", cell=base.cell,
                                       value=1)

        stream = compile_march(MARCH_C_MINUS, 8)
        universe = [PinnedHighFault(2), StuckAtFault(4, 0)]
        unregistered = run_campaign_batched(stream, universe)
        assert unregistered.faults_batched == 1  # custom kind went scalar
        register_lane_model("pinned-high", _StuckLanes)
        try:
            registered = run_campaign_batched(stream, universe)
        finally:
            _MODELS.pop("pinned-high")
        assert registered.faults_batched == 2
        assert [d for _, d in registered.outcomes] == \
            [d for _, d in unregistered.outcomes]
        with pytest.raises(ValueError):
            register_lane_model("", _StuckLanes)

    def test_reference_pass_shared_with_scalar_engine(self):
        stream = compile_march(MATS, 8)
        assert not stream.reference_verified
        run_campaign_batched(stream, single_cell_universe(8, classes=("SAF",)))
        assert stream.reference_verified
        assert stream.reference_operations == stream.operation_count


class TestBatchedEquivalenceInterpreted:
    """Small-n ground truth: batched vs the *interpreted* engine."""

    @pytest.mark.parametrize("test", [MARCH_C_MINUS, MATS_PLUS_RETENTION],
                             ids=lambda t: t.name)
    def test_march(self, test):
        universe = standard_universe(14) + single_cell_universe(
            14, classes=("DRF",), retention=64)
        batched = run_coverage(march_runner(test), universe, 14,
                               engine="batched")
        interpreted = run_coverage(march_runner(test), universe, 14,
                                   engine="interpreted")
        assert report_key(batched) == report_key(interpreted)

    @pytest.mark.parametrize("build", [standard_schedule, extended_schedule],
                             ids=["standard-3", "extended-5"])
    def test_schedule(self, build):
        universe = standard_universe(14)
        runner = schedule_runner(build(n=14))
        batched = run_coverage(runner, universe, 14, engine="batched")
        interpreted = run_coverage(runner, universe, 14, engine="interpreted")
        assert report_key(batched) == report_key(interpreted)

    def test_single_fault_state_trace(self):
        # Per-lane state must equal the dedicated scalar replay's memory
        # image, fault by fault (stronger than verdict equality).  SOF is
        # included: its sense latch lives in the lane model, but the
        # array image (writes lost at the open cell) must still match.
        stream = compile_march(MATS, 6)
        universe = single_cell_universe(6, classes=("SAF", "TF", "SOF"))
        classes, fallback = partition_universe(universe, n=6)
        assert not fallback
        for kind, group in classes.items():
            model = build_lane_model(kind, [sem for _, _, sem in group])
            packed = PackedMemoryArray(6, lanes=len(group))
            model.install(packed)
            packed.apply_stream(stream.ops, tables=stream.tables, model=model,
                                stop_when_all_detected=False)
            for lane, (_, fault, _) in enumerate(group):
                ram = SinglePortRAM(6)
                injector = FaultInjector([fault])
                injector.install(ram)
                ram.apply_stream(stream.ops, tables=stream.tables)
                injector.remove(ram)
                assert packed.dump_lane(lane) == ram.dump(), fault.name


class TestStuckOpenLanes:
    """The SOF sense-latch lane model (the ROADMAP's 'remaining headroom'
    vectorization): one lane pass must reproduce the scalar SOF replay
    verdict for verdict, including the two-read detection subtlety."""

    def test_sof_universe_fully_batched(self):
        stream = compile_march(MARCH_C_MINUS, 16)
        universe = single_cell_universe(16, classes=("SOF",))
        result = run_campaign_batched(stream, universe)
        assert result.faults_batched == len(universe)
        scalar = run_campaign(stream, universe, reference_check=False)
        assert [d for _, d in result.outcomes] == \
            [d for _, d in scalar.outcomes]

    @pytest.mark.parametrize("build", [standard_schedule, extended_schedule],
                             ids=["standard-3", "extended-5"])
    def test_sof_through_pi_schedules(self, build):
        # π-test sweeps re-read cells constantly, so the latch state
        # machine is exercised much harder than by March elements.
        from repro.sim import compile_schedule

        schedule = build(n=14)
        stream = compile_schedule(schedule, 14)
        universe = single_cell_universe(14, classes=("SOF",))
        batched = run_campaign_batched(stream, universe)
        assert batched.faults_batched == len(universe)
        scalar = run_campaign(stream, universe, reference_check=False)
        assert [d for _, d in batched.outcomes] == \
            [d for _, d in scalar.outcomes]

    def test_initial_sense_one_latch(self):
        from repro.faults import StuckOpenFault

        # First read of the open cell observes the power-up latch value.
        stream_detects_1 = compile_march(MATS, 4)  # starts with w0 sweep
        for initial in (0, 1):
            universe = [StuckOpenFault(2, initial_sense=initial)]
            batched = run_campaign_batched(stream_detects_1, universe)
            scalar = run_campaign(stream_detects_1, universe,
                                  reference_check=False)
            assert [d for _, d in batched.outcomes] == \
                [d for _, d in scalar.outcomes], f"initial_sense={initial}"
            assert batched.faults_batched == 1


class TestBatchedEquivalence256:
    """The acceptance sweep: full standard_universe(256), every library
    March test and both π-test schedules.  The per-fault replay engine is
    the baseline (itself equivalence-proven against the interpreted
    engines exhaustively at small n and cross-checked at n in {64..1024}
    by ``benchmarks/bench_campaign_engine.py``); the batched engine must
    reproduce its CoverageReport byte for byte."""

    @pytest.mark.parametrize("test", ALL_MARCH_TESTS, ids=lambda t: t.name)
    def test_march(self, test, universe_256):
        runner = march_runner(test)
        batched = run_coverage(runner, universe_256, 256, engine="batched")
        compiled = run_coverage(runner, universe_256, 256, engine="compiled")
        assert report_key(batched) == report_key(compiled)

    @pytest.mark.parametrize("build", [standard_schedule, extended_schedule],
                             ids=["standard-3", "extended-5"])
    def test_schedule(self, build, universe_256):
        runner = schedule_runner(build(n=256))
        batched = run_coverage(runner, universe_256, 256, engine="batched")
        compiled = run_coverage(runner, universe_256, 256, engine="compiled")
        assert report_key(batched) == report_key(compiled)


class TestBatchedSharded256:
    """Acceptance sweep for process sharding: on the full
    ``standard_universe(256)``, ``workers=2`` (persistent pool, lane
    passes concurrent with the pooled scalar remainder) must reproduce
    the single-process batched CoverageReport byte for byte."""

    def test_march_workers_byte_identical(self, universe_256):
        runner = march_runner(MARCH_C_MINUS)
        serial = run_coverage(runner, universe_256, 256, engine="batched")
        sharded = run_coverage(runner, universe_256, 256, engine="batched",
                               workers=2)
        assert_reports_identical(serial, sharded)

    def test_schedule_workers_byte_identical(self, universe_256):
        runner = schedule_runner(standard_schedule(n=256))
        serial = run_coverage(runner, universe_256, 256, engine="batched")
        sharded = run_coverage(runner, universe_256, 256, engine="batched",
                               workers=2)
        assert report_key(sharded) == report_key(serial)


class TestRunCoverageBatchedRouting:
    def test_engine_batched_requires_compilable(self):
        with pytest.raises(ValueError, match="compilable"):
            run_coverage(lambda ram: False,
                         single_cell_universe(8, classes=("SAF",)), 8,
                         engine="batched")

    def test_engine_batched_report(self):
        universe = single_cell_universe(16, classes=("SAF", "TF"))
        report = run_coverage(march_runner(MARCH_C_MINUS), universe, 16,
                              engine="batched")
        assert report.overall == 1.0
