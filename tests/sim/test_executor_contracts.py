"""Cross-executor IR contracts: accumulator ids, capture, executed counts.

Four executors replay the :mod:`repro.sim` IR -- the inlined
``SinglePortRAM.apply_stream`` / ``MultiPortRAM.apply_stream`` hot
loops, the portable :func:`~repro.memory.stream_exec
.apply_stream_generic`, and the lane-parallel
:meth:`~repro.memory.packed.PackedMemoryArray.apply_stream`.  The suite
pins the contracts that used to be implicit:

* ``"ra"``/``"wa"`` records select their accumulator with the sixth
  record slot on *every* executor (flat streams included) -- a stream
  running two automata must never cross-feed them;
* within one cycle group a ``"wa"`` consumes its accumulator as of the
  *cycle start* (``stream_exec._run_group`` semantics), with ``"ra"``
  contributions of the same cycle visible only to later cycles;
* ``"s"`` capture: scalar executors append observed values, the packed
  executor appends observed lane columns;
* ``executed`` counts every read/write record including the ``"ra"``/
  ``"wa"`` recurrence ops, identically across executors.
"""

import pytest

from repro.memory import MultiPortRAM, PackedMemoryArray, SinglePortRAM
from repro.memory.stream_exec import apply_stream_generic
from repro.sim.ir import OpStream


def _flat_info(ops):
    return tuple((0, "test") for _ in ops)


class _NoCycleRAM:
    """Duck-typed multi-port front-end *without* a ``cycle`` method, to
    force ``apply_stream_generic`` onto its reads-then-writes group
    fallback."""

    def __init__(self, inner: MultiPortRAM):
        self._inner = inner

    def read(self, addr, port=0):
        return self._inner.read(addr, port=port)

    def write(self, addr, value, port=0):
        self._inner.write(addr, value, port=port)

    def idle(self, cycles):
        self._inner.idle(cycles)

    def dump(self):
        return self._inner.dump()


# A flat stream running two recurrence automata concurrently: correct
# per-id accumulators keep them independent; a shared accumulator
# cross-feeds them and corrupts both "wa" values.
TWO_AUTOMATA_OPS = (
    ("w", 0, 0, 0, None, 0),
    ("w", 0, 1, 0, None, 0),
    ("ra", 0, 0, None, 1, 0),  # acc0 ^= read(0) ^ 1 = 1
    ("ra", 0, 1, None, 1, 1),  # acc1 ^= read(1) ^ 1 = 1
    ("wa", 0, 0, 0, None, 1),  # addr0 <- acc1 ^ 0 = 1, acc1 reset
    ("wa", 0, 1, 1, None, 0),  # addr1 <- acc0 ^ 1 = 0, acc0 reset
    ("r", 0, 0, None, 1, 0),
    ("r", 0, 1, None, 0, 0),
)


class TestAccumulatorIds:
    """Regression for the shared-accumulator bug: every executor must
    honour the per-record accumulator id on flat streams.  (With one
    shared accumulator the two ``"ra"`` contributions cancel, both
    ``"wa"`` records store the wrong value, and the checked reads
    mismatch.)"""

    def test_single_port_inlined_executor(self):
        ram = SinglePortRAM(2)
        mismatches = []
        executed = ram.apply_stream(TWO_AUTOMATA_OPS,
                                    mismatches=mismatches)
        assert mismatches == []
        assert executed == len(TWO_AUTOMATA_OPS)
        assert ram.dump() == [1, 0]

    def test_generic_executor(self):
        ram = SinglePortRAM(2)
        mismatches = []
        executed = apply_stream_generic(ram, TWO_AUTOMATA_OPS,
                                        mismatches=mismatches)
        assert mismatches == []
        assert executed == len(TWO_AUTOMATA_OPS)
        assert ram.dump() == [1, 0]

    def test_packed_executor_bit_oriented(self):
        packed = PackedMemoryArray(2, lanes=5)
        detected, executed = packed.apply_stream(TWO_AUTOMATA_OPS)
        assert detected == 0  # any cross-feed detects in every lane
        assert executed == len(TWO_AUTOMATA_OPS)
        for lane in range(5):
            assert packed.dump_lane(lane) == [1, 0]

    def test_packed_executor_word_oriented(self):
        # Same stream on an m=3 geometry: value/mask 1 lives in plane 0,
        # the other planes must stay clean through both automata.
        packed = PackedMemoryArray(2, lanes=4, m=3)
        detected, executed = packed.apply_stream(TWO_AUTOMATA_OPS)
        assert detected == 0
        assert executed == len(TWO_AUTOMATA_OPS)
        for lane in range(4):
            assert packed.dump_lane(lane) == [1, 0]


class TestSameCycleAccumulatorOrdering:
    """Satellite contract: a ``"wa"`` inside a cycle group consumes the
    accumulator as of the cycle *start*; an ``"ra"`` in the same group
    becomes visible to later cycles only.  Pinned across all three
    grouped executors (native ``MultiPortRAM.apply_stream``,
    ``apply_stream_generic`` through ``cycle()``, and the generic
    reads-then-writes fallback)."""

    def _stream(self):
        ops = (
            ("w", 0, 0, 1, None, 0),
            # One cycle: port 0 reads addr 0 into acc 0 while port 1
            # writes acc 0 -- which is still 0 at cycle start.
            ("grp", 0, 0, 2, None, 0),
            ("ra", 0, 0, None, 0, 0),
            ("wa", 1, 1, 0, None, 0),
            ("r", 0, 1, None, 0, 0),   # cycle-start value: 0, not 1
            ("wa", 0, 1, 0, None, 0),  # next cycle sees the ra: 1
            ("r", 0, 1, None, 1, 0),
        )
        return OpStream(source="schedule", name="same-cycle", n=2, m=1,
                        ops=ops, info=_flat_info(ops), ports=2)

    def _check(self, ram, executor):
        stream = self._stream()
        mismatches = []
        executed = executor(ram, stream, mismatches)
        assert mismatches == []
        assert executed == 6  # the grp marker is free
        assert ram.dump() == [1, 1]

    def test_native_multiport_executor(self):
        self._check(
            MultiPortRAM(2, ports=2),
            lambda ram, stream, mismatches: ram.apply_stream(
                stream.ops, mismatches=mismatches),
        )

    def test_generic_executor_with_cycle(self):
        self._check(
            MultiPortRAM(2, ports=2),
            lambda ram, stream, mismatches: apply_stream_generic(
                ram, stream.ops, mismatches=mismatches),
        )

    def test_generic_executor_without_cycle(self):
        self._check(
            _NoCycleRAM(MultiPortRAM(2, ports=2)),
            lambda ram, stream, mismatches: apply_stream_generic(
                ram, stream.ops, mismatches=mismatches),
        )


class TestPackedCapture:
    """The ``"s"`` capture contract of the packed executor: an optional
    ``captured`` list collects the observed lane column of every
    signature read, in order (scalar executors collect observed
    values)."""

    OPS = (
        ("w", 0, 0, 1, None, 0),
        ("s", 0, 0, None, 1, 0),
        ("w", 0, 1, 0, None, 0),
        ("s", 0, 1, None, 0, 0),
    )

    def test_healthy_columns(self):
        packed = PackedMemoryArray(2, lanes=3)
        captured = []
        packed.apply_stream(self.OPS, captured=captured)
        assert captured == [0b111, 0]

    def test_matches_scalar_capture_per_lane(self):
        from repro.faults import FaultInjector, StuckAtFault

        from repro.sim.batched import build_lane_model

        faults = [StuckAtFault(0, 0), StuckAtFault(1, 1)]
        model = build_lane_model(
            "stuck", [fault.vector_semantics() for fault in faults])
        packed = PackedMemoryArray(2, lanes=len(faults))
        model.install(packed)
        captured = []
        packed.apply_stream(self.OPS, model=model, captured=captured,
                            stop_when_all_detected=False)
        for lane, fault in enumerate(faults):
            ram = SinglePortRAM(2)
            injector = FaultInjector([fault])
            injector.install(ram)
            scalar_captured = []
            ram.apply_stream(self.OPS, captured=scalar_captured)
            injector.remove(ram)
            assert [(column >> lane) & 1 for column in captured] == \
                scalar_captured, fault.name

    def test_word_oriented_columns(self):
        packed = PackedMemoryArray(1, lanes=2, m=4)
        captured = []
        packed.apply_stream(
            (("w", 0, 0, 0xA, None, 0), ("s", 0, 0, None, 0xA, 0)),
            captured=captured,
        )
        assert captured == [packed.broadcast(0xA)]
        assert [packed.lane_value(0, lane) for lane in range(2)] == \
            [0xA, 0xA]

    def test_default_is_unchecked_capture_free(self):
        # Without a captured list an "s" record is just a checked read.
        packed = PackedMemoryArray(2, lanes=2)
        detected, executed = packed.apply_stream(self.OPS)
        assert (detected, executed) == (0, 4)


class TestBackendParity:
    """The numpy uint64 block backend and the pure-int backend must be
    observationally identical behind the ``PackedMemoryArray`` API: same
    resolved lane images, same verdict columns, same captured values,
    byte-identical ``CoverageReport`` pickles.  (The campaign engines
    treat ``backend`` as a pure performance switch.)"""

    def test_backend_selection(self, monkeypatch):
        pytest.importorskip("numpy")
        from repro.memory import packed as packed_module

        assert PackedMemoryArray(4, lanes=2).backend == "int"
        assert PackedMemoryArray(4, lanes=2, backend="int").backend == "int"
        assert PackedMemoryArray(4, lanes=2,
                                 backend="numpy").backend == "numpy"
        # The auto threshold is read per construction, so a pinned value
        # exercises both sides of the switch without 2^23-bit columns.
        monkeypatch.setattr(packed_module, "AUTO_NUMPY_MIN_BITS", 64)
        assert PackedMemoryArray(4, lanes=16, m=4).backend == "numpy"
        assert PackedMemoryArray(4, lanes=63).backend == "int"
        with pytest.raises(ValueError, match="backend"):
            PackedMemoryArray(4, lanes=2, backend="vax")

    @pytest.mark.parametrize("m", [1, 8])
    def test_faulted_state_and_verdict_parity(self, m):
        # Strongest form: for every lane class of a full standard
        # universe, both backends resolve identical per-lane memory
        # images and identical detection columns.
        pytest.importorskip("numpy")
        from repro.faults import standard_universe
        from repro.march.library import MARCH_C_MINUS
        from repro.sim import (
            build_lane_model,
            compile_march,
            partition_universe,
        )

        n = 8 if m == 1 else 6
        stream = compile_march(MARCH_C_MINUS, n, m=m)
        universe = standard_universe(n, m=m)
        classes, fallback = partition_universe(universe, n=n, m=m)
        assert not fallback
        for kind, group in classes.items():
            sems = [sem for _, _, sem in group]
            results = {}
            for backend in ("int", "numpy"):
                model = build_lane_model(kind, sems)
                packed = PackedMemoryArray(n, lanes=len(group), m=m,
                                           backend=backend)
                model.install(packed)
                detected, executed = packed.apply_stream(
                    stream.ops, tables=stream.tables, model=model,
                    stop_when_all_detected=False)
                results[backend] = (
                    detected, executed,
                    [packed.dump_lane(lane) for lane in range(len(group))],
                )
            assert results["int"] == results["numpy"], kind

    def test_capture_parity(self):
        # "s" records append plain-int observed columns on both
        # backends (the numpy executor converts at the capture point).
        pytest.importorskip("numpy")
        from repro.faults import StuckAtFault

        from repro.sim.batched import build_lane_model

        sems = [StuckAtFault(0, 0).vector_semantics(),
                StuckAtFault(1, 1).vector_semantics()]
        captures = {}
        for backend in ("int", "numpy"):
            model = build_lane_model("stuck", sems)
            packed = PackedMemoryArray(2, lanes=2, backend=backend)
            model.install(packed)
            captured = []
            packed.apply_stream(TestPackedCapture.OPS, model=model,
                                captured=captured,
                                stop_when_all_detected=False)
            captures[backend] = captured
        assert captures["int"] == captures["numpy"]
        assert all(isinstance(column, int)
                   for column in captures["numpy"])

    def test_coverage_reports_byte_identical(self):
        pytest.importorskip("numpy")
        import pickle

        from repro.analysis import march_runner, run_coverage
        from repro.faults import standard_universe
        from repro.march.library import MARCH_C_MINUS

        universe = standard_universe(16)
        runner = march_runner(MARCH_C_MINUS)
        reports = {
            backend: run_coverage(runner, universe, 16, engine="batched",
                                  backend=backend)
            for backend in ("int", "numpy")
        }
        assert pickle.dumps(reports["int"]) == pickle.dumps(reports["numpy"])


class TestExecutedParity:
    """``executed`` counts w/r/s and the ra/wa recurrence ops, once per
    pass, identically on the packed and scalar executors."""

    def test_full_replay_counts_match(self):
        from repro.prt import standard_schedule
        from repro.sim import compile_schedule

        stream = compile_schedule(standard_schedule(n=8), 8)
        assert stream.counts_by_kind().get("ra", 0) > 0
        assert stream.counts_by_kind().get("wa", 0) > 0
        ram = SinglePortRAM(8)
        scalar_executed = ram.apply_stream(stream.ops, tables=stream.tables)
        packed = PackedMemoryArray(8, lanes=4)
        _detected, packed_executed = packed.apply_stream(
            stream.ops, tables=stream.tables, stop_when_all_detected=False)
        assert packed_executed == scalar_executed == stream.operation_count

    @pytest.mark.parametrize("m", [1, 4])
    def test_word_oriented_counts_match(self, m):
        from repro.march.library import MARCH_C_MINUS
        from repro.sim import compile_march

        stream = compile_march(MARCH_C_MINUS, 6, m=m)
        ram = SinglePortRAM(6, m=m)
        scalar_executed = ram.apply_stream(stream.ops, tables=stream.tables)
        packed = PackedMemoryArray(6, lanes=3, m=m)
        _detected, packed_executed = packed.apply_stream(
            stream.ops, tables=stream.tables, stop_when_all_detected=False)
        assert packed_executed == scalar_executed == stream.operation_count
