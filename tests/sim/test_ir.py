"""Tests for the OpStream IR and the compilers."""

import pytest

from repro.gf2 import poly_from_string
from repro.gf2m import GF2m
from repro.march import MATS_PLUS_RETENTION
from repro.march.library import MARCH_C_MINUS, MATS_PLUS
from repro.prt import (
    DualPortPiIteration,
    PiIteration,
    QuadPortPiIteration,
    standard_schedule,
)
from repro.sim import (
    OpStream,
    cached_dual_port_stream,
    cached_quad_port_stream,
    compile_dual_port_pi,
    compile_march,
    compile_pi_iteration,
    compile_quad_port_pi,
    compile_schedule,
)

F16 = GF2m(poly_from_string("1+z+z^4"))


class TestOpStream:
    def test_parallel_metadata_enforced(self):
        with pytest.raises(ValueError):
            OpStream(source="march", name="bad", n=1, m=1,
                     ops=(("w", 0, 0, 0, None, 0),), info=())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            OpStream(source="march", name="bad", n=1, m=1,
                     ops=(("x", 0, 0, 0, None, 0),), info=((0, 0),))

    def test_counters(self):
        stream = compile_march(MATS_PLUS_RETENTION, 8)
        # Two D256 delay elements -> 512 idle cycles, zero operations.
        assert stream.idle_cycles == 512
        assert stream.operation_count == MATS_PLUS_RETENTION.operation_count(8)
        assert len(stream) == stream.operation_count + 2
        kinds = stream.counts_by_kind()
        assert kinds["i"] == 2
        assert kinds["r"] == stream.checked_reads

    def test_repr(self):
        assert "march" in repr(compile_march(MATS_PLUS, 8))

    def test_flat_streams_are_the_degenerate_grouped_case(self):
        # Single-port compilation is untouched by the cycle-group
        # extension: no markers, one port, one cycle per operation.
        stream = compile_march(MARCH_C_MINUS, 8)
        assert not stream.grouped
        assert stream.ports == 1
        assert "grp" not in stream.counts_by_kind()
        assert stream.replay_cycles == stream.operation_count

    def test_ports_validated(self):
        with pytest.raises(ValueError, match="at least one port"):
            OpStream(source="march", name="bad", n=1, m=1, ops=(), info=(),
                     ports=0)


class TestCycleGroups:
    def test_grouped_counters(self):
        stream = compile_dual_port_pi(DualPortPiIteration(seed=(0, 1)), 10)
        kinds = stream.counts_by_kind()
        # init + n read groups + signature (write-backs are flat records)
        assert kinds["grp"] == 1 + 10 + 1
        assert stream.grouped
        assert stream.ports == 2
        # markers are not operations
        assert stream.operation_count == 3 * 10 + 4
        assert len(stream) == stream.operation_count + kinds["grp"]
        assert stream.replay_cycles == 2 * 10 + 2

    def test_quad_uses_two_accumulators(self):
        stream = compile_quad_port_pi(QuadPortPiIteration(seed=(0, 1)), 12)
        acc_ids = {record[5] for record in stream.ops
                   if record[0] in ("ra", "wa")}
        assert acc_ids == {0, 1}
        assert stream.ports == 4
        assert stream.replay_cycles == 12 + 2

    def test_cached_streams_are_shared(self):
        iteration = DualPortPiIteration(seed=(0, 1))
        assert cached_dual_port_stream(iteration, 14) is \
            cached_dual_port_stream(iteration, 14)
        quad = QuadPortPiIteration(seed=(0, 1))
        assert cached_quad_port_stream(quad, 12) is \
            cached_quad_port_stream(quad, 12)

    def test_grouped_repr_names_ports(self):
        stream = compile_quad_port_pi(QuadPortPiIteration(seed=(0, 1)), 12)
        assert "ports=4" in repr(stream)


class TestCompileMarch:
    def test_operation_count_bom(self):
        stream = compile_march(MARCH_C_MINUS, 32)
        assert stream.operation_count == MARCH_C_MINUS.operation_count(32)

    def test_wom_backgrounds_multiply_length(self):
        bom = compile_march(MARCH_C_MINUS, 16, m=1)
        wom = compile_march(MARCH_C_MINUS, 16, m=4)
        # ceil(log2 4) + 1 = 3 standard backgrounds
        assert wom.operation_count == 3 * bom.operation_count

    def test_info_maps_background_and_element(self):
        stream = compile_march(MATS_PLUS, 4)
        backgrounds = {background for background, _ in stream.info}
        elements = {element for _, element in stream.info}
        assert backgrounds == {0}
        assert elements == {0, 1, 2}

    def test_bad_background_rejected(self):
        with pytest.raises(ValueError):
            compile_march(MATS_PLUS, 8, m=2, backgrounds=[7])


class TestCompileSchedule:
    def test_operation_count_matches_model(self):
        for verify in (True, False):
            schedule = standard_schedule(n=14, verify=verify)
            stream = compile_schedule(schedule, 14)
            assert stream.operation_count == schedule.operation_count(14)

    def test_segments_cover_stream(self):
        schedule = standard_schedule(n=14)
        stream = compile_schedule(schedule, 14)
        labels = [segment.label for segment in stream.segments]
        assert labels == ["iteration"] * 3 + ["readback"]
        assert stream.segments[0].start == 0
        for previous, current in zip(stream.segments, stream.segments[1:],
                                     strict=False):
            assert current.start == previous.stop
        assert stream.segments[-1].stop == len(stream)

    def test_pause_emits_idles(self):
        schedule = standard_schedule(n=14, pause_between=99)
        stream = compile_schedule(schedule, 14)
        # Between each pair of iterations plus before the read-back.
        assert stream.idle_cycles == 3 * 99

    def test_m_mismatch_rejected(self):
        schedule = standard_schedule(field=F16, n=16)
        with pytest.raises(ValueError, match="does not match field"):
            compile_schedule(schedule, 16, m=1)

    def test_too_small_memory_rejected(self):
        schedule = standard_schedule()
        with pytest.raises(ValueError, match="more than"):
            compile_schedule(schedule, 2)

    def test_trajectory_size_mismatch_rejected(self):
        schedule = standard_schedule(n=14)
        with pytest.raises(ValueError, match="trajectory"):
            compile_schedule(schedule, 21)


class TestCompileIteration:
    def test_operation_count(self):
        iteration = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))
        stream = compile_pi_iteration(iteration, 14)
        assert stream.operation_count == iteration.operation_count(14)

    def test_null_taps_skipped(self):
        # g = 1 + x^2 + x^3 has one null tap: 2 reads + 1 write per
        # sub-iteration, not 3 + 1.
        iteration = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))
        stream = compile_pi_iteration(iteration, 14)
        assert stream.counts_by_kind()["ra"] == 2 * 14

    def test_inverted_iteration_encodes_seed(self):
        iteration = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1),
                                invert=True)
        stream = compile_pi_iteration(iteration, 14)
        assert stream.segments[0].init_state == (1, 1, 0)
