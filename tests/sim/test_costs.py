"""The per-class cost model and the shard plans it cuts.

Shard plans are the parallel scheduler's foundation: they must tile the
fault range exactly (every index once, contiguous, in order), respect
the explicit ``chunk_size`` override, and -- the whole point -- cut a
skewed universe into shards of roughly equal predicted *work*, not equal
fault counts.
"""

import pytest

from repro.sim.campaign import run_campaign
from repro.sim.costs import (
    DEFAULT_CLASS_COSTS,
    DEFAULT_COST_MODEL,
    CostModel,
)


class _Fault:
    def __init__(self, fault_class):
        self.fault_class = fault_class


def _tiles_exactly(plan, total):
    if total == 0:
        return plan == []
    if plan[0][0] != 0 or plan[-1][1] != total:
        return False
    return all(plan[i][1] == plan[i + 1][0] for i in range(len(plan) - 1)) \
        and all(lo < hi for lo, hi in plan)


class TestCostModel:
    def test_default_table_orders_classes_sensibly(self):
        model = CostModel()
        assert model.cost("NPSF") > 3 * model.cost("SAF")
        assert model.cost("NPSF") > 2.5 * model.cost("BF")
        assert model.cost("SAF") == 1.0
        assert model.cost("no-such-class") == model.default_cost

    def test_overrides_merge_and_replace(self):
        assert CostModel({"NPSF": 10.0}).cost("NPSF") == 10.0
        assert CostModel({"NPSF": 10.0}).cost("SAF") == 1.0
        bare = CostModel({"X": 2.0}, replace=True)
        assert bare.cost("SAF") == bare.default_cost

    def test_rejects_nonpositive_costs(self):
        with pytest.raises(ValueError, match="class cost"):
            CostModel({"SAF": 0.0})
        with pytest.raises(ValueError, match="default_cost"):
            CostModel(default_cost=-1.0)

    def test_cost_of_unknown_fault_object(self):
        class Odd:
            pass

        assert DEFAULT_COST_MODEL.cost_of(Odd()) == \
            DEFAULT_COST_MODEL.default_cost

    def test_from_benchmark_normalizes_to_cheapest(self):
        summary = {"class_cost_rows": [
            {"fault_class": "SAF", "per_fault_us": 5.0},
            {"fault_class": "NPSF", "per_fault_us": 20.0},
            {"fault_class": "bogus", "per_fault_us": -1.0},
        ]}
        model = CostModel.from_benchmark(summary)
        assert model.cost("SAF") == 1.0
        assert model.cost("NPSF") == 4.0
        assert "bogus" not in model.class_costs

    def test_from_benchmark_without_rows_falls_back(self):
        model = CostModel.from_benchmark({})
        assert model.class_costs == DEFAULT_CLASS_COSTS


class TestPlan:
    def test_plan_tiles_the_range_exactly(self):
        for total in (0, 1, 2, 7, 100, 1000):
            faults = [_Fault("SAF")] * total
            for chunk_size in (None, 1, 3, 128, 10_000):
                plan = DEFAULT_COST_MODEL.plan(faults, workers=3,
                                               chunk_size=chunk_size)
                assert _tiles_exactly(plan, total), (total, chunk_size)

    def test_explicit_chunk_size_is_honoured(self):
        plan = DEFAULT_COST_MODEL.plan([_Fault("SAF")] * 10, workers=4,
                                       chunk_size=4)
        assert plan == [(0, 4), (4, 8), (8, 10)]

    def test_cost_sizing_cuts_the_expensive_tail_finer(self):
        faults = [_Fault("SAF")] * 300 + [_Fault("NPSF")] * 300
        plan = CostModel().plan(faults, workers=2)
        boundary = 300
        head = [hi - lo for lo, hi in plan if hi <= boundary]
        tail = [hi - lo for lo, hi in plan if lo >= boundary]
        assert head and tail
        assert max(tail) < max(head)
        # ... and the predicted work per shard is much more even than
        # the fault count spread suggests.
        model = CostModel()
        works = [sum(model.cost_of(f) for f in faults[lo:hi])
                 for lo, hi in plan]
        assert max(works) <= 3 * (sum(works) / len(works))

    def test_plan_oversubscribes_the_workers(self):
        plan = DEFAULT_COST_MODEL.plan([_Fault("SAF")] * 4096, workers=4)
        assert len(plan) >= 8  # several shards per worker

    def test_tiny_universe_never_yields_empty_shards(self):
        plan = DEFAULT_COST_MODEL.plan([_Fault("SAF")], workers=16)
        assert plan == [(0, 1)]


class TestChunkSizeValidation:
    def test_bad_chunk_size_names_both_modes(self):
        from repro.march.library import MATS
        from repro.sim.compilers import compile_march

        stream = compile_march(MATS, 4)
        for bad in (0, -3, 2.5, "128", True):
            with pytest.raises(ValueError,
                               match="cost model.*positive int"):
                run_campaign(stream, [], chunk_size=bad)
