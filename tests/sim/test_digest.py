"""OpStream.digest(): content addressing for compiled streams.

The digest is the identity the whole serving layer hangs off --
broadcast dedup in :class:`WorkerPool`, the
:meth:`CampaignRequest.cache_key` content address, and the on-disk
result cache shared between processes.  These tests pin the exact hex
value (any accidental change to the hashed representation invalidates
every existing cache directory, so it must be a *deliberate* change
that shows up in this file) and check stability across recompiles,
pickling, and a real process boundary.
"""

import pickle

import pytest

from repro.analysis.request import CampaignRequest
from repro.faults import single_cell_universe
from repro.march.library import MARCH_C_MINUS, MATS
from repro.prt import standard_schedule
from repro.sim import WorkerPool, run_campaign
from repro.sim.compilers import compile_march, compile_schedule

# Pinned content addresses.  If these change, every cache directory in
# the wild is invalidated -- bump them only for deliberate changes to
# the stream representation, and say so in the commit message.
MATS_8_DIGEST = (
    "188eb55669d72ee1ab717e822895998101599271726ac2eeead943ea85d9bd1f"
)
MATS_8_CACHE_KEY = (
    "fb01f3a364133502f2ca9490c3dcbdb910bd54a146c59a786e7ebfb7ca4ecef4"
)


def _digest_of_fresh_compile(_index):
    """Module-level so WorkerPool can pickle it (fork or spawn)."""
    return compile_march(MATS, 8).digest()


class TestDigestIdentity:
    def test_pinned_vector(self):
        assert compile_march(MATS, 8).digest() == MATS_8_DIGEST

    def test_pinned_cache_key(self):
        assert CampaignRequest(test="mats", n=8).cache_key() == MATS_8_CACHE_KEY

    def test_structurally_equal_streams_share_a_digest(self):
        first = compile_march(MARCH_C_MINUS, 16)
        second = compile_march(MARCH_C_MINUS, 16)
        assert first.digest() == second.digest()

    def test_different_content_different_digest(self):
        base = compile_march(MATS, 8)
        assert base.digest() != compile_march(MATS, 9).digest()
        assert base.digest() != compile_march(MARCH_C_MINUS, 8).digest()
        assert base.digest() != compile_schedule(
            standard_schedule(n=8), 8).digest()

    def test_digest_ignores_mutable_bookkeeping(self):
        stream = compile_march(MATS, 8)
        before = stream.digest()
        stream.reference_verified = not stream.reference_verified
        # the cached value must not mask a representation change either:
        stream.__dict__.pop("_digest", None)
        assert stream.digest() == before

    def test_digest_survives_pickling(self):
        stream = compile_march(MARCH_C_MINUS, 12)
        clone = pickle.loads(pickle.dumps(stream))
        assert clone == stream
        assert clone.digest() == stream.digest()

    def test_memoized_on_the_instance(self):
        stream = compile_march(MATS, 8)
        assert stream.digest() is stream.digest()


class TestDigestAcrossProcesses:
    def test_worker_processes_agree(self):
        """Each worker compiles its own stream; all digests match ours."""
        with WorkerPool(2) as pool:
            digests = set(pool.imap(_digest_of_fresh_compile, range(4)))
        assert digests == {MATS_8_DIGEST}

    def test_broadcast_dedups_structurally_equal_streams(self):
        """Two equal-content compiles share one broadcast token -- the
        dedup keys on content, not object identity."""
        first = compile_march(MARCH_C_MINUS, 16)
        second = pickle.loads(pickle.dumps(first))  # equal, distinct object
        assert first is not second
        universe = single_cell_universe(16, classes=("SAF",))
        with WorkerPool(2) as pool:
            run_campaign(first, universe, workers=2, pool=pool)
            run_campaign(second, universe, workers=2, pool=pool)
            assert pool.streams_broadcast == 1
            token_a = pool.broadcast_stream(first)
            token_b = pool.broadcast_stream(second)
        assert token_a == token_b


class TestCacheKeySemantics:
    def test_workers_excluded_from_cache_key(self):
        base = CampaignRequest(test="march-c", n=16)
        sharded = base.replace(workers=4)
        assert base.cache_key() == sharded.cache_key()

    def test_engine_and_backend_in_cache_key(self):
        base = CampaignRequest(test="march-c", n=16)
        assert base.cache_key() != base.replace(engine="batched").cache_key()
        assert base.cache_key() != base.replace(backend="int").cache_key()

    def test_geometry_in_cache_key(self):
        base = CampaignRequest(test="march-c", n=16)
        assert base.cache_key() != base.replace(n=17).cache_key()
        assert base.cache_key() != base.replace(m=4).cache_key()

    def test_cache_key_is_hex(self):
        key = CampaignRequest(test="prt3", n=12).cache_key()
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_invalid_request_has_no_key(self):
        from repro.analysis.request import RequestError

        with pytest.raises(RequestError):
            CampaignRequest(test="nope", n=8).cache_key()
