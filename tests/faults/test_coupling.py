"""Tests for coupling faults: CFin, CFid, CFst, intra-word."""

import pytest

from repro.faults import (
    BitLocation,
    FaultInjector,
    IdempotentCouplingFault,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.memory import SinglePortRAM


def faulty_ram(fault, n=8, m=1):
    ram = SinglePortRAM(n, m=m)
    FaultInjector([fault]).install(ram)
    return ram


class TestInversionCoupling:
    def test_rising_transition_inverts_victim(self):
        ram = faulty_ram(InversionCouplingFault(1, 3, rising=True))
        ram.write(3, 1)
        ram.write(1, 1)  # 0->1 on aggressor inverts victim
        assert ram.read(3) == 0

    def test_falling_transition_inverts_victim(self):
        ram = faulty_ram(InversionCouplingFault(1, 3, rising=False))
        ram.write(1, 1)
        ram.write(3, 1)
        ram.write(1, 0)  # 1->0 fires
        assert ram.read(3) == 0

    def test_wrong_direction_no_effect(self):
        ram = faulty_ram(InversionCouplingFault(1, 3, rising=True))
        ram.write(1, 1)
        ram.write(3, 1)
        ram.write(1, 0)  # falling, fault wants rising
        assert ram.read(3) == 1

    def test_no_transition_no_effect(self):
        ram = faulty_ram(InversionCouplingFault(1, 3, rising=True))
        ram.write(3, 1)
        ram.write(1, 0)  # 0->0: no transition
        assert ram.read(3) == 1

    def test_double_fire_restores(self):
        ram = faulty_ram(InversionCouplingFault(1, 3, rising=True))
        ram.write(3, 1)
        ram.write(1, 1)
        ram.write(1, 0)
        ram.write(1, 1)  # second rising inversion
        assert ram.read(3) == 1

    def test_victim_write_unaffected(self):
        ram = faulty_ram(InversionCouplingFault(1, 3, rising=True))
        ram.write(3, 1)
        assert ram.read(3) == 1

    def test_same_location_rejected(self):
        with pytest.raises(ValueError):
            InversionCouplingFault(2, 2, rising=True)

    def test_metadata(self):
        fault = InversionCouplingFault(1, 3, rising=True)
        assert fault.fault_class == "CFin"
        assert fault.cells() == (1, 3)
        assert not fault.is_intra_word
        assert fault.aggressor == BitLocation(1, 0)
        assert fault.victim == BitLocation(3, 0)


class TestIdempotentCoupling:
    def test_forces_victim_value(self):
        ram = faulty_ram(IdempotentCouplingFault(0, 2, rising=True, force_to=1))
        ram.write(0, 1)
        assert ram.read(2) == 1

    def test_idempotent_repeat(self):
        ram = faulty_ram(IdempotentCouplingFault(0, 2, rising=True, force_to=1))
        ram.write(0, 1)
        ram.write(0, 0)
        ram.write(0, 1)  # fires again; victim already 1 -> stays 1
        assert ram.read(2) == 1

    def test_falling_variant(self):
        ram = faulty_ram(IdempotentCouplingFault(0, 2, rising=False, force_to=0))
        ram.write(2, 1)
        ram.write(0, 1)
        assert ram.read(2) == 1  # rising does not fire
        ram.write(0, 0)
        assert ram.read(2) == 0  # falling fires

    def test_force_validation(self):
        with pytest.raises(ValueError):
            IdempotentCouplingFault(0, 1, rising=True, force_to=2)

    def test_metadata(self):
        fault = IdempotentCouplingFault(0, 2, rising=False, force_to=1)
        assert fault.fault_class == "CFid"
        assert "CFid-down->1" in fault.name


class TestStateCoupling:
    def test_victim_forced_while_state_holds(self):
        ram = faulty_ram(StateCouplingFault(1, 3, aggressor_state=1, force_to=0))
        ram.write(1, 1)
        ram.write(3, 1)  # write happens, then settle forces victim back
        assert ram.read(3) == 0

    def test_victim_free_when_state_released(self):
        ram = faulty_ram(StateCouplingFault(1, 3, aggressor_state=1, force_to=0))
        ram.write(1, 0)
        ram.write(3, 1)
        assert ram.read(3) == 1

    def test_state_zero_variant(self):
        ram = faulty_ram(StateCouplingFault(1, 3, aggressor_state=0, force_to=1))
        # aggressor starts 0: victim immediately forced at first settle
        ram.write(3, 0)
        assert ram.read(3) == 1

    def test_enforced_when_aggressor_enters_state(self):
        ram = faulty_ram(StateCouplingFault(1, 3, aggressor_state=1, force_to=0))
        ram.write(3, 1)
        assert ram.read(3) == 1
        ram.write(1, 1)  # aggressor enters coupling state
        assert ram.read(3) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            StateCouplingFault(0, 1, aggressor_state=2, force_to=0)
        with pytest.raises(ValueError):
            StateCouplingFault(0, 1, aggressor_state=0, force_to=9)

    def test_metadata(self):
        fault = StateCouplingFault(1, 3, aggressor_state=1, force_to=0)
        assert fault.fault_class == "CFst"
        assert "CFst<1->0>" in fault.name


class TestIntraWordCoupling:
    """Aggressor and victim bits inside the same word (claim C7)."""

    def test_cfin_within_word(self):
        fault = InversionCouplingFault(
            BitLocation(2, 0), BitLocation(2, 3), rising=True
        )
        ram = faulty_ram(fault, m=4)
        assert fault.is_intra_word
        ram.write(2, 0b1000)  # set victim bit 3
        ram.write(2, 0b1001)  # aggressor bit 0 rises -> bit 3 inverted
        assert ram.read(2) == 0b0001

    def test_cfid_within_word(self):
        fault = IdempotentCouplingFault(
            BitLocation(1, 1), BitLocation(1, 2), rising=True, force_to=1
        )
        ram = faulty_ram(fault, m=4)
        ram.write(1, 0b0010)  # bit 1 rises -> bit 2 forced to 1
        assert ram.read(1) == 0b0110

    def test_cfst_within_word(self):
        fault = StateCouplingFault(
            BitLocation(0, 0), BitLocation(0, 1), aggressor_state=1, force_to=0
        )
        ram = faulty_ram(fault, m=4)
        ram.write(0, 0b0011)  # bit0=1 holds bit1 at 0
        assert ram.read(0) == 0b0001

    def test_simultaneous_transition_write(self):
        # One word write moves aggressor and victim at once: the committed
        # word is written first, then the coupling corrupts the victim.
        fault = InversionCouplingFault(
            BitLocation(0, 0), BitLocation(0, 1), rising=True
        )
        ram = faulty_ram(fault, m=2)
        ram.write(0, 0b11)  # wants bits (1,1); aggressor rise flips victim
        assert ram.read(0) == 0b01

    def test_same_bit_rejected(self):
        with pytest.raises(ValueError):
            InversionCouplingFault(BitLocation(0, 1), BitLocation(0, 1), rising=True)

    def test_cells_single_for_intra_word(self):
        fault = InversionCouplingFault(
            BitLocation(2, 0), BitLocation(2, 1), rising=True
        )
        assert fault.cells() == (2,)
