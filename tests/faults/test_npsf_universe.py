"""Tests for the NPSF universe generator and its PRT coverage."""

import pytest

from repro.faults import FaultInjector, npsf_universe
from repro.memory import SinglePortRAM
from repro.prt import extended_schedule, standard_schedule


class TestNpsfUniverse:
    def test_counts(self):
        # 8 faults per victim (4 patterns x 2 force polarities).
        assert len(npsf_universe(8, max_victims=2)) == 16

    def test_all_npsf_class(self):
        assert npsf_universe(8).classes() == ["NPSF"]

    def test_victims_are_interior(self):
        for fault in npsf_universe(10, max_victims=10):
            victim = fault.cells()[0]
            assert 1 <= victim <= 8

    def test_neighbourhoods_adjacent(self):
        for fault in npsf_universe(10, max_victims=3):
            victim, left, right = fault.cells()
            assert (left, right) == (victim - 1, victim + 1)

    def test_sampling_deterministic(self):
        a = npsf_universe(30, max_victims=4, seed=2)
        b = npsf_universe(30, max_victims=4, seed=2)
        assert [f.name for f in a] == [f.name for f in b]

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            npsf_universe(2)

    def test_installable(self):
        for fault in npsf_universe(8, max_victims=2):
            ram = SinglePortRAM(8)
            injector = FaultInjector([fault])
            injector.install(ram)
            ram.write(0, 1)
            ram.read(0)
            injector.remove(ram)


class TestNpsfCoverage:
    """PRT detects a solid majority of static NPSFs without a dedicated
    neighbourhood test (the LFSR background cycles through many
    neighbourhood patterns); full NPSF coverage classically requires
    specialized tiling tests, which is out of the paper's scope."""

    def coverage(self, schedule, n=14):
        universe = npsf_universe(n, max_victims=n)
        detected = 0
        for fault in universe:
            ram = SinglePortRAM(n)
            injector = FaultInjector([fault])
            injector.install(ram)
            if schedule.run(ram).detected:
                detected += 1
            injector.remove(ram)
        return detected / len(universe)

    def test_standard_schedule_majority(self):
        assert self.coverage(standard_schedule(n=14)) > 0.6

    def test_extended_schedule_improves(self):
        std = self.coverage(standard_schedule(n=14))
        ext = self.coverage(extended_schedule(n=14))
        assert ext >= std
