"""Tests for bridging, decoder and NPSF faults, and the injector."""

import pytest

from repro.faults import (
    BridgingFault,
    FaultInjector,
    StaticNPSF,
    StuckAtFault,
    af_multi_access,
    af_no_access,
    af_shared_cell,
    af_unreached_cell,
)
from repro.memory import SinglePortRAM


def faulty_ram(fault, n=8, m=1, **kwargs):
    ram = SinglePortRAM(n, m=m, **kwargs)
    injector = FaultInjector([fault])
    injector.install(ram)
    return ram


class TestBridging:
    def test_and_bridge_pulls_down(self):
        ram = faulty_ram(BridgingFault(2, 3, kind="and"))
        ram.write(2, 1)
        assert ram.read(2) == 0  # bridged with cell 3 (0): AND -> 0

    def test_and_bridge_both_ones(self):
        ram = faulty_ram(BridgingFault(2, 3, kind="and"))
        ram.write(3, 1)  # first write: AND(0,1) pulls both to 0... must order
        ram.write(2, 1)
        # After writing both cells the bridge resolves each write against
        # the other cell's (already merged) value: final state is 0.
        assert ram.read(2) == 0

    def test_or_bridge_pulls_up(self):
        ram = faulty_ram(BridgingFault(2, 3, kind="or"))
        ram.write(2, 1)
        assert ram.read(3) == 1

    def test_wordwise_bridge(self):
        ram = faulty_ram(BridgingFault(0, 1, kind="and"), m=4)
        ram.array.load([0b1100, 0b1010] + [0] * 6)
        ram.read(0)  # settle merges
        assert ram.array.read(0) == 0b1000
        assert ram.array.read(1) == 0b1000

    def test_validation(self):
        with pytest.raises(ValueError):
            BridgingFault(1, 1)
        with pytest.raises(ValueError):
            BridgingFault(0, 1, kind="xor")
        with pytest.raises(ValueError):
            BridgingFault(-1, 0)

    def test_metadata(self):
        fault = BridgingFault(5, 2, kind="or")
        assert fault.fault_class == "BF"
        assert fault.cells() == (2, 5)  # sorted
        assert fault.kind == "or"


class TestDecoderFaults:
    def test_af_a_write_lost(self):
        ram = faulty_ram(af_no_access(3))
        ram.write(3, 1)
        assert ram.array.read(3) == 0

    def test_af_b_cell_unreachable(self):
        ram = faulty_ram(af_unreached_cell(2, 5))
        ram.write(2, 1)  # goes to cell 5 instead
        assert ram.array.read(2) == 0
        assert ram.array.read(5) == 1

    def test_af_c_multi_write(self):
        ram = faulty_ram(af_multi_access(1, (4,)))
        ram.write(1, 1)
        assert ram.array.read(1) == 1
        assert ram.array.read(4) == 1

    def test_af_d_two_addresses_one_cell(self):
        ram = faulty_ram(af_shared_cell(0, 1))
        ram.write(1, 1)
        assert ram.array.read(0) == 1
        assert ram.array.read(1) == 0

    def test_remove_restores_decoder(self):
        ram = SinglePortRAM(8)
        injector = FaultInjector([af_no_access(3)])
        injector.install(ram)
        assert not ram.decoder.is_healthy
        injector.remove(ram)
        assert ram.decoder.is_healthy
        ram.write(3, 1)
        assert ram.read(3) == 1

    def test_factory_validation(self):
        with pytest.raises(ValueError):
            af_unreached_cell(2, 2)
        with pytest.raises(ValueError):
            af_multi_access(1, ())
        with pytest.raises(ValueError):
            af_multi_access(1, (1,))
        with pytest.raises(ValueError):
            af_shared_cell(3, 3)

    def test_metadata(self):
        fault = af_multi_access(1, (4,))
        assert fault.fault_class == "AF"
        assert fault.subtype == "AF-C"
        assert set(fault.cells()) == {1, 4}


class TestNPSF:
    def test_pattern_forces_victim(self):
        fault = StaticNPSF(victim=2, neighbors=(1, 3), pattern=(1, 1), force_to=0)
        ram = faulty_ram(fault)
        ram.write(2, 1)
        ram.write(1, 1)
        ram.write(3, 1)  # pattern complete -> victim forced
        assert ram.read(2) == 0

    def test_partial_pattern_no_effect(self):
        fault = StaticNPSF(victim=2, neighbors=(1, 3), pattern=(1, 1), force_to=0)
        ram = faulty_ram(fault)
        ram.write(2, 1)
        ram.write(1, 1)
        assert ram.read(2) == 1

    def test_victim_write_while_active_is_overridden(self):
        fault = StaticNPSF(victim=2, neighbors=(1,), pattern=(1,), force_to=0)
        ram = faulty_ram(fault)
        ram.write(1, 1)
        ram.write(2, 1)
        assert ram.read(2) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticNPSF(victim=2, neighbors=(), pattern=(), force_to=0)
        with pytest.raises(ValueError):
            StaticNPSF(victim=2, neighbors=(1,), pattern=(1, 0), force_to=0)
        with pytest.raises(ValueError):
            StaticNPSF(victim=2, neighbors=(2,), pattern=(1,), force_to=0)
        with pytest.raises(ValueError):
            StaticNPSF(victim=2, neighbors=(1, 1), pattern=(0, 0), force_to=0)

    def test_metadata(self):
        fault = StaticNPSF(victim=2, neighbors=(1, 3), pattern=(1, 0), force_to=1)
        assert fault.fault_class == "NPSF"
        assert fault.cells() == (2, 1, 3)


class TestInjector:
    def test_multiple_faults(self):
        ram = SinglePortRAM(8)
        injector = FaultInjector([StuckAtFault(0, 1), StuckAtFault(1, 0)])
        injector.install(ram)
        ram.write(1, 1)
        assert ram.read(0) == 1
        assert ram.read(1) == 0

    def test_add_before_install(self):
        injector = FaultInjector()
        injector.add(StuckAtFault(2, 1))
        assert len(injector) == 1
        ram = SinglePortRAM(4)
        injector.install(ram)
        assert ram.read(2) == 1

    def test_faults_tuple(self):
        fault = StuckAtFault(0, 1)
        injector = FaultInjector([fault])
        assert injector.faults == (fault,)

    def test_repr_lists_classes(self):
        injector = FaultInjector([StuckAtFault(0, 1), BridgingFault(0, 1)])
        assert "SAF" in repr(injector)
        assert "BF" in repr(injector)

    def test_install_resets_fault_state(self):
        from repro.faults import StuckOpenFault

        fault = StuckOpenFault(3)
        ram1 = SinglePortRAM(8)
        injector = FaultInjector([fault])
        injector.install(ram1)
        ram1.write(0, 1)
        ram1.read(0)  # latch = 1
        injector.remove(ram1)
        ram2 = SinglePortRAM(8)
        injector.install(ram2)  # reset: latch back to 0
        assert ram2.read(3) == 0

    def test_works_with_multiport(self):
        from repro.memory import DualPortRAM, PortOp

        ram = DualPortRAM(8)
        FaultInjector([StuckAtFault(3, 1)]).install(ram)
        results = ram.cycle([PortOp(0, "r", 3)])
        assert results[0] == 1
