"""Tests for linked (masking) coupling faults."""

import pytest

from repro.faults import (
    FaultInjector,
    InversionCouplingFault,
    LinkedFault,
    linked_cfid_pair,
    linked_cfin_pair,
    linked_universe,
)
from repro.march import run_march
from repro.march.library import MARCH_B
from repro.memory import SinglePortRAM
from repro.prt import extended_schedule, standard_schedule


class TestLinkedFaultModel:
    def test_needs_two_components(self):
        with pytest.raises(ValueError):
            LinkedFault([InversionCouplingFault(0, 1, rising=True)])

    def test_distinct_cells_required(self):
        with pytest.raises(ValueError):
            linked_cfin_pair(1, 1, 3)
        with pytest.raises(ValueError):
            linked_cfid_pair(1, 3, 3)

    def test_metadata(self):
        fault = linked_cfin_pair(0, 4, 2)
        assert fault.fault_class == "LF"
        assert fault.cells() == (0, 2, 4)
        assert "LF-CFin" in fault.name
        assert len(fault.components) == 2

    def test_masking_behaviour(self):
        """Both aggressors firing the same direction flip the victim
        twice: the stored value ends up correct (the mask)."""
        fault = linked_cfin_pair(0, 4, 2, rising1=True, rising2=True)
        ram = SinglePortRAM(8)
        injector = FaultInjector([fault])
        injector.install(ram)
        ram.write(2, 1)  # victim
        ram.write(0, 1)  # first inversion: victim -> 0
        assert ram.read(2) == 0
        ram.write(4, 1)  # second inversion: victim -> 1 (masked!)
        assert ram.read(2) == 1
        injector.remove(ram)

    def test_cfid_pair_restores(self):
        fault = linked_cfid_pair(0, 4, 2)  # force 1 then force 0
        ram = SinglePortRAM(8)
        injector = FaultInjector([fault])
        injector.install(ram)
        ram.write(0, 1)  # victim forced to 1
        assert ram.read(2) == 1
        ram.write(4, 1)  # victim forced back to 0
        assert ram.read(2) == 0
        injector.remove(ram)

    def test_reset_propagates(self):
        fault = linked_cfin_pair(0, 4, 2)
        fault.reset()  # must not raise

    def test_decoder_overrides_merge(self):
        from repro.faults import af_no_access

        composite = LinkedFault([af_no_access(1), af_no_access(2)])
        assert composite.decoder_overrides() == {1: (), 2: ()}


class TestLinkedUniverse:
    def test_counts(self):
        # per victim: 4 direction combos x 2 kinds = 8
        assert len(linked_universe(8, max_victims=2)) == 16

    def test_class_tag(self):
        assert linked_universe(8).classes() == ["LF"]

    def test_too_small(self):
        with pytest.raises(ValueError):
            linked_universe(2)

    def test_deterministic(self):
        a = linked_universe(20, max_victims=4, seed=1)
        b = linked_universe(20, max_victims=4, seed=1)
        assert [f.name for f in a] == [f.name for f in b]


class TestLinkedCoverage:
    """Measured on this simulator: March B and the 5-iteration PRT cover
    the flanking-aggressor linked universe completely; the 3-iteration
    PRT leaves a gap (consistent with its CFid analysis in E3)."""

    def coverage(self, runner, n=14):
        universe = linked_universe(n, max_victims=n)
        detected = 0
        for fault in universe:
            ram = SinglePortRAM(n)
            injector = FaultInjector([fault])
            injector.install(ram)
            if runner(ram):
                detected += 1
            injector.remove(ram)
        return detected, len(universe)

    def test_march_b_full(self):
        detected, total = self.coverage(
            lambda ram: not run_march(MARCH_B, ram).passed
        )
        assert detected == total

    def test_prt5_full(self):
        schedule = extended_schedule(n=14)
        detected, total = self.coverage(lambda ram: schedule.run(ram).detected)
        assert detected == total

    def test_prt3_partial(self):
        schedule = standard_schedule(n=14)
        detected, total = self.coverage(lambda ram: schedule.run(ram).detected)
        assert 0 < detected < total
