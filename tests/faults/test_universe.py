"""Tests for fault-universe generators."""

import pytest

from repro.faults import (
    FaultInjector,
    coupling_universe,
    decoder_universe,
    intra_word_universe,
    single_cell_universe,
    standard_universe,
)
from repro.faults.universe import bridging_universe
from repro.memory import SinglePortRAM


class TestSingleCellUniverse:
    def test_counts_bom(self):
        universe = single_cell_universe(8, m=1)
        counts = universe.counts()
        assert counts == {"SAF": 16, "TF": 16, "SOF": 8, "DRF": 8}

    def test_counts_wom(self):
        universe = single_cell_universe(4, m=4, classes=("SAF", "TF"))
        assert universe.counts() == {"SAF": 32, "TF": 32}

    def test_class_filter(self):
        universe = single_cell_universe(4, classes=("SOF",))
        assert universe.classes() == ["SOF"]

    def test_by_class(self):
        universe = single_cell_universe(4)
        assert len(universe.by_class("SAF")) == 8
        assert universe.by_class("BF") == []

    def test_indexing_iteration(self):
        universe = single_cell_universe(2, classes=("SAF",))
        assert len(list(universe)) == len(universe) == 4
        assert universe[0].fault_class == "SAF"


class TestCouplingUniverse:
    def test_adjacent_pairs_both_directions(self):
        universe = coupling_universe(4, classes=("CFin",))
        # 3 adjacent pairs x 2 directions x 2 polarities
        assert len(universe) == 12

    def test_full_classes(self):
        universe = coupling_universe(4)
        counts = universe.counts()
        # per ordered pair: 2 CFin + 4 CFid + 4 CFst
        assert counts["CFin"] == 12
        assert counts["CFid"] == 24
        assert counts["CFst"] == 24

    def test_extra_random_pairs(self):
        base = coupling_universe(8, classes=("CFin",))
        extended = coupling_universe(8, classes=("CFin",), extra_random_pairs=5)
        assert len(extended) == len(base) + 5 * 2

    def test_deterministic_by_seed(self):
        a = coupling_universe(8, m=4, seed=7)
        b = coupling_universe(8, m=4, seed=7)
        assert [f.name for f in a] == [f.name for f in b]

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            coupling_universe(1)


class TestDecoderUniverse:
    def test_four_types_per_address(self):
        universe = decoder_universe(16, max_addresses=4)
        assert len(universe) == 16
        subtypes = {f.subtype for f in universe}
        assert subtypes == {"AF-A", "AF-B", "AF-C", "AF-D"}

    def test_covers_all_when_small(self):
        universe = decoder_universe(4, max_addresses=8)
        assert len(universe) == 16

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            decoder_universe(1)


class TestIntraWordUniverse:
    def test_requires_wom(self):
        with pytest.raises(ValueError):
            intra_word_universe(8, m=1)

    def test_all_intra_word(self):
        universe = intra_word_universe(4, m=4)
        for fault in universe:
            assert fault.is_intra_word

    def test_counts(self):
        universe = intra_word_universe(2, m=2, classes=("CFin",))
        # 2 cells x 2 directed bit pairs x 2 polarities
        assert len(universe) == 8


class TestBridgingUniverse:
    def test_counts(self):
        assert len(bridging_universe(5)) == 8  # 4 pairs x 2 kinds

    def test_too_small(self):
        with pytest.raises(ValueError):
            bridging_universe(1)


class TestStandardUniverse:
    def test_bom_composition(self):
        universe = standard_universe(8)
        classes = set(universe.classes())
        assert classes == {"SAF", "TF", "SOF", "CFin", "CFid", "CFst", "BF", "AF"}

    def test_wom_adds_intra_word(self):
        universe = standard_universe(8, m=4)
        assert len(universe.by_class("CFin")) > len(
            standard_universe(8).by_class("CFin")
        )

    def test_every_fault_installs_cleanly(self):
        """Each universe fault can be injected and removed on a real RAM."""
        universe = standard_universe(8, m=2)
        for fault in universe:
            ram = SinglePortRAM(8, m=2)
            injector = FaultInjector([fault])
            injector.install(ram)
            ram.write(0, 1)
            ram.read(0)
            injector.remove(ram)
            assert ram.decoder.is_healthy

    def test_sample_reproducible(self):
        universe = standard_universe(16)
        a = universe.sample(10)
        b = universe.sample(10)
        assert [f.name for f in a] == [f.name for f in b]
        assert len(a) == 10

    def test_sample_larger_than_universe(self):
        universe = single_cell_universe(2, classes=("SOF",))
        assert len(universe.sample(100)) == len(universe)

    def test_union_repr(self):
        assert "SAF" in repr(standard_universe(4))


class TestUniverseSpec:
    """The picklable recipes process sharding ships instead of faults."""

    def test_generators_attach_specs(self):
        from repro.faults import npsf_universe

        for universe in (single_cell_universe(8), coupling_universe(8),
                         decoder_universe(8), bridging_universe(8),
                         npsf_universe(8), intra_word_universe(4, 4),
                         standard_universe(8)):
            assert universe.spec is not None
            rebuilt = universe.spec.build()
            assert [f.name for f in rebuilt] == [f.name for f in universe]

    def test_spec_survives_union_and_sample(self):
        universe = (standard_universe(16) + bridging_universe(16)).sample(40)
        assert universe.spec is not None
        assert [f.name for f in universe.spec.build()] == \
            [f.name for f in universe]

    def test_caller_rng_drops_spec(self):
        import random

        universe = standard_universe(8).sample(5, rng=random.Random(7))
        assert universe.spec is None

    def test_hand_built_universe_has_no_spec(self):
        from repro.faults import FaultUniverse, StuckAtFault

        assert FaultUniverse([StuckAtFault(0, 1)]).spec is None

    def test_spec_pickle_roundtrip(self):
        import pickle

        spec = standard_universe(16).spec
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert [f.name for f in clone.build()] == \
            [f.name for f in standard_universe(16)]

    def test_materialize_spec_cached(self):
        from repro.faults import materialize_spec

        spec = single_cell_universe(8).spec
        assert materialize_spec(spec) is materialize_spec(spec)
        assert [f.name for f in materialize_spec(spec)] == \
            [f.name for f in single_cell_universe(8)]

    def test_unknown_generator_rejected(self):
        from repro.faults import UniverseSpec

        with pytest.raises(ValueError, match="unknown universe generator"):
            UniverseSpec.call("bogus", n=4).build()

    def test_bare_string_classes_means_one_class(self):
        # A bare string must behave as a one-element filter, not be
        # tuple()'d into characters (which would yield an empty universe).
        assert single_cell_universe(8, classes="SAF").counts() == \
            single_cell_universe(8, classes=("SAF",)).counts()
        assert coupling_universe(8, classes="CFin").counts() == \
            coupling_universe(8, classes=("CFin",)).counts()
        assert intra_word_universe(4, 4, classes="CFid").counts() == \
            intra_word_universe(4, 4, classes=("CFid",)).counts()
