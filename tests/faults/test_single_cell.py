"""Tests for single-cell fault models: SAF, TF, SOF, DRF."""

import pytest

from repro.faults import (
    DataRetentionFault,
    FaultInjector,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
)
from repro.memory import SinglePortRAM


def faulty_ram(fault, n=8, m=1):
    ram = SinglePortRAM(n, m=m)
    injector = FaultInjector([fault])
    injector.install(ram)
    return ram


class TestStuckAt:
    def test_sa0_write_lost(self):
        ram = faulty_ram(StuckAtFault(3, 0))
        ram.write(3, 1)
        assert ram.read(3) == 0

    def test_sa1_reads_one(self):
        ram = faulty_ram(StuckAtFault(3, 1))
        assert ram.read(3) == 1
        ram.write(3, 0)
        assert ram.read(3) == 1

    def test_other_cells_healthy(self):
        ram = faulty_ram(StuckAtFault(3, 0))
        ram.write(2, 1)
        assert ram.read(2) == 1

    def test_word_bit_stuck(self):
        ram = faulty_ram(StuckAtFault(2, 0, bit=1), m=4)
        ram.write(2, 0b1111)
        assert ram.read(2) == 0b1101

    def test_word_other_bits_work(self):
        ram = faulty_ram(StuckAtFault(2, 1, bit=3), m=4)
        ram.write(2, 0b0000)
        assert ram.read(2) == 0b1000
        ram.write(2, 0b0101)
        assert ram.read(2) == 0b1101

    def test_validation(self):
        with pytest.raises(ValueError):
            StuckAtFault(0, 2)
        with pytest.raises(ValueError):
            StuckAtFault(-1, 0)
        with pytest.raises(ValueError):
            StuckAtFault(0, 0, bit=-1)

    def test_metadata(self):
        fault = StuckAtFault(5, 1, bit=2)
        assert fault.fault_class == "SAF"
        assert fault.cells() == (5,)
        assert fault.stuck_value == 1
        assert "SA1" in fault.name

    def test_settle_repins_after_coupling_write(self):
        # Direct array writes (as coupling faults do) get re-pinned at settle.
        ram = faulty_ram(StuckAtFault(3, 0))
        ram.array.write(3, 1)
        ram.read(0)  # any cycle triggers settle
        assert ram.array.read(3) == 0


class TestTransition:
    def test_tf_up_blocks_rise(self):
        ram = faulty_ram(TransitionFault(3, rising=True))
        ram.write(3, 1)
        assert ram.read(3) == 0

    def test_tf_up_allows_fall(self):
        ram = faulty_ram(TransitionFault(3, rising=True))
        ram.array.write(3, 1)  # arrange state 1 directly
        ram.write(3, 0)
        assert ram.read(3) == 0

    def test_tf_down_blocks_fall(self):
        ram = faulty_ram(TransitionFault(3, rising=False))
        ram.array.write(3, 1)
        ram.write(3, 0)
        assert ram.read(3) == 1

    def test_tf_down_allows_rise(self):
        ram = faulty_ram(TransitionFault(3, rising=False))
        ram.write(3, 1)
        assert ram.read(3) == 1

    def test_same_value_write_unaffected(self):
        ram = faulty_ram(TransitionFault(3, rising=True))
        ram.write(3, 0)
        assert ram.read(3) == 0

    def test_word_bit(self):
        ram = faulty_ram(TransitionFault(1, rising=True, bit=2), m=4)
        ram.write(1, 0b0100)
        assert ram.read(1) == 0
        ram.write(1, 0b1011)
        assert ram.read(1) == 0b1011

    def test_metadata(self):
        fault = TransitionFault(2, rising=False, bit=1)
        assert fault.fault_class == "TF"
        assert not fault.rising
        assert "TF-down" in fault.name
        assert fault.cells() == (2,)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransitionFault(-1, rising=True)


class TestStuckOpen:
    def test_read_returns_previous_sense(self):
        ram = faulty_ram(StuckOpenFault(3))
        ram.write(2, 1)
        ram.read(2)  # sense latch <- 1
        assert ram.read(3) == 1  # open cell: stale sense value

    def test_initial_sense(self):
        ram = faulty_ram(StuckOpenFault(3, initial_sense=1))
        assert ram.read(3) == 1

    def test_write_lost(self):
        ram = faulty_ram(StuckOpenFault(3))
        ram.write(3, 1)
        assert ram.array.read(3) == 0

    def test_double_read_signature(self):
        """The classic SOF symptom: two reads of different cells then the
        open cell mirrors the last good read."""
        ram = faulty_ram(StuckOpenFault(5))
        ram.write(0, 1)
        ram.write(1, 0)
        ram.read(0)
        assert ram.read(5) == 1
        ram.read(1)
        assert ram.read(5) == 0

    def test_reset_restores_latch(self):
        fault = StuckOpenFault(3)
        ram = faulty_ram(fault)
        ram.write(0, 1)
        ram.read(0)
        assert ram.read(3) == 1
        fault.reset()
        assert ram.read(3) == 0

    def test_metadata(self):
        fault = StuckOpenFault(4)
        assert fault.fault_class == "SOF"
        assert fault.cells() == (4,)

    def test_validation(self):
        with pytest.raises(ValueError):
            StuckOpenFault(-2)
        with pytest.raises(ValueError):
            StuckOpenFault(0, initial_sense=-1)


class TestDataRetention:
    def test_decays_after_idle(self):
        ram = faulty_ram(DataRetentionFault(3, retention=5))
        ram.write(3, 1)
        for _ in range(10):  # 10 idle cycles elsewhere
            ram.read(0)
        assert ram.read(3) == 0

    def test_survives_within_retention(self):
        ram = faulty_ram(DataRetentionFault(3, retention=100))
        ram.write(3, 1)
        for _ in range(10):
            ram.read(0)
        assert ram.read(3) == 1

    def test_access_refreshes(self):
        ram = faulty_ram(DataRetentionFault(3, retention=6))
        ram.write(3, 1)
        for _ in range(20):
            assert ram.read(3) == 1  # each read refreshes

    def test_decay_is_destructive(self):
        ram = faulty_ram(DataRetentionFault(3, retention=2))
        ram.write(3, 1)
        for _ in range(5):
            ram.read(0)
        ram.read(3)  # triggers decay
        assert ram.array.read(3) == 0

    def test_decay_to_custom_value(self):
        ram = faulty_ram(DataRetentionFault(3, retention=2, decay_to=1))
        ram.write(3, 0)
        for _ in range(5):
            ram.read(0)
        assert ram.read(3) == 1

    def test_reset_clears_timer(self):
        fault = DataRetentionFault(3, retention=2)
        ram = faulty_ram(fault)
        ram.write(3, 1)
        fault.reset()
        for _ in range(10):
            ram.read(0)
        # With no recorded access the cell never decays.
        assert ram.read(3) == 1

    def test_metadata(self):
        fault = DataRetentionFault(2, retention=64)
        assert fault.fault_class == "DRF"
        assert fault.retention == 64
        assert fault.cells() == (2,)

    def test_validation(self):
        with pytest.raises(ValueError):
            DataRetentionFault(0, retention=0)
        with pytest.raises(ValueError):
            DataRetentionFault(-1, retention=5)
        with pytest.raises(ValueError):
            DataRetentionFault(0, retention=5, decay_to=-1)
