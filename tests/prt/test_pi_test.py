"""Tests for the π-test iteration engine (paper §2, Figure 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector, StuckAtFault
from repro.gf2 import poly_from_string
from repro.gf2m import GF2m
from repro.memory import SinglePortRAM
from repro.prt import PiIteration, ascending, descending, random_trajectory

F16 = GF2m(poly_from_string("1+z+z^4"))


class TestConstruction:
    def test_defaults_are_paper_bom(self):
        it = PiIteration()
        assert it.generator == (1, 1, 1)
        assert it.k == 2
        assert it.field.m == 1

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            PiIteration(seed=(0, 0))

    def test_generator_validated(self):
        with pytest.raises(ValueError):
            PiIteration(generator=(0, 1, 1), seed=(0, 1))

    def test_field_mismatch(self):
        it = PiIteration(field=F16, generator=(1, 2, 2), seed=(0, 1))
        with pytest.raises(ValueError):
            it.run(SinglePortRAM(16, m=1))

    def test_memory_too_small(self):
        with pytest.raises(ValueError):
            PiIteration(seed=(0, 1)).run(SinglePortRAM(2))

    def test_trajectory_size_mismatch(self):
        it = PiIteration(seed=(0, 1), trajectory=ascending(8))
        with pytest.raises(ValueError):
            it.run(SinglePortRAM(16))

    def test_repr(self):
        assert "1 + x + x^2" in repr(PiIteration())


class TestBomIteration:
    """Figure 1(a): the bit-oriented π-test."""

    def test_healthy_memory_passes(self):
        result = PiIteration(seed=(0, 1)).run(SinglePortRAM(9))
        assert result.passed

    def test_ring_closes_when_period_divides_n(self):
        # g = 1+x+x^2 has period 3; 9 = 3*3
        result = PiIteration(seed=(0, 1)).run(SinglePortRAM(9))
        assert result.ring_closed

    def test_ring_open_otherwise(self):
        result = PiIteration(seed=(0, 1)).run(SinglePortRAM(10))
        assert result.passed  # Fin* is computed for n steps; still passes
        assert not result.ring_closed

    def test_written_stream_is_lfsr_stream(self):
        it = PiIteration(seed=(0, 1))
        result = it.run(SinglePortRAM(9), record=True)
        assert result.written_stream == [1, 0, 1, 1, 0, 1, 1, 0, 1]
        assert result.written_stream == it.expected_stream(9)

    def test_operation_count_is_3n_plus_4(self):
        it = PiIteration(seed=(0, 1))
        ram = SinglePortRAM(30)
        result = it.run(ram)
        assert result.operations == 3 * 30 + 4 == it.operation_count(30)
        assert ram.stats.operations == result.operations

    def test_two_tap_degree3_also_3n(self):
        it = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))
        assert it.reads_per_subiteration == 2
        assert it.operation_count(30) == 3 * 30 + 6

    def test_period_helpers(self):
        assert PiIteration(seed=(0, 1)).period == 3
        assert PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1)).period == 7
        assert PiIteration(seed=(0, 1)).ring_closes_for(9)
        assert not PiIteration(seed=(0, 1)).ring_closes_for(10)


class TestWomIteration:
    """Figure 1(b): the word-oriented π-test, m=4, g = 1 + 2x + 2x^2."""

    def make(self, **kwargs):
        return PiIteration(field=F16, generator=(1, 2, 2), seed=(0, 1), **kwargs)

    def test_figure_1b_stream_prefix(self):
        result = self.make().run(SinglePortRAM(255, m=4), record=True)
        assert result.written_stream[:4] == [2, 6, 8, 15]

    def test_ring_closes_at_255(self):
        result = self.make().run(SinglePortRAM(255, m=4))
        assert result.ring_closed
        assert result.passed

    def test_passes_at_any_n(self):
        for n in (10, 100, 200):
            assert self.make().run(SinglePortRAM(n, m=4)).passed

    def test_detects_word_stuck_bit(self):
        ram = SinglePortRAM(100, m=4)
        FaultInjector([StuckAtFault(37, 1, bit=2)]).install(ram)
        assert not self.make().run(ram).passed


class TestInversion:
    def test_inverted_stream_is_complement(self):
        base = PiIteration(seed=(0, 1))
        inv = PiIteration(seed=(0, 1), invert=True)
        assert inv.invert
        assert [v ^ 1 for v in base.expected_stream(9)] == inv.expected_stream(9)

    def test_inverted_background_is_complement(self):
        base = PiIteration(field=F16, generator=(1, 2, 2), seed=(0, 1))
        inv = PiIteration(field=F16, generator=(1, 2, 2), seed=(0, 1), invert=True)
        assert [v ^ 0xF for v in base.background_after(16)] == inv.background_after(16)

    def test_inverted_iteration_passes_healthy(self):
        result = PiIteration(seed=(0, 1), invert=True).run(SinglePortRAM(9))
        assert result.passed

    def test_inverted_memory_contents(self):
        ram = SinglePortRAM(9)
        it = PiIteration(seed=(0, 1), invert=True)
        it.run(ram)
        assert ram.dump() == it.background_after(9)


class TestBackgroundAfter:
    def test_matches_memory_dump(self):
        for traj in (ascending(12), descending(12), random_trajectory(12, seed=4)):
            ram = SinglePortRAM(12)
            it = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1), trajectory=traj)
            it.run(ram)
            assert ram.dump() == it.background_after(12)

    @settings(max_examples=20)
    @given(st.integers(min_value=5, max_value=40))
    def test_matches_dump_any_n(self, n):
        ram = SinglePortRAM(n)
        it = PiIteration(seed=(0, 1))
        it.run(ram)
        assert ram.dump() == it.background_after(n)


class TestVerification:
    def test_wrong_background_length_rejected(self):
        it = PiIteration(seed=(0, 1))
        with pytest.raises(ValueError):
            it.run(SinglePortRAM(9), previous_background=[0] * 5)

    def test_healthy_chain_passes(self):
        ram = SinglePortRAM(9)
        it1 = PiIteration(seed=(0, 1))
        it1.run(ram)
        it2 = PiIteration(seed=(0, 1), invert=True)
        result = it2.run(ram, previous_background=it1.background_after(9))
        assert result.passed
        assert result.verify_mismatches == 0

    def test_verification_costs_one_read_per_write(self):
        ram = SinglePortRAM(9)
        it1 = PiIteration(seed=(0, 1))
        r1 = it1.run(ram)
        it2 = PiIteration(seed=(0, 1), invert=True)
        r2 = it2.run(ram, previous_background=it1.background_after(9))
        assert r2.operations == r1.operations + 9 + 2  # n + k extra reads

    def test_verification_catches_latent_corruption(self):
        """A value flipped after iteration 1 finished is invisible to the
        pure scheme but caught by the verifying second iteration."""
        ram = SinglePortRAM(9)
        it1 = PiIteration(seed=(0, 1))
        it1.run(ram)
        ram.array.write(5, ram.array.read(5) ^ 1)  # latent corruption
        it2 = PiIteration(seed=(0, 1), invert=True)
        pure = it2.run(ram.array and SinglePortRAM(9))  # fresh RAM: baseline
        assert pure.passed
        result = it2.run(ram, previous_background=it1.background_after(9))
        assert result.verify_mismatches == 1
        assert not result.passed


class TestTrajectories:
    def test_descending_healthy(self):
        it = PiIteration(seed=(0, 1), trajectory=descending(9))
        assert it.run(SinglePortRAM(9)).passed

    def test_random_healthy(self):
        it = PiIteration(seed=(0, 1), trajectory=random_trajectory(9, seed=3))
        assert it.run(SinglePortRAM(9)).passed

    @settings(max_examples=20)
    @given(st.integers(min_value=0, max_value=50))
    def test_any_random_trajectory_passes_healthy(self, seed):
        it = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1),
                         trajectory=random_trajectory(14, seed=seed))
        assert it.run(SinglePortRAM(14)).passed


class TestEngineMatchesReferenceAutomaton:
    """Property: for ANY valid generator/seed over GF(16), the memory-
    resident automaton reproduces the reference WordLFSR exactly --
    the core correctness property of the whole PRT construction."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.tuples(
            st.integers(1, 15),  # a_0
            st.integers(0, 15),  # a_1
            st.integers(1, 15),  # a_2
        ),
        st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(
            lambda s: s != (0, 0)
        ),
        st.integers(5, 40),
    )
    def test_stream_equals_reference(self, generator, seed, n):
        from repro.lfsr import WordLFSR

        iteration = PiIteration(field=F16, generator=generator, seed=seed)
        result = iteration.run(SinglePortRAM(n, m=4), record=True)
        reference = WordLFSR(F16, generator, seed)
        reference.run(2)
        assert result.written_stream == reference.sequence(n)
        assert result.passed


class TestFaultDetectionSingleIteration:
    def test_saf_on_nonzero_background_cell(self):
        it = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))
        background = it.background_after(14)
        # Pick a cell whose fault-free value is 1: SA0 must be detected.
        cell = background.index(1)
        ram = SinglePortRAM(14)
        FaultInjector([StuckAtFault(cell, 0)]).install(ram)
        assert not it.run(ram).passed

    def test_detection_deterministic(self):
        it = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))
        outcomes = set()
        for _ in range(3):
            ram = SinglePortRAM(14)
            FaultInjector([StuckAtFault(4, 0)]).install(ram)
            outcomes.add(it.run(ram).passed)
        assert len(outcomes) == 1

    def test_result_repr(self):
        result = PiIteration(seed=(0, 1)).run(SinglePortRAM(9))
        assert "PASS" in repr(result)
