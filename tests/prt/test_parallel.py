"""Tests for parallel bit-slice WOM testing (claim C7)."""

import pytest

from repro.faults import (
    BitLocation,
    FaultInjector,
    InversionCouplingFault,
    StateCouplingFault,
)
from repro.memory import SinglePortRAM
from repro.prt import BitSlicePiIteration, lane_permutations
from repro.prt.trajectory import descending


class TestLanePermutations:
    def test_parallel_is_identity(self):
        sigma, tau = lane_permutations(4, "parallel")
        assert sigma == tau == (0, 1, 2, 3)

    def test_random_reproducible(self):
        assert lane_permutations(4, "random", seed=3) == lane_permutations(
            4, "random", seed=3
        )

    def test_random_not_identity(self):
        sigma, tau = lane_permutations(4, "random", seed=0)
        assert sigma != (0, 1, 2, 3) or tau != (0, 1, 2, 3)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            lane_permutations(4, "diagonal")

    def test_permutations_valid(self):
        for seed in range(10):
            sigma, tau = lane_permutations(8, "random", seed=seed)
            assert sorted(sigma) == list(range(8))
            assert sorted(tau) == list(range(8))


class TestConstruction:
    def test_bad_width(self):
        with pytest.raises(ValueError):
            BitSlicePiIteration(m=0)

    def test_seed_must_activate_every_slice(self):
        with pytest.raises(ValueError):
            BitSlicePiIteration(m=4, seed=(0b0001, 0b0010))

    def test_default_seed_is_checkerboard(self):
        it = BitSlicePiIteration(m=4)
        assert it.seed == (0b0101, 0b1010)

    def test_default_seed_activates_all_slices(self):
        for m in (1, 2, 3, 4, 8):
            it = BitSlicePiIteration(m=m)
            s0, s1 = it.seed
            for lane in range(m):
                assert (s0 >> lane) & 1 or (s1 >> lane) & 1

    def test_seed_out_of_range(self):
        with pytest.raises(ValueError):
            BitSlicePiIteration(m=4, seed=(0, 16))

    def test_seed_wrong_arity(self):
        with pytest.raises(ValueError):
            BitSlicePiIteration(m=4, seed=(1, 2, 3))

    def test_repr(self):
        assert "parallel" in repr(BitSlicePiIteration(m=4))


class TestHealthyRuns:
    def test_parallel_passes(self):
        it = BitSlicePiIteration(m=4, mode="parallel")
        assert it.run(SinglePortRAM(16, m=4)).passed

    def test_random_passes(self):
        for seed in range(5):
            it = BitSlicePiIteration(m=4, mode="random", wiring_seed=seed)
            assert it.run(SinglePortRAM(16, m=4)).passed

    def test_custom_trajectory(self):
        it = BitSlicePiIteration(m=4, trajectory=descending(16))
        assert it.run(SinglePortRAM(16, m=4)).passed

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            BitSlicePiIteration(m=4).run(SinglePortRAM(16, m=8))

    def test_memory_too_small(self):
        with pytest.raises(ValueError):
            BitSlicePiIteration(m=4).run(SinglePortRAM(2, m=4))

    def test_operation_count(self):
        it = BitSlicePiIteration(m=4)
        result = it.run(SinglePortRAM(16, m=4))
        assert result.operations == 3 * 16 + 4

    def test_expected_stream_matches_memory(self):
        it = BitSlicePiIteration(m=4, mode="random", wiring_seed=2)
        ram = SinglePortRAM(16, m=4)
        it.run(ram)
        stream = it.expected_stream(16)
        # Cells 2..15 hold stream values 0..13 (the wrap rewrote 0, 1).
        assert ram.dump()[2:] == stream[:14]


class TestIntraWordDetection:
    """Claim C7: random lane wiring catches intra-word coupling that
    parallel wiring can miss."""

    def intra_word_universe(self, n, m):
        faults = []
        for cell in range(0, n, 3):
            for a_bit in range(m - 1):
                faults.append(
                    InversionCouplingFault(
                        BitLocation(cell, a_bit),
                        BitLocation(cell, a_bit + 1),
                        rising=True,
                    )
                )
                faults.append(
                    StateCouplingFault(
                        BitLocation(cell, a_bit),
                        BitLocation(cell, a_bit + 1),
                        aggressor_state=1,
                        force_to=0,
                    )
                )
        return faults

    def count_detected(self, iteration, faults, n, m):
        detected = 0
        for fault in faults:
            ram = SinglePortRAM(n, m=m)
            injector = FaultInjector([fault])
            injector.install(ram)
            if not iteration.run(ram).passed:
                detected += 1
            injector.remove(ram)
        return detected

    def test_random_wiring_detects_intra_word(self):
        n, m = 15, 4
        faults = self.intra_word_universe(n, m)
        random_it = BitSlicePiIteration(m=m, mode="random", wiring_seed=1)
        detected = self.count_detected(random_it, faults, n, m)
        assert detected > 0

    def test_failing_slices_identified(self):
        n, m = 15, 4
        fault = InversionCouplingFault(
            BitLocation(5, 0), BitLocation(5, 2), rising=True
        )
        it = BitSlicePiIteration(m=m, mode="random", wiring_seed=1)
        ram = SinglePortRAM(n, m=m)
        FaultInjector([fault]).install(ram)
        result = it.run(ram)
        if not result.passed:
            assert result.failing_slices != []

    def test_result_repr(self):
        result = BitSlicePiIteration(m=4).run(SinglePortRAM(16, m=4))
        assert "PASS" in repr(result)
