"""Tests for π-test schedules, including the claim-C3 coverage facts."""

import pytest

from repro.faults import (
    FaultInjector,
    StuckAtFault,
    decoder_universe,
    single_cell_universe,
)
from repro.faults.universe import bridging_universe
from repro.gf2 import poly_from_string
from repro.gf2m import GF2m
from repro.memory import SinglePortRAM
from repro.prt import (
    PiIteration,
    PiTestSchedule,
    extended_schedule,
    standard_schedule,
)

F16 = GF2m(poly_from_string("1+z+z^4"))


def coverage(schedule, universe, n, m=1):
    detected = 0
    for fault in universe:
        ram = SinglePortRAM(n, m=m)
        injector = FaultInjector([fault])
        injector.install(ram)
        if schedule.run(ram).detected:
            detected += 1
        injector.remove(ram)
    return detected


class TestScheduleBasics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PiTestSchedule([])

    def test_healthy_passes(self):
        assert standard_schedule(n=14).run(SinglePortRAM(14)).passed

    def test_healthy_wom_passes(self):
        sched = standard_schedule(field=F16, n=16)
        assert sched.run(SinglePortRAM(16, m=4)).passed

    def test_default_generators(self):
        assert standard_schedule().iterations[0].generator == (1, 0, 1, 1)
        assert standard_schedule(field=F16).iterations[0].generator == (1, 2, 2)

    def test_three_iterations(self):
        sched = standard_schedule(n=14)
        assert len(sched) == 3
        assert sched.iterations[1].invert
        assert not sched.iterations[0].invert

    def test_operation_count_matches_run(self):
        sched = standard_schedule(n=14, verify=True)
        result = sched.run(SinglePortRAM(14))
        assert result.operations == sched.operation_count(14)

    def test_pure_mode_is_9n_shaped(self):
        sched = standard_schedule(n=14, verify=False)
        # three 3n+2k iterations
        assert sched.operation_count(14) == 3 * (3 * 14 + 6)

    def test_stop_on_failure(self):
        ram = SinglePortRAM(14)
        FaultInjector([StuckAtFault(4, 1)]).install(ram)
        result = standard_schedule(n=14).run(ram, stop_on_failure=True)
        assert result.detected
        assert len(result.iteration_results) <= 3

    def test_result_repr(self):
        result = standard_schedule(n=14).run(SinglePortRAM(14))
        assert "PASS" in repr(result)
        assert result.failing_iterations == []

    def test_schedule_repr(self):
        assert "standard-3" in repr(standard_schedule())


class TestClaimC3Coverage:
    """Measured reproduction of claim C3 (see EXPERIMENTS.md for the
    full account: the verifying 3-iteration schedule covers the complete
    single-cell + decoder + bridging universe; CFid needs more)."""

    def test_full_single_cell_coverage_bom(self):
        universe = single_cell_universe(14, classes=("SAF", "TF", "SOF"))
        sched = standard_schedule(n=14, verify=True)
        assert coverage(sched, universe, 14) == len(universe)

    def test_full_single_cell_coverage_wom(self):
        universe = single_cell_universe(16, m=4, classes=("SAF", "TF", "SOF"))
        sched = standard_schedule(field=F16, n=16, verify=True)
        assert coverage(sched, universe, 16, m=4) == len(universe)

    def test_full_decoder_coverage(self):
        universe = decoder_universe(14)
        sched = standard_schedule(n=14, verify=True)
        assert coverage(sched, universe, 14) == len(universe)

    def test_full_bridging_coverage(self):
        universe = bridging_universe(14)
        sched = standard_schedule(n=14, verify=True)
        assert coverage(sched, universe, 14) == len(universe)

    def test_pure_mode_weaker_than_verifying(self):
        universe = single_cell_universe(14, classes=("SAF", "TF", "SOF"))
        pure = coverage(standard_schedule(n=14, verify=False), universe, 14)
        verifying = coverage(standard_schedule(n=14, verify=True), universe, 14)
        assert pure < verifying == len(universe)

    def test_extended_improves_cfid(self):
        from repro.faults import coupling_universe

        universe = coupling_universe(14, classes=("CFid",))
        std = coverage(standard_schedule(n=14), universe, 14)
        ext = coverage(extended_schedule(n=14), universe, 14)
        assert ext > std


class TestExtendedSchedule:
    def test_five_iterations(self):
        sched = extended_schedule(n=14)
        assert len(sched) == 5

    def test_healthy_passes(self):
        assert extended_schedule(n=14).run(SinglePortRAM(14)).passed

    def test_healthy_wom_passes(self):
        sched = extended_schedule(field=F16, n=16)
        assert sched.run(SinglePortRAM(16, m=4)).passed

    def test_includes_descending_pair(self):
        sched = extended_schedule(n=14)
        names = [it.trajectory_for(14).name for it in sched.iterations]
        assert names.count("descending") == 2

    def test_operation_count_matches_run(self):
        sched = extended_schedule(n=14)
        assert sched.run(SinglePortRAM(14)).operations == sched.operation_count(14)


class TestCustomSchedules:
    def test_chained_verification_catches_latent(self):
        """Corruption left 'behind the sweep' in iteration 1 is caught by
        iteration 2's verify read -- the defining property of the
        verifying schedule."""
        from repro.faults import IdempotentCouplingFault

        # Victim far before the aggressor in ascending order: the
        # aggressor's rising write (iteration 2, data-inverted so cell 10
        # actually transitions 0 -> 1) corrupts cell 1 *after* its last
        # read; the corruption is then overwritten unread by the pure
        # scheme, but the verifying wrap-check of iteration 2 reads the
        # seed cells before rewriting them and sees it.
        fault = IdempotentCouplingFault(10, 1, rising=True, force_to=0)

        def make(verify):
            return PiTestSchedule(
                [
                    PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1)),
                    PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1),
                                invert=True),
                ],
                verify=verify,
            )

        results = {}
        for label, sched in [("pure", make(False)), ("verifying", make(True))]:
            ram = SinglePortRAM(14)
            injector = FaultInjector([fault])
            injector.install(ram)
            results[label] = sched.run(ram).detected
            injector.remove(ram)
        assert results["verifying"]

    def test_iterations_property(self):
        it = PiIteration(seed=(0, 1))
        sched = PiTestSchedule([it])
        assert sched.iterations == (it,)
        assert sched.name == "custom"
