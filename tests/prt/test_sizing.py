"""Tests for ring sizing / generator search."""

import pytest

from repro.gf2 import poly_from_string
from repro.gf2m import GF2m, wpoly, wpoly_is_irreducible
from repro.memory import SinglePortRAM
from repro.prt import (
    PiIteration,
    iter_two_tap_generators,
    ring_aligned_generators,
    ring_alignment_report,
)

GF2 = GF2m(0b11)
F16 = GF2m(poly_from_string("1+z+z^4"))


class TestTwoTapEnumeration:
    def test_degree2_gf2(self):
        assert list(iter_two_tap_generators(GF2, 2)) == [(1, 1, 1)]

    def test_degree3_gf2(self):
        generators = list(iter_two_tap_generators(GF2, 3))
        assert (1, 0, 1, 1) in generators
        assert (1, 1, 0, 1) in generators
        assert len(generators) == 2

    def test_all_irreducible(self):
        for g in iter_two_tap_generators(F16, 2):
            assert wpoly_is_irreducible(F16, wpoly(g))

    def test_all_two_tap_shape(self):
        for g in iter_two_tap_generators(GF2, 4):
            assert g[0] == 1 and g[-1] == 1
            interior = [c for c in g[1:-1] if c]
            assert len(interior) == 1

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            next(iter_two_tap_generators(GF2, 1))

    def test_paper_wom_generator_found(self):
        assert (1, 2, 2) in set(iter_two_tap_generators(F16, 2))


class TestRingAligned:
    def test_gf2_n21(self):
        assert ring_aligned_generators(GF2, 21, 3) == [
            ((1, 0, 1, 1), 7),
            ((1, 1, 0, 1), 7),
        ]

    def test_gf2_n9(self):
        assert ring_aligned_generators(GF2, 9, 2) == [((1, 1, 1), 3)]

    def test_power_of_two_has_no_aligned_generator(self):
        # LFSR periods are odd (orders divide 2^km - 1), so no period
        # divides a power of two except the trivial 1.
        assert ring_aligned_generators(GF2, 16, 3) == []

    def test_wom_255(self):
        found = ring_aligned_generators(F16, 255, 2, limit=50)
        assert len(found) == 50  # plenty of aligned generators in GF(16)
        for _g, period in found:
            assert 255 % period == 0
        # The paper's generator is ring-aligned at n = 255 (it sorts past
        # the shorter-period candidates, so check it directly).
        assert ring_alignment_report(F16, (1, 2, 2), 255)["ring_closes"]

    def test_limit(self):
        assert len(ring_aligned_generators(F16, 255, 2, limit=3)) == 3

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ring_aligned_generators(GF2, 1, 2)

    def test_found_generators_actually_close_the_ring(self):
        for g, _period in ring_aligned_generators(GF2, 21, 3):
            k = len(g) - 1
            seed = (0,) * (k - 1) + (1,)
            result = PiIteration(generator=g, seed=seed).run(SinglePortRAM(21))
            assert result.ring_closed


class TestAlignmentReport:
    def test_aligned(self):
        report = ring_alignment_report(GF2, (1, 1, 1), 9)
        assert report == {"period": 3, "n": 9, "ring_closes": True}

    def test_misaligned_suggests_sizes(self):
        report = ring_alignment_report(GF2, (1, 1, 1), 10)
        assert not report["ring_closes"]
        assert report["previous_aligned_n"] == 9
        assert report["next_aligned_n"] == 12

    def test_wom_paper_case(self):
        report = ring_alignment_report(F16, (1, 2, 2), 255)
        assert report["ring_closes"]
        assert report["period"] == 255
