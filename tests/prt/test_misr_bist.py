"""Tests for the MISR compactor and the BIST overhead model."""

import pytest

from repro.gf2 import poly_from_string, primitive_polynomial
from repro.gf2m import GF2m
from repro.prt import MISR, BistOverheadModel

F16 = GF2m(poly_from_string("1+z+z^4"))


class TestMISR:
    def test_reducible_poly_rejected(self):
        with pytest.raises(ValueError):
            MISR(0b10101)

    def test_degree_zero_rejected(self):
        with pytest.raises(ValueError):
            MISR(1)

    def test_initial_out_of_range(self):
        with pytest.raises(ValueError):
            MISR(0b10011, initial=16)

    def test_word_out_of_range(self):
        misr = MISR(0b10011)
        with pytest.raises(ValueError):
            misr.absorb(16)

    def test_signature_changes(self):
        misr = MISR(0b10011)
        misr.absorb(0x3)
        assert misr.signature != 0
        assert misr.absorbed == 1

    def test_deterministic(self):
        a = MISR(0b10011)
        b = MISR(0b10011)
        words = [3, 10, 15, 0, 7]
        assert a.absorb_all(words) == b.absorb_all(words)

    def test_order_sensitive(self):
        a = MISR(0b10011)
        b = MISR(0b10011)
        assert a.absorb_all([1, 2]) != b.absorb_all([2, 1])

    def test_reset(self):
        misr = MISR(0b10011, initial=5)
        misr.absorb_all([1, 2, 3])
        misr.reset()
        assert misr.signature == 5
        assert misr.absorbed == 0

    def test_distinguishes_single_bit_flip(self):
        words = [3, 10, 15, 0, 7, 9]
        golden = MISR(0b10011).absorb_all(words)
        corrupted = list(words)
        corrupted[2] ^= 0b0100
        assert MISR(0b10011).absorb_all(corrupted) != golden

    def test_zero_stream_keeps_zero(self):
        misr = MISR(0b10011)
        misr.absorb_all([0] * 20)
        assert misr.signature == 0

    def test_repr(self):
        assert "m=4" in repr(MISR(0b10011))


class TestBistOverheadModel:
    def make(self, ports=2):
        return BistOverheadModel(F16, (1, 2, 2), ports=ports)

    def test_validation(self):
        with pytest.raises(ValueError):
            BistOverheadModel(F16, (1,), ports=2)
        with pytest.raises(ValueError):
            BistOverheadModel(F16, (1, 2, 2), ports=0)

    def test_geometry(self):
        model = self.make()
        assert model.k == 2
        assert model.m == 4

    def test_multiplier_gates_positive(self):
        assert self.make().multiplier_xor_gates() > 0

    def test_counter_bits_scale_with_log_n(self):
        model = self.make()
        assert model.counter_bits(1 << 10) == 2 * 10
        assert model.counter_bits(1 << 20) == 2 * 20

    def test_counter_bits_validation(self):
        with pytest.raises(ValueError):
            self.make().counter_bits(1)

    def test_overhead_decreases_with_capacity(self):
        model = self.make()
        ratios = [model.overhead_ratio(1 << e) for e in (10, 16, 22, 28)]
        assert ratios == sorted(ratios, reverse=True)

    def test_claim_c5_bound(self):
        """The paper's claim: overhead < 2^-20 of memory capacity.
        Our cost model crosses that bound at large-but-realistic sizes."""
        model = self.make()
        assert model.overhead_ratio(1 << 26) < 2**-20

    def test_crossover_capacity(self):
        model = self.make()
        crossover = model.crossover_capacity()
        assert model.overhead_ratio(crossover) < 2**-20
        assert model.overhead_ratio(crossover // 2) >= 2**-20

    def test_crossover_unreachable_raises(self):
        model = self.make()
        with pytest.raises(ValueError):
            model.crossover_capacity(bound=1e-30, max_log2n=12)

    def test_report_fields(self):
        report = self.make().report(1 << 20)
        assert report["n"] == 1 << 20
        assert report["overhead_ratio"] > 0
        assert report["bist_transistors"] < report["memory_transistors"]

    def test_bom_model(self):
        model = BistOverheadModel(GF2m(0b11), (1, 1, 1), ports=1)
        assert model.m == 1
        assert model.overhead_ratio(1 << 30) < 2**-20

    def test_gf256_model(self):
        field = GF2m(primitive_polynomial(8))
        model = BistOverheadModel(field, (1, 2, 3), ports=2)
        assert model.multiplier_xor_gates() > 0
        assert model.overhead_ratio(1 << 28) < 2**-20
