"""Tests for π-test fault localization."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    BridgingFault,
    FaultInjector,
    StuckAtFault,
    TransitionFault,
    af_shared_cell,
)
from repro.memory import SinglePortRAM
from repro.prt import PiIteration, diagnose_iteration
from repro.prt.trajectory import descending

N = 21
ITERATION = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))


def diagnose_with(fault, iteration=ITERATION, n=N):
    ram = SinglePortRAM(n)
    injector = FaultInjector([fault])
    injector.install(ram)
    report = diagnose_iteration(iteration, ram)
    injector.remove(ram)
    return report


class TestCleanMemory:
    def test_clean_report(self):
        report = diagnose_iteration(ITERATION, SinglePortRAM(N))
        assert not report.detected
        assert report.suspect_cells == ()
        assert report.first_divergence is None
        assert "clean" in repr(report)


class TestLocalization:
    def test_saf_localized(self):
        background = ITERATION.background_after(N)
        cell = background.index(1, 3)
        report = diagnose_with(StuckAtFault(cell, 0))
        assert report.detected
        assert cell in report.suspect_cells
        assert len(report.suspect_cells) <= 4  # k + 1 suspects for k = 3

    def test_suspect_set_small(self):
        for cell in (5, 9, 14):
            report = diagnose_with(StuckAtFault(cell, 1))
            if report.detected and report.first_divergence is not None:
                assert len(report.suspect_cells) <= 4

    @settings(max_examples=25)
    @given(st.integers(min_value=3, max_value=N - 1))
    def test_activated_saf_always_localized(self, cell):
        """Any activated stuck-at lands inside the suspect set."""
        background = ITERATION.background_after(N)
        stuck = background[cell] ^ 1  # guaranteed activation
        report = diagnose_with(StuckAtFault(cell, stuck))
        assert report.detected
        if report.first_divergence is not None:
            assert cell in report.suspect_cells

    def test_observed_expected_fields(self):
        background = ITERATION.background_after(N)
        cell = background.index(1, 3)
        report = diagnose_with(StuckAtFault(cell, 0))
        if report.first_divergence is not None:
            assert report.observed != report.expected
            assert "divergence@" in repr(report)

    def test_tf_localized(self):
        background = ITERATION.background_after(N)
        cell = background.index(1, 3)  # TF-up blocks 0 -> 1
        report = diagnose_with(TransitionFault(cell, rising=True))
        assert report.detected
        assert cell in report.suspect_cells

    def test_bridge_suspects_intersect_bridge(self):
        report = diagnose_with(BridgingFault(8, 9, kind="and"))
        if report.detected and report.first_divergence is not None:
            assert {8, 9} & set(report.suspect_cells)

    def test_decoder_fault_localized(self):
        report = diagnose_with(af_shared_cell(6, 7))
        if report.detected and report.first_divergence is not None:
            assert {6, 7} & set(report.suspect_cells)

    def test_descending_trajectory(self):
        iteration = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1),
                                trajectory=descending(N))
        background = iteration.background_after(N)
        cell = background.index(1)
        # Skip seed cells of the descending walk (N-1, N-2, N-3).
        if cell >= N - 3:
            cell = next(c for c in range(N - 4, -1, -1) if background[c] == 1)
        report = diagnose_with(StuckAtFault(cell, 0), iteration=iteration)
        assert report.detected
        assert cell in report.suspect_cells
