"""Tests for trajectories."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.prt import Trajectory, ascending, descending, random_trajectory


class TestConstruction:
    def test_must_be_permutation(self):
        with pytest.raises(ValueError):
            Trajectory([0, 0, 1])
        with pytest.raises(ValueError):
            Trajectory([1, 2, 3])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Trajectory([])

    def test_properties(self):
        traj = ascending(4)
        assert traj.n == len(traj) == 4
        assert traj.name == "ascending"
        assert traj.addresses == (0, 1, 2, 3)


class TestCyclicIndexing:
    def test_wraps(self):
        traj = ascending(4)
        assert traj[3] == 3
        assert traj[4] == 0
        assert traj[9] == 1

    def test_descending(self):
        traj = descending(4)
        assert traj.addresses == (3, 2, 1, 0)
        assert traj[4] == 3

    def test_iteration(self):
        assert list(ascending(3)) == [0, 1, 2]


class TestTransforms:
    def test_reversed(self):
        assert ascending(4).reversed().addresses == descending(4).addresses

    def test_rotated(self):
        assert ascending(4).rotated(1).addresses == (1, 2, 3, 0)
        assert ascending(4).rotated(5).addresses == (1, 2, 3, 0)
        assert ascending(4).rotated(0).addresses == (0, 1, 2, 3)

    def test_equality_and_hash(self):
        assert ascending(4) == Trajectory([0, 1, 2, 3])
        assert ascending(4) != descending(4)
        assert len({ascending(4), Trajectory(range(4))}) == 1

    def test_eq_non_trajectory(self):
        assert ascending(4) != [0, 1, 2, 3]


class TestRandom:
    def test_reproducible(self):
        assert random_trajectory(16, seed=5) == random_trajectory(16, seed=5)

    def test_seeds_differ(self):
        assert random_trajectory(16, seed=1) != random_trajectory(16, seed=2)

    @given(st.integers(min_value=1, max_value=64), st.integers(0, 100))
    def test_always_a_permutation(self, n, seed):
        traj = random_trajectory(n, seed=seed)
        assert sorted(traj.addresses) == list(range(n))

    def test_name_encodes_seed(self):
        assert "seed=7" in random_trajectory(8, seed=7).name

    def test_repr(self):
        assert "ascending" in repr(ascending(4))
