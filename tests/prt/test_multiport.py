"""Tests for the dual- and quad-port π-test schemes (paper §4, Fig. 2)."""

import pytest

from repro.faults import FaultInjector, StuckAtFault
from repro.gf2 import poly_from_string
from repro.gf2m import GF2m
from repro.memory import DualPortRAM, QuadPortRAM, SinglePortRAM
from repro.prt import (
    DualPortPiIteration,
    PiIteration,
    QuadPortPiIteration,
    descending,
)

F16 = GF2m(poly_from_string("1+z+z^4"))


class TestDualPort:
    def test_requires_k2(self):
        with pytest.raises(ValueError):
            DualPortPiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))

    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            DualPortPiIteration(seed=(0, 0))

    def test_needs_two_ports(self):
        it = DualPortPiIteration(seed=(0, 1))
        with pytest.raises(ValueError):
            it.run(SinglePortRAM(9))

    def test_field_mismatch(self):
        it = DualPortPiIteration(field=F16, generator=(1, 2, 2), seed=(0, 1))
        with pytest.raises(ValueError):
            it.run(DualPortRAM(16, m=1))

    def test_memory_too_small(self):
        with pytest.raises(ValueError):
            DualPortPiIteration(seed=(0, 1)).run(DualPortRAM(2))

    def test_healthy_bom_passes(self):
        assert DualPortPiIteration(seed=(0, 1)).run(DualPortRAM(9)).passed

    def test_healthy_wom_passes_and_ring_closes(self):
        it = DualPortPiIteration(field=F16, generator=(1, 2, 2), seed=(0, 1))
        result = it.run(DualPortRAM(255, m=4))
        assert result.passed
        assert result.ring_closed

    def test_cycle_count_is_2n_claim_c4(self):
        """The paper's claim: dual-port PRT runs in 2n cycles."""
        it = DualPortPiIteration(seed=(0, 1))
        ram = DualPortRAM(50)
        it.run(ram)
        assert ram.stats.cycles == 2 * 50 + 2 == it.cycle_count(50)

    def test_single_vs_dual_port_speedup(self):
        """3n single-port cycles vs 2n dual-port cycles: ratio -> 1.5."""
        n = 120
        sp = SinglePortRAM(n)
        PiIteration(seed=(0, 1)).run(sp)
        dp = DualPortRAM(n)
        DualPortPiIteration(seed=(0, 1)).run(dp)
        assert sp.stats.cycles > dp.stats.cycles
        ratio = sp.stats.cycles / dp.stats.cycles
        assert 1.4 < ratio < 1.6

    def test_same_stream_as_single_port(self):
        n = 30
        sp = SinglePortRAM(n)
        PiIteration(seed=(0, 1)).run(sp)
        dp = DualPortRAM(n)
        DualPortPiIteration(seed=(0, 1)).run(dp)
        assert sp.dump() == dp.dump()

    def test_detects_fault(self):
        it = DualPortPiIteration(generator=(1, 1, 1), seed=(1, 1))
        ram0 = DualPortRAM(9)
        it.run(ram0)
        cell = ram0.dump().index(1)
        ram = DualPortRAM(9)
        FaultInjector([StuckAtFault(cell, 0)]).install(ram)
        assert not it.run(ram).passed

    def test_custom_trajectory(self):
        it = DualPortPiIteration(seed=(0, 1), trajectory=descending(9))
        assert it.run(DualPortRAM(9)).passed

    def test_trajectory_size_mismatch(self):
        it = DualPortPiIteration(seed=(0, 1), trajectory=descending(8))
        with pytest.raises(ValueError):
            it.run(DualPortRAM(9))

    def test_properties(self):
        it = DualPortPiIteration(field=F16, generator=(1, 2, 2), seed=(0, 1))
        assert it.field is F16
        assert it.generator == (1, 2, 2)
        assert it.seed == (0, 1)


class TestQuadPort:
    def test_requires_k2(self):
        with pytest.raises(ValueError):
            QuadPortPiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))

    def test_needs_four_ports(self):
        with pytest.raises(ValueError):
            QuadPortPiIteration(seed=(0, 1)).run(DualPortRAM(12))

    def test_needs_even_n(self):
        with pytest.raises(ValueError):
            QuadPortPiIteration(seed=(0, 1)).run(QuadPortRAM(13))

    def test_healthy_passes(self):
        result = QuadPortPiIteration(seed=(0, 1)).run(QuadPortRAM(12))
        assert result.passed

    def test_cycle_count_is_n(self):
        """Two concurrent automata: a full pass in n + 2 cycles."""
        it = QuadPortPiIteration(seed=(0, 1))
        ram = QuadPortRAM(40)
        it.run(ram)
        assert ram.stats.cycles == 40 + 2 == it.cycle_count(40)

    def test_detects_fault_in_either_half(self):
        for cell in (2, 8):  # first and second half of a 12-cell array
            probe = QuadPortRAM(12)
            QuadPortPiIteration(seed=(1, 1)).run(probe)
            target = probe.dump()[cell] ^ 1
            ram = QuadPortRAM(12)
            FaultInjector([StuckAtFault(cell, target)]).install(ram)
            result = QuadPortPiIteration(seed=(1, 1)).run(ram)
            assert not result.passed

    def test_halves_report_separately(self):
        ram = QuadPortRAM(12)
        FaultInjector([StuckAtFault(1, 1)]).install(ram)
        result = QuadPortPiIteration(seed=(0, 1)).run(ram)
        # fault in first half only
        if not result.passed:
            statuses = [r.passed for r in result.halves]
            assert statuses.count(False) >= 1

    def test_field_mismatch(self):
        it = QuadPortPiIteration(field=F16, generator=(1, 2, 2), seed=(0, 1))
        with pytest.raises(ValueError):
            it.run(QuadPortRAM(12, m=1))

    def test_result_repr(self):
        result = QuadPortPiIteration(seed=(0, 1)).run(QuadPortRAM(12))
        assert "PASS" in repr(result)
