"""Suite-wide test configuration.

Hypothesis runs with a derandomized profile: property tests explore the
same example sequence on every run, so the suite's verdict is
reproducible (a one-off fuzzing win is not worth a flaky CI gate).
Developers hunting for new counterexamples can opt back into fresh
randomness with ``HYPOTHESIS_PROFILE=random``.

The import is guarded so minimal environments (e.g. a docs-only CI job
running ``tests/test_docs.py``) can collect the suite without hypothesis
installed; the property-test modules themselves still require it.
"""

import os

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover - exercised only without hypothesis
    settings = None

if settings is not None:
    settings.register_profile("deterministic", derandomize=True)
    settings.register_profile("random", derandomize=False)
    settings.load_profile(
        os.environ.get("HYPOTHESIS_PROFILE", "deterministic")
    )
