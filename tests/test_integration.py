"""Cross-package integration tests: the whole stack working together.

These exercise realistic end-to-end flows -- the kind a downstream user
would script -- and pin cross-engine consistency properties that no
single-package unit test can see.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    GF2m,
    PiIteration,
    SinglePortRAM,
    extended_schedule,
    poly_from_string,
    run_march,
    standard_schedule,
)
from repro.faults import (
    FaultInjector,
    StuckAtFault,
    af_shared_cell,
    coupling_universe,
    single_cell_universe,
    standard_universe,
)
from repro.lfsr import berlekamp_massey_word, linear_complexity
from repro.march.library import MARCH_B, MARCH_C_MINUS
from repro.memory import DualPortRAM
from repro.prt import DualPortPiIteration, random_trajectory

F16 = GF2m(poly_from_string("1+z+z^4"))


class TestHealthyMemoryNeverFlagged:
    """No test may ever flag a healthy memory (zero false positives)."""

    @settings(max_examples=15)
    @given(st.integers(min_value=7, max_value=60))
    def test_standard_schedule(self, n):
        assert standard_schedule(n=n).run(SinglePortRAM(n)).passed

    @settings(max_examples=10)
    @given(st.integers(min_value=7, max_value=40))
    def test_extended_schedule(self, n):
        assert extended_schedule(n=n).run(SinglePortRAM(n)).passed

    @settings(max_examples=10)
    @given(st.integers(min_value=5, max_value=40),
           st.integers(min_value=0, max_value=50))
    def test_any_random_trajectory(self, n, seed):
        iteration = PiIteration(
            generator=(1, 0, 1, 1), seed=(0, 0, 1),
            trajectory=random_trajectory(n, seed=seed),
        )
        assert iteration.run(SinglePortRAM(n)).passed

    @settings(max_examples=10)
    @given(st.integers(min_value=4, max_value=32))
    def test_wom_schedules(self, n):
        schedule = standard_schedule(field=F16, n=n)
        assert schedule.run(SinglePortRAM(n, m=4)).passed

    def test_all_march_tests(self):
        from repro.march import ALL_MARCH_TESTS

        for test in ALL_MARCH_TESTS:
            assert run_march(test, SinglePortRAM(24, m=4)).passed


class TestCrossEngineConsistency:
    """March and PRT must agree on the easy fault classes."""

    def test_safs_detected_by_both(self):
        n = 14
        for fault in single_cell_universe(n, classes=("SAF",)):
            march_ram = SinglePortRAM(n)
            injector = FaultInjector([fault])
            injector.install(march_ram)
            march_detected = not run_march(MARCH_C_MINUS, march_ram).passed
            injector.remove(march_ram)

            prt_ram = SinglePortRAM(n)
            injector.install(prt_ram)
            prt_detected = standard_schedule(n=n).run(prt_ram).detected
            injector.remove(prt_ram)

            assert march_detected and prt_detected, fault.name

    def test_single_and_dual_port_prt_agree(self):
        """The dual-port scheme is a timing optimization: it must detect
        exactly the same faults as the single-port iteration."""
        n = 21
        universe = single_cell_universe(n, classes=("SAF", "TF"))
        for fault in universe:
            sp_ram = SinglePortRAM(n)
            injector = FaultInjector([fault])
            injector.install(sp_ram)
            sp_detected = not PiIteration(seed=(0, 1)).run(sp_ram).passed
            injector.remove(sp_ram)

            dp_ram = DualPortRAM(n)
            injector.install(dp_ram)
            dp_detected = not DualPortPiIteration(seed=(0, 1)).run(dp_ram).passed
            injector.remove(dp_ram)

            assert sp_detected == dp_detected, fault.name


class TestFaultInjectionHygiene:
    """Install/remove cycles must leave no residue."""

    def test_remove_restores_clean_runs(self):
        n = 14
        ram = SinglePortRAM(n)
        schedule = standard_schedule(n=n)
        for fault in standard_universe(n).sample(40):
            injector = FaultInjector([fault])
            injector.install(ram)
            schedule.run(ram)
            injector.remove(ram)
        # After all that churn the memory must behave perfectly again.
        assert schedule.run(ram).passed
        assert ram.decoder.is_healthy

    def test_detection_is_deterministic(self):
        n = 14
        schedule = standard_schedule(n=n)
        fault = af_shared_cell(3, 4)
        outcomes = set()
        for _ in range(3):
            ram = SinglePortRAM(n)
            injector = FaultInjector([fault])
            injector.install(ram)
            outcomes.add(schedule.run(ram).detected)
            injector.remove(ram)
        assert len(outcomes) == 1


class TestStructuralInvariants:
    """Whole-stack invariants of the PRT construction."""

    def test_background_linear_complexity_equals_k(self):
        """The TDB laid by any π-iteration has linear complexity exactly
        k -- it IS a k-stage LFSR stream."""
        n = 35
        result = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1)).run(
            SinglePortRAM(n), record=True
        )
        assert linear_complexity(result.written_stream) == 3

        wom = PiIteration(field=F16, generator=(1, 2, 2), seed=(0, 1)).run(
            SinglePortRAM(n, m=4), record=True
        )
        length, connection = berlekamp_massey_word(F16, wom.written_stream)
        assert length == 2
        assert connection == (1, 2, 2)

    def test_fault_breaks_linear_complexity(self):
        """A detected fault disturbs the stream structure: the observed
        background's linear complexity exceeds k (the free diagnostic
        PRT provides)."""
        n = 35
        iteration = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))
        background = iteration.background_after(n)
        # Skip the seed cells: killing a seed collapses the automaton to
        # the all-zero stream (complexity 0) instead of raising it.
        cell = background.index(1, 3)
        ram = SinglePortRAM(n)
        injector = FaultInjector([StuckAtFault(cell, 0)])
        injector.install(ram)
        result = iteration.run(ram, record=True)
        injector.remove(ram)
        assert not result.passed
        assert linear_complexity(result.written_stream) > 3

    def test_power_up_state_independence(self):
        """The schedule's verdict must not depend on pre-test memory
        contents (the BIST property the sweep structure guarantees)."""
        n = 21
        verdicts = []
        for fill in (0, 1):
            ram = SinglePortRAM(n)
            ram.fill(fill)
            verdicts.append(standard_schedule(n=n).run(ram).passed)
        assert verdicts == [True, True]

    @settings(max_examples=10)
    @given(st.integers(min_value=0, max_value=30))
    def test_coupling_detection_independent_of_extra_randomness(self, seed):
        """Sampling more coupling faults never crashes the stack and all
        results are booleans (smoke property over the whole pipeline)."""
        n = 10
        universe = coupling_universe(n, extra_random_pairs=3, seed=seed)
        schedule = standard_schedule(n=n)
        for fault in universe.sample(5, rng=__import__("random").Random(seed)):
            ram = SinglePortRAM(n)
            injector = FaultInjector([fault])
            injector.install(ram)
            assert schedule.run(ram).detected in (True, False)
            injector.remove(ram)


class TestMarchBReference:
    """March B is the full-coverage reference: everything the standard
    universe contains, it must detect (sanity anchor for all coverage
    numbers reported in EXPERIMENTS.md)."""

    def test_march_b_full_coverage(self):
        n = 14
        missed = []
        for fault in standard_universe(n):
            ram = SinglePortRAM(n)
            injector = FaultInjector([fault])
            injector.install(ram)
            if run_march(MARCH_B, ram).passed:
                missed.append(fault.name)
            injector.remove(ram)
        assert missed == []
