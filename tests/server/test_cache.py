"""ResultCache: LRU semantics, the disk tier, and single-flight compute."""

import pickle
import threading

import pytest

from repro.server.cache import ResultCache, default_cache, reset_default_cache


class TestMemoryTier:
    def test_round_trip_fresh_copies(self):
        cache = ResultCache()
        value = {"rows": [1, 2, 3]}
        cache.put("ab", value)
        hit = cache.get("ab")
        assert hit == value
        assert hit is not value  # stored pickled, never aliased
        assert cache.get("ab") is not cache.get("ab")

    def test_hit_is_byte_identical(self):
        cache = ResultCache()
        value = {"floats": [0.1, 1 / 3], "names": ["a", "b"]}
        cache.put("cd", value)
        assert pickle.dumps(cache.get("cd")) == pickle.dumps(value)

    def test_mutating_a_hit_cannot_poison_the_cache(self):
        cache = ResultCache()
        cache.put("ef", {"n": 1})
        cache.get("ef")["n"] = 999
        assert cache.get("ef") == {"n": 1}

    def test_miss_returns_none(self):
        cache = ResultCache()
        assert cache.get("0123") is None
        assert cache.stats()["misses"] == 1

    def test_lru_eviction(self):
        cache = ResultCache(maxsize=2)
        cache.put("aa", 1)
        cache.put("bb", 2)
        assert cache.get("aa") == 1  # touch: aa is now most recent
        cache.put("cc", 3)  # evicts bb, the least recently used
        assert cache.get("bb") is None
        assert cache.get("aa") == 1
        assert cache.get("cc") == 3
        assert cache.stats()["evictions"] == 1

    def test_keys_must_be_hex(self):
        cache = ResultCache()
        for bad in ("", "UPPER", "../escape", "no spaces", 42, None):
            with pytest.raises(ValueError, match="hex content addresses"):
                cache.put(bad, 1)

    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError, match="maxsize"):
            ResultCache(maxsize=0)

    def test_len_contains_clear(self):
        cache = ResultCache()
        cache.put("ab", 1)
        assert len(cache) == 1 and "ab" in cache and "cd" not in cache
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["hits"] == 0


class TestDiskTier:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(disk_dir=str(tmp_path / "store"))
        cache.put("ab12", {"report": [1.0, 0.5]})
        assert (tmp_path / "store" / "ab12.pickle").exists()
        assert cache.get("ab12") == {"report": [1.0, 0.5]}

    def test_survives_a_new_process_worth_of_state(self, tmp_path):
        """A fresh cache over the same directory serves the old entries --
        the cross-process story behind REPRO_CACHE_DIR."""
        first = ResultCache(disk_dir=str(tmp_path))
        first.put("abcd", {"overall": 1.0})
        second = ResultCache(disk_dir=str(tmp_path))
        assert second.get("abcd") == {"overall": 1.0}
        assert "abcd" in second

    def test_eviction_spills_to_disk_not_to_nothing(self, tmp_path):
        cache = ResultCache(maxsize=1, disk_dir=str(tmp_path))
        cache.put("aa", 1)
        cache.put("bb", 2)  # evicts aa from memory; file remains
        assert cache.get("aa") == 1  # disk hit, promoted back
        assert cache.stats()["hits"] == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(disk_dir=str(tmp_path))
        (tmp_path / "dead.pickle").write_bytes(b"")
        with pytest.raises(EOFError):
            cache.get("dead")  # unpickling garbage fails loudly...
        assert ResultCache(disk_dir=str(tmp_path)).get("beef") is None


class TestGetOrCompute:
    def test_computes_once(self):
        cache = ResultCache()
        calls = []

        def compute():
            calls.append(1)
            return {"x": 1}

        value, fresh = cache.get_or_compute("ab", compute)
        assert (value, fresh) == ({"x": 1}, True)
        value, fresh = cache.get_or_compute("ab", compute)
        assert (value, fresh) == ({"x": 1}, False)
        assert len(calls) == 1

    def test_concurrent_callers_single_flight(self):
        cache = ResultCache()
        calls = []
        release = threading.Event()

        def compute():
            calls.append(1)
            release.wait(5.0)
            return "value"

        results = []

        def worker():
            results.append(cache.get_or_compute("ff", compute))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        release.set()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert sorted(fresh for _, fresh in results) == [False, False,
                                                         False, True]
        assert all(value == "value" for value, _ in results)

    def test_compute_failure_does_not_wedge_the_key(self):
        cache = ResultCache()

        def boom():
            raise RuntimeError("campaign failed")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("ab", boom)
        value, fresh = cache.get_or_compute("ab", lambda: 42)
        assert (value, fresh) == (42, True)


class TestDefaultCache:
    def test_env_configuration(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CACHE_SIZE", "7")
        reset_default_cache()
        try:
            cache = default_cache()
            assert cache.disk_dir == str(tmp_path)
            assert cache.maxsize == 7
            assert default_cache() is cache  # process-wide singleton
        finally:
            reset_default_cache()
