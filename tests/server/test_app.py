"""The ASGI app end to end: endpoints, jobs, and the asyncio HTTP bridge."""

import asyncio
import json
import pickle

import pytest

from repro.analysis.request import CampaignRequest
from repro.server import JobManager, ResultCache, TestClient, create_app
from repro.server.http import serve


@pytest.fixture()
def client():
    app = create_app(cache=ResultCache())
    yield TestClient(app)
    app.close()


class TestSchemes:
    def test_lists_every_selector(self, client):
        payload = client.get("/schemes").json()
        selectors = {s["test"] for s in payload["schemes"]}
        assert {"mats", "mats+", "march-c", "march-b", "prt3", "prt5",
                "dual-port", "quad-port", "dual-schedule",
                "quad-schedule"} == selectors
        assert payload["engines"] == ["auto", "compiled", "batched",
                                      "interpreted"]
        assert payload["backends"] == ["auto", "int", "numpy"]

    def test_post_is_405(self, client):
        assert client.post("/schemes", {}).status == 405


class TestStatsEndpoint:
    def test_cache_and_job_telemetry(self, client):
        cold = client.get("/stats").json()
        assert cold["cache"]["hits"] == 0
        assert cold["cache"]["evictions"] == 0
        assert cold["cache"]["disk_promotions"] == 0
        assert cold["jobs"] == {"queued": 0, "running": 0, "done": 0,
                                "error": 0, "tracked": 0}

        body = {"test": "mats", "n": 8}
        client.post("/coverage", body)
        client.post("/coverage", body)  # cache hit
        job = client.post("/jobs", {"kind": "coverage",
                                    "request": body}).json()
        client.app.jobs.wait(job["id"])
        warm = client.get("/stats").json()
        assert warm["cache"]["hits"] >= 2  # repeat POST + the job
        assert warm["cache"]["misses"] >= 1
        assert warm["jobs"]["done"] == 1
        assert warm["jobs"]["tracked"] == 1

    def test_disk_promotions_surface(self, tmp_path):
        cache = ResultCache(maxsize=1, disk_dir=str(tmp_path / "store"))
        app = create_app(cache=cache)
        client = TestClient(app)
        try:
            client.post("/coverage", {"test": "mats", "n": 8})
            client.post("/coverage", {"test": "mats", "n": 12})  # evicts
            client.post("/coverage", {"test": "mats", "n": 8})   # disk hit
            stats = client.get("/stats").json()["cache"]
            assert stats["evictions"] >= 1
            assert stats["disk_promotions"] >= 1
        finally:
            app.close()

    def test_post_is_405(self, client):
        assert client.post("/stats", {}).status == 405


class TestCoverageEndpoint:
    def test_cold_then_cached(self, client):
        body = {"test": "march-c", "n": 24}
        cold = client.post("/coverage", body).json()
        warm = client.post("/coverage", body).json()
        assert cold["cached"] is False
        assert warm["cached"] is True
        assert warm["report"] == cold["report"]
        assert warm["cache_key"] == cold["cache_key"]

    def test_matches_direct_api_call(self, client):
        """The endpoint and run_coverage(request) produce the same report
        through the same resolver."""
        from repro.analysis import run_coverage

        request = CampaignRequest(test="prt3", n=14)
        via_http = client.post("/coverage", {"test": "prt3", "n": 14}).json()
        via_api = run_coverage(request, cache=False)
        assert via_http["report"]["overall"] == via_api.overall
        assert via_http["report"]["test_name"] == via_api.test_name
        assert via_http["request"]["test"] == "prt3"

    def test_validation_errors_are_400(self, client):
        response = client.post("/coverage", {"test": "nope", "n": 8})
        assert response.status == 400
        assert "unknown test" in response.json()["error"]
        response = client.post("/coverage", {"test": "mats"})
        assert response.status == 400
        assert response.json()["field"] == "n"
        response = client.post("/coverage",
                               {"test": "quad-port", "n": 13})
        assert response.status == 400
        assert "even n" in response.json()["error"]

    def test_invalid_json_is_400(self, client):
        response = client.request("POST", "/coverage")
        assert response.status == 400  # empty body -> missing fields

    def test_unknown_path_is_404(self, client):
        assert client.get("/nope").status == 404


class TestCompareEndpoint:
    def test_table(self, client):
        response = client.post("/compare",
                               {"tests": ["mats+", "march-c"], "n": 12})
        assert response.status == 200
        rows = response.json()["rows"]
        assert [row["name"] for row in rows] == ["MATS+", "March C-"]
        assert all(row["operations"] > 0 for row in rows)

    def test_shares_the_coverage_cache(self, client):
        client.post("/coverage", {"test": "march-c", "n": 16})
        response = client.post("/compare",
                               {"tests": ["march-c"], "n": 16})
        assert response.status == 200
        stats = client.app.cache.stats()
        assert stats["hits"] >= 1  # compare served from coverage's entry


class TestVerifyEndpoint:
    def test_clean_stream(self, client):
        response = client.post("/verify", {"test": "march-c", "n": 16})
        assert response.status == 200
        payload = response.json()
        assert payload["ok"] is True
        assert payload["errors"] == 0
        assert payload["stream"]["records"] > 0
        assert payload["stream"]["digest"]
        assert set(payload["counts"]) == set(
            d["code"] for d in payload["diagnostics"]) or payload["truncated"]

    def test_validation_errors_are_400(self, client):
        response = client.post("/verify", {"test": "nope", "n": 8})
        assert response.status == 400
        assert "unknown test" in response.json()["error"]
        response = client.post("/verify", {"test": "mats"})
        assert response.status == 400
        assert response.json()["field"] == "n"

    def test_get_is_405(self, client):
        assert client.get("/verify").status == 405


class TestJobs:
    def _finish(self, client, job_id):
        job = client.app.jobs.wait(job_id, timeout=30.0)
        assert job is not None
        return client.get(f"/jobs/{job_id}").json()

    def test_submit_poll_result(self, client):
        response = client.post(
            "/jobs", {"kind": "coverage",
                      "request": {"test": "march-c", "n": 16}})
        assert response.status == 202
        submitted = response.json()
        assert submitted["status"] in ("queued", "running")
        final = self._finish(client, submitted["id"])
        assert final["status"] == "done"
        assert final["result"]["report"]["test_name"] == "march-c"
        done, total = (final["progress"]["done"], final["progress"]["total"])
        assert done == total > 0

    def test_compare_job(self, client):
        response = client.post(
            "/jobs", {"kind": "compare",
                      "request": {"tests": ["mats", "mats+"], "n": 8}})
        final = self._finish(client, response.json()["id"])
        assert final["status"] == "done"
        assert [row["name"] for row in final["result"]["rows"]] == [
            "MATS", "MATS+"]

    def test_invalid_job_is_rejected_up_front(self, client):
        response = client.post(
            "/jobs", {"kind": "coverage", "request": {"test": "nope",
                                                      "n": 8}})
        assert response.status == 400
        response = client.post("/jobs", {"kind": "frobnicate",
                                         "request": {}})
        assert response.status == 400

    def test_unknown_job_is_404(self, client):
        assert client.get("/jobs/job-999").status == 404
        assert client.get("/jobs/job-999/stream").status == 404

    def test_stream_ends_with_the_final_state(self, client):
        response = client.post(
            "/jobs", {"kind": "coverage",
                      "request": {"test": "mats", "n": 12}})
        job_id = response.json()["id"]
        stream = client.get(f"/jobs/{job_id}/stream")
        assert stream.status == 200
        assert stream.headers["content-type"] == "application/x-ndjson"
        records = stream.ndjson()
        assert records[-1]["status"] == "done"
        assert all(record["id"] == job_id for record in records)


class TestJobManager:
    def test_history_bound_drops_only_finished_jobs(self):
        manager = JobManager(cache=ResultCache(), history=2)
        try:
            jobs = [manager.submit_coverage(CampaignRequest(test="mats", n=8))
                    for _ in range(4)]
            for job in jobs:
                manager.wait(job.id, timeout=30.0)
            manager.submit_coverage(CampaignRequest(test="mats", n=10))
            assert manager.get(jobs[0].id) is None  # aged out
        finally:
            manager.close()

    def test_error_jobs_carry_the_message(self, monkeypatch):
        import repro.server.jobs as jobs_module

        def boom(request, cache=None, progress=None, **kwargs):
            raise RuntimeError("engine exploded")

        monkeypatch.setattr(jobs_module, "execute_request", boom)
        manager = JobManager(cache=ResultCache())
        try:
            job = manager.submit_coverage(CampaignRequest(test="mats", n=8))
            final = manager.wait(job.id, timeout=30.0)
            assert final.status == "error"
            assert "engine exploded" in final.error
            assert "error" in final.to_dict()
        finally:
            manager.close()


class TestCacheIntegration:
    def test_endpoint_report_byte_identical_to_api(self):
        """One shared cache entry serves HTTP and run_coverage alike."""
        from repro.analysis import run_coverage

        cache = ResultCache()
        app = create_app(cache=cache)
        try:
            client = TestClient(app)
            client.post("/coverage", {"test": "march-c", "n": 20})
            report = run_coverage(CampaignRequest(test="march-c", n=20),
                                  cache=cache)
            rerun = run_coverage(CampaignRequest(test="march-c", n=20),
                                 cache=cache)
            assert pickle.dumps(report) == pickle.dumps(rerun)
            assert cache.stats()["hits"] >= 2
        finally:
            app.close()


class TestHttpBridge:
    """python -m repro.server's asyncio HTTP/1.1 adapter, over real sockets."""

    def _roundtrip(self, raw_requests):
        async def main():
            app = create_app(cache=ResultCache())
            server = await serve(app, host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            responses = []
            try:
                for raw in raw_requests:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port)
                    writer.write(raw)
                    await writer.drain()
                    responses.append(await reader.read())
                    writer.close()
                    await writer.wait_closed()
            finally:
                server.close()
                await server.wait_closed()
                app.close()
            return responses

        return asyncio.run(main())

    @staticmethod
    def _post(path, payload):
        body = json.dumps(payload).encode()
        return (f"POST {path} HTTP/1.1\r\nhost: t\r\n"
                f"content-type: application/json\r\n"
                f"content-length: {len(body)}\r\n\r\n").encode() + body

    def test_get_and_post(self):
        responses = self._roundtrip([
            b"GET /schemes HTTP/1.1\r\nhost: t\r\n\r\n",
            self._post("/coverage", {"test": "mats", "n": 8}),
            b"GET /missing HTTP/1.1\r\nhost: t\r\n\r\n",
            b"BROKEN\r\n\r\n",
        ])
        schemes, coverage, missing, broken = responses
        assert schemes.startswith(b"HTTP/1.1 200 OK\r\n")
        head, _, body = coverage.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"connection: close" in head
        assert json.loads(body)["report"]["test_name"] == "mats"
        assert missing.startswith(b"HTTP/1.1 404")
        assert broken.startswith(b"HTTP/1.1 400")

    def test_streaming_is_chunked(self):
        submit = self._post("/jobs", {"kind": "coverage",
                                      "request": {"test": "mats", "n": 8}})
        # Submit and stream must share one app instance, so do both in
        # one _roundtrip batch: the stream request polls until done.
        responses = self._roundtrip([
            submit,
            b"GET /jobs/job-1/stream HTTP/1.1\r\nhost: t\r\n\r\n",
        ])
        head, _, body = responses[1].partition(b"\r\n\r\n")
        assert b"transfer-encoding: chunked" in head.lower()
        chunks, rest = [], body
        while rest:
            size_text, _, rest = rest.partition(b"\r\n")
            size = int(size_text, 16)
            if size == 0:
                break
            chunks.append(rest[:size])
            rest = rest[size + 2:]
        records = [json.loads(line)
                   for line in b"".join(chunks).splitlines() if line]
        assert records[-1]["status"] == "done"


class TestMainModule:
    def test_parser_defaults(self):
        from repro.server.__main__ import build_parser

        args = build_parser().parse_args([])
        assert args.host == "127.0.0.1"
        assert args.port == 8714
        assert args.cache_dir is None
        args = build_parser().parse_args(
            ["--port", "9000", "--cache-dir", "/tmp/c", "--cache-size", "9"])
        assert (args.port, args.cache_dir, args.cache_size) == (
            9000, "/tmp/c", 9)
