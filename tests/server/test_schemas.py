"""JSON schemas: round trips and pointed validation errors."""

import json

import pytest

from repro.analysis.request import CampaignRequest, resolve_campaign
from repro.faults.universe import UniverseSpec, standard_universe
from repro.server.schemas import (
    SchemaError,
    compare_from_dict,
    report_to_dict,
    request_from_dict,
    request_to_dict,
    spec_from_dict,
    spec_to_dict,
)


class TestRequestRoundTrip:
    def test_minimal(self):
        request = request_from_dict({"test": "march-c", "n": 64})
        assert request == CampaignRequest(test="march-c", n=64)

    def test_full(self):
        body = {
            "test": "prt3", "n": 32, "m": 4, "engine": "batched",
            "backend": "numpy", "workers": 2, "pure": True,
            "poly": "1+z+z^4",
            "universe": {"generator": "single_cell",
                         "kwargs": {"n": 32, "m": 4}},
        }
        request = request_from_dict(body)
        assert request.universe == UniverseSpec.call("single_cell", n=32, m=4)
        assert request_from_dict(request_to_dict(request)) == request

    def test_null_optionals_are_defaults(self):
        request = request_from_dict({"test": "mats", "n": 8,
                                     "universe": None, "poly": None})
        assert request == CampaignRequest(test="mats", n=8)

    def test_to_dict_is_json_serializable(self):
        spec = standard_universe(16).spec
        request = CampaignRequest(test="march-c", n=16, universe=spec)
        text = json.dumps(request_to_dict(request))
        assert request_from_dict(json.loads(text)) == request


class TestRequestValidation:
    @pytest.mark.parametrize("body,field", [
        ({"n": 8}, "test"),
        ({"test": "mats"}, "n"),
        ({"test": "mats", "n": "8"}, "n"),
        ({"test": "mats", "n": True}, "n"),
        ({"test": 3, "n": 8}, "test"),
        ({"test": "mats", "n": 8, "workers": 1.5}, "workers"),
        ({"test": "mats", "n": 8, "pure": "yes"}, "pure"),
        ({"test": "mats", "n": 8, "universe": "standard"}, "universe"),
    ])
    def test_type_errors_name_the_field(self, body, field):
        with pytest.raises(SchemaError) as excinfo:
            request_from_dict(body)
        assert excinfo.value.field == field

    def test_unknown_fields_rejected(self):
        with pytest.raises(SchemaError, match="unknown field"):
            request_from_dict({"test": "mats", "n": 8, "speed": "max"})

    def test_not_a_dict(self):
        with pytest.raises(SchemaError, match="expected dict"):
            request_from_dict(["mats", 8])


class TestSpecs:
    def test_nested_union_round_trip(self):
        spec = standard_universe(24, m=2).spec
        assert spec.generator == "union"
        clone = spec_from_dict(spec_to_dict(spec))
        assert clone == spec
        assert repr(clone) == repr(spec)  # same cache-key contribution

    def test_kwargs_lists_become_tuples(self):
        spec = spec_from_dict({"generator": "single_cell",
                               "kwargs": {"n": 8, "classes": ["SAF", "TF"]}})
        assert dict(spec.kwargs)["classes"] == ("SAF", "TF")
        resolved = resolve_campaign(
            CampaignRequest(test="mats", n=8, universe=spec))
        assert resolved.build_universe() is not None

    def test_spec_errors_name_the_path(self):
        with pytest.raises(SchemaError) as excinfo:
            request_from_dict({"test": "mats", "n": 8,
                               "universe": {"kwargs": {}}})
        assert excinfo.value.field == "universe.generator"
        with pytest.raises(SchemaError) as excinfo:
            spec_from_dict({"generator": "union",
                            "parts": [{"bogus": 1}]})
        assert excinfo.value.field == "universe.parts[0]"


class TestCompareBodies:
    def test_requests_form(self):
        requests = compare_from_dict({"requests": [
            {"test": "mats", "n": 8}, {"test": "march-c", "n": 8}]})
        assert [r.test for r in requests] == ["mats", "march-c"]

    def test_tests_shorthand_shares_options(self):
        requests = compare_from_dict({"tests": ["prt3", "march-c"],
                                      "n": 28, "engine": "batched"})
        assert all(r.n == 28 and r.engine == "batched" for r in requests)

    @pytest.mark.parametrize("body", [
        {},
        {"requests": []},
        {"tests": []},
        {"requests": [{"test": "mats", "n": 8}], "tests": ["mats"]},
        {"requests": [{"test": "mats", "n": 8}], "n": 8},
    ])
    def test_malformed_bodies(self, body):
        with pytest.raises(SchemaError):
            compare_from_dict(body)


class TestReportSerialization:
    def test_report_shape(self):
        from repro.analysis.request import run_request

        report = run_request(CampaignRequest(test="march-c", n=12),
                             cache=False)
        data = report_to_dict(report)
        assert data["test_name"] == "march-c"
        assert data["overall"] == report.overall
        assert set(data["classes"]) == set(report.classes)
        for name, row in data["classes"].items():
            assert row["detected"] <= row["total"]
            assert row["coverage"] == report.coverage_of(name)
        json.dumps(data)  # fully JSON-serializable
