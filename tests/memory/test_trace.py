"""Tests for the operation trace."""

import pytest

from repro.memory import Operation, OperationTrace


class TestOperation:
    def test_str(self):
        op = Operation(5, 1, "w", 3, 9)
        assert str(op) == "@5 P1 w9[3]"

    def test_frozen(self):
        op = Operation(0, 0, "r", 0, 0)
        with pytest.raises(AttributeError):
            op.cycle = 1


class TestOperationTrace:
    def make_trace(self):
        trace = OperationTrace()
        trace.record(Operation(0, 0, "w", 0, 1))
        trace.record(Operation(1, 0, "r", 0, 1))
        trace.record(Operation(1, 1, "r", 2, 0))
        return trace

    def test_counts(self):
        trace = self.make_trace()
        assert len(trace) == 3
        assert trace.reads == 2
        assert trace.writes == 1
        assert trace.cycles == 2

    def test_bad_kind_rejected(self):
        trace = OperationTrace()
        with pytest.raises(ValueError):
            trace.record(Operation(0, 0, "x", 0, 0))

    def test_for_address(self):
        trace = self.make_trace()
        assert len(trace.for_address(0)) == 2
        assert len(trace.for_address(2)) == 1
        assert trace.for_address(7) == []

    def test_for_port(self):
        trace = self.make_trace()
        assert len(trace.for_port(0)) == 2
        assert len(trace.for_port(1)) == 1

    def test_indexing_and_iter(self):
        trace = self.make_trace()
        assert trace[0].kind == "w"
        assert [op.kind for op in trace] == ["w", "r", "r"]

    def test_clear(self):
        trace = self.make_trace()
        trace.clear()
        assert len(trace) == 0

    def test_repr(self):
        assert "3 ops" in repr(self.make_trace())
