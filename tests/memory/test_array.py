"""Tests for the raw memory array."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import MemoryArray


class TestConstruction:
    def test_geometry(self):
        array = MemoryArray(16, m=4)
        assert array.n == 16
        assert array.m == 4
        assert len(array) == 16
        assert array.capacity_bits == 64

    def test_bit_oriented_flag(self):
        assert MemoryArray(4).is_bit_oriented
        assert not MemoryArray(4, m=2).is_bit_oriented

    def test_fill_value(self):
        assert MemoryArray(4, m=4, fill=0xF).dump() == [15, 15, 15, 15]

    def test_zero_cells_rejected(self):
        with pytest.raises(ValueError):
            MemoryArray(0)

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            MemoryArray(4, m=0)

    def test_fill_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            MemoryArray(4, m=2, fill=4)

    def test_repr(self):
        assert "BOM" in repr(MemoryArray(4))
        assert "WOM" in repr(MemoryArray(4, m=8))


class TestReadWrite:
    def test_roundtrip(self):
        array = MemoryArray(8, m=4)
        array.write(5, 0xB)
        assert array.read(5) == 0xB
        assert array.read(4) == 0

    def test_index_bounds(self):
        array = MemoryArray(8)
        with pytest.raises(IndexError):
            array.read(8)
        with pytest.raises(IndexError):
            array.write(-1, 0)

    def test_value_bounds(self):
        array = MemoryArray(8, m=2)
        with pytest.raises(ValueError):
            array.write(0, 4)

    def test_type_checks(self):
        array = MemoryArray(8)
        with pytest.raises(TypeError):
            array.read("0")
        with pytest.raises(TypeError):
            array.write(0, True)
        with pytest.raises(TypeError):
            array.read(False)

    @given(st.integers(min_value=0, max_value=7),
           st.integers(min_value=0, max_value=15))
    def test_roundtrip_property(self, cell, value):
        array = MemoryArray(8, m=4)
        array.write(cell, value)
        assert array.read(cell) == value


class TestBitAccess:
    def test_read_bit(self):
        array = MemoryArray(2, m=4, fill=0b1010)
        assert [array.read_bit(0, i) for i in range(4)] == [0, 1, 0, 1]

    def test_write_bit_set_and_clear(self):
        array = MemoryArray(2, m=4)
        array.write_bit(0, 2, 1)
        assert array.read(0) == 0b0100
        array.write_bit(0, 2, 0)
        assert array.read(0) == 0

    def test_write_bit_preserves_others(self):
        array = MemoryArray(1, m=4, fill=0b1001)
        array.write_bit(0, 1, 1)
        assert array.read(0) == 0b1011

    def test_bit_bounds(self):
        array = MemoryArray(2, m=4)
        with pytest.raises(IndexError):
            array.read_bit(0, 4)
        with pytest.raises(IndexError):
            array.write_bit(0, 5, 1)
        with pytest.raises(ValueError):
            array.write_bit(0, 0, 2)


class TestBulk:
    def test_fill(self):
        array = MemoryArray(4, m=4)
        array.fill(0x5)
        assert array.dump() == [5, 5, 5, 5]

    def test_load_and_dump(self):
        array = MemoryArray(4, m=4)
        array.load([1, 2, 3, 4])
        assert array.dump() == [1, 2, 3, 4]

    def test_load_wrong_length(self):
        with pytest.raises(ValueError):
            MemoryArray(4).load([0, 1])

    def test_load_out_of_range(self):
        with pytest.raises(ValueError):
            MemoryArray(4, m=1).load([0, 1, 2, 0])

    def test_dump_is_copy(self):
        array = MemoryArray(4)
        snapshot = array.dump()
        snapshot[0] = 1
        assert array.read(0) == 0

    def test_iter(self):
        array = MemoryArray(3, m=4)
        array.load([7, 8, 9])
        assert list(array) == [7, 8, 9]

    def test_copy_independent(self):
        array = MemoryArray(3, m=4)
        array.load([7, 8, 9])
        clone = array.copy()
        array.write(0, 0)
        assert clone.read(0) == 7
