"""Tests for the single-port RAM front-end."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import (
    AddressDecoder,
    CellBehavior,
    SinglePortRAM,
    TransparentBehavior,
)


class TestBasics:
    def test_roundtrip(self):
        ram = SinglePortRAM(8, m=4)
        ram.write(3, 0xA)
        assert ram.read(3) == 0xA

    def test_initial_zero(self):
        assert SinglePortRAM(4).read(2) == 0

    def test_stats(self):
        ram = SinglePortRAM(8)
        ram.write(0, 1)
        ram.write(1, 0)
        ram.read(0)
        assert ram.stats.reads == 1
        assert ram.stats.writes == 2
        assert ram.stats.cycles == 3
        assert ram.stats.operations == 3

    def test_stats_reset(self):
        ram = SinglePortRAM(8)
        ram.write(0, 1)
        ram.stats.reset()
        assert ram.stats.cycles == 0

    def test_value_validation(self):
        ram = SinglePortRAM(8, m=2)
        with pytest.raises(ValueError):
            ram.write(0, 4)

    def test_repr(self):
        assert "BOM" in repr(SinglePortRAM(4))
        assert "WOM" in repr(SinglePortRAM(4, m=4))

    def test_decoder_size_mismatch(self):
        with pytest.raises(ValueError):
            SinglePortRAM(8, decoder=AddressDecoder(4))

    def test_bad_wired_rule(self):
        with pytest.raises(ValueError):
            SinglePortRAM(8, wired="xor")

    @given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 15)), max_size=30))
    def test_matches_reference_dict(self, operations):
        """The RAM behaves like a plain dict under any write sequence."""
        ram = SinglePortRAM(8, m=4)
        reference = {addr: 0 for addr in range(8)}
        for addr, value in operations:
            ram.write(addr, value)
            reference[addr] = value
        for addr in range(8):
            assert ram.read(addr) == reference[addr]


class TestDecoderInteraction:
    def test_af_a_write_lost_read_senses_latch(self):
        ram = SinglePortRAM(4, decoder=AddressDecoder(4, overrides={1: ()}))
        ram.write(1, 1)  # lost
        assert ram.array.dump() == [0, 0, 0, 0]
        ram.write(0, 1)
        ram.read(0)  # sense latch now 1
        assert ram.read(1) == 1  # AF-A read returns stale sense value

    def test_af_c_write_hits_both(self):
        ram = SinglePortRAM(4, decoder=AddressDecoder(4, overrides={2: (2, 3)}))
        ram.write(2, 1)
        assert ram.array.read(2) == 1
        assert ram.array.read(3) == 1

    def test_af_c_read_wired_and(self):
        ram = SinglePortRAM(4, decoder=AddressDecoder(4, overrides={2: (2, 3)}))
        ram.array.write(2, 1)
        ram.array.write(3, 0)
        assert ram.read(2) == 0

    def test_af_c_read_wired_or(self):
        ram = SinglePortRAM(
            4, decoder=AddressDecoder(4, overrides={2: (2, 3)}), wired="or"
        )
        ram.array.write(2, 1)
        ram.array.write(3, 0)
        assert ram.read(2) == 1

    def test_af_d_aliasing(self):
        ram = SinglePortRAM(4, decoder=AddressDecoder(4, overrides={1: (0,)}))
        ram.write(1, 1)
        assert ram.read(0) == 1


class TestTrace:
    def test_disabled_by_default(self):
        assert SinglePortRAM(4).trace is None

    def test_records_operations(self):
        ram = SinglePortRAM(4, trace=True)
        ram.write(2, 1)
        ram.read(2)
        trace = ram.trace
        assert len(trace) == 2
        assert trace[0].kind == "w"
        assert trace[0].addr == 2
        assert trace[1].kind == "r"
        assert trace[1].value == 1

    def test_cycle_stamps_increase(self):
        ram = SinglePortRAM(4, trace=True)
        for addr in range(4):
            ram.write(addr, 0)
        stamps = [op.cycle for op in ram.trace]
        assert stamps == [0, 1, 2, 3]


class TestBehaviorPlug:
    def test_attach_detach(self):
        class InvertingBehavior(CellBehavior):
            def read_cell(self, array, cell, time):
                return array.read(cell) ^ 1

            def write_cell(self, array, cell, value, time):
                array.write(cell, value)

        ram = SinglePortRAM(4)
        ram.write(0, 1)
        ram.attach_behavior(InvertingBehavior())
        assert ram.read(0) == 0
        ram.detach_behavior()
        assert ram.read(0) == 1
        assert isinstance(ram.behavior, TransparentBehavior)

    def test_fill_bypasses_behavior_and_stats(self):
        ram = SinglePortRAM(4)
        ram.fill(1)
        assert ram.stats.cycles == 0
        assert ram.dump() == [1, 1, 1, 1]
