"""Tests for dual- and quad-port RAM semantics."""

import pytest

from repro.memory import (
    AddressDecoder,
    DualPortRAM,
    MultiPortRAM,
    PortConflictError,
    PortOp,
    QuadPortRAM,
)


class TestPortOpValidation:
    def test_write_needs_value(self):
        with pytest.raises(ValueError):
            PortOp(0, "w", 1)

    def test_read_rejects_value(self):
        with pytest.raises(ValueError):
            PortOp(0, "r", 1, 1)

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            PortOp(0, "x", 1)


class TestCycleSemantics:
    def test_simultaneous_reads_same_cell(self):
        ram = DualPortRAM(8)
        ram.fill(1)
        results = ram.cycle([PortOp(0, "r", 3), PortOp(1, "r", 3)])
        assert results == {0: 1, 1: 1}
        assert ram.stats.cycles == 1

    def test_read_before_write(self):
        """A read racing a write to the same cell returns the old value."""
        ram = DualPortRAM(8)
        results = ram.cycle([PortOp(0, "r", 3), PortOp(1, "w", 3, 1)])
        assert results[0] == 0
        assert ram.read(3) == 1

    def test_parallel_read_write_different_cells(self):
        ram = DualPortRAM(8)
        ram.fill(1)
        results = ram.cycle([PortOp(0, "r", 0), PortOp(1, "w", 5, 0)])
        assert results == {0: 1}
        assert ram.array.read(5) == 0

    def test_write_write_conflict(self):
        ram = DualPortRAM(8)
        with pytest.raises(PortConflictError):
            ram.cycle([PortOp(0, "w", 3, 1), PortOp(1, "w", 3, 0)])

    def test_write_write_different_cells_ok(self):
        ram = DualPortRAM(8)
        ram.cycle([PortOp(0, "w", 3, 1), PortOp(1, "w", 4, 1)])
        assert ram.array.read(3) == 1
        assert ram.array.read(4) == 1

    def test_same_port_twice_rejected(self):
        ram = DualPortRAM(8)
        with pytest.raises(PortConflictError):
            ram.cycle([PortOp(0, "r", 0), PortOp(0, "r", 1)])

    def test_too_many_ops(self):
        ram = DualPortRAM(8)
        with pytest.raises(PortConflictError):
            ram.cycle([PortOp(0, "r", 0), PortOp(1, "r", 1), PortOp(0, "r", 2)])

    def test_port_out_of_range(self):
        ram = DualPortRAM(8)
        with pytest.raises(PortConflictError):
            ram.cycle([PortOp(2, "r", 0)])

    def test_write_conflict_through_decoder(self):
        # AF-C makes two addresses overlap physically: conflict is physical.
        dec = AddressDecoder(8, overrides={1: (1, 2)})
        ram = DualPortRAM(8, decoder=dec)
        with pytest.raises(PortConflictError):
            ram.cycle([PortOp(0, "w", 1, 1), PortOp(1, "w", 2, 0)])

    def test_empty_cycle_counts(self):
        ram = DualPortRAM(8)
        ram.cycle([])
        assert ram.stats.cycles == 1


class TestAccounting:
    def test_dual_port_halves_cycles(self):
        """2 reads/cycle: 10 reads in 5 cycles on 2P, 10 cycles on sequential."""
        ram = DualPortRAM(16)
        for i in range(5):
            ram.cycle([PortOp(0, "r", 2 * i), PortOp(1, "r", 2 * i + 1)])
        assert ram.stats.reads == 10
        assert ram.stats.cycles == 5

    def test_sequential_convenience(self):
        ram = DualPortRAM(8)
        ram.write(3, 1, port=1)
        assert ram.read(3, port=0) == 1
        assert ram.stats.cycles == 2

    def test_trace_multi_port(self):
        ram = DualPortRAM(8, trace=True)
        ram.cycle([PortOp(0, "r", 0), PortOp(1, "w", 1, 1)])
        ops = list(ram.trace)
        assert len(ops) == 2
        assert {op.port for op in ops} == {0, 1}
        assert ops[0].cycle == ops[1].cycle == 0
        assert ram.trace.cycles == 1


class TestVariants:
    def test_dual_port_is_two_ports(self):
        assert DualPortRAM(8).ports == 2

    def test_quad_port_is_four_ports(self):
        ram = QuadPortRAM(8)
        assert ram.ports == 4
        ram.cycle([
            PortOp(0, "r", 0), PortOp(1, "r", 1),
            PortOp(2, "w", 2, 1), PortOp(3, "w", 3, 1),
        ])
        assert ram.stats.cycles == 1
        assert ram.stats.operations == 4

    def test_zero_ports_rejected(self):
        with pytest.raises(ValueError):
            MultiPortRAM(8, ports=0)

    def test_decoder_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MultiPortRAM(8, decoder=AddressDecoder(4))

    def test_af_a_per_port_sense(self):
        dec = AddressDecoder(8, overrides={1: ()})
        ram = DualPortRAM(8, decoder=dec)
        ram.fill(1)
        ram.read(0, port=0)  # port 0 sense = 1
        assert ram.read(1, port=0) == 1  # stale sense on port 0
        assert ram.read(1, port=1) == 0  # port 1 sense untouched

    def test_repr(self):
        assert "ports=4" in repr(QuadPortRAM(8))
