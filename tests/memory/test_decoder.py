"""Tests for the address decoder model."""

import pytest

from repro.memory import AddressDecoder


class TestHealthyDecoder:
    def test_identity(self):
        dec = AddressDecoder(8)
        for addr in range(8):
            assert dec.map(addr) == (addr,)

    def test_is_healthy(self):
        assert AddressDecoder(4).is_healthy

    def test_bounds(self):
        dec = AddressDecoder(4)
        with pytest.raises(IndexError):
            dec.map(4)
        with pytest.raises(TypeError):
            dec.map("0")

    def test_size_validation(self):
        with pytest.raises(ValueError):
            AddressDecoder(0)

    def test_no_unreached_cells(self):
        assert AddressDecoder(8).unreached_cells() == set()


class TestOverrides:
    def test_af_a_no_access(self):
        dec = AddressDecoder(4, overrides={1: ()})
        assert dec.map(1) == ()
        assert not dec.is_healthy

    def test_af_c_multi_access(self):
        dec = AddressDecoder(4, overrides={2: (2, 3)})
        assert dec.map(2) == (2, 3)

    def test_af_d_shared_cell(self):
        dec = AddressDecoder(4, overrides={1: (0,)})
        assert dec.map(0) == (0,)
        assert dec.map(1) == (0,)

    def test_af_b_unreached(self):
        dec = AddressDecoder(4, overrides={1: (2,)})
        assert dec.unreached_cells() == {1}

    def test_override_validation(self):
        dec = AddressDecoder(4)
        with pytest.raises(IndexError):
            dec.set_override(0, (4,))
        with pytest.raises(ValueError):
            dec.set_override(0, (1, 1))
        with pytest.raises(TypeError):
            dec.set_override(0, (True,))
        with pytest.raises(IndexError):
            dec.set_override(9, (0,))

    def test_clear_override(self):
        dec = AddressDecoder(4, overrides={1: ()})
        dec.clear_override(1)
        assert dec.map(1) == (1,)
        assert dec.is_healthy

    def test_clear_all(self):
        dec = AddressDecoder(4, overrides={1: (), 2: (0, 1)})
        dec.clear()
        assert dec.is_healthy

    def test_overrides_copy(self):
        dec = AddressDecoder(4, overrides={1: ()})
        snapshot = dec.overrides
        snapshot[2] = (0,)
        assert dec.map(2) == (2,)

    def test_repr(self):
        assert "healthy" in repr(AddressDecoder(4))
        assert "1 overrides" in repr(AddressDecoder(4, overrides={0: ()}))
