"""Test package (keeps basenames like test_multiport.py unambiguous)."""
