"""Tests for address scrambling (topological mapping)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults import FaultInjector, InversionCouplingFault, StuckAtFault
from repro.memory import AddressScrambler, SinglePortRAM
from repro.prt import standard_schedule


class TestScramblerBasics:
    def test_identity_default(self):
        scrambler = AddressScrambler(3)
        assert scrambler.is_identity
        assert scrambler.mapping() == list(range(8))

    def test_xor_mask(self):
        scrambler = AddressScrambler(3, xor_mask=0b001)
        assert scrambler.mapping() == [1, 0, 3, 2, 5, 4, 7, 6]

    def test_bit_permutation(self):
        scrambler = AddressScrambler(3, bit_permutation=(1, 0, 2))
        assert scrambler.map(0b001) == 0b010
        assert scrambler.map(0b010) == 0b001
        assert scrambler.map(0b100) == 0b100

    def test_validation(self):
        with pytest.raises(ValueError):
            AddressScrambler(0)
        with pytest.raises(ValueError):
            AddressScrambler(3, xor_mask=8)
        with pytest.raises(ValueError):
            AddressScrambler(3, bit_permutation=(0, 0, 1))

    def test_bounds(self):
        scrambler = AddressScrambler(3)
        with pytest.raises(IndexError):
            scrambler.map(8)
        with pytest.raises(IndexError):
            scrambler.inverse_map(-1)

    def test_repr(self):
        assert "identity" in repr(AddressScrambler(3))
        assert "mask" in repr(AddressScrambler(3, xor_mask=1))

    @given(st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=63),
           st.randoms())
    def test_always_bijective(self, bits, mask, rng):
        mask &= (1 << bits) - 1
        perm = list(range(bits))
        rng.shuffle(perm)
        scrambler = AddressScrambler(bits, xor_mask=mask,
                                     bit_permutation=tuple(perm))
        mapping = scrambler.mapping()
        assert sorted(mapping) == list(range(1 << bits))
        for addr in range(1 << bits):
            assert scrambler.inverse_map(scrambler.map(addr)) == addr


class TestScrambledRam:
    SCRAMBLER = AddressScrambler(4, xor_mask=0b0101,
                                 bit_permutation=(2, 3, 0, 1))

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            SinglePortRAM(8, scrambler=AddressScrambler(4))

    def test_functional_transparency(self):
        """Through the logical interface, a scrambled RAM is just a RAM."""
        ram = SinglePortRAM(16, scrambler=self.SCRAMBLER)
        for addr in range(16):
            ram.write(addr, addr & 1)
        for addr in range(16):
            assert ram.read(addr) == addr & 1

    def test_physical_placement_scrambled(self):
        ram = SinglePortRAM(16, scrambler=self.SCRAMBLER)
        ram.write(0, 1)
        physical = self.SCRAMBLER.map(0)
        assert ram.array.read(physical) == 1
        assert physical != 0

    def test_fault_on_physical_cell(self):
        """A stuck physical cell shows up at the scrambled logical
        address."""
        ram = SinglePortRAM(16, scrambler=self.SCRAMBLER)
        physical = 6
        FaultInjector([StuckAtFault(physical, 1)]).install(ram)
        logical = self.SCRAMBLER.inverse_map(physical)
        ram.write(logical, 0)
        assert ram.read(logical) == 1


class TestPrtUnderScrambling:
    """PRT's guarantees are trajectory-independent, so scrambling -- which
    just permutes the walk through physical space -- must not break
    anything."""

    SCRAMBLER = AddressScrambler(4, xor_mask=0b1010,
                                 bit_permutation=(3, 1, 2, 0))

    def test_healthy_scrambled_ram_passes(self):
        ram = SinglePortRAM(16, scrambler=self.SCRAMBLER)
        assert standard_schedule(n=16).run(ram).passed

    def test_single_cell_coverage_survives_scrambling(self):
        from repro.faults import single_cell_universe

        schedule = standard_schedule(n=16)
        universe = single_cell_universe(16, classes=("SAF", "TF"))
        for fault in universe:
            ram = SinglePortRAM(16, scrambler=self.SCRAMBLER)
            injector = FaultInjector([fault])
            injector.install(ram)
            assert schedule.run(ram).detected, fault.name
            injector.remove(ram)

    def test_physically_adjacent_coupling_detected(self):
        """Physically adjacent aggressor/victim are logically scattered
        under scrambling; the inversion coupling universe stays covered
        because detection relies on reads, not logical adjacency."""
        schedule = standard_schedule(n=16)
        detected = 0
        total = 0
        for cell in range(15):
            fault = InversionCouplingFault(cell, cell + 1, rising=True)
            ram = SinglePortRAM(16, scrambler=self.SCRAMBLER)
            injector = FaultInjector([fault])
            injector.install(ram)
            total += 1
            if schedule.run(ram).detected:
                detected += 1
            injector.remove(ram)
        assert detected == total
