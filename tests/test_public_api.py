"""The public API surface: everything advertised must exist and import."""

import importlib

import pytest

import repro

SUBPACKAGES = ("gf2", "gf2m", "lfsr", "memory", "faults", "march", "prt",
               "analysis", "server")


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("subpackage", SUBPACKAGES)
    def test_subpackage_all_resolvable(self, subpackage):
        module = importlib.import_module(f"repro.{subpackage}")
        assert module.__all__
        for name in module.__all__:
            assert hasattr(module, name), f"repro.{subpackage}.{name}"

    def test_quickstart_snippet(self):
        """The README quickstart must keep working verbatim."""
        from repro import GF2m, PiIteration, SinglePortRAM, poly_from_string

        ram = SinglePortRAM(255, m=4)
        pi = PiIteration(field=GF2m(poly_from_string("1+z+z^4")),
                         generator=(1, 2, 2), seed=(0, 1))
        result = pi.run(ram)
        assert result.passed and result.ring_closed

    def test_docstrings_everywhere(self):
        """Every public symbol carries a docstring."""
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"

    @pytest.mark.parametrize("subpackage", SUBPACKAGES)
    def test_subpackage_docstrings(self, subpackage):
        module = importlib.import_module(f"repro.{subpackage}")
        assert module.__doc__
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__ is not None, f"repro.{subpackage}.{name}"
