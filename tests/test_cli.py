"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _parse_fault, build_parser, main


class TestFaultSpecParsing:
    def test_saf(self):
        fault = _parse_fault("SAF:5:1")
        assert fault.fault_class == "SAF"
        assert fault.cells() == (5,)
        assert fault.stuck_value == 1

    def test_tf(self):
        fault = _parse_fault("TF:3:up")
        assert fault.fault_class == "TF"
        assert fault.rising

    def test_tf_down(self):
        assert not _parse_fault("TF:3:down").rising

    def test_sof(self):
        assert _parse_fault("SOF:7").fault_class == "SOF"

    def test_drf(self):
        fault = _parse_fault("DRF:2:100")
        assert fault.fault_class == "DRF"
        assert fault.retention == 100

    def test_case_insensitive(self):
        assert _parse_fault("saf:0:0").fault_class == "SAF"

    def test_unknown_class(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault("XYZ:1")

    def test_missing_args(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_fault("SAF:1")


class TestSelftestCommand:
    def test_healthy_memory_exit_zero(self, capsys):
        code = main(["selftest", "--n", "28"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MEMORY OK" in out

    def test_injected_fault_detected(self, capsys):
        code = main(["selftest", "--n", "28", "--inject", "SAF:5:1"])
        out = capsys.readouterr().out
        assert code == 0  # detection of an injected fault = success
        assert "FAULT DETECTED" in out

    def test_pure_mode(self, capsys):
        code = main(["selftest", "--n", "28", "--pure"])
        assert code == 0
        assert "pure" in capsys.readouterr().out

    def test_wom(self, capsys):
        code = main(["selftest", "--n", "255", "--m", "4",
                     "--poly", "1+z+z^4"])
        assert code == 0

    def test_extended_schedule(self, capsys):
        code = main(["selftest", "--n", "28", "--schedule", "extended"])
        assert code == 0
        assert "5 iterations" in capsys.readouterr().out

    def test_pause(self, capsys):
        code = main(["selftest", "--n", "14", "--pause", "256",
                     "--inject", "DRF:3:100"])
        assert code == 0
        assert "FAULT DETECTED" in capsys.readouterr().out


class TestMarchCommand:
    def test_healthy(self, capsys):
        code = main(["march", "--notation", "{c(w0); u(r0,w1); d(r1,w0)}",
                     "--n", "16"])
        assert code == 0
        assert "5n" in capsys.readouterr().out

    def test_detects_fault(self, capsys):
        code = main(["march", "--notation",
                     "{c(w0); u(r0,w1); d(r1,w0,r0)}",
                     "--n", "16", "--inject", "TF:3:down"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FAULT DETECTED" in out

    def test_escaped_fault_exit_one(self, capsys):
        # MATS+ cannot detect a TF-down: the CLI flags the escape.
        code = main(["march", "--notation", "{c(w0); u(r0,w1); d(r1,w0)}",
                     "--n", "16", "--inject", "TF:3:down"])
        assert code == 1


class TestCoverageCommand:
    def test_prt3(self, capsys):
        code = main(["coverage", "--n", "14", "--test", "prt3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "overall" in out
        assert "SAF" in out

    def test_march_baseline(self, capsys):
        code = main(["coverage", "--n", "14", "--test", "march-c"])
        assert code == 0

    def test_engine_selection_identical_tables(self, capsys):
        outputs = {}
        for engine in ("interpreted", "compiled", "batched"):
            code = main(["coverage", "--n", "14", "--test", "march-c",
                         "--engine", engine])
            assert code == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["interpreted"] == outputs["compiled"]
        assert outputs["interpreted"] == outputs["batched"]

    @pytest.mark.parametrize("scheme,cycles", [
        ("dual-schedule", "86 cycles"), ("quad-schedule", "47 cycles"),
    ])
    def test_multi_port_schedule_schemes(self, capsys, scheme, cycles):
        code = main(["coverage", "--n", "12", "--scheme", scheme])
        out = capsys.readouterr().out
        assert code == 0
        assert "overall" in out
        assert cycles in out  # 2n + O(1) / n + O(1) per verifying pass

    def test_schedule_scheme_odd_n_rejected(self):
        with pytest.raises(SystemExit, match="even --n"):
            main(["coverage", "--n", "13", "--scheme", "quad-schedule"])

    def test_interpreted_alias(self, capsys):
        code = main(["coverage", "--n", "14", "--test", "march-c",
                     "--interpreted"])
        assert code == 0

    def test_interpreted_conflicts_with_engine(self):
        with pytest.raises(SystemExit, match="conflicts"):
            main(["coverage", "--n", "14", "--test", "march-c",
                  "--engine", "batched", "--interpreted"])

    def test_json_output_matches_server_schema(self, capsys):
        code = main(["coverage", "--n", "14", "--test", "march-c",
                     "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"request", "report", "cached",
                                "cache_key", "elapsed_s"}
        assert payload["request"]["test"] == "march-c"
        assert payload["report"]["test_name"] == "march-c"
        assert 0.0 < payload["report"]["overall"] <= 1.0

    def test_bad_engine_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["coverage", "--n", "14", "--engine", "warp"])
        assert excinfo.value.code == 2  # argparse choices

    def test_bad_polynomial_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["coverage", "--n", "14", "--m", "4",
                  "--poly", "garbage"])
        assert excinfo.value.code == 2  # resolver validation
        assert "bad field polynomial" in capsys.readouterr().err


class TestCompareOverhead:
    def test_compare(self, capsys):
        code = main(["compare", "--n", "14"])
        out = capsys.readouterr().out
        assert code == 0
        assert "March B" in out
        assert "PRT-3" in out

    def test_compare_json(self, capsys):
        code = main(["compare", "--n", "8", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [row["name"] for row in payload["rows"]] == [
            "PRT-3", "PRT-5", "MATS+", "March C-", "March B"]
        assert len(payload["requests"]) == 5

    def test_overhead(self, capsys):
        code = main(["overhead", "--m", "4", "--ports", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "crossover" in out


class TestVerifyCommand:
    def test_clean_stream_exits_zero(self, capsys):
        code = main(["verify", "--n", "28", "--test", "march-c"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict : OK" in out

    def test_multiport_scheme(self, capsys):
        code = main(["verify", "--n", "16", "--scheme", "dual-schedule"])
        assert code == 0
        assert "verdict : OK" in capsys.readouterr().out

    def test_json_matches_server_schema(self, capsys):
        code = main(["verify", "--n", "28", "--test", "march-c", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["errors"] == 0
        assert payload["stream"]["records"] > 0
        assert payload["request"]["test"] == "march-c"

    def test_no_dataflow_suppresses_warnings(self, capsys):
        main(["verify", "--n", "16", "--test", "march-c",
              "--no-dataflow", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["warnings"] == 0

    def test_unknown_test_exits_two(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "--n", "16", "--test", "nope"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])
