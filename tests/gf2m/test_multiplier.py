"""Tests for constant-multiplier matrices."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf2 import poly_from_string, primitive_polynomial
from repro.gf2m import (
    GF2m,
    apply_matrix,
    constant_multiplier_matrix,
    identity_matrix,
    matrix_mul,
    matrix_to_rows,
)

F = GF2m(poly_from_string("1+z+z^4"))

elements = st.integers(min_value=0, max_value=15)


class TestConstantMultiplierMatrix:
    def test_identity_constant(self):
        assert constant_multiplier_matrix(F, 1) == identity_matrix(4)

    def test_zero_constant(self):
        assert constant_multiplier_matrix(F, 0) == [0, 0, 0, 0]

    def test_out_of_field_rejected(self):
        with pytest.raises(ValueError):
            constant_multiplier_matrix(F, 16)

    @given(elements, elements)
    def test_matrix_matches_field_mul(self, c, x):
        matrix = constant_multiplier_matrix(F, c)
        assert apply_matrix(matrix, x) == F.mul(c, x)

    def test_exhaustive_gf16(self):
        for c in range(16):
            matrix = constant_multiplier_matrix(F, c)
            for x in range(16):
                assert apply_matrix(matrix, x) == F.mul(c, x)

    def test_gf256_sample(self):
        field = GF2m(primitive_polynomial(8))
        for c in (2, 3, 0x1D, 0xFF):
            matrix = constant_multiplier_matrix(field, c)
            for x in (0, 1, 0x80, 0xAB):
                assert apply_matrix(matrix, x) == field.mul(c, x)

    @given(elements, elements, elements)
    def test_linearity(self, c, x, y):
        matrix = constant_multiplier_matrix(F, c)
        assert apply_matrix(matrix, x ^ y) == apply_matrix(matrix, x) ^ apply_matrix(
            matrix, y
        )


class TestMatrixOps:
    def test_identity(self):
        assert identity_matrix(3) == [0b001, 0b010, 0b100]
        for x in range(8):
            assert apply_matrix(identity_matrix(3), x) == x

    def test_identity_dimension_check(self):
        with pytest.raises(ValueError):
            identity_matrix(0)

    def test_matrix_to_rows(self):
        assert matrix_to_rows([0b01, 0b11], 2) == [[1, 0], [1, 1]]

    def test_matrix_to_rows_infers_width(self):
        assert matrix_to_rows([0b01, 0b11]) == [[1, 0], [1, 1]]

    @given(elements, elements)
    def test_matrix_mul_composes(self, c1, c2):
        m1 = constant_multiplier_matrix(F, c1)
        m2 = constant_multiplier_matrix(F, c2)
        composed = matrix_mul(m1, m2)
        expected = constant_multiplier_matrix(F, F.mul(c1, c2))
        assert composed == expected

    def test_matrix_mul_dimension_mismatch(self):
        with pytest.raises(ValueError):
            matrix_mul([0b1], [0b01, 0b10])

    def test_matrix_mul_identity(self):
        m = constant_multiplier_matrix(F, 7)
        assert matrix_mul(m, identity_matrix(4)) == m
        assert matrix_mul(identity_matrix(4), m) == m
