"""Tests for polynomial algebra over GF(2^m) (the paper's g(x) machinery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2 import poly_from_string
from repro.gf2m import (
    GF2m,
    wpoly,
    wpoly_add,
    wpoly_degree,
    wpoly_divmod,
    wpoly_eval,
    wpoly_gcd,
    wpoly_is_irreducible,
    wpoly_modexp,
    wpoly_monic,
    wpoly_mul,
    wpoly_roots,
    wpoly_scale,
    wpoly_to_string,
    wpoly_x_pow_order,
)

F = GF2m(poly_from_string("1+z+z^4"))
PAPER_G = (1, 2, 2)  # g(x) = 1 + 2x + 2x^2

coeff = st.integers(min_value=0, max_value=15)
wpolys = st.lists(coeff, min_size=0, max_size=5).map(wpoly)
nonzero_wpolys = wpolys.filter(lambda p: p != ())


class TestNormalization:
    def test_strip_leading_zeros(self):
        assert wpoly([1, 2, 2, 0, 0]) == (1, 2, 2)

    def test_zero(self):
        assert wpoly([0, 0, 0]) == ()
        assert wpoly_degree(()) == -1

    def test_degree(self):
        assert wpoly_degree(PAPER_G) == 2


class TestArithmetic:
    def test_add_cancels(self):
        assert wpoly_add(F, PAPER_G, PAPER_G) == ()

    def test_add_different_lengths(self):
        assert wpoly_add(F, (1,), (0, 1)) == (1, 1)

    def test_scale_by_zero(self):
        assert wpoly_scale(F, PAPER_G, 0) == ()

    def test_mul_freshman(self):
        assert wpoly_mul(F, (1, 1), (1, 1)) == (1, 0, 1)

    def test_mul_by_zero(self):
        assert wpoly_mul(F, PAPER_G, ()) == ()

    @settings(max_examples=50)
    @given(wpolys, wpolys)
    def test_mul_commutative(self, a, b):
        assert wpoly_mul(F, a, b) == wpoly_mul(F, b, a)

    @settings(max_examples=50)
    @given(wpolys, nonzero_wpolys)
    def test_divmod_identity(self, a, b):
        q, r = wpoly_divmod(F, a, b)
        assert wpoly_add(F, wpoly_mul(F, q, b), r) == a
        assert wpoly_degree(r) < wpoly_degree(b)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            wpoly_divmod(F, PAPER_G, ())

    def test_monic(self):
        monic = wpoly_monic(F, PAPER_G)
        assert monic[-1] == 1
        assert wpoly_degree(monic) == 2

    @settings(max_examples=30)
    @given(nonzero_wpolys, nonzero_wpolys)
    def test_gcd_divides(self, a, b):
        g = wpoly_gcd(F, a, b)
        assert wpoly_divmod(F, a, g)[1] == ()
        assert wpoly_divmod(F, b, g)[1] == ()


class TestEvalRoots:
    def test_eval_constant_term(self):
        assert wpoly_eval(F, PAPER_G, 0) == 1

    def test_eval_horner(self):
        # g(1) = 1 + 2 + 2 = 1 over GF(16)
        assert wpoly_eval(F, PAPER_G, 1) == 1

    def test_roots_of_factored(self):
        # (x+1)(x+2) = x^2 + 3x + 2
        assert wpoly_roots(F, (2, 3, 1)) == [1, 2]

    def test_paper_g_has_no_roots(self):
        assert wpoly_roots(F, PAPER_G) == []

    def test_roots_zero_poly_rejected(self):
        with pytest.raises(ValueError):
            wpoly_roots(F, ())


class TestIrreducibility:
    def test_paper_g_irreducible(self):
        """The paper's claim: g(x)=1+2x+2x^2 is irreducible over GF(2^4)."""
        assert wpoly_is_irreducible(F, PAPER_G)

    def test_product_reducible(self):
        assert not wpoly_is_irreducible(F, wpoly_mul(F, (1, 1), (2, 1)))

    def test_degree_one_irreducible(self):
        assert wpoly_is_irreducible(F, (5, 1))

    def test_constant_not_irreducible(self):
        assert not wpoly_is_irreducible(F, (1,))
        assert not wpoly_is_irreducible(F, ())

    def test_x_multiple_reducible(self):
        assert not wpoly_is_irreducible(F, (0, 1, 1))

    def test_quadratic_root_criterion(self):
        # A quadratic is irreducible iff it has no roots.
        for a0 in range(1, 16):
            for a1 in range(16):
                p = (a0, a1, 1)
                assert wpoly_is_irreducible(F, p) == (wpoly_roots(F, p) == [])


class TestOrder:
    def test_paper_g_order_255(self):
        """g(x) is primitive over GF(16): the virtual LFSR has period 255."""
        assert wpoly_x_pow_order(F, PAPER_G) == 255

    def test_linear_factor_order(self):
        # x = 1 mod (x + 1): order 1
        assert wpoly_x_pow_order(F, (1, 1)) == 1

    def test_order_of_non_primitive(self):
        # x + 3: order of element 3 in GF(16)* fields x = 3 mod (x+3)
        assert wpoly_x_pow_order(F, (3, 1)) == F.order(3)

    def test_reducible_modulus_fallback(self):
        # (x+1)(x+2): order of x = lcm(order mod each factor) = lcm(1, ord(2))
        p = wpoly_mul(F, (1, 1), (2, 1))
        assert wpoly_x_pow_order(F, p) == F.order(2)

    def test_x_divides_rejected(self):
        with pytest.raises(ValueError):
            wpoly_x_pow_order(F, (0, 1, 1))

    def test_order_consistent_with_modexp(self):
        t = wpoly_x_pow_order(F, PAPER_G)
        assert wpoly_modexp(F, (0, 1), t, PAPER_G) == (1,)
        for d in (3, 5, 15, 17, 51, 85):
            assert wpoly_modexp(F, (0, 1), d, PAPER_G) != (1,)


class TestFormatting:
    def test_paper_style(self):
        assert wpoly_to_string(PAPER_G) == "1 + 2x + 2x^2"

    def test_zero(self):
        assert wpoly_to_string(()) == "0"

    def test_hex_coefficients(self):
        assert wpoly_to_string((10, 1, 15)) == "A + x + Fx^2"

    def test_unit_coefficients_suppressed(self):
        assert wpoly_to_string((0, 1, 0, 1)) == "x + x^3"
