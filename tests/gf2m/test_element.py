"""Tests for the FieldElement wrapper."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf2 import poly_from_string, primitive_polynomial
from repro.gf2m import FieldElement, GF2m

F = GF2m(poly_from_string("1+z+z^4"))
F8 = GF2m(primitive_polynomial(3))

elements = st.integers(min_value=0, max_value=15)
nonzero = st.integers(min_value=1, max_value=15)


class TestConstruction:
    def test_out_of_range(self):
        with pytest.raises(ValueError):
            FieldElement(F, 16)
        with pytest.raises(ValueError):
            FieldElement(F, -1)

    def test_value_and_int(self):
        z = FieldElement(F, 2)
        assert z.value == 2
        assert int(z) == 2
        assert z.field is F

    def test_index_protocol(self):
        # __index__ lets elements index lists directly
        assert [10, 11, 12][FieldElement(F, 1)] == 11

    def test_repr(self):
        assert "z" in repr(FieldElement(F, 2))

    def test_bool(self):
        assert not FieldElement(F, 0)
        assert FieldElement(F, 1)


class TestOperators:
    def test_paper_z4(self):
        z = FieldElement(F, 2)
        assert int(z**4) == 3  # z^4 = z + 1

    def test_add_int(self):
        assert int(FieldElement(F, 0b1010) + 0b0110) == 0b1100

    def test_radd(self):
        assert int(0b0110 + FieldElement(F, 0b1010)) == 0b1100

    def test_sub_is_add(self):
        a = FieldElement(F, 9)
        assert int(a - 5) == int(a + 5)

    def test_neg_identity(self):
        a = FieldElement(F, 9)
        assert -a == a

    def test_mixed_fields_rejected(self):
        with pytest.raises(ValueError):
            FieldElement(F, 1) + FieldElement(F8, 1)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            FieldElement(F, 1) + 99

    def test_div(self):
        a = FieldElement(F, 9)
        b = FieldElement(F, 5)
        assert (a / b) * b == a

    def test_rtruediv(self):
        b = FieldElement(F, 5)
        assert int((9 / b) * b) == 9

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            FieldElement(F, 3) / FieldElement(F, 0)

    @given(elements, elements)
    def test_add_matches_field(self, a, b):
        assert int(FieldElement(F, a) + FieldElement(F, b)) == F.add(a, b)

    @given(elements, elements)
    def test_mul_matches_field(self, a, b):
        assert int(FieldElement(F, a) * FieldElement(F, b)) == F.mul(a, b)

    @given(nonzero)
    def test_inverse(self, a):
        e = FieldElement(F, a)
        assert int(e * e.inverse()) == 1

    def test_pow_non_int_rejected(self):
        with pytest.raises(TypeError):
            FieldElement(F, 3) ** "2"


class TestEqualityAndHash:
    def test_eq_int(self):
        assert FieldElement(F, 7) == 7
        assert FieldElement(F, 7) != 8

    def test_eq_other_field(self):
        assert FieldElement(F, 1) != FieldElement(F8, 1)

    def test_hashable(self):
        s = {FieldElement(F, 1), FieldElement(F, 1), FieldElement(F, 2)}
        assert len(s) == 2


class TestStructureDelegation:
    def test_order(self):
        assert FieldElement(F, 2).order() == 15

    def test_trace(self):
        assert FieldElement(F, 0).trace() == 0

    def test_minimal_polynomial(self):
        assert FieldElement(F, 2).minimal_polynomial() == F.modulus

    def test_as_poly_string(self):
        assert FieldElement(F, 0b0110).as_poly_string() == "z^2 + z"
