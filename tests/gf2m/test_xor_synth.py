"""Tests for XOR-network synthesis (claim C6 machinery)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2 import poly_from_string, primitive_polynomial
from repro.gf2m import (
    GF2m,
    XorGate,
    XorNetwork,
    constant_multiplier_matrix,
    network_cost_summary,
    synthesize,
    synthesize_greedy,
    synthesize_naive,
)

F = GF2m(poly_from_string("1+z+z^4"))

matrices4 = st.lists(
    st.integers(min_value=0, max_value=15), min_size=1, max_size=6
)


class TestXorNetworkBasics:
    def test_evaluate_simple(self):
        net = XorNetwork(2, [XorGate(2, 0, 1)], [2, 0])
        assert net.evaluate(0b01) == 0b11
        assert net.evaluate(0b11) == 0b10  # x0^x1 = 0, pass-through x0 = 1

    def test_constant_zero_output(self):
        net = XorNetwork(2, [], [None, 0])
        assert net.evaluate(0b01) == 0b10
        assert net.depth == 0

    def test_validate_good(self):
        net = XorNetwork(2, [XorGate(2, 0, 1)], [2])
        net.validate()

    def test_validate_bad_order(self):
        net = XorNetwork(2, [XorGate(5, 0, 1)], [2])
        with pytest.raises(ValueError):
            net.validate()

    def test_validate_undefined_input(self):
        net = XorNetwork(2, [XorGate(2, 0, 3)], [2])
        with pytest.raises(ValueError):
            net.validate()

    def test_validate_undefined_output(self):
        net = XorNetwork(2, [], [5])
        with pytest.raises(ValueError):
            net.validate()

    def test_depth_chain(self):
        # ((x0^x1)^x2)^x3: depth 3
        net = synthesize_naive([0b1111], 4)
        assert net.depth == 3


class TestNaive:
    def test_gate_count_formula(self):
        matrix = [0b011, 0b110, 0b101, 0b111]
        net = synthesize_naive(matrix, 3)
        assert net.gate_count == sum(bin(r).count("1") - 1 for r in matrix)

    def test_wire_only_row(self):
        net = synthesize_naive([0b010], 3)
        assert net.gate_count == 0
        assert net.evaluate(0b010) == 1

    def test_functional_equivalence_gf16(self):
        for c in range(16):
            matrix = constant_multiplier_matrix(F, c)
            net = synthesize_naive(matrix)
            net.validate()
            for x in range(16):
                assert net.evaluate(x) == F.mul(c, x)

    def test_rejects_wide_rows(self):
        with pytest.raises(ValueError):
            synthesize_naive([0b100], 2)

    def test_rejects_zero_inputs(self):
        with pytest.raises(ValueError):
            synthesize_naive([], 0)


class TestGreedy:
    def test_shares_common_pair(self):
        # Both rows contain x0^x1; greedy uses 2 gates, naive needs 3.
        matrix = [0b011, 0b111]
        assert synthesize_greedy(matrix, 3).gate_count == 2
        assert synthesize_naive(matrix, 3).gate_count == 3

    def test_functional_equivalence_gf16(self):
        for c in range(16):
            matrix = constant_multiplier_matrix(F, c)
            net = synthesize_greedy(matrix)
            net.validate()
            for x in range(16):
                assert net.evaluate(x) == F.mul(c, x)

    def test_never_worse_than_naive_gf16(self):
        for c in range(16):
            matrix = constant_multiplier_matrix(F, c)
            assert (
                synthesize_greedy(matrix).gate_count
                <= synthesize_naive(matrix).gate_count
            )

    def test_gf256_equivalence_sample(self):
        field = GF2m(primitive_polynomial(8))
        for c in (2, 0x1D, 0x53, 0xCA):
            matrix = constant_multiplier_matrix(field, c)
            net = synthesize_greedy(matrix)
            for x in (0, 1, 0x3C, 0xFF, 0xA5):
                assert net.evaluate(x) == field.mul(c, x)

    def test_deterministic(self):
        matrix = [0b1011, 0b1110, 0b0111]
        a = synthesize_greedy(matrix, 4)
        b = synthesize_greedy(matrix, 4)
        assert a.gates == b.gates
        assert a.outputs == b.outputs

    @settings(max_examples=60)
    @given(matrices4)
    def test_equivalence_random_matrices(self, matrix):
        naive = synthesize_naive(matrix, 4)
        greedy = synthesize_greedy(matrix, 4)
        for x in range(16):
            assert greedy.evaluate(x) == naive.evaluate(x)

    @settings(max_examples=60)
    @given(matrices4)
    def test_greedy_never_worse(self, matrix):
        assert (
            synthesize_greedy(matrix, 4).gate_count
            <= synthesize_naive(matrix, 4).gate_count
        )


class TestDispatch:
    def test_methods(self):
        matrix = [0b11, 0b10]
        assert synthesize(matrix, 2, method="naive").gate_count == 1
        assert synthesize(matrix, 2, method="greedy").gate_count == 1

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            synthesize([0b1], 1, method="magic")

    def test_cost_summary(self):
        summary = network_cost_summary(synthesize_naive([0b111], 3))
        assert summary == {"xor_gates": 2, "depth": 2, "inputs": 3, "outputs": 1}


class TestPaperExample:
    """The paper's g(x) = 1 + 2x + 2x^2 over GF(2^4) uses multiply-by-z."""

    def test_multiply_by_z_cost(self):
        # x -> z*x in GF(16)/(1+z+z^4): output bits
        # y0=x3, y1=x0^x3, y2=x1, y3=x2 -> exactly 1 XOR gate.
        matrix = constant_multiplier_matrix(F, 2)
        net = synthesize_greedy(matrix)
        assert net.gate_count == 1

    def test_all_gf16_constants_cheap(self):
        # No constant multiplier in GF(2^4) needs more than 6 XORs naive.
        for c in range(16):
            matrix = constant_multiplier_matrix(F, c)
            assert synthesize_greedy(matrix).gate_count <= 6
