"""Tests for the GF(2^m) field implementation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf2 import poly_from_string, primitive_polynomial
from repro.gf2m import GF2m

PAPER_P = poly_from_string("1+z+z^4")  # the paper's GF(2^4) modulus


@pytest.fixture(scope="module")
def f16():
    return GF2m(PAPER_P)


@pytest.fixture(scope="module")
def f256():
    return GF2m(primitive_polynomial(8))


elements16 = st.integers(min_value=0, max_value=15)
nonzero16 = st.integers(min_value=1, max_value=15)


class TestConstruction:
    def test_reducible_modulus_rejected(self):
        with pytest.raises(ValueError):
            GF2m(0b10101)  # (x^2+x+1)^2

    def test_properties(self, f16):
        assert f16.m == 4
        assert f16.size == 16
        assert f16.modulus == PAPER_P

    def test_primitive_modulus_detected(self, f16):
        assert f16.is_primitive_modulus()

    def test_non_primitive_irreducible_modulus_works(self):
        # x^4+x^3+x^2+x+1 is irreducible but not primitive; field must
        # still be correct via a non-z generator.
        field = GF2m(0b11111)
        assert not field.is_primitive_modulus()
        assert field.mul(field.inv(7), 7) == 1
        assert field.order(field.generator) == 15

    def test_equality_and_hash(self, f16):
        assert f16 == GF2m(PAPER_P)
        assert hash(f16) == hash(GF2m(PAPER_P))
        assert f16 != GF2m(primitive_polynomial(8))

    def test_contains(self, f16):
        assert 0 in f16
        assert 15 in f16
        assert 16 not in f16
        assert "z" not in f16

    def test_elements_enumeration(self, f16):
        assert list(f16.elements()) == list(range(16))


class TestArithmetic:
    def test_paper_example_z4(self, f16):
        # z^4 = z + 1 mod (1 + z + z^4)
        assert f16.mul(0b1000, 0b0010) == 0b0011

    def test_mul_by_zero(self, f16):
        assert f16.mul(0, 7) == 0

    def test_mul_by_one(self, f16):
        assert f16.mul(1, 7) == 7

    def test_out_of_range_rejected(self, f16):
        with pytest.raises(ValueError):
            f16.mul(16, 1)
        with pytest.raises(TypeError):
            f16.add(1.5, 2)
        with pytest.raises(TypeError):
            f16.mul(True, 2)

    @given(elements16, elements16)
    def test_mul_commutative(self, a, b):
        field = GF2m(PAPER_P)
        assert field.mul(a, b) == field.mul(b, a)

    @given(elements16, elements16, elements16)
    def test_mul_associative(self, a, b, c):
        field = GF2m(PAPER_P)
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    @given(elements16, elements16, elements16)
    def test_distributive(self, a, b, c):
        field = GF2m(PAPER_P)
        assert field.mul(a, field.add(b, c)) == field.add(
            field.mul(a, b), field.mul(a, c)
        )

    @given(nonzero16)
    def test_inverse(self, a):
        field = GF2m(PAPER_P)
        assert field.mul(a, field.inv(a)) == 1

    def test_inv_zero_fails(self, f16):
        with pytest.raises(ZeroDivisionError):
            f16.inv(0)

    def test_div(self, f16):
        for a in range(16):
            for b in range(1, 16):
                assert f16.mul(f16.div(a, b), b) == a

    def test_table_and_polynomial_paths_agree(self):
        # Compare table-driven f16 against the raw polynomial fallback.
        from repro.gf2.poly import poly_modmul

        field = GF2m(PAPER_P)
        for a in range(16):
            for b in range(16):
                assert field.mul(a, b) == poly_modmul(a, b, PAPER_P)


class TestPow:
    def test_z_order_15(self, f16):
        assert f16.pow(2, 15) == 1
        assert all(f16.pow(2, e) != 1 for e in range(1, 15))

    def test_zero_powers(self, f16):
        assert f16.pow(0, 0) == 1
        assert f16.pow(0, 5) == 0
        with pytest.raises(ZeroDivisionError):
            f16.pow(0, -1)

    @given(nonzero16, st.integers(min_value=-20, max_value=40))
    def test_negative_exponent(self, a, e):
        field = GF2m(PAPER_P)
        assert field.mul(field.pow(a, e), field.pow(a, -e)) == 1

    @given(nonzero16, st.integers(min_value=0, max_value=10),
           st.integers(min_value=0, max_value=10))
    def test_exponent_addition(self, a, e1, e2):
        field = GF2m(PAPER_P)
        assert field.pow(a, e1 + e2) == field.mul(field.pow(a, e1), field.pow(a, e2))


class TestStructure:
    def test_order_of_z(self, f16):
        assert f16.order(2) == 15

    def test_order_divides_group(self, f256):
        for a in range(1, 256):
            assert 255 % f256.order(a) == 0

    def test_order_zero_rejected(self, f16):
        with pytest.raises(ValueError):
            f16.order(0)

    def test_generator_count(self, f16):
        # phi(15) = 8 generators in GF(16)*
        assert sum(f16.is_generator(a) for a in range(16)) == 8

    def test_trace_balanced(self, f16):
        # Trace takes each value in GF(2) exactly 2^(m-1) times.
        traces = [f16.trace(a) for a in f16.elements()]
        assert traces.count(0) == 8
        assert traces.count(1) == 8

    @given(elements16, elements16)
    def test_trace_linear(self, a, b):
        field = GF2m(PAPER_P)
        assert field.trace(a ^ b) == field.trace(a) ^ field.trace(b)

    def test_minimal_polynomial_of_z(self, f16):
        assert f16.minimal_polynomial(2) == PAPER_P

    def test_minimal_polynomial_of_one(self, f16):
        assert f16.minimal_polynomial(1) == 0b11  # x + 1

    def test_minimal_polynomial_of_zero(self, f16):
        assert f16.minimal_polynomial(0) == 0b10  # x

    @given(elements16)
    def test_minimal_polynomial_annihilates(self, a):
        # Evaluate min poly at a inside the field: must give 0.
        field = GF2m(PAPER_P)
        poly = field.minimal_polynomial(a)
        acc = 0
        power = 1
        for i in range(poly.bit_length()):
            if (poly >> i) & 1:
                acc = field.add(acc, power)
            power = field.mul(power, a)
        assert acc == 0

    def test_reduce(self, f16):
        assert f16.reduce(0b10000) == 0b0011  # z^4 -> z+1

    def test_element_poly_string(self, f16):
        assert f16.element_poly_string(0b0110) == "z^2 + z"
        assert f16.element_poly_string(0) == "0"

    def test_repr_mentions_modulus(self, f16):
        assert "z^4" in repr(f16)


class TestLargerFields:
    def test_gf256_inverse_roundtrip(self, f256):
        for a in (1, 2, 100, 255):
            assert f256.mul(a, f256.inv(a)) == 1

    def test_gf2_12_spot_check(self):
        field = GF2m(primitive_polynomial(12))
        assert field.order(2) == 4095
        a = 0b101010101010
        assert field.mul(a, field.inv(a)) == 1
