"""The README / docs code blocks must execute (no silently rotting docs).

Thin pytest wrapper around ``tools/check_docs.py`` -- the same check CI
runs as a dedicated step -- so `python -m pytest` alone catches a broken
documentation snippet.
"""

import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))

import check_docs  # noqa: E402

DOC_FILES = [os.path.join(REPO_ROOT, name)
             for name in check_docs.DEFAULT_FILES]


@pytest.mark.parametrize("path", DOC_FILES,
                         ids=[os.path.basename(p) for p in DOC_FILES])
def test_doc_blocks_execute(path):
    assert os.path.exists(path), f"documented file missing: {path}"
    failures = check_docs.check_file(path)
    assert not failures, "\n".join(failures)


def test_doc_files_have_blocks():
    """The docs actually contain runnable examples (the check is not
    vacuously green)."""
    total = 0
    for path in DOC_FILES:
        with open(path, encoding="utf-8") as handle:
            blocks = check_docs.extract_python_blocks(handle.read())
        total += sum(1 for _, _, skipped in blocks if not skipped)
    assert total >= 4


def test_skip_marker_honoured(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "<!-- doc-check: skip -->\n"
        "```python\nraise RuntimeError('must not run')\n```\n"
        "```python\nx = 1\n```\n",
        encoding="utf-8",
    )
    assert check_docs.check_file(str(doc)) == []


def test_failures_reported(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("```python\n1 / 0\n```\n", encoding="utf-8")
    failures = check_docs.check_file(str(doc))
    assert len(failures) == 1
    assert "ZeroDivisionError" in failures[0]
