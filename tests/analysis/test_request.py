"""CampaignRequest: the one shared resolver behind every entry point.

Two contracts are pinned here.  **Validation**: every malformed request
dies in :func:`resolve_campaign` with a pointed :class:`RequestError`,
identically no matter which surface (API, CLI, server) submitted it.
**Equivalence**: the request path is byte-identical to the legacy kwarg
forms -- same reports, same comparison rows -- over the full
``standard_universe(256)`` acceptance geometry, so the old surface can
be described as a shim with a straight face.
"""

import pickle

import pytest

from repro.analysis import (
    CampaignRequest,
    RequestError,
    compare_tests,
    execute_request,
    known_tests,
    march_runner,
    resolve_campaign,
    run_coverage,
    schedule_runner,
)
from repro.analysis.complexity import march_operations
from repro.analysis.request import run_request
from repro.faults.universe import UniverseSpec
from repro.march.library import MARCH_C_MINUS, MATS_PLUS
from repro.prt import extended_schedule, standard_schedule
from repro.server.cache import ResultCache
from tests.sim.conftest import assert_reports_identical


class TestValidation:
    def test_unknown_test(self):
        with pytest.raises(RequestError, match="unknown test 'nope'"):
            resolve_campaign(CampaignRequest(test="nope", n=8))

    def test_bad_geometry(self):
        with pytest.raises(RequestError, match="n must be a positive int"):
            resolve_campaign(CampaignRequest(test="mats", n=0))
        with pytest.raises(RequestError, match="m must be a positive int"):
            resolve_campaign(CampaignRequest(test="mats", n=8, m=-1))
        with pytest.raises(RequestError, match="n must be a positive int"):
            resolve_campaign(CampaignRequest(test="mats", n="8"))

    def test_bad_execution_options(self):
        with pytest.raises(RequestError, match="engine must be one of"):
            resolve_campaign(CampaignRequest(test="mats", n=8, engine="warp"))
        with pytest.raises(RequestError, match="backend must be one of"):
            resolve_campaign(CampaignRequest(test="mats", n=8, backend="gpu"))
        with pytest.raises(RequestError, match="workers must be"):
            resolve_campaign(CampaignRequest(test="mats", n=8, workers=-1))

    def test_bad_polynomial(self):
        with pytest.raises(RequestError, match="bad field polynomial"):
            resolve_campaign(CampaignRequest(test="prt3", n=8, m=4,
                                             poly="garbage"))

    def test_quad_schemes_need_even_n(self):
        for test in ("quad-port", "quad-schedule"):
            with pytest.raises(RequestError, match="even n >= 6"):
                resolve_campaign(CampaignRequest(test=test, n=13))
        resolve_campaign(CampaignRequest(test="quad-port", n=14))  # fine

    def test_universe_must_be_a_spec(self):
        with pytest.raises(RequestError, match="must be a UniverseSpec"):
            resolve_campaign(CampaignRequest(test="mats", n=8,
                                             universe="standard"))

    def test_unknown_universe_generator(self):
        spec = UniverseSpec.call("made_up", n=8)
        with pytest.raises(RequestError, match="unknown universe generator"):
            resolve_campaign(CampaignRequest(test="mats", n=8, universe=spec))

    def test_not_a_request(self):
        with pytest.raises(RequestError, match="expected a CampaignRequest"):
            resolve_campaign("march-c")

    def test_known_tests_resolve(self):
        """Every advertised selector resolves at a safe geometry."""
        for entry in known_tests():
            resolved = resolve_campaign(
                CampaignRequest(test=entry["test"], n=12))
            assert resolved.display_name == entry["display_name"]
            assert resolved.ports == entry["ports"]
            assert resolved.operations > 0


class TestResolution:
    def test_memoized_on_equal_requests(self):
        a = resolve_campaign(CampaignRequest(test="march-c", n=32))
        b = resolve_campaign(CampaignRequest(test="march-c", n=32))
        assert a is b  # same runner -> same memoized compiled stream

    def test_scheme_reports_use_display_labels(self):
        """Legacy CLI labeled scheme reports by display name."""
        assert resolve_campaign(
            CampaignRequest(test="dual-port", n=12)).test_name == "dual-port π"
        assert resolve_campaign(
            CampaignRequest(test="march-c", n=12)).test_name == "march-c"

    def test_mixed_entry_forms_rejected(self):
        with pytest.raises(ValueError, match="no universe/n"):
            run_coverage(CampaignRequest(test="mats", n=8), n=8)
        with pytest.raises(ValueError, match="no universe/n"):
            compare_tests([CampaignRequest(test="mats", n=8)], n=8)
        with pytest.raises(TypeError, match="needs"):
            run_coverage(march_runner(MARCH_C_MINUS))


@pytest.fixture(scope="module")
def universe_256():
    from repro.faults import standard_universe

    return standard_universe(256)


class TestLegacyEquivalence:
    """Request path vs legacy kwargs, full standard_universe(256)."""

    def test_march_campaign_byte_identical(self, universe_256):
        legacy = run_coverage(march_runner(MARCH_C_MINUS), universe_256, 256,
                              test_name="march-c")
        request = run_coverage(CampaignRequest(test="march-c", n=256),
                               cache=False)
        assert_reports_identical(legacy, request)

    def test_schedule_campaign_byte_identical(self, universe_256):
        schedule = standard_schedule(n=256, verify=True)
        legacy = run_coverage(schedule_runner(schedule), universe_256, 256,
                              test_name="prt3")
        request = run_coverage(CampaignRequest(test="prt3", n=256),
                               cache=False)
        assert_reports_identical(legacy, request)

    def test_compare_rows_byte_identical(self):
        n = 28
        from repro.faults import standard_universe

        universe = standard_universe(n)
        verifying = standard_schedule(n=n, verify=True)
        extended = extended_schedule(n=n, verify=True)
        legacy = compare_tests(
            [
                ("PRT-3", schedule_runner(verifying),
                 verifying.operation_count(n)),
                ("PRT-5", schedule_runner(extended),
                 extended.operation_count(n)),
                ("MATS+", march_runner(MATS_PLUS),
                 march_operations(MATS_PLUS, n)),
                ("March C-", march_runner(MARCH_C_MINUS),
                 march_operations(MARCH_C_MINUS, n)),
            ],
            universe, n,
        )
        requests = [CampaignRequest(test=test, n=n)
                    for test in ("prt3", "prt5", "mats+", "march-c")]
        modern = compare_tests(requests, cache=False)
        assert [r.name for r in modern] == [r.name for r in legacy]
        assert [r.operations for r in modern] == [r.operations for r in legacy]
        assert [r.ops_per_cell for r in modern] == [
            r.ops_per_cell for r in legacy]
        for old, new in zip(legacy, modern, strict=True):
            assert_reports_identical(old.report, new.report)


class TestCachedExecution:
    def test_hit_is_byte_identical_and_runs_engine_once(self, monkeypatch):
        import repro.analysis.request as request_module

        calls = []
        original = request_module._run_resolved

        def spying(resolved, name, pool, progress):
            calls.append(resolved.request)
            return original(resolved, name, pool, progress)

        monkeypatch.setattr(request_module, "_run_resolved", spying)
        cache = ResultCache()
        request = CampaignRequest(test="march-c", n=24)
        cold = execute_request(request, cache=cache)
        warm = execute_request(request, cache=cache)
        assert len(calls) == 1  # the engine ran exactly once
        assert cold.cached is False and warm.cached is True
        assert cold.cache_key == warm.cache_key == request.cache_key()
        assert pickle.dumps(warm.report) == pickle.dumps(cold.report)
        assert warm.report is not cold.report  # fresh copy per hit

    def test_cache_false_disables_caching(self, monkeypatch):
        import repro.analysis.request as request_module

        calls = []
        original = request_module._run_resolved

        def spying(resolved, name, pool, progress):
            calls.append(resolved.request)
            return original(resolved, name, pool, progress)

        monkeypatch.setattr(request_module, "_run_resolved", spying)
        request = CampaignRequest(test="mats", n=12)
        run_request(request, cache=False)
        run_request(request, cache=False)
        assert len(calls) == 2

    def test_workers_share_a_cache_entry(self):
        """workers is excluded from the key: a sharded rerun of a cached
        campaign is served from cache."""
        cache = ResultCache()
        serial = execute_request(CampaignRequest(test="march-c", n=24),
                                 cache=cache)
        sharded = execute_request(
            CampaignRequest(test="march-c", n=24, workers=4), cache=cache)
        assert sharded.cached is True
        assert pickle.dumps(sharded.report) == pickle.dumps(serial.report)

    def test_compare_and_coverage_share_entries(self):
        """compare relabels rows from the same cache entries coverage
        fills -- one campaign each, two labels."""
        cache = ResultCache()
        report = run_request(CampaignRequest(test="march-c", n=20),
                             cache=cache)
        rows = compare_tests([CampaignRequest(test="march-c", n=20)],
                             cache=cache)
        assert rows[0].name == "March C-"
        assert rows[0].report.test_name == "March C-"
        assert report.test_name == "march-c"
        assert rows[0].report.detected == report.detected
        assert rows[0].report.total == report.total
        assert cache.stats()["misses"] >= 1
        assert cache.stats()["hits"] >= 1
