"""Tests for complexity accounting and the comparison harness."""

import pytest

from repro.analysis import (
    compare_tests,
    dual_port_cycles,
    march_operations,
    march_runner,
    pi_test_operations,
    port_scheme_table,
    quad_port_cycles,
    schedule_runner,
    single_port_cycles,
)
from repro.faults import single_cell_universe
from repro.march.library import MARCH_C_MINUS, MATS
from repro.memory import DualPortRAM, QuadPortRAM, SinglePortRAM
from repro.prt import (
    DualPortPiIteration,
    PiIteration,
    QuadPortPiIteration,
    standard_schedule,
)


class TestAnalyticCounts:
    def test_pi_test_3n(self):
        assert pi_test_operations(1024) == 3 * 1024 + 4

    def test_pi_test_validation(self):
        with pytest.raises(ValueError):
            pi_test_operations(2)

    def test_dual_port_2n(self):
        assert dual_port_cycles(1024) == 2 * 1024 + 2

    def test_quad_port_n(self):
        assert quad_port_cycles(1024) == 1024 + 2

    def test_quad_port_validation(self):
        with pytest.raises(ValueError):
            quad_port_cycles(13)
        with pytest.raises(ValueError):
            dual_port_cycles(2)

    def test_march_operations_bom(self):
        assert march_operations(MARCH_C_MINUS, 512) == 10 * 512

    def test_march_operations_wom_backgrounds(self):
        # m=4 -> 3 backgrounds
        assert march_operations(MATS, 128, m=4) == 4 * 128 * 3


class TestAnalyticMatchesEngines:
    """The analytic formulas must match what the engines actually do."""

    def test_single_port(self):
        n = 60
        ram = SinglePortRAM(n)
        PiIteration(seed=(0, 1)).run(ram)
        assert ram.stats.cycles == single_port_cycles(n)

    def test_dual_port(self):
        n = 60
        ram = DualPortRAM(n)
        DualPortPiIteration(seed=(0, 1)).run(ram)
        assert ram.stats.cycles == dual_port_cycles(n)

    def test_quad_port(self):
        n = 60
        ram = QuadPortRAM(n)
        QuadPortPiIteration(seed=(0, 1)).run(ram)
        assert ram.stats.cycles == quad_port_cycles(n)


class TestPortSchemeTable:
    def test_speedups(self):
        rows = port_scheme_table([256, 1024])
        for row in rows:
            assert 1.4 < row["speedup_2p"] < 1.6
            assert 2.8 < row["speedup_4p"] < 3.2

    def test_odd_n_skips_quad(self):
        rows = port_scheme_table([15])
        assert "quad_port" not in rows[0]

    def test_speedups_approach_limits(self):
        small = port_scheme_table([16])[0]
        large = port_scheme_table([1 << 16])[0]
        assert abs(large["speedup_2p"] - 1.5) < abs(small["speedup_2p"] - 1.5)
        assert abs(large["speedup_4p"] - 3.0) < abs(small["speedup_4p"] - 3.0)


class TestCompare:
    def test_compare_march_vs_prt(self):
        n = 14
        universe = single_cell_universe(n, classes=("SAF", "TF"))
        schedule = standard_schedule(n=n)
        rows = compare_tests(
            [
                ("March C-", march_runner(MARCH_C_MINUS),
                 march_operations(MARCH_C_MINUS, n)),
                ("PRT-3", schedule_runner(schedule),
                 schedule.operation_count(n)),
            ],
            universe, n,
        )
        by_name = {row.name: row for row in rows}
        assert by_name["March C-"].coverage("SAF") == 1.0
        assert by_name["PRT-3"].coverage("SAF") == 1.0
        assert by_name["PRT-3"].coverage("TF") == 1.0
        assert by_name["March C-"].ops_per_cell == 10.0

    def test_row_overall(self):
        n = 8
        universe = single_cell_universe(n, classes=("SAF",))
        rows = compare_tests(
            [("MATS", march_runner(MATS), march_operations(MATS, n))],
            universe, n,
        )
        assert rows[0].overall == 1.0
        assert rows[0].operations == 4 * n
