"""Tests for the Markov detection model and its Monte-Carlo validator."""

import pytest

from repro.analysis import DetectionMarkovChain, monte_carlo_detection
from repro.faults import StuckAtFault
from repro.prt import PiIteration, random_trajectory


class TestChainBasics:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            DetectionMarkovChain(1.5)
        with pytest.raises(ValueError):
            DetectionMarkovChain(0.5, p_propagation=-0.1)

    def test_p_detect(self):
        chain = DetectionMarkovChain(0.5, 0.8)
        assert chain.p_detect == 0.4

    def test_transition_matrix_rows_sum_to_one(self):
        matrix = DetectionMarkovChain(0.3).transition_matrix()
        assert matrix.sum(axis=1).tolist() == [1.0, 1.0]

    def test_geometric_formula(self):
        chain = DetectionMarkovChain(0.5)
        for t in range(6):
            assert chain.detection_probability(t) == pytest.approx(
                1 - 0.5**t
            )

    def test_zero_iterations(self):
        assert DetectionMarkovChain(0.5).detection_probability(0) == 0.0

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            DetectionMarkovChain(0.5).detection_probability(-1)

    def test_certain_detection(self):
        assert DetectionMarkovChain(1.0).detection_probability(1) == 1.0

    def test_never_detects(self):
        chain = DetectionMarkovChain(0.0)
        assert chain.detection_probability(100) == 0.0
        assert chain.expected_iterations() == float("inf")

    def test_expected_iterations(self):
        assert DetectionMarkovChain(0.25).expected_iterations() == 4.0

    def test_curve_monotone(self):
        curve = DetectionMarkovChain(0.3).detection_curve(10)
        assert curve == sorted(curve)
        assert len(curve) == 10

    def test_iterations_for_confidence(self):
        chain = DetectionMarkovChain(0.5)
        assert chain.iterations_for_confidence(0.99) == 7  # 1 - 2^-7 > 0.99

    def test_confidence_validation(self):
        with pytest.raises(ValueError):
            DetectionMarkovChain(0.5).iterations_for_confidence(1.0)
        with pytest.raises(ValueError):
            DetectionMarkovChain(0.0).iterations_for_confidence(0.9)

    def test_confidence_certain(self):
        assert DetectionMarkovChain(1.0).iterations_for_confidence(0.999) == 1


class TestMonteCarlo:
    def make_curve(self, trials=60, max_iterations=5):
        return monte_carlo_detection(
            lambda rng: StuckAtFault(rng.randrange(14), rng.randrange(2)),
            lambda rng: PiIteration(
                generator=(1, 0, 1, 1), seed=(0, 0, 1),
                trajectory=random_trajectory(14, seed=rng.randrange(10**6)),
            ),
            n=14, max_iterations=max_iterations, trials=trials,
        )

    def test_curve_monotone_and_bounded(self):
        curve = self.make_curve()
        assert all(0.0 <= p <= 1.0 for p in curve)
        assert curve == sorted(curve)

    def test_reproducible(self):
        assert self.make_curve() == self.make_curve()

    def test_detection_improves_with_iterations(self):
        curve = self.make_curve(trials=80)
        assert curve[-1] > curve[0] or curve[0] == 1.0

    def test_chain_model_bounds_simulation(self):
        """E6's claim: the geometric model tracks the empirical curve
        (per-iteration detection probability ~ p_activation ~ 1/2)."""
        curve = self.make_curve(trials=100, max_iterations=6)
        chain = DetectionMarkovChain(p_activation=0.5, p_propagation=1.0)
        model = chain.detection_curve(6)
        # Same shape: within a generous tolerance at each point.
        for emp, mod in zip(curve, model, strict=False):
            assert abs(emp - mod) < 0.25

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            monte_carlo_detection(
                lambda rng: StuckAtFault(0, 0),
                lambda rng: PiIteration(seed=(0, 1)),
                n=9, max_iterations=2, trials=0,
            )
