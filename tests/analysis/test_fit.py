"""Tests for fitting the detection chain to empirical curves."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import DetectionMarkovChain, fit_detection_chain


class TestFitDetectionChain:
    def test_exact_geometric_recovered(self):
        chain = DetectionMarkovChain(0.5)
        fitted = fit_detection_chain(chain.detection_curve(6))
        assert abs(fitted.p_detect - 0.5) < 1e-4

    @settings(max_examples=20)
    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_roundtrip_any_probability(self, p):
        chain = DetectionMarkovChain(p)
        fitted = fit_detection_chain(chain.detection_curve(8))
        assert abs(fitted.p_detect - p) < 1e-3

    def test_noisy_curve_close(self):
        curve = [0.49, 0.74, 0.84, 0.915, 0.97, 0.975]  # the E6 data
        fitted = fit_detection_chain(curve)
        assert 0.4 < fitted.p_detect < 0.6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fit_detection_chain([])

    def test_non_probability_rejected(self):
        with pytest.raises(ValueError):
            fit_detection_chain([0.5, 1.2])

    def test_all_ones(self):
        fitted = fit_detection_chain([1.0, 1.0, 1.0])
        assert fitted.p_detect > 0.99

    def test_all_zeros(self):
        fitted = fit_detection_chain([0.0, 0.0, 0.0])
        assert fitted.p_detect < 0.01
