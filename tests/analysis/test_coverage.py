"""Tests for the coverage campaign harness."""

from repro.analysis import (
    CoverageReport,
    iteration_runner,
    march_runner,
    run_coverage,
    schedule_runner,
)
from repro.faults import single_cell_universe
from repro.march.library import MARCH_C_MINUS, MATS
from repro.memory import SinglePortRAM
from repro.prt import PiIteration, standard_schedule


class TestCoverageReport:
    def test_record_and_ratios(self):
        report = CoverageReport(test_name="t")
        report.record("SAF", "a", True)
        report.record("SAF", "b", False)
        report.record("TF", "c", True)
        assert report.coverage_of("SAF") == 0.5
        assert report.coverage_of("TF") == 1.0
        assert report.overall == 2 / 3
        assert report.missed_faults == ["b"]

    def test_absent_class_is_full(self):
        assert CoverageReport(test_name="t").coverage_of("SAF") == 1.0

    def test_empty_overall(self):
        assert CoverageReport(test_name="t").overall == 1.0

    def test_rows(self):
        report = CoverageReport(test_name="t")
        report.record("SAF", "a", True)
        assert report.rows() == [("SAF", 1, 1, 1.0)]

    def test_classes_sorted(self):
        report = CoverageReport(test_name="t")
        report.record("TF", "a", True)
        report.record("SAF", "b", True)
        assert report.classes == ["SAF", "TF"]

    def test_repr(self):
        assert "overall" in repr(CoverageReport(test_name="t"))


class TestRunCoverage:
    def test_march_c_minus_full_saf(self):
        universe = single_cell_universe(8, classes=("SAF", "TF"))
        report = run_coverage(march_runner(MARCH_C_MINUS), universe, 8)
        assert report.coverage_of("SAF") == 1.0
        assert report.coverage_of("TF") == 1.0

    def test_mats_weaker_than_march_c(self):
        universe = single_cell_universe(8, classes=("SOF",))
        mats = run_coverage(march_runner(MATS), universe, 8)
        march_c = run_coverage(march_runner(MARCH_C_MINUS), universe, 8)
        assert mats.overall <= march_c.overall

    def test_schedule_runner(self):
        universe = single_cell_universe(14, classes=("SAF",))
        report = run_coverage(
            schedule_runner(standard_schedule(n=14)), universe, 14,
            test_name="PRT-3",
        )
        assert report.coverage_of("SAF") == 1.0
        assert report.test_name == "PRT-3"

    def test_iteration_runner(self):
        universe = single_cell_universe(14, classes=("SAF",))
        report = run_coverage(
            iteration_runner(PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))),
            universe, 14,
        )
        # One iteration catches some but not all SAFs.
        assert 0.0 < report.coverage_of("SAF") < 1.0

    def test_custom_ram_factory(self):
        universe = single_cell_universe(8, classes=("SAF",))
        calls = []

        def factory():
            calls.append(1)
            return SinglePortRAM(8)

        run_coverage(march_runner(MATS), universe, 8, ram_factory=factory)
        assert len(calls) == len(universe)

    def test_wom_campaign(self):
        universe = single_cell_universe(8, m=4, classes=("SAF",))
        report = run_coverage(march_runner(MARCH_C_MINUS), universe, 8, m=4)
        assert report.coverage_of("SAF") == 1.0
