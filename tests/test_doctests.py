"""Run every doctest in the library as part of the test suite.

Doctests double as API documentation; this keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield info.name


MODULES = sorted(set(_iter_module_names()))


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )


def test_module_list_covers_packages():
    """Sanity: the walker found every subpackage."""
    found = {name.split(".")[1] for name in MODULES if "." in name}
    assert {"gf2", "gf2m", "lfsr", "memory", "faults",
            "march", "prt", "analysis", "sim", "server"} <= found


def test_module_list_covers_batched_subsystem():
    """The bit-packed engine's modules are doctested like everything else."""
    assert {"repro.sim.batched", "repro.sim.campaign",
            "repro.memory.packed", "repro.memory.stream_exec"} <= set(MODULES)


@pytest.mark.parametrize(
    "module_name",
    [name for name in MODULES
     if name.startswith(("repro.sim", "repro.memory"))],
)
def test_sim_and_memory_modules_document_their_surface(module_name):
    """Every repro.sim / repro.memory module declares a docstring and
    ``__all__`` (the surface the architecture guide documents)."""
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"
    assert getattr(module, "__all__", None), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} not resolvable"
