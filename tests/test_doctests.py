"""Run every doctest in the library as part of the test suite.

Doctests double as API documentation; this keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_module_names():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield info.name


MODULES = sorted(set(_iter_module_names()))


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )


def test_module_list_covers_packages():
    """Sanity: the walker found every subpackage."""
    found = {name.split(".")[1] for name in MODULES if "." in name}
    assert {"gf2", "gf2m", "lfsr", "memory", "faults",
            "march", "prt", "analysis"} <= found
