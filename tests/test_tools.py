"""Unit tests for the benchmark-guard and trend-plot tools.

``tools/`` is not a package; the modules are loaded by file path.  The
``--from-artifacts`` mode is tested against a fake ``gh`` runner -- no
network, no GitHub CLI required.
"""

import importlib.util
import io
import json
import os
import zipfile

import pytest

_TOOLS = os.path.join(os.path.dirname(__file__), "..", "tools")


def _load(name):
    spec = importlib.util.spec_from_file_location(
        name, os.path.join(_TOOLS, f"{name}.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


check_bench = _load("check_bench")
plot_bench_trend = _load("plot_bench_trend")


def _zip_bytes(payload: dict, member: str = "BENCH_full.json") -> bytes:
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w") as archive:
        archive.writestr(member, json.dumps(payload))
    return buffer.getvalue()


class _FakeGh:
    """Canned `gh` responses keyed by the first two CLI words."""

    def __init__(self, artifacts, zips):
        self.artifacts = artifacts
        self.zips = zips
        self.calls = []

    def __call__(self, args):
        self.calls.append(args)
        if args[0] == "repo":
            return b"acme/repro\n"
        if args[1].endswith("/actions/artifacts"):
            lines = [json.dumps(entry) for entry in self.artifacts]
            return ("\n".join(lines) + "\n").encode()
        for artifact_id, payload in self.zips.items():
            if args[1].endswith(f"/artifacts/{artifact_id}/zip"):
                return payload
        raise AssertionError(f"unexpected gh call: {args}")


@pytest.fixture
def fake_gh():
    artifacts = [
        {"id": 3, "name": "bench-full-cccc", "expired": False,
         "created_at": "2026-07-03T00:00:00Z"},
        {"id": 1, "name": "bench-full-aaaa", "expired": False,
         "created_at": "2026-07-01T00:00:00Z"},
        {"id": 2, "name": "bench-full-bbbb", "expired": True,
         "created_at": "2026-07-02T00:00:00Z"},
        {"id": 4, "name": "coverage-html", "expired": False,
         "created_at": "2026-07-04T00:00:00Z"},
    ]
    zips = {
        1: _zip_bytes({"rows": [{"test": "March C-", "n": 64,
                                 "compiled_s": 0.4}]}),
        3: _zip_bytes({"rows": [{"test": "March C-", "n": 64,
                                 "compiled_s": 0.5}]}),
    }
    return _FakeGh(artifacts, zips)


class TestFetchArtifactSeries:
    def test_filters_sorts_and_extracts(self, fake_gh, tmp_path):
        paths = plot_bench_trend.fetch_artifact_series(
            "acme/repro", str(tmp_path), run=fake_gh)
        # Expired and foreign artifacts dropped; oldest..newest order.
        assert [os.path.basename(p) for p in paths] == \
            ["bench-full-aaaa-1.json", "bench-full-cccc-3.json"]
        with open(paths[0]) as handle:
            assert json.load(handle)["rows"][0]["compiled_s"] == 0.4

    def test_rerun_same_name_keeps_newest_once(self, fake_gh, tmp_path):
        # A re-run workflow uploads a second bench-full-<sha> artifact:
        # only the newest contributes, and it is actually downloaded
        # (the cache keys on the artifact id, not the name).
        fake_gh.artifacts.append(
            {"id": 9, "name": "bench-full-cccc", "expired": False,
             "created_at": "2026-07-05T00:00:00Z"})
        fake_gh.zips[9] = _zip_bytes(
            {"rows": [{"test": "March C-", "n": 64, "compiled_s": 0.6}]})
        paths = plot_bench_trend.fetch_artifact_series(
            "acme/repro", str(tmp_path), run=fake_gh)
        assert [os.path.basename(p) for p in paths] == \
            ["bench-full-aaaa-1.json", "bench-full-cccc-9.json"]
        with open(paths[1]) as handle:
            assert json.load(handle)["rows"][0]["compiled_s"] == 0.6

    def test_cache_skips_downloaded_artifacts(self, fake_gh, tmp_path):
        plot_bench_trend.fetch_artifact_series("acme/repro", str(tmp_path),
                                               run=fake_gh)
        downloads = sum(1 for call in fake_gh.calls
                        if call[-1].endswith("/zip")
                        or "/zip" in call[1])
        plot_bench_trend.fetch_artifact_series("acme/repro", str(tmp_path),
                                               run=fake_gh)
        again = sum(1 for call in fake_gh.calls
                    if call[-1].endswith("/zip") or "/zip" in call[1])
        assert downloads == 2
        assert again == downloads  # second fetch served from cache

    def test_limit_keeps_newest(self, fake_gh, tmp_path):
        paths = plot_bench_trend.fetch_artifact_series(
            "acme/repro", str(tmp_path), limit=1, run=fake_gh)
        assert [os.path.basename(p) for p in paths] == \
            ["bench-full-cccc-3.json"]

    def test_no_artifacts_is_a_pointed_error(self, tmp_path):
        empty = _FakeGh([], {})
        with pytest.raises(RuntimeError, match="no unexpired"):
            plot_bench_trend.fetch_artifact_series(
                "acme/repro", str(tmp_path), run=empty)

    def test_zip_without_summary_is_a_pointed_error(self, tmp_path):
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w") as archive:
            archive.writestr("README.txt", "nope")
        gh = _FakeGh(
            [{"id": 1, "name": "bench-full-aaaa", "expired": False,
              "created_at": "2026-07-01T00:00:00Z"}],
            {1: buffer.getvalue()},
        )
        with pytest.raises(RuntimeError, match="no JSON summary"):
            plot_bench_trend.fetch_artifact_series(
                "acme/repro", str(tmp_path), run=gh)

    def test_missing_gh_cli_degrades(self, monkeypatch):
        def boom(*args, **kwargs):
            raise FileNotFoundError("gh")

        monkeypatch.setattr(plot_bench_trend.subprocess, "run", boom)
        with pytest.raises(RuntimeError, match="GitHub CLI"):
            plot_bench_trend._run_gh(["api", "whatever"])

    def test_main_from_artifacts_renders_trend(self, fake_gh, tmp_path,
                                               monkeypatch, capsys):
        monkeypatch.setattr(plot_bench_trend, "_run_gh", fake_gh)
        code = plot_bench_trend.main([
            "--from-artifacts", "--repo", "acme/repro",
            "--artifacts-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fetched 2 summaries from acme/repro" in out
        assert "March C- n=64" in out

    def test_main_rejects_files_with_from_artifacts(self, tmp_path):
        with pytest.raises(SystemExit):
            plot_bench_trend.main(["--from-artifacts", "x.json"])
        with pytest.raises(SystemExit):
            plot_bench_trend.main([])


class TestCheckBenchWordlaneRows:
    def test_wordlane_rows_are_gated(self):
        base = {"wordlane_rows": [
            {"test": "March C-", "n": 1024, "universe": "standard m=8",
             "compiled_s": 10.0, "batched_s": 1.0},
        ]}
        current = {"wordlane_rows": [
            {"test": "March C-", "n": 1024, "universe": "standard m=8",
             "compiled_s": 10.0, "batched_s": 9.0},
        ]}
        lines, regressions = check_bench.compare(base, current,
                                                 max_slowdown=3.0,
                                                 min_seconds=0.05)
        assert any("batched_s" in r for r in regressions)
        assert any("standard m=8" in line for line in lines)

    def test_wordlane_section_distinct_from_rows(self):
        # Same (test, n) identity in two sections must not cross-match.
        base = {"rows": [{"test": "March C-", "n": 64, "compiled_s": 1.0}],
                "wordlane_rows": [{"test": "March C-", "n": 64,
                                   "universe": "standard m=8",
                                   "compiled_s": 8.0}]}
        current = {"wordlane_rows": [{"test": "March C-", "n": 64,
                                      "universe": "standard m=8",
                                      "compiled_s": 8.5}]}
        lines, regressions = check_bench.compare(base, current, 3.0, 0.05)
        assert not regressions
        assert len(lines) == 1


class TestCheckBenchCacheRows:
    @staticmethod
    def _cache_row(**overrides):
        row = {"test": "March C-", "n": 1024,
               "universe": "standard (result cache)",
               "cold_s": 0.5, "warm_s": 0.0001, "speedup_warm": 5000.0}
        row.update(overrides)
        return row

    def test_slow_warm_hit_is_a_regression(self):
        # The speedup floor gates the *current* run alone: a baseline
        # predating cache_rows must not disable the gate.
        base = {"rows": [{"test": "March C-", "n": 64, "compiled_s": 1.0}]}
        current = {"rows": [{"test": "March C-", "n": 64,
                             "compiled_s": 1.0}],
                   "cache_rows": [self._cache_row(speedup_warm=12.0)]}
        lines, regressions = check_bench.compare(base, current, 3.0, 0.05)
        assert any("warm cache hit only 12.0x" in r for r in regressions)

    def test_fast_warm_hit_passes(self):
        base = {"cache_rows": [self._cache_row()]}
        current = {"cache_rows": [self._cache_row(speedup_warm=2300.0)]}
        lines, regressions = check_bench.compare(base, current, 3.0, 0.05)
        assert not regressions
        assert any("speedup_warm" in line and "ok" in line
                   for line in lines)

    def test_cold_campaign_timing_is_gated(self):
        base = {"cache_rows": [self._cache_row(cold_s=0.5)]}
        current = {"cache_rows": [self._cache_row(cold_s=5.0)]}
        lines, regressions = check_bench.compare(base, current, 3.0, 0.05)
        assert any("cold_s" in r for r in regressions)

    def test_warm_timing_below_noise_floor_not_gated(self):
        # warm_s (~1e-4s) sits far below --min-seconds; only the ratio
        # and the cold path carry the signal.
        base = {"cache_rows": [self._cache_row(warm_s=0.0001)]}
        current = {"cache_rows": [self._cache_row(warm_s=0.01)]}
        lines, regressions = check_bench.compare(base, current, 3.0, 0.05)
        assert not regressions

    def test_custom_speedup_floor(self):
        base = {"cache_rows": [self._cache_row()]}
        current = {"cache_rows": [self._cache_row(speedup_warm=150.0)]}
        _, ok = check_bench.compare(base, current, 3.0, 0.05,
                                    min_cache_speedup=100.0)
        _, bad = check_bench.compare(base, current, 3.0, 0.05,
                                     min_cache_speedup=500.0)
        assert not ok
        assert any("floor 500x" in r for r in bad)


class TestCheckBenchSchedulerGates:
    """The current-run-only parallel-scheduler gates."""

    @staticmethod
    def _shared():
        return [{"test": "March C-", "n": 64, "compiled_s": 1.0}]

    @staticmethod
    def _balance_row(strategy, imbalance):
        return {"test": "March C-", "n": 256,
                "universe": f"skewed NPSF tail [{strategy}]",
                "strategy": strategy, "faults": 2048, "shards": 8,
                "max_shard_s": 0.1, "mean_shard_s": 0.05,
                "imbalance": imbalance}

    @staticmethod
    def _lane_row(**overrides):
        row = {"test": "March C-", "n": 1024,
               "universe": "standard lane-sharded", "faults": 27000,
               "workers": 2, "batched_s": 0.6, "sharded_s": 0.3,
               "sharded_vs_serial": 2.0}
        row.update(overrides)
        return row

    def test_stealing_losing_to_fixed_is_a_regression(self):
        base = {"rows": self._shared()}
        current = {"rows": self._shared(),
                   "shard_balance_rows": [
                       self._balance_row("fixed-128", 1.4),
                       self._balance_row("cost-model", 1.2),
                       self._balance_row("stealing", 1.4)]}
        _, regressions = check_bench.compare(base, current, 3.0, 0.05)
        assert any("stealing imbalance" in r for r in regressions)

    def test_stealing_beating_fixed_passes(self):
        base = {"rows": self._shared()}
        current = {"rows": self._shared(),
                   "shard_balance_rows": [
                       self._balance_row("fixed-128", 3.1),
                       self._balance_row("stealing", 1.2)]}
        lines, regressions = check_bench.compare(base, current, 3.0, 0.05)
        assert not regressions
        assert any("shard balance" in line and "ok" in line
                   for line in lines)

    def test_balance_shard_timings_diff_against_baseline(self):
        # shard_balance_rows are also ordinary *_s rows for the
        # slowdown diff, keyed by their strategy-qualified universe.
        base = {"shard_balance_rows": [self._balance_row("fixed-128", 3.0)]}
        current = {"shard_balance_rows": [
            {**self._balance_row("fixed-128", 3.0), "max_shard_s": 0.9}]}
        _, regressions = check_bench.compare(base, current, 3.0, 0.05)
        assert any("max_shard_s" in r for r in regressions)

    def test_lane_sharded_slowdown_gated_on_multicore(self):
        base = {"rows": self._shared()}
        current = {"rows": self._shared(), "cpus": 4,
                   "sharded_rows": [self._lane_row(sharded_vs_serial=0.8)]}
        _, regressions = check_bench.compare(base, current, 3.0, 0.05)
        assert any("0.80x the serial batched engine" in r
                   for r in regressions)

    def test_lane_sharded_gate_skipped_on_one_cpu(self):
        base = {"rows": self._shared()}
        current = {"rows": self._shared(), "cpus": 1,
                   "sharded_rows": [self._lane_row(sharded_vs_serial=0.8)]}
        _, regressions = check_bench.compare(base, current, 3.0, 0.05)
        assert not regressions

    def test_sub_threshold_lane_row_is_exempt(self):
        # Quick mode's n=64 row never engages the pool (below the
        # lane-shard fault threshold): overhead by design, not gated.
        base = {"rows": self._shared()}
        current = {"rows": self._shared(), "cpus": 4,
                   "sharded_rows": [self._lane_row(
                       n=64, faults=1738, sharded_vs_serial=0.5)]}
        _, regressions = check_bench.compare(base, current, 3.0, 0.05)
        assert not regressions

    def test_custom_sharded_floor(self):
        base = {"rows": self._shared()}
        current = {"rows": self._shared(), "cpus": 4,
                   "sharded_rows": [self._lane_row(sharded_vs_serial=2.0)]}
        _, ok = check_bench.compare(base, current, 3.0, 0.05,
                                    min_sharded_speedup=1.5)
        _, bad = check_bench.compare(base, current, 3.0, 0.05,
                                     min_sharded_speedup=3.0)
        assert not ok
        assert any("floor 3.0x" in r for r in bad)


class TestLintContracts:
    """The repo-wide invariant linter runs clean on the real tree and
    still has teeth on synthetic violations."""

    def setup_method(self):
        self.lint = _load("lint_contracts")

    def test_repo_is_clean(self):
        assert self.lint.run() == []

    def test_main_exit_code(self, capsys):
        assert self.lint.main([]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def _tree(self, tmp_path, batched="", pool="", remote="",
              campaign="def _fits_geometry(d, n, m, p):\n    return True\n",
              fault=""):
        src = tmp_path / "src" / "repro"
        (src / "sim").mkdir(parents=True)
        (src / "faults").mkdir()
        (src / "sim" / "batched.py").write_text(
            batched or "_MODELS = {}\n")
        (src / "sim" / "pool.py").write_text(pool)
        (src / "sim" / "remote.py").write_text(remote)
        (src / "sim" / "campaign.py").write_text(campaign)
        (src / "faults" / "demo.py").write_text(fault)
        return str(tmp_path)

    def test_flags_private_attribute_access(self, tmp_path):
        root = self._tree(tmp_path, batched=(
            "_MODELS = {}\n"
            "def f(memory):\n    return memory._backend\n"))
        assert any("packed-surface" in f for f in self.lint.run(root))

    def test_flags_lambda_in_pool(self, tmp_path):
        root = self._tree(tmp_path, pool="f = lambda x: x\n")
        assert any("picklable-payloads" in f for f in self.lint.run(root))

    def test_flags_nested_def_in_remote(self, tmp_path):
        root = self._tree(tmp_path, remote=(
            "def outer():\n    def inner():\n        pass\n    return inner\n"))
        assert any("picklable-payloads" in f for f in self.lint.run(root))

    def test_flags_hook_without_flag(self, tmp_path):
        root = self._tree(tmp_path, batched=(
            "_MODELS = {}\n"
            "class LaneFaultModel:\n    pass\n"
            "class Broken(LaneFaultModel):\n"
            "    def settle(self):\n        pass\n"))
        assert any("hook-flags" in f for f in self.lint.run(root))

    def test_flag_via_base_class_is_fine(self, tmp_path):
        root = self._tree(tmp_path, batched=(
            "_MODELS = {}\n"
            "class LaneFaultModel:\n    pass\n"
            "class Base(LaneFaultModel):\n    settles = True\n"
            "class Ok(Base):\n"
            "    def settle(self):\n        pass\n"))
        assert not any("hook-flags" in f for f in self.lint.run(root))

    def test_flags_unregistered_kind(self, tmp_path):
        root = self._tree(
            tmp_path,
            batched="_MODELS = {'stuck': object}\n",
            fault="s = VectorSemantics('mystery', ())\n")
        findings = self.lint.run(root)
        assert any("kind-registry" in f and "mystery" in f
                   for f in findings)

    def test_flags_stale_fits_geometry_branch(self, tmp_path):
        root = self._tree(
            tmp_path,
            batched="_MODELS = {'stuck': object}\n",
            campaign=("def _fits_geometry(d, n, m, p):\n"
                      "    return d.kind == 'ghost'\n"),
            fault="s = VectorSemantics('stuck', ())\n")
        assert any("ghost" in f for f in self.lint.run(root))


class TestVerifyCorpus:
    """The verifier's acceptance gate: compilers in, mutations out."""

    def setup_method(self):
        self.corpus = _load("check_verify_corpus")

    def test_corpus_is_large_enough(self):
        assert len(self.corpus.MUTATIONS) >= 20

    def test_compiler_streams_accepted(self):
        assert self.corpus.accept_failures() == []

    def test_all_mutations_rejected(self):
        assert self.corpus.reject_failures() == []

    def test_main_exit_code(self, capsys):
        assert self.corpus.main() == 0
        assert "0 failure(s)" in capsys.readouterr().out
