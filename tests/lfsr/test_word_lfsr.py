"""Tests for the word-oriented LFSR (paper Figure 1(b) machinery)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf2 import poly_from_string, primitive_polynomial
from repro.gf2m import GF2m
from repro.lfsr import WordLFSR, word_lfsr_period

F = GF2m(poly_from_string("1+z+z^4"))
PAPER_G = (1, 2, 2)

elements = st.integers(min_value=0, max_value=15)


class TestConstruction:
    def test_degree_zero_rejected(self):
        with pytest.raises(ValueError):
            WordLFSR(F, (1,), seed=())

    def test_zero_a0_rejected(self):
        with pytest.raises(ValueError):
            WordLFSR(F, (0, 2, 2), seed=(0, 1))

    def test_zero_ak_rejected(self):
        with pytest.raises(ValueError):
            WordLFSR(F, (1, 2, 0), seed=(0, 1))

    def test_coefficient_out_of_field(self):
        with pytest.raises(ValueError):
            WordLFSR(F, (1, 16, 2), seed=(0, 1))

    def test_seed_wrong_length(self):
        with pytest.raises(ValueError):
            WordLFSR(F, PAPER_G, seed=(0,))

    def test_seed_out_of_field(self):
        with pytest.raises(ValueError):
            WordLFSR(F, PAPER_G, seed=(0, 99))

    def test_properties(self):
        lfsr = WordLFSR(F, PAPER_G, seed=(0, 1))
        assert lfsr.k == 2
        assert lfsr.field is F
        assert lfsr.coeffs == PAPER_G
        assert lfsr.state == (0, 1)

    def test_repr_shows_generator(self):
        assert "1 + 2x + 2x^2" in repr(WordLFSR(F, PAPER_G, seed=(0, 1)))


class TestPaperTrace:
    """Figure 1(b): the WOM stream starts 0, 1, 2, 6, ..."""

    def test_figure_1b_prefix(self):
        lfsr = WordLFSR(F, PAPER_G, seed=(0, 1))
        assert lfsr.sequence(4) == [0, 1, 2, 6]

    def test_recurrence_multipliers(self):
        # s[t+2] = 2*s[t+1] + 2*s[t]: multiplier of s[t] is a_2/a_0 = 2.
        lfsr = WordLFSR(F, PAPER_G, seed=(0, 1))
        assert lfsr.recurrence_multipliers == (2, 2)

    def test_generator_irreducible(self):
        assert WordLFSR(F, PAPER_G, seed=(0, 1)).generator_is_irreducible()

    def test_period_255(self):
        lfsr = WordLFSR(F, PAPER_G, seed=(0, 1))
        assert lfsr.predicted_period() == 255
        assert lfsr.period() == 255

    def test_ring_closure(self):
        """After exactly 255 steps the state returns to Init -- the
        pseudo-ring property the whole paper is built on."""
        lfsr = WordLFSR(F, PAPER_G, seed=(0, 1))
        lfsr.run(255)
        assert lfsr.state == (0, 1)

    def test_no_early_closure(self):
        lfsr = WordLFSR(F, PAPER_G, seed=(0, 1))
        for _ in range(254):
            lfsr.step()
            assert lfsr.state != (0, 1)


class TestRecurrence:
    @given(elements, elements)
    def test_stream_satisfies_recurrence(self, s0, s1):
        lfsr = WordLFSR(F, PAPER_G, seed=(s0, s1))
        seq = lfsr.sequence(30)
        for t in range(len(seq) - 2):
            expected = F.add(F.mul(2, seq[t + 1]), F.mul(2, seq[t]))
            assert seq[t + 2] == expected

    def test_non_monic_a0(self):
        # g = 3 + x: s[t+1] = 3^{-1} * ... wait k=1: s[t+1] = (a_1/a_0)*s[t]
        lfsr = WordLFSR(F, (3, 1), seed=(1,))
        c = F.inv(3)
        assert lfsr.sequence(3) == [1, c, F.mul(c, c)]

    @given(elements, elements)
    def test_linearity_of_streams(self, a, b):
        """Streams from seeds a, b, a^b satisfy stream(a)^stream(b)=stream(a^b)."""
        sa = WordLFSR(F, PAPER_G, seed=(a, 1)).sequence(20)
        sb = WordLFSR(F, PAPER_G, seed=(b, 1)).sequence(20)
        sxor = WordLFSR(F, PAPER_G, seed=(a ^ b, 0)).sequence(20)
        assert [x ^ y for x, y in zip(sa, sb, strict=True)] == sxor

    def test_zero_seed_fixed(self):
        lfsr = WordLFSR(F, PAPER_G, seed=(0, 0))
        assert lfsr.sequence(5) == [0] * 5
        assert lfsr.period() == 0


class TestPeriods:
    def test_predicted_matches_measured_various_generators(self):
        for g in [(1, 1, 1), (1, 2, 2), (3, 1, 1), (1, 0, 1, 1)]:
            lfsr = WordLFSR(F, g, seed=(1,) + (0,) * (len(g) - 2))
            predicted = lfsr.predicted_period()
            measured = lfsr.period()
            # Measured divides predicted (equal when the seed is generic).
            assert predicted % measured == 0

    def test_word_lfsr_period_helper(self):
        assert word_lfsr_period(F, PAPER_G) == 255

    def test_gf8_field(self):
        f8 = GF2m(primitive_polynomial(3))
        lfsr = WordLFSR(f8, (1, 1, 1), seed=(0, 1))
        assert lfsr.predicted_period() == lfsr.period()


class TestUtilities:
    def test_reset(self):
        lfsr = WordLFSR(F, PAPER_G, seed=(0, 1))
        lfsr.run(10)
        lfsr.reset()
        assert lfsr.state == (0, 1)

    def test_copy_independent(self):
        lfsr = WordLFSR(F, PAPER_G, seed=(0, 1))
        clone = lfsr.copy()
        lfsr.run(5)
        assert clone.state == (0, 1)

    def test_next_word_does_not_advance(self):
        lfsr = WordLFSR(F, PAPER_G, seed=(0, 1))
        assert lfsr.next_word() == 2
        assert lfsr.state == (0, 1)

    def test_negative_sequence_rejected(self):
        with pytest.raises(ValueError):
            WordLFSR(F, PAPER_G, seed=(0, 1)).sequence(-2)

    def test_period_preserves_state(self):
        lfsr = WordLFSR(F, PAPER_G, seed=(0, 1))
        lfsr.run(7)
        before = lfsr.state
        lfsr.period()
        assert lfsr.state == before
