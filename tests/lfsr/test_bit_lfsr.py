"""Tests for the bit-oriented LFSR."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf2 import iter_primitive, primitive_polynomial
from repro.lfsr import BitLFSR, bit_lfsr_period


class TestConstruction:
    def test_degree_zero_rejected(self):
        with pytest.raises(ValueError):
            BitLFSR(1)

    def test_singular_poly_rejected(self):
        with pytest.raises(ValueError):
            BitLFSR(0b110)  # no constant term

    def test_unknown_form_rejected(self):
        with pytest.raises(ValueError):
            BitLFSR(0b111, form="lagged")

    def test_seed_from_bits(self):
        lfsr = BitLFSR(0b111, seed=[0, 1])
        assert lfsr.state == 0b10
        assert lfsr.state_bits == (0, 1)

    def test_seed_wrong_length(self):
        with pytest.raises(ValueError):
            BitLFSR(0b111, seed=[0, 1, 1])

    def test_seed_bad_bit(self):
        with pytest.raises(ValueError):
            BitLFSR(0b111, seed=[0, 2])

    def test_seed_out_of_range(self):
        with pytest.raises(ValueError):
            BitLFSR(0b111, seed=4)

    def test_seed_bad_type(self):
        with pytest.raises(TypeError):
            BitLFSR(0b111, seed="01")

    def test_repr(self):
        assert "x^2" in repr(BitLFSR(0b111))


class TestFibonacciSequence:
    def test_paper_bom_recurrence(self):
        """g = 1+x+x^2: s[t+2] = s[t+1] ^ s[t], the pi-test BOM recurrence."""
        lfsr = BitLFSR(0b111, seed=[0, 1])
        assert lfsr.sequence(9) == [0, 1, 1, 0, 1, 1, 0, 1, 1]

    def test_degree4_primitive_msequence(self):
        lfsr = BitLFSR(0b10011, seed=1)
        seq = lfsr.sequence(15)
        # m-sequence balance: 8 ones, 7 zeros per period for k=4
        assert seq.count(1) == 8
        assert seq.count(0) == 7

    def test_sequence_satisfies_recurrence(self):
        poly = 0b10011  # s[t+4] = s[t+3] ^ s[t]
        lfsr = BitLFSR(poly, seed=0b1011)
        seq = lfsr.sequence(40)
        for t in range(len(seq) - 4):
            assert seq[t + 4] == seq[t + 3] ^ seq[t]

    def test_zero_seed_fixed_point(self):
        lfsr = BitLFSR(0b10011, seed=0)
        assert lfsr.sequence(10) == [0] * 10

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            BitLFSR(0b111).sequence(-1)

    @given(st.integers(min_value=1, max_value=15))
    def test_state_window_equals_stream(self, seed):
        """Fibonacci state is a sliding window of the output stream."""
        lfsr = BitLFSR(0b10011, seed=seed)
        probe = BitLFSR(0b10011, seed=seed)
        stream = probe.sequence(30)
        for t in range(20):
            assert lfsr.state_bits == tuple(stream[t : t + 4])
            lfsr.step()


class TestPeriod:
    def test_primitive_period(self):
        assert BitLFSR(0b10011, seed=1).period() == 15

    def test_non_primitive_period(self):
        assert BitLFSR(0b11111, seed=1).period() == 5

    def test_zero_seed_period(self):
        assert BitLFSR(0b10011, seed=0).period() == 0

    def test_period_preserves_state(self):
        lfsr = BitLFSR(0b10011, seed=1)
        lfsr.run(3)
        before = lfsr.state
        lfsr.period()
        assert lfsr.state == before

    @pytest.mark.parametrize("m", [2, 3, 4, 5, 6, 7, 8])
    def test_all_primitives_maximal(self, m):
        for poly in iter_primitive(m):
            assert BitLFSR(poly, seed=1).period() == (1 << m) - 1

    @given(st.integers(min_value=1, max_value=255))
    def test_period_independent_of_seed_for_primitive(self, seed):
        lfsr = BitLFSR(primitive_polynomial(8), seed=seed)
        assert lfsr.period() == 255


class TestGaloisForm:
    def test_same_period_as_fibonacci(self):
        for poly in (0b111, 0b1011, 0b10011, 0b11111):
            fib = BitLFSR(poly, seed=1, form="fibonacci")
            gal = BitLFSR(poly, seed=1, form="galois")
            assert fib.period() == gal.period()

    def test_msequence_balance(self):
        seq = BitLFSR(0b10011, seed=1, form="galois").sequence(15)
        assert seq.count(1) == 8

    def test_galois_output_satisfies_recurrence(self):
        # Both forms realize the same characteristic polynomial, so the
        # output stream obeys the same linear recurrence.
        seq = BitLFSR(0b10011, seed=0b1001, form="galois").sequence(40)
        for t in range(len(seq) - 4):
            assert seq[t + 4] == seq[t + 3] ^ seq[t]


class TestUtilities:
    def test_reset(self):
        lfsr = BitLFSR(0b10011, seed=5)
        lfsr.run(7)
        lfsr.reset()
        assert lfsr.state == 5

    def test_copy_independent(self):
        lfsr = BitLFSR(0b10011, seed=5)
        clone = lfsr.copy()
        lfsr.run(3)
        assert clone.state == 5
        assert clone.poly == lfsr.poly

    def test_run_advances(self):
        a = BitLFSR(0b10011, seed=5)
        b = BitLFSR(0b10011, seed=5)
        a.run(6)
        b.sequence(6)
        assert a.state == b.state


class TestPredictedPeriod:
    def test_matches_measured_irreducible(self):
        for poly in (0b111, 0b1011, 0b10011, 0b11111):
            assert bit_lfsr_period(poly) == BitLFSR(poly, seed=1).period()

    def test_reducible_upper_bounds_all_seeds(self):
        # (x+1)(x^2+x+1) = x^3 + 1: predicted lcm(1, 3) = 3
        poly = 0b1001
        predicted = bit_lfsr_period(poly)
        for seed in range(1, 8):
            measured = BitLFSR(poly, seed=seed).period()
            assert predicted % measured == 0

    def test_repeated_factor(self):
        # (x^2+x+1)^2: order 3, multiplicity 2 -> period 6
        assert bit_lfsr_period(0b10101) == 6
        measured = BitLFSR(0b10101, seed=1).period()
        assert 6 % measured == 0

    def test_rejects_bad_polys(self):
        with pytest.raises(ValueError):
            bit_lfsr_period(1)
        with pytest.raises(ValueError):
            bit_lfsr_period(0b110)
