"""Tests for Berlekamp--Massey over GF(2) and GF(2^m)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2 import iter_primitive, poly_from_string
from repro.gf2m import GF2m
from repro.lfsr import (
    BitLFSR,
    WordLFSR,
    berlekamp_massey,
    berlekamp_massey_word,
    linear_complexity,
)

F16 = GF2m(poly_from_string("1+z+z^4"))


class TestBitBM:
    def test_paper_bom_stream(self):
        # s[t+2] = s[t+1] ^ s[t]: complexity 2, connection 1 + x + x^2
        length, poly = berlekamp_massey([0, 1, 1, 0, 1, 1, 0, 1, 1])
        assert (length, poly) == (2, 0b111)

    def test_zero_sequence(self):
        assert berlekamp_massey([0, 0, 0, 0]) == (0, 1)

    def test_single_one(self):
        length, _poly = berlekamp_massey([1])
        assert length == 1

    def test_period3_complexity(self):
        assert linear_complexity([1, 0, 0, 1, 0, 0, 1, 0, 0]) == 3

    def test_non_bit_rejected(self):
        with pytest.raises(ValueError):
            berlekamp_massey([0, 2])

    @pytest.mark.parametrize("m", [2, 3, 4, 5, 6])
    def test_recovers_primitive_lfsrs(self, m):
        """BM run on 2m bits of an m-stage maximal LFSR recovers exactly
        its length and feedback polynomial."""
        for poly in iter_primitive(m):
            stream = BitLFSR(poly, seed=1).sequence(2 * m + 4)
            length, connection = berlekamp_massey(stream)
            assert length == m
            # The connection polynomial's taps are the recurrence taps:
            # s[t] = sum poly_i s[t-i] <-> reciprocal relation to `poly`.
            # Verify the recurrence directly:
            for t in range(length, len(stream)):
                acc = 0
                for i in range(1, length + 1):
                    if (connection >> i) & 1:
                        acc ^= stream[t - i]
                assert stream[t] == acc

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=40))
    def test_connection_reproduces_sequence(self, bits):
        """Property: the returned LFSR really generates the sequence."""
        length, connection = berlekamp_massey(bits)
        for t in range(length, len(bits)):
            acc = 0
            for i in range(1, length + 1):
                if (connection >> i) & 1:
                    acc ^= bits[t - i]
            assert bits[t] == acc

    @settings(max_examples=40)
    @given(st.lists(st.integers(0, 1), min_size=1, max_size=30))
    def test_complexity_bounds(self, bits):
        length = linear_complexity(bits)
        assert 0 <= length <= len(bits)


class TestWordBM:
    def test_paper_wom_stream(self):
        stream = WordLFSR(F16, (1, 2, 2), seed=(0, 1)).sequence(12)
        length, connection = berlekamp_massey_word(F16, stream)
        assert length == 2
        # Recurrence: s[t] = c_1 s[t-1] + c_2 s[t-2] with c = (1, 2, 2)
        # normalized: s[t] = 2 s[t-1] + 2 s[t-2].
        assert connection == (1, 2, 2)

    def test_zero_sequence(self):
        assert berlekamp_massey_word(F16, [0, 0, 0]) == (0, (1,))

    def test_out_of_field_rejected(self):
        with pytest.raises(ValueError):
            berlekamp_massey_word(F16, [0, 16])

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 15), min_size=1, max_size=24))
    def test_connection_reproduces_sequence(self, words):
        length, connection = berlekamp_massey_word(F16, words)
        for t in range(length, len(words)):
            acc = 0
            for i in range(1, length + 1):
                if connection[i] and words[t - i]:
                    acc = F16.add(acc, F16.mul(connection[i], words[t - i]))
            assert words[t] == acc

    def test_degree1_geometric(self):
        # s[t] = 3 * s[t-1]
        stream = [1]
        for _ in range(8):
            stream.append(F16.mul(3, stream[-1]))
        length, connection = berlekamp_massey_word(F16, stream)
        assert length == 1
        assert connection == (1, 3)


class TestPiTestStreamComplexity:
    """The π-test background must have linear complexity exactly k --
    a structural invariant of the whole PRT construction."""

    def test_bom_background(self):
        from repro.memory import SinglePortRAM
        from repro.prt import PiIteration

        iteration = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))
        result = iteration.run(SinglePortRAM(28), record=True)
        assert linear_complexity(result.written_stream) == 3

    def test_wom_background(self):
        from repro.memory import SinglePortRAM
        from repro.prt import PiIteration

        iteration = PiIteration(field=F16, generator=(1, 2, 2), seed=(0, 1))
        result = iteration.run(SinglePortRAM(40, m=4), record=True)
        length, _ = berlekamp_massey_word(F16, result.written_stream)
        assert length == 2
