#!/usr/bin/env python
"""Intra-word faults in a word-oriented memory (the paper's claim C7).

A WOM cell is an m-bit word; coupling can happen *between bits of the same
word*, which word-level tests with uniform backgrounds never see.  The
paper proposes m parallel bit-slice π-tests with either parallel or
"random" (permuted) lane wiring.  This example injects an intra-word
coupling universe and compares the two wirings.

Run:  python examples/wom_intra_word.py
"""

from repro import BitSlicePiIteration
from repro.analysis import run_coverage
from repro.faults import intra_word_universe


def slice_runner(mode: str, wiring_seed: int, repeats: int = 3):
    """A runner performing several bit-slice iterations with distinct
    wirings (random mode re-programs the lane permutation per pass)."""

    def runner(ram) -> bool:
        for r in range(repeats):
            iteration = BitSlicePiIteration(
                m=ram.m, mode=mode,
                wiring_seed=wiring_seed + r if mode == "random" else 0,
            )
            if not iteration.run(ram).passed:
                return True
        return False

    return runner


def main() -> None:
    n, m = 21, 4
    universe = intra_word_universe(n, m, max_cells=n)
    print(f"memory: {n} words x {m} bits; intra-word universe: {universe!r}\n")

    for mode in ("parallel", "random"):
        report = run_coverage(
            slice_runner(mode, wiring_seed=1), universe, n, m=m,
            test_name=f"bit-slice/{mode}",
        )
        print(f"{mode:>9} wiring: overall {report.overall:.1%}")
        for fault_class, detected, total, ratio in report.rows():
            print(f"           {fault_class:>5}: {detected:>3}/{total:<3} {ratio:.0%}")

    print("\nthe permuted (\"random trajectory\") wiring routes each bit")
    print("slice through different source lanes, so aggressor and victim")
    print("bits land in different automata and the corruption de-")
    print("synchronizes the signature -- the paper's programmable-overhead")
    print("knob made concrete.")


if __name__ == "__main__":
    main()
