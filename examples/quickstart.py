#!/usr/bin/env python
"""Quickstart: pseudo-ring test a word-oriented RAM (the paper's Fig. 1b).

Builds the paper's running example -- GF(2^4) with modulus p(z) = 1+z+z^4,
generator g(x) = 1 + 2x + 2x^2 -- runs one π-test iteration on a healthy
255-word memory, shows the ring closing, then injects a stuck-at fault and
watches the test catch it.

Run:  python examples/quickstart.py
"""

from repro import GF2m, PiIteration, SinglePortRAM, poly_from_string
from repro.faults import FaultInjector, StuckAtFault


def main() -> None:
    # --- the paper's field and generator --------------------------------
    field = GF2m(poly_from_string("1+z+z^4"))
    pi = PiIteration(field=field, generator=(1, 2, 2), seed=(0, 1))
    print(f"virtual automaton: {pi!r}")
    print(f"LFSR period: {pi.period}  (primitive over GF(16): max = 255)")

    # --- healthy memory: the pseudo-ring closes -------------------------
    n = 255  # a multiple of the period, so Fin* == Init
    ram = SinglePortRAM(n, m=field.m)
    result = pi.run(ram, record=True)
    stream_prefix = ", ".join(format(v, "X") for v in result.written_stream[:6])
    print(f"\nhealthy {n}-word RAM")
    print(f"  written stream starts: {stream_prefix}, ...   (paper: 2, 6, ...)")
    print(f"  Init  = {result.init_state}")
    print(f"  Fin   = {result.final_state}")
    print(f"  Fin*  = {result.expected_final}")
    print(f"  ring closed: {result.ring_closed}   test passed: {result.passed}")
    print(f"  memory operations: {result.operations}  (= 3n + 4 = {3 * n + 4})")

    # --- faulty memory: a single stuck bit breaks the ring --------------
    # Pick a word whose fault-free background has bit 2 clear, so pinning
    # that bit to 1 is guaranteed to corrupt the stream (a single
    # iteration only excites faults its background disagrees with; the
    # 3-iteration schedules in repro.prt.schedule cover both polarities).
    background = pi.background_after(n)
    cell = next(c for c, v in enumerate(background) if not (v >> 2) & 1)
    faulty = SinglePortRAM(n, m=field.m)
    injector = FaultInjector([StuckAtFault(cell=cell, value=1, bit=2)])
    injector.install(faulty)
    result = pi.run(faulty)
    print(f"\nsame test, SA1 on bit 2 of word {cell}")
    print(f"  Fin   = {result.final_state}")
    print(f"  Fin*  = {result.expected_final}")
    print(f"  test passed: {result.passed}   (the recurrence carried the "
          f"error into the signature)")


if __name__ == "__main__":
    main()
