#!/usr/bin/env python
"""Fault localization with the recorded π-test stream.

Because the expected test-data background is known a priori, the first
diverging write of a recorded π-iteration pinpoints the reads that fed it:
a suspect set of k+1 cells around the physical fault.  Combined with the
ring-sizing helper (pick a generator whose period divides the array size)
this shows the "mobility" of PRT experiments the paper's conclusion
advertises.

Run:  python examples/fault_diagnosis.py
"""

import random

from repro import PiIteration, SinglePortRAM
from repro.faults import FaultInjector, StuckAtFault, TransitionFault
from repro.prt import diagnose_iteration, ring_aligned_generators
from repro.prt.pi_test import GF2


def main() -> None:
    n = 21

    # --- pick a ring-aligned generator for this memory size -------------
    candidates = ring_aligned_generators(GF2, n, k=3)
    generator, period = candidates[0]
    print(f"memory: {n} cells; ring-aligned degree-3 generators: {candidates}")
    print(f"using g = {generator} (period {period}; {n} = {n // period} rings)\n")
    iteration = PiIteration(generator=generator, seed=(0, 0, 1))

    # --- inject random faults and localize them --------------------------
    rng = random.Random(7)
    background = iteration.background_after(n)
    hits = 0
    trials = 8
    for _ in range(trials):
        cell = rng.randrange(3, n)  # skip the seed cells for activation
        if rng.random() < 0.5:
            fault = StuckAtFault(cell, background[cell] ^ 1)
        else:
            # Blocked transition in the direction the background exercises.
            fault = TransitionFault(cell, rising=background[cell] == 1)
        ram = SinglePortRAM(n)
        injector = FaultInjector([fault])
        injector.install(ram)
        report = diagnose_iteration(iteration, ram)
        injector.remove(ram)
        located = report.detected and cell in report.suspect_cells
        hits += located
        print(f"  {fault.name:<28} -> suspects {report.suspect_cells} "
              f"{'[LOCATED]' if located else '[escaped]'}")

    print(f"\nlocated {hits}/{trials} injected faults inside a "
          f"{len(report.suspect_cells)}-cell suspect window "
          f"(vs {n} cells to probe blindly)")


if __name__ == "__main__":
    main()
