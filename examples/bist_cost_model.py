#!/usr/bin/env python
"""BIST hardware-cost model: the paper's < 2^-20 overhead claim (C5).

Prices the PRT additions -- address-register-to-counter conversion, the
constant-multiplier XOR networks (synthesized and optimized by this
library), the window register and comparator -- in transistors, normalized
to a 6T SRAM array, and sweeps the memory capacity to find where the ratio
crosses the paper's 2^-20 bound.

Run:  python examples/bist_cost_model.py
"""

from repro import BistOverheadModel, GF2m, poly_from_string
from repro.gf2m import constant_multiplier_matrix, synthesize_greedy, synthesize_naive


def main() -> None:
    field = GF2m(poly_from_string("1+z+z^4"))
    model = BistOverheadModel(field, (1, 2, 2), ports=2)

    print("constant-multiplier synthesis (claim C6):")
    for constant in (2, 9):  # the recurrence multipliers a_0^{-1} a_{k-j}
        matrix = constant_multiplier_matrix(field, constant)
        naive = synthesize_naive(matrix)
        greedy = synthesize_greedy(matrix)
        print(f"  x -> {constant:X}*x : naive {naive.gate_count} XORs, "
              f"optimized {greedy.gate_count} XORs, depth {greedy.depth}")

    print("\nBIST additions (2-port WOM, g = 1 + 2x + 2x^2):")
    print(f"  multiplier XORs : {model.multiplier_xor_gates()}")
    print(f"  adder XORs      : {model.adder_xor_gates()}")
    print(f"  comparator gates: {model.comparator_gates()}")
    print(f"  window register : {model.state_register_bits()} bits")

    print(f"\n{'capacity':>12} {'BIST T':>8} {'memory T':>14} "
          f"{'ratio':>12} {'< 2^-20':>8}")
    for log2n in (10, 14, 18, 22, 26, 30):
        n = 1 << log2n
        report = model.report(n)
        ratio = report["overhead_ratio"]
        print(f"  2^{log2n:<2} words {report['bist_transistors']:>8} "
              f"{report['memory_transistors']:>14} {ratio:>12.3e} "
              f"{'yes' if ratio < 2**-20 else 'no':>8}")

    crossover = model.crossover_capacity()
    print(f"\nthe ratio crosses 2^-20 at n = {crossover} = 2^"
          f"{crossover.bit_length() - 1} words -- the paper's '< 2^-20'")
    print("holds for large memories, with the counter term growing only")
    print("logarithmically.")


if __name__ == "__main__":
    main()
