#!/usr/bin/env python
"""Dual- and quad-port PRT: the paper's §4 / Figure 2 schemes.

A two-port RAM issues both reads of a π-test sub-iteration in one cycle,
so an iteration takes 2n cycles instead of 3n; the quad-port multi-LFSR
scheme runs two automata over the two array halves concurrently and
finishes in n cycles.  This example measures all three on the simulator
and prints the speedup series.

Run:  python examples/dual_port_speedup.py
"""

from repro import (
    DualPortPiIteration,
    DualPortRAM,
    PiIteration,
    QuadPortPiIteration,
    QuadPortRAM,
    SinglePortRAM,
)


def measure(n: int) -> tuple[int, int, int]:
    """Cycles for one π-iteration on 1-, 2- and 4-port memories of size n."""
    sp = SinglePortRAM(n)
    PiIteration(seed=(0, 1)).run(sp)

    dp = DualPortRAM(n)
    DualPortPiIteration(seed=(0, 1)).run(dp)

    qp = QuadPortRAM(n)
    QuadPortPiIteration(seed=(0, 1)).run(qp)

    return sp.stats.cycles, dp.stats.cycles, qp.stats.cycles


def main() -> None:
    print(f"{'n':>7} {'1-port':>9} {'2-port':>9} {'4-port':>9} "
          f"{'2P speedup':>11} {'4P speedup':>11}")
    for n in (64, 256, 1024, 4096):
        sp, dp, qp = measure(n)
        print(f"{n:>7} {sp:>9} {dp:>9} {qp:>9} "
              f"{sp / dp:>11.3f} {sp / qp:>11.3f}")
    print("\npaper: 3n single-port vs 2n dual-port -> speedup 1.5x;")
    print("quad-port multi-LFSR halves that again -> 3x.")

    # Both port schemes detect the same faults the single-port test does.
    # Choose a cell whose fault-free background is 1, so a blocked rising
    # transition is guaranteed to corrupt the stream.
    from repro.faults import FaultInjector, TransitionFault

    n = 255
    probe = SinglePortRAM(n)
    single = PiIteration(seed=(0, 1))
    single.run(probe)
    cell = probe.dump().index(1, 10)
    ram = DualPortRAM(n)
    FaultInjector([TransitionFault(cell, rising=True)]).install(ram)
    result = DualPortPiIteration(seed=(0, 1)).run(ram)
    print(f"\nTF-up @ cell {cell} on the 2-port scheme: "
          f"detected = {not result.passed}")


if __name__ == "__main__":
    main()
