#!/usr/bin/env python
"""Fault-coverage study: pure vs verifying PRT vs the March family.

Reproduces the heart of the paper's evaluation on a small memory:

1. build the standard single-fault universe (stuck-at, transition,
   stuck-open, coupling, bridging, address-decoder faults),
2. run the paper's pure 3-iteration π-test, the verifying variant, the
   5-iteration extended schedule, and three March baselines,
3. print per-class coverage and cost for each.

Run:  python examples/fault_coverage_study.py
"""

import time

from repro import extended_schedule, standard_schedule
from repro.analysis import (
    compare_tests,
    march_operations,
    march_runner,
    run_coverage,
    schedule_runner,
)
from repro.faults import single_cell_universe, standard_universe
from repro.march.library import MARCH_B, MARCH_C_MINUS, MATS_PLUS


def main() -> None:
    n = 28  # multiple of the default generator's period 7
    universe = standard_universe(n)
    print(f"memory: {n} cells (bit-oriented); universe: {universe!r}\n")

    pure = standard_schedule(n=n, verify=False)
    verifying = standard_schedule(n=n, verify=True)
    extended = extended_schedule(n=n, verify=True)

    rows = compare_tests(
        [
            ("PRT-3 pure", schedule_runner(pure), pure.operation_count(n)),
            ("PRT-3 verify", schedule_runner(verifying),
             verifying.operation_count(n)),
            ("PRT-5 extended", schedule_runner(extended),
             extended.operation_count(n)),
            ("MATS+", march_runner(MATS_PLUS),
             march_operations(MATS_PLUS, n)),
            ("March C-", march_runner(MARCH_C_MINUS),
             march_operations(MARCH_C_MINUS, n)),
            ("March B", march_runner(MARCH_B), march_operations(MARCH_B, n)),
        ],
        universe, n,
    )

    classes = rows[0].report.classes
    header = f"{'test':>15} {'ops/cell':>9} {'overall':>8}"
    for c in classes:
        header += f" {c:>6}"
    print(header)
    for row in rows:
        line = f"{row.name:>15} {row.ops_per_cell:>9.1f} {row.overall:>8.1%}"
        for c in classes:
            line += f" {row.coverage(c):>6.0%}"
        print(line)

    print("\nreading the table:")
    print(" - the paper's pure signature-only PRT (9n) trades coverage for")
    print("   speed: corruption landing after a cell's final sweep read is")
    print("   overwritten unobserved;")
    print(" - transparent verification (12n) closes the single-cell, decoder")
    print("   and bridging classes completely at 3 iterations (claim C3);")
    print(" - the CFid remainder needs more activation diversity: the")
    print("   5-iteration extension (20n) approaches March B territory.")

    engine_comparison()


def engine_comparison(n: int = 512) -> None:
    """Time the same campaign on the per-fault and bit-packed engines.

    The single-cell SAF/TF universe is the batched engine's best case:
    every fault is mask-expressible, so the whole campaign is two replay
    passes (one per class) instead of one replay per fault.
    """
    universe = single_cell_universe(n, classes=("SAF", "TF"))
    runner = march_runner(MARCH_C_MINUS)
    print(f"\nengine comparison -- March C-, {len(universe)} single-cell "
          f"faults, n={n}:")
    reports, timings = {}, {}
    for engine in ("compiled", "batched"):
        start = time.perf_counter()
        reports[engine] = run_coverage(runner, universe, n, engine=engine)
        timings[engine] = time.perf_counter() - start
        print(f"  engine={engine!r:<12} {timings[engine]:7.3f}s  "
              f"coverage={reports[engine].overall:.1%}")
    assert reports["compiled"].overall == reports["batched"].overall
    print(f"  batched speedup: x{timings['compiled'] / timings['batched']:.0f}"
          f"  (identical coverage report)")


if __name__ == "__main__":
    main()
