"""Bit-oriented linear feedback shift registers.

The recurrence convention matches the paper's π-test: a feedback polynomial
``g(x) = a_0 + a_1 x + ... + a_k x^k`` (bit-mask encoded, ``a_0 = a_k = 1``)
defines the output stream

    s[t+k] = a_1 s[t+k-1] XOR a_2 s[t+k-2] XOR ... XOR a_k s[t]

so for the degree-2 polynomial ``g(x) = 1 + x + x^2`` the recurrence is
``s[t+2] = s[t+1] XOR s[t]`` -- exactly the paper's sub-iteration
``w_{i+2} = r_i XOR r_{i+1}`` for the bit-oriented memory.

Two hardware forms are provided:

* *Fibonacci* (external XOR): the state window is k consecutive stream bits,
  which is precisely how the pseudo-ring test lays the automaton into
  memory cells;
* *Galois* (internal XOR): the common BIST implementation; same period and
  same set of sequences, different state encoding.
"""

from __future__ import annotations

from repro.gf2.poly import degree, poly_to_string

__all__ = ["BitLFSR"]


class BitLFSR:
    """A bit-oriented LFSR.

    Parameters
    ----------
    poly:
        Feedback polynomial, bit-mask encoded (bit i = coefficient of x^i).
        Must have degree >= 1 and a non-zero constant term (``a_0 = 1``),
        otherwise the automaton is singular (not invertible).
    seed:
        Initial state: either an int whose low k bits are
        ``s[0] .. s[k-1]`` (bit i = s[i]) or an iterable of k bits.
    form:
        ``"fibonacci"`` (default) or ``"galois"``.

    Examples
    --------
    >>> lfsr = BitLFSR(0b111, seed=0b10)       # g = 1+x+x^2, s0=0, s1=1
    >>> lfsr.sequence(8)
    [0, 1, 1, 0, 1, 1, 0, 1]
    >>> BitLFSR(0b10011, seed=1).period()      # primitive degree 4 -> 15
    15
    """

    def __init__(self, poly: int, seed: int | list[int] | tuple[int, ...] = 1,
                 form: str = "fibonacci"):
        k = degree(poly)
        if k < 1:
            raise ValueError(
                f"feedback polynomial must have degree >= 1, "
                f"got {poly_to_string(poly)}"
            )
        if poly & 1 == 0:
            raise ValueError(
                "feedback polynomial needs a non-zero constant term "
                "(a singular LFSR loses state)"
            )
        if form not in ("fibonacci", "galois"):
            raise ValueError(f"unknown LFSR form {form!r}")
        self._poly = poly
        self._k = k
        self._form = form
        self._state = self._normalize_seed(seed)
        self._initial_state = self._state
        # Fibonacci recurrence taps: s[t+k] = XOR of s[t+j] where a_{k-j} = 1.
        self._tap_mask = 0
        for j in range(k):
            if (poly >> (k - j)) & 1:
                self._tap_mask |= 1 << j

    def _normalize_seed(self, seed: int | list[int] | tuple[int, ...]) -> int:
        if isinstance(seed, (list, tuple)):
            if len(seed) != self._k:
                raise ValueError(
                    f"seed needs exactly {self._k} bits, got {len(seed)}"
                )
            value = 0
            for i, bit in enumerate(seed):
                if bit not in (0, 1):
                    raise ValueError(f"seed bit {bit!r} is not 0/1")
                value |= bit << i
            return value
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise TypeError(f"seed must be int or bit sequence, got {seed!r}")
        if not 0 <= seed < (1 << self._k):
            raise ValueError(
                f"seed {seed} out of range for a {self._k}-stage register"
            )
        return seed

    # -- introspection ---------------------------------------------------------

    @property
    def poly(self) -> int:
        """Feedback polynomial (bit-mask)."""
        return self._poly

    @property
    def k(self) -> int:
        """Number of register stages (degree of the polynomial)."""
        return self._k

    @property
    def form(self) -> str:
        """``"fibonacci"`` or ``"galois"``."""
        return self._form

    @property
    def state(self) -> int:
        """Current state as an int (bit i = stage i)."""
        return self._state

    @property
    def state_bits(self) -> tuple[int, ...]:
        """Current state as a bit tuple ``(s[t], ..., s[t+k-1])``."""
        return tuple((self._state >> i) & 1 for i in range(self._k))

    def __repr__(self) -> str:
        return (
            f"BitLFSR(poly={poly_to_string(self._poly)!r}, "
            f"state={self._state:#0{self._k + 2}b}, form={self._form!r})"
        )

    # -- stepping --------------------------------------------------------------

    def step(self) -> int:
        """Advance one step and return the output bit.

        Fibonacci form: output ``s[t]``, shift in the new recurrence bit.
        Galois form: output the low bit, conditionally XOR the taps in.
        """
        if self._form == "fibonacci":
            out = self._state & 1
            feedback = bin(self._state & self._tap_mask).count("1") & 1
            self._state = (self._state >> 1) | (feedback << (self._k - 1))
            return out
        out = self._state & 1
        self._state >>= 1
        if out:
            self._state ^= self._poly >> 1
        return out

    def sequence(self, n: int) -> list[int]:
        """The next ``n`` output bits (advances the register).

        >>> BitLFSR(0b111, seed=0b10).sequence(6)
        [0, 1, 1, 0, 1, 1]
        """
        if n < 0:
            raise ValueError("sequence length must be non-negative")
        return [self.step() for _ in range(n)]

    def run(self, n: int) -> None:
        """Advance ``n`` steps, discarding output."""
        for _ in range(n):
            self.step()

    def reset(self) -> None:
        """Restore the seed state."""
        self._state = self._initial_state

    def period(self, bound: int | None = None) -> int:
        """Measured period of the state cycle from the current seed.

        Returns 0 for the all-zero seed (fixed point).  ``bound`` defaults
        to ``2**k`` (the state-space size, always sufficient).
        """
        if self._initial_state == 0:
            return 0
        if bound is None:
            bound = 1 << self._k
        saved = self._state
        self._state = self._initial_state
        try:
            for t in range(1, bound + 1):
                self.step()
                if self._state == self._initial_state:
                    return t
            raise AssertionError(  # pragma: no cover - bound always suffices
                "LFSR state did not recur within the state-space bound"
            )
        finally:
            self._state = saved

    def copy(self) -> BitLFSR:
        """Independent copy with the same polynomial, state and form."""
        clone = BitLFSR(self._poly, seed=self._initial_state, form=self._form)
        clone._state = self._state
        return clone
