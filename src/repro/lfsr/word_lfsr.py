"""Word-oriented LFSR over GF(2^m) -- the paper's WOM virtual automaton.

A word LFSR is defined by a generator polynomial with field coefficients,

    g(x) = a_0 + a_1 x + ... + a_k x^k,     a_i in GF(2^m), a_0, a_k != 0,

and produces the recurrence (the paper's convention, verified against the
Figure 1(b) trace ``0, 1, 2, 6, ...``):

    s[t+k] = a_0^{-1} * (a_1 s[t+k-1] + a_2 s[t+k-2] + ... + a_k s[t])

For the running example ``g(x) = 1 + 2x + 2x^2`` over GF(2^4) with modulus
``p(z) = 1 + z + z^4`` this gives ``s[t+2] = 2 s[t+1] + 2 s[t]``, whose
stream from seed ``(0, 1)`` begins ``0, 1, 2, 6, 8, F, ...`` and has period
255 (g is primitive over GF(16)).

Each coefficient multiplication is a constant multiplier -- a pure XOR
network (see :mod:`repro.gf2m.xor_synth`) -- which is what lets the paper
bury the word automaton in the memory periphery.
"""

from __future__ import annotations

from repro.gf2m.field import GF2m
from repro.gf2m.poly_ext import (
    wpoly,
    wpoly_is_irreducible,
    wpoly_to_string,
    wpoly_x_pow_order,
)

__all__ = ["WordLFSR"]


class WordLFSR:
    """A word-oriented LFSR over GF(2^m).

    Parameters
    ----------
    field:
        The coefficient field GF(2^m).
    coeffs:
        Generator polynomial ``(a_0, a_1, ..., a_k)`` low-degree first.
        ``a_0`` and ``a_k`` must be non-zero (otherwise the automaton is
        singular / the degree is not k).
    seed:
        Initial state ``(s[0], ..., s[k-1])`` of k field elements.

    Examples
    --------
    >>> from repro.gf2 import poly_from_string
    >>> from repro.gf2m import GF2m
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> lfsr = WordLFSR(F, (1, 2, 2), seed=(0, 1))
    >>> lfsr.sequence(6)
    [0, 1, 2, 6, 8, 15]
    >>> lfsr.predicted_period()
    255
    """

    def __init__(self, field: GF2m, coeffs: tuple[int, ...] | list[int],
                 seed: tuple[int, ...] | list[int]):
        coeffs = tuple(coeffs)
        if len(coeffs) < 2:
            raise ValueError("generator polynomial must have degree >= 1")
        if coeffs[0] == 0 or coeffs[-1] == 0:
            raise ValueError(
                "a_0 and a_k must be non-zero for an invertible automaton"
            )
        for i, a in enumerate(coeffs):
            if a not in field:
                raise ValueError(f"coefficient a_{i}={a} is not in GF(2^{field.m})")
        self._field = field
        self._coeffs = coeffs
        self._k = len(coeffs) - 1
        seed = tuple(seed)
        if len(seed) != self._k:
            raise ValueError(
                f"seed needs exactly {self._k} words, got {len(seed)}"
            )
        for i, s in enumerate(seed):
            if s not in field:
                raise ValueError(f"seed word s_{i}={s} is not in GF(2^{field.m})")
        self._state: tuple[int, ...] = seed
        self._initial_state = seed
        # Recurrence multipliers: s[t+k] = sum_j mult[j] * s[t+j], where
        # mult[j] = a_0^{-1} * a_{k-j}.
        inv_a0 = field.inv(coeffs[0])
        self._mult = tuple(
            field.mul(inv_a0, coeffs[self._k - j]) for j in range(self._k)
        )

    # -- introspection ---------------------------------------------------------

    @property
    def field(self) -> GF2m:
        """The coefficient field."""
        return self._field

    @property
    def coeffs(self) -> tuple[int, ...]:
        """Generator polynomial coefficients ``(a_0, ..., a_k)``."""
        return self._coeffs

    @property
    def k(self) -> int:
        """Number of register stages (degree of g)."""
        return self._k

    @property
    def state(self) -> tuple[int, ...]:
        """Current state window ``(s[t], ..., s[t+k-1])``."""
        return self._state

    @property
    def recurrence_multipliers(self) -> tuple[int, ...]:
        """The constants ``a_0^{-1} a_{k-j}`` multiplying ``s[t+j]``.

        These are the XOR-network multipliers a hardware PRT implementation
        instantiates (claim C6).
        """
        return self._mult

    def __repr__(self) -> str:
        return (
            f"WordLFSR(GF(2^{self._field.m}), "
            f"g={wpoly_to_string(wpoly(self._coeffs))!r}, state={self._state})"
        )

    # -- stepping --------------------------------------------------------------

    def next_word(self) -> int:
        """The recurrence value ``s[t+k]`` for the current window (no step)."""
        field = self._field
        acc = 0
        for mult, s in zip(self._mult, self._state, strict=True):
            if mult and s:
                acc = field.add(acc, field.mul(mult, s))
        return acc

    def step(self) -> int:
        """Advance one step, returning the outgoing word ``s[t]``."""
        out = self._state[0]
        self._state = self._state[1:] + (self.next_word(),)
        return out

    def sequence(self, n: int) -> list[int]:
        """The next ``n`` stream words (advances the register)."""
        if n < 0:
            raise ValueError("sequence length must be non-negative")
        return [self.step() for _ in range(n)]

    def run(self, n: int) -> None:
        """Advance ``n`` steps, discarding output."""
        for _ in range(n):
            self.step()

    def reset(self) -> None:
        """Restore the seed state."""
        self._state = self._initial_state

    def copy(self) -> WordLFSR:
        """Independent copy with the same parameters and current state."""
        clone = WordLFSR(self._field, self._coeffs, self._initial_state)
        clone._state = self._state
        return clone

    # -- algebra ---------------------------------------------------------------

    def generator_is_irreducible(self) -> bool:
        """True when g(x) is irreducible over GF(2^m) (the paper's setting)."""
        return wpoly_is_irreducible(self._field, wpoly(self._coeffs))

    def predicted_period(self) -> int:
        """Algebraic state-cycle period: the order of ``x`` modulo ``g``.

        For irreducible ``g`` this divides ``(2^m)^k - 1``; the pseudo-ring
        closes (``Fin == Init``) exactly when the memory pass length is a
        multiple of this value.
        """
        return wpoly_x_pow_order(self._field, wpoly(self._coeffs))

    def period(self, bound: int | None = None) -> int:
        """Measured period from the seed state (0 for the all-zero seed)."""
        if all(s == 0 for s in self._initial_state):
            return 0
        if bound is None:
            bound = self._field.size**self._k
        saved = self._state
        self._state = self._initial_state
        try:
            for t in range(1, bound + 1):
                self.step()
                if self._state == self._initial_state:
                    return t
            raise AssertionError(  # pragma: no cover - bound always suffices
                "word LFSR state did not recur within the state-space bound"
            )
        finally:
            self._state = saved
