"""Period prediction and measurement for LFSRs.

The pseudo-ring property -- the virtual automaton returning to its initial
state after one pass of the memory -- holds exactly when the number of
automaton steps is a multiple of the state-cycle period.  These helpers
predict that period algebraically and cross-check it by direct simulation.

For a bit LFSR with feedback polynomial ``f``:

* ``f`` irreducible: every non-zero state lies on one cycle of length
  ``ord(x mod f)`` (equal to ``2^k - 1`` iff ``f`` is primitive);
* ``f = prod f_i^{e_i}``: the generic (maximal) cycle length is
  ``lcm_i(ord(x mod f_i)) * 2^ceil(log2(max e_i))``.
"""

from __future__ import annotations

import math

from repro.gf2.factor import factorize
from repro.gf2.irreducible import is_primitive, order_of_x
from repro.gf2.poly import degree
from repro.gf2m.field import GF2m
from repro.gf2m.poly_ext import wpoly, wpoly_x_pow_order

__all__ = [
    "measure_period",
    "bit_lfsr_period",
    "word_lfsr_period",
    "is_maximal_length",
]


def measure_period(stepper, initial_state, bound: int) -> int:
    """Generic cycle measurement.

    ``stepper`` is called repeatedly with no arguments and must advance some
    stateful object; ``initial_state`` is compared (by ``==``) against a
    ``state()`` callable attribute... to stay simple we accept a pair:
    ``stepper()`` advances and returns the *new* state.  The period is the
    first ``t >= 1`` with state == initial_state; raises if not found
    within ``bound`` steps.

    >>> state = [0]
    >>> def step():
    ...     state[0] = (state[0] + 1) % 5
    ...     return state[0]
    >>> measure_period(step, 0, 10)
    5
    """
    for t in range(1, bound + 1):
        if stepper() == initial_state:
            return t
    raise ValueError(f"no recurrence within {bound} steps")


def bit_lfsr_period(poly: int) -> int:
    """Predicted maximal state-cycle length for feedback polynomial ``poly``.

    For an irreducible polynomial this is the order of ``x``; for a product
    it is the lcm of factor orders times the smallest power of two covering
    the largest multiplicity.  (States on shorter sub-cycles exist for
    reducible polynomials; this is the generic cycle a random non-zero seed
    lands on, and an upper bound for all seeds.)

    >>> bit_lfsr_period(0b10011)     # primitive, degree 4
    15
    >>> bit_lfsr_period(0b11111)     # irreducible non-primitive, degree 4
    5
    """
    if degree(poly) < 1:
        raise ValueError("feedback polynomial must have degree >= 1")
    if poly & 1 == 0:
        raise ValueError("feedback polynomial needs a non-zero constant term")
    factors = factorize(poly)
    period = 1
    max_multiplicity = 1
    for factor, multiplicity in factors.items():
        period = math.lcm(period, order_of_x(factor))
        max_multiplicity = max(max_multiplicity, multiplicity)
    power_of_two = 1
    while power_of_two < max_multiplicity:
        power_of_two <<= 1
    return period * power_of_two


def word_lfsr_period(field: GF2m, coeffs: tuple[int, ...] | list[int]) -> int:
    """Predicted period of a word LFSR: order of ``x`` modulo ``g``.

    >>> from repro.gf2 import poly_from_string
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> word_lfsr_period(F, (1, 2, 2))   # the paper's WOM example
    255
    """
    return wpoly_x_pow_order(field, wpoly(coeffs))


def is_maximal_length(poly: int) -> bool:
    """True when the bit LFSR with this polynomial is maximal-length
    (i.e. the polynomial is primitive: period ``2^k - 1``).

    >>> is_maximal_length(0b10011)
    True
    >>> is_maximal_length(0b11111)
    False
    """
    return is_primitive(poly)
