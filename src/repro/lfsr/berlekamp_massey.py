"""Berlekamp--Massey: shortest LFSR for a given sequence.

Given a bit sequence, find the shortest LFSR (its length and feedback
polynomial) that generates it.  Two uses in this library:

* *validation* -- the test-data background a π-iteration lays into memory
  must have linear complexity exactly k (the virtual automaton's stage
  count); anything else means the engine's recurrence is wrong;
* *analysis* -- the linear complexity of an observed (possibly corrupted)
  background reveals whether a fault disturbed the stream structure, a
  diagnostic PRT gets for free.

The word-oriented generalization runs the same algorithm over GF(2^m)
using the field arithmetic.
"""

from __future__ import annotations

from repro.gf2m.field import GF2m

__all__ = ["berlekamp_massey", "berlekamp_massey_word", "linear_complexity"]


def berlekamp_massey(bits: list[int] | tuple[int, ...]) -> tuple[int, int]:
    """Shortest bit LFSR generating ``bits``.

    Returns ``(L, poly)``: the linear complexity ``L`` and the feedback
    polynomial (bit-mask, degree <= L, constant term 1) such that

        s[t] = sum_{i=1..L} poly_i * s[t-i]   for t >= L.

    >>> berlekamp_massey([0, 1, 1, 0, 1, 1, 0, 1, 1])   # s[t+2]=s[t+1]^s[t]
    (2, 7)
    >>> berlekamp_massey([0, 0, 0])
    (0, 1)
    """
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"sequence element {b!r} is not a bit")
    n = len(bits)
    c = 1  # current connection polynomial C(x), bit i = coeff of x^i
    b = 1  # previous C before last length change
    length = 0
    m = -1  # index of last length change
    for t in range(n):
        # discrepancy: s_t + sum_{i=1..L} c_i s_{t-i}
        d = bits[t]
        for i in range(1, length + 1):
            if (c >> i) & 1:
                d ^= bits[t - i]
        if d == 0:
            continue
        previous_c = c
        c ^= b << (t - m)
        if 2 * length <= t:
            length = t + 1 - length
            m = t
            b = previous_c
    return length, c


def berlekamp_massey_word(field: GF2m,
                          words: list[int] | tuple[int, ...]) -> tuple[int, tuple[int, ...]]:
    """Shortest word LFSR over GF(2^m) generating ``words``.

    Returns ``(L, connection)`` where ``connection`` is the tuple
    ``(1, c_1, ..., c_L)`` with

        s[t] = -(c_1 s[t-1] + ... + c_L s[t-L])  (minus = plus in char 2).

    >>> from repro.gf2 import poly_from_string
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> stream = [0, 1, 2, 6, 8, 15, 14, 2, 11, 1]   # the paper's Fig 1b
    >>> L, conn = berlekamp_massey_word(F, stream)
    >>> L
    2
    """
    for w in words:
        if w not in field:
            raise ValueError(f"sequence element {w!r} is not in GF(2^{field.m})")
    n = len(words)
    c = [1] + [0] * n  # connection polynomial coefficients
    b = [1] + [0] * n
    length = 0
    m = 1
    delta_b = 1  # discrepancy at the last length change
    for t in range(n):
        # discrepancy
        d = words[t]
        for i in range(1, length + 1):
            if c[i] and words[t - i]:
                d = field.add(d, field.mul(c[i], words[t - i]))
        if d == 0:
            m += 1
            continue
        if 2 * length <= t:
            previous_c = list(c)
            coef = field.mul(d, field.inv(delta_b))
            for i in range(0, n - m + 1):
                if b[i]:
                    c[i + m] = field.add(c[i + m], field.mul(coef, b[i]))
            length = t + 1 - length
            b = previous_c
            delta_b = d
            m = 1
        else:
            coef = field.mul(d, field.inv(delta_b))
            for i in range(0, n - m + 1):
                if b[i]:
                    c[i + m] = field.add(c[i + m], field.mul(coef, b[i]))
            m += 1
    return length, tuple(c[: length + 1])


def linear_complexity(bits: list[int] | tuple[int, ...]) -> int:
    """Linear complexity of a bit sequence (the L of Berlekamp--Massey).

    >>> linear_complexity([1, 0, 0, 1, 0, 0, 1, 0, 0])
    3
    """
    return berlekamp_massey(bits)[0]
