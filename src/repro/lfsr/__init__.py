"""Linear feedback shift registers, bit- and word-oriented.

The pseudo-ring test emulates an LFSR *in the memory array itself*: each
π-test sub-iteration advances a "virtual" LFSR whose state lives in k
neighbouring memory cells.  This subpackage provides the reference automata
that the memory-resident emulation is checked against:

* :class:`repro.lfsr.bit_lfsr.BitLFSR` -- bit-oriented LFSR (the paper's
  BOM case, one bit per stage), in both Fibonacci (external XOR) and Galois
  (internal XOR) forms,
* :class:`repro.lfsr.word_lfsr.WordLFSR` -- word-oriented LFSR over
  GF(2^m) (the paper's WOM case, one m-bit word per stage), defined by a
  generator polynomial ``g(x)`` with field coefficients,
* :mod:`repro.lfsr.period` -- measured and algebraically predicted periods;
  the pseudo-ring property ("automaton returns to the initial state") holds
  exactly when the array length is a multiple of the period.
"""

from repro.lfsr.bit_lfsr import BitLFSR
from repro.lfsr.word_lfsr import WordLFSR
from repro.lfsr.period import (
    measure_period,
    bit_lfsr_period,
    word_lfsr_period,
    is_maximal_length,
)
from repro.lfsr.berlekamp_massey import (
    berlekamp_massey,
    berlekamp_massey_word,
    linear_complexity,
)

__all__ = [
    "BitLFSR",
    "WordLFSR",
    "measure_period",
    "bit_lfsr_period",
    "word_lfsr_period",
    "is_maximal_length",
    "berlekamp_massey",
    "berlekamp_massey_word",
    "linear_complexity",
]
