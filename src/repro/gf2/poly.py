"""Core ring operations for polynomials over GF(2).

A polynomial is a non-negative :class:`int`: bit ``i`` is the coefficient of
``x**i``.  The zero polynomial is ``0`` and has degree ``-1`` by convention
(see :func:`degree`).

All functions are pure and operate on plain integers so they compose freely
with the rest of the library.  Parsing/formatting helpers accept the
human-readable notation used by the paper, e.g. ``"1+z+z^4"`` for
``p(z) = 1 + z + z^4``.
"""

from __future__ import annotations

import re

__all__ = [
    "PolyParseError",
    "degree",
    "poly_add",
    "poly_sub",
    "poly_mul",
    "poly_divmod",
    "poly_div",
    "poly_mod",
    "poly_gcd",
    "poly_egcd",
    "poly_modmul",
    "poly_modexp",
    "poly_modinv",
    "poly_derivative",
    "poly_eval",
    "poly_from_coeffs",
    "poly_to_coeffs",
    "poly_from_exponents",
    "poly_to_exponents",
    "poly_from_string",
    "poly_to_string",
    "poly_weight",
    "reciprocal",
]


class PolyParseError(ValueError):
    """Raised when a polynomial string cannot be parsed."""


def _check_poly(p: int, name: str = "polynomial") -> None:
    if not isinstance(p, int) or isinstance(p, bool):
        raise TypeError(f"{name} must be an int bit-mask, got {type(p).__name__}")
    if p < 0:
        raise ValueError(f"{name} must be non-negative, got {p}")


def degree(p: int) -> int:
    """Degree of ``p``; the zero polynomial has degree ``-1``.

    >>> degree(0b10011)   # x^4 + x + 1
    4
    >>> degree(1)
    0
    >>> degree(0)
    -1
    """
    _check_poly(p)
    return p.bit_length() - 1


def poly_weight(p: int) -> int:
    """Number of non-zero coefficients (Hamming weight).

    >>> poly_weight(0b10011)
    3
    """
    _check_poly(p)
    return bin(p).count("1")


def poly_add(a: int, b: int) -> int:
    """Sum of two GF(2) polynomials (coefficient-wise XOR)."""
    _check_poly(a, "a")
    _check_poly(b, "b")
    return a ^ b


def poly_sub(a: int, b: int) -> int:
    """Difference; identical to :func:`poly_add` in characteristic 2."""
    return poly_add(a, b)


def poly_mul(a: int, b: int) -> int:
    """Carry-less product of two GF(2) polynomials.

    >>> poly_to_string(poly_mul(0b11, 0b11))   # (x+1)^2 = x^2 + 1
    'x^2 + 1'
    """
    _check_poly(a, "a")
    _check_poly(b, "b")
    result = 0
    shift = 0
    while b:
        if b & 1:
            result ^= a << shift
        b >>= 1
        shift += 1
    return result


def poly_divmod(a: int, b: int) -> tuple[int, int]:
    """Quotient and remainder of ``a / b``.

    Raises :class:`ZeroDivisionError` when ``b`` is the zero polynomial.

    >>> q, r = poly_divmod(0b10011, 0b111)
    >>> poly_mul(q, 0b111) ^ r == 0b10011
    True
    """
    _check_poly(a, "a")
    _check_poly(b, "b")
    if b == 0:
        raise ZeroDivisionError("polynomial division by zero")
    db = degree(b)
    quotient = 0
    remainder = a
    while degree(remainder) >= db:
        shift = degree(remainder) - db
        quotient ^= 1 << shift
        remainder ^= b << shift
    return quotient, remainder


def poly_div(a: int, b: int) -> int:
    """Quotient of polynomial division."""
    return poly_divmod(a, b)[0]


def poly_mod(a: int, b: int) -> int:
    """Remainder of polynomial division."""
    return poly_divmod(a, b)[1]


def poly_gcd(a: int, b: int) -> int:
    """Greatest common divisor (monic, i.e. plain bit-mask) of ``a``, ``b``.

    >>> poly_gcd(poly_mul(0b111, 0b10), poly_mul(0b111, 0b11))
    7
    """
    _check_poly(a, "a")
    _check_poly(b, "b")
    while b:
        a, b = b, poly_mod(a, b)
    return a


def poly_egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended GCD: returns ``(g, s, t)`` with ``s*a + t*b = g``.

    >>> g, s, t = poly_egcd(0b10011, 0b111)
    >>> poly_mul(s, 0b10011) ^ poly_mul(t, 0b111) == g
    True
    """
    _check_poly(a, "a")
    _check_poly(b, "b")
    r0, r1 = a, b
    s0, s1 = 1, 0
    t0, t1 = 0, 1
    while r1:
        q, r = poly_divmod(r0, r1)
        r0, r1 = r1, r
        s0, s1 = s1, s0 ^ poly_mul(q, s1)
        t0, t1 = t1, t0 ^ poly_mul(q, t1)
    return r0, s0, t0


def poly_modmul(a: int, b: int, modulus: int) -> int:
    """Product ``a * b mod modulus``.

    The inputs need not be reduced beforehand.
    """
    _check_poly(a, "a")
    _check_poly(b, "b")
    if modulus == 0:
        raise ZeroDivisionError("zero modulus")
    return poly_mod(poly_mul(a, b), modulus)


def poly_modexp(base: int, exponent: int, modulus: int) -> int:
    """``base ** exponent mod modulus`` by square-and-multiply.

    >>> poly_modexp(0b10, 4, 0b10011)  # x^4 mod (x^4+x+1) = x + 1
    3
    """
    _check_poly(base, "base")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    if modulus == 0:
        raise ZeroDivisionError("zero modulus")
    result = poly_mod(1, modulus)
    acc = poly_mod(base, modulus)
    while exponent:
        if exponent & 1:
            result = poly_modmul(result, acc, modulus)
        acc = poly_modmul(acc, acc, modulus)
        exponent >>= 1
    return result


def poly_modinv(a: int, modulus: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``modulus``.

    Raises :class:`ZeroDivisionError` if ``a`` is not invertible (i.e. shares
    a factor with the modulus).
    """
    _check_poly(a, "a")
    if modulus == 0:
        raise ZeroDivisionError("zero modulus")
    a = poly_mod(a, modulus)
    g, s, _t = poly_egcd(a, modulus)
    if g != 1:
        raise ZeroDivisionError(
            f"{poly_to_string(a)} is not invertible mod {poly_to_string(modulus)}"
        )
    return poly_mod(s, modulus)


def poly_derivative(p: int) -> int:
    """Formal derivative over GF(2): odd-degree terms survive, shifted down.

    >>> poly_to_string(poly_derivative(0b10011))  # d/dx (x^4+x+1) = 1
    '1'
    """
    _check_poly(p)
    # Coefficient of x^i in p' is (i+1 mod 2) * coeff of x^{i+1}: keep odd
    # positions of p and shift right once.
    odd_mask = 0
    bit = 2  # x^1 position
    while bit <= p:
        odd_mask |= bit
        bit <<= 2
    return (p & odd_mask) >> 1


def poly_eval(p: int, x: int) -> int:
    """Evaluate ``p`` at a GF(2) point ``x`` in {0, 1}.

    >>> poly_eval(0b10011, 1)   # three terms -> 1 over GF(2)
    1
    """
    _check_poly(p)
    if x not in (0, 1):
        raise ValueError("GF(2) point must be 0 or 1")
    if x == 0:
        return p & 1
    return poly_weight(p) & 1


def poly_from_coeffs(coeffs: list[int] | tuple[int, ...]) -> int:
    """Build a polynomial from a low-to-high coefficient list.

    >>> poly_from_coeffs([1, 1, 0, 0, 1])   # 1 + x + x^4
    19
    """
    p = 0
    for i, c in enumerate(coeffs):
        if c not in (0, 1):
            raise ValueError(f"coefficient {c!r} at position {i} is not in GF(2)")
        if c:
            p |= 1 << i
    return p


def poly_to_coeffs(p: int) -> list[int]:
    """Low-to-high coefficient list; the zero polynomial gives ``[0]``.

    >>> poly_to_coeffs(0b10011)
    [1, 1, 0, 0, 1]
    """
    _check_poly(p)
    if p == 0:
        return [0]
    return [(p >> i) & 1 for i in range(p.bit_length())]


def poly_from_exponents(exponents: list[int] | tuple[int, ...] | set[int]) -> int:
    """Build a polynomial from the set of exponents with coefficient 1.

    >>> poly_from_exponents([0, 1, 4])
    19
    """
    p = 0
    for e in exponents:
        if e < 0:
            raise ValueError(f"exponent must be non-negative, got {e}")
        if p & (1 << e):
            raise ValueError(f"duplicate exponent {e}")
        p |= 1 << e
    return p


def poly_to_exponents(p: int) -> list[int]:
    """Sorted (descending) list of exponents with non-zero coefficient."""
    _check_poly(p)
    return [i for i in range(p.bit_length() - 1, -1, -1) if (p >> i) & 1]


_TERM_RE = re.compile(
    r"^\s*(?:(?P<zero>0)|(?P<one>1)|(?P<var>[a-zA-Z])(?:\s*\^\s*(?P<exp>\d+))?)\s*$"
)


def poly_from_string(text: str) -> int:
    """Parse notation like ``"x^4 + x + 1"`` or ``"1+z+z^4"``.

    Any single letter works as the variable; repeated terms cancel (GF(2)
    addition), matching the algebra.

    >>> poly_from_string("1 + z + z^4")
    19
    >>> poly_from_string("x^2+x^2") == 0
    True
    """
    if not text or not text.strip():
        raise PolyParseError("empty polynomial string")
    p = 0
    variable = None
    for raw_term in text.split("+"):
        match = _TERM_RE.match(raw_term)
        if match is None:
            raise PolyParseError(f"cannot parse term {raw_term.strip()!r}")
        if match.group("zero"):
            continue
        if match.group("one"):
            p ^= 1
            continue
        var = match.group("var")
        if variable is None:
            variable = var
        elif var != variable:
            raise PolyParseError(
                f"mixed variables {variable!r} and {var!r} in {text!r}"
            )
        exp = int(match.group("exp")) if match.group("exp") else 1
        p ^= 1 << exp
    return p


def poly_to_string(p: int, variable: str = "x") -> str:
    """Format as human-readable text, highest degree first.

    >>> poly_to_string(19)
    'x^4 + x + 1'
    >>> poly_to_string(19, variable="z")
    'z^4 + z + 1'
    >>> poly_to_string(0)
    '0'
    """
    _check_poly(p)
    if p == 0:
        return "0"
    terms = []
    for e in poly_to_exponents(p):
        if e == 0:
            terms.append("1")
        elif e == 1:
            terms.append(variable)
        else:
            terms.append(f"{variable}^{e}")
    return " + ".join(terms)


def reciprocal(p: int) -> int:
    """Reciprocal (bit-reversed) polynomial ``x^deg(p) * p(1/x)``.

    The reciprocal of an irreducible polynomial is irreducible; LFSRs built
    on reciprocal polynomials generate time-reversed sequences.

    >>> poly_to_string(reciprocal(0b10011))   # x^4+x+1 -> x^4+x^3+1
    'x^4 + x^3 + 1'
    """
    _check_poly(p)
    if p == 0:
        return 0
    n = p.bit_length()
    out = 0
    for i in range(n):
        if (p >> i) & 1:
            out |= 1 << (n - 1 - i)
    return out
