"""Small-integer factorization helpers.

Multiplicative-order computations over GF(2^m) need the prime factorization
of ``2**m - 1``.  For the field sizes this library targets (m up to ~64)
trial division plus Pollard's rho is more than fast enough and keeps the
package dependency-free.
"""

from __future__ import annotations

import math

__all__ = ["factorize_int", "divisors", "is_prime"]

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97,
)


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit-ish integers.

    Uses a witness set proven sufficient for ``n < 3.3 * 10**24``.

    >>> is_prime(2**13 - 1)
    True
    >>> is_prime(2**11 - 1)   # 2047 = 23 * 89
    False
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # Witnesses sufficient for n < 3,317,044,064,679,887,385,961,981.
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def _pollard_rho(n: int) -> int:
    """Return a non-trivial factor of composite odd ``n``."""
    if n % 2 == 0:
        return 2
    for c in range(1, 100):
        x = 2
        y = 2
        d = 1
        while d == 1:
            x = (x * x + c) % n
            y = (y * y + c) % n
            y = (y * y + c) % n
            d = math.gcd(abs(x - y), n)
        if d != n:
            return d
    raise ArithmeticError(f"pollard rho failed for {n}")  # pragma: no cover


def factorize_int(n: int) -> dict[int, int]:
    """Prime factorization as ``{prime: multiplicity}``.

    >>> factorize_int(2**4 - 1)
    {3: 1, 5: 1}
    >>> factorize_int(1)
    {}
    """
    if n < 1:
        raise ValueError(f"can only factorize positive integers, got {n}")
    factors: dict[int, int] = {}
    for p in _SMALL_PRIMES:
        while n % p == 0:
            factors[p] = factors.get(p, 0) + 1
            n //= p
    stack = [n] if n > 1 else []
    while stack:
        m = stack.pop()
        if m == 1:
            continue
        if is_prime(m):
            factors[m] = factors.get(m, 0) + 1
            continue
        d = _pollard_rho(m)
        stack.append(d)
        stack.append(m // d)
    return dict(sorted(factors.items()))


def divisors(n: int) -> list[int]:
    """All positive divisors of ``n`` in increasing order.

    >>> divisors(15)
    [1, 3, 5, 15]
    """
    result = [1]
    for p, k in factorize_int(n).items():
        result = [d * p**i for d in result for i in range(k + 1)]
    return sorted(result)
