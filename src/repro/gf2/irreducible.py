"""Irreducibility and primitivity of polynomials over GF(2).

A degree-``m`` polynomial ``f`` is *irreducible* when it has no non-trivial
factors; it is *primitive* when additionally the residue class of ``x``
generates the full multiplicative group of GF(2^m), i.e. the order of ``x``
modulo ``f`` equals ``2**m - 1``.  Primitive polynomials give LFSRs of
maximal period, which is what the pseudo-ring construction relies on to make
the virtual automaton return to its initial state.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.gf2.intfactor import factorize_int
from repro.gf2.poly import (
    degree,
    poly_gcd,
    poly_mod,
    poly_modexp,
)

__all__ = [
    "is_irreducible",
    "is_primitive",
    "order_of_x",
    "find_irreducible",
    "find_primitive",
    "iter_irreducible",
    "iter_primitive",
]


def is_irreducible(f: int) -> bool:
    """Rabin's irreducibility test.

    ``f`` of degree ``m`` is irreducible iff ``x**(2**m) == x (mod f)`` and
    for every prime divisor ``q`` of ``m``, ``gcd(x**(2**(m//q)) - x, f) == 1``.

    Degree-0 polynomials (constants) are not irreducible by convention.

    >>> is_irreducible(0b10011)   # x^4 + x + 1
    True
    >>> is_irreducible(0b10101)   # x^4 + x^2 + 1 = (x^2+x+1)^2
    False
    """
    m = degree(f)
    if m <= 0:
        return False
    if m == 1:
        return True
    if f & 1 == 0:  # divisible by x
        return False
    for q in factorize_int(m):
        n_q = m // q
        h = poly_modexp(2, 1 << n_q, f) ^ 2  # x^(2^(m/q)) - x mod f
        if poly_gcd(h, f) != 1:
            return False
    return poly_modexp(2, 1 << m, f) == poly_mod(2, f)


def order_of_x(f: int) -> int:
    """Multiplicative order of ``x`` modulo an irreducible ``f``.

    This is the period of the maximal-length sequence produced by the LFSR
    with characteristic polynomial ``f`` (for a primitive ``f`` it equals
    ``2**deg(f) - 1``).

    >>> order_of_x(0b10011)        # primitive of degree 4
    15
    >>> order_of_x(0b11111)        # x^4+x^3+x^2+x+1 is irreducible, order 5
    5
    """
    if not is_irreducible(f):
        raise ValueError("order_of_x requires an irreducible polynomial")
    m = degree(f)
    group = (1 << m) - 1
    order = group
    for p, k in factorize_int(group).items():
        for _ in range(k):
            candidate = order // p
            if poly_modexp(2, candidate, f) == 1:
                order = candidate
            else:
                break
    return order


def is_primitive(f: int) -> bool:
    """True when ``f`` is primitive (irreducible with maximal order of x).

    >>> is_primitive(0b10011)   # x^4 + x + 1
    True
    >>> is_primitive(0b11111)   # irreducible but order 5 != 15
    False
    """
    if not is_irreducible(f):
        return False
    m = degree(f)
    return order_of_x(f) == (1 << m) - 1


def iter_irreducible(m: int) -> Iterator[int]:
    """Yield all irreducible degree-``m`` polynomials in increasing order.

    >>> list(iter_irreducible(2))
    [7]
    """
    if m < 1:
        raise ValueError("degree must be >= 1")
    # Candidates have the top bit and (for m >= 1) the constant term set;
    # an even polynomial is divisible by x.
    top = 1 << m
    for middle in range(0, top, 2):
        f = top | middle | 1
        if is_irreducible(f):
            yield f
    if m == 1:
        # x itself (0b10) is irreducible but has no constant term.
        return


def iter_primitive(m: int) -> Iterator[int]:
    """Yield all primitive degree-``m`` polynomials in increasing order."""
    for f in iter_irreducible(m):
        if is_primitive(f):
            yield f


def find_irreducible(m: int) -> int:
    """Smallest irreducible polynomial of degree ``m``.

    >>> find_irreducible(4)
    19
    """
    for f in iter_irreducible(m):
        return f
    raise ValueError(f"no irreducible polynomial of degree {m}")  # pragma: no cover


def find_primitive(m: int) -> int:
    """Smallest primitive polynomial of degree ``m``.

    >>> find_primitive(4)
    19
    """
    for f in iter_primitive(m):
        return f
    raise ValueError(f"no primitive polynomial of degree {m}")  # pragma: no cover
