"""Factorization of polynomials over GF(2).

The classic three-stage pipeline:

1. :func:`squarefree_part` -- strip repeated factors using the formal
   derivative,
2. :func:`distinct_degree_factorization` -- split a square-free polynomial
   into products of irreducibles of equal degree,
3. :func:`equal_degree_factorization` -- Cantor--Zassenhaus splitting of each
   equal-degree product into its irreducible factors.

:func:`factorize` runs the full pipeline and returns irreducible factors with
multiplicities.  Factorization backs the period analysis of non-irreducible
LFSR feedback polynomials (`repro.lfsr.period`).
"""

from __future__ import annotations

import random

from repro.gf2.poly import (
    degree,
    poly_derivative,
    poly_divmod,
    poly_gcd,
    poly_mod,
    poly_modexp,
    poly_modmul,
    poly_mul,
)

__all__ = [
    "squarefree_part",
    "squarefree_decomposition",
    "distinct_degree_factorization",
    "equal_degree_factorization",
    "factorize",
]


def _poly_sqrt(p: int) -> int:
    """Square root of a GF(2) polynomial that is a perfect square.

    Over GF(2), ``(sum a_i x^i)^2 = sum a_i x^(2i)``, so a perfect square has
    coefficients only at even positions and its root keeps every other bit.
    """
    root = 0
    i = 0
    while p >> (2 * i):
        if (p >> (2 * i)) & 1:
            root |= 1 << i
        i += 1
    return root


def squarefree_part(f: int) -> int:
    """Largest square-free divisor of ``f``.

    >>> from repro.gf2.poly import poly_mul
    >>> squarefree_part(poly_mul(0b111, 0b111))   # (x^2+x+1)^2
    7
    """
    if f == 0:
        raise ValueError("zero polynomial has no square-free part")
    result = 1
    for factor, _mult in squarefree_decomposition(f):
        result = poly_mul(result, factor)
    return result


def squarefree_decomposition(f: int) -> list[tuple[int, int]]:
    """Yun-style square-free decomposition adapted to characteristic 2.

    Returns ``[(g_i, e_i), ...]`` with ``f = prod g_i**e_i``, each ``g_i``
    square-free and pairwise coprime, ``e_i`` strictly increasing.
    """
    if f == 0:
        raise ValueError("cannot decompose the zero polynomial")
    if degree(f) <= 0:
        return []
    out: list[tuple[int, int]] = []
    _squarefree_rec(f, 1, out)
    # Merge identical multiplicities produced by the p-th power recursion.
    merged: dict[int, int] = {}
    for g, e in out:
        if degree(g) > 0:
            merged[e] = poly_mul(merged.get(e, 1), g)
    return sorted(((g, e) for e, g in merged.items()), key=lambda item: item[1])


def _squarefree_rec(f: int, scale: int, out: list[tuple[int, int]]) -> None:
    fp = poly_derivative(f)
    if fp == 0:
        # f is a perfect square: f = h(x)^2; recurse with doubled multiplicity.
        _squarefree_rec(_poly_sqrt(f), scale * 2, out)
        return
    c = poly_gcd(f, fp)
    w = poly_divmod(f, c)[0]
    multiplicity = 1
    while degree(w) > 0:
        y = poly_gcd(w, c)
        part = poly_divmod(w, y)[0]
        if degree(part) > 0:
            out.append((part, multiplicity * scale))
        w = y
        c = poly_divmod(c, y)[0]
        multiplicity += 1
    if degree(c) > 0:
        # The residual carries only even multiplicities, so it is a perfect
        # square; take the root before doubling the scale (recursing on c
        # itself would double-count once more inside the fp == 0 branch).
        _squarefree_rec(_poly_sqrt(c), scale * 2, out)


def distinct_degree_factorization(f: int) -> list[tuple[int, int]]:
    """Split square-free ``f`` into ``[(product, d), ...]`` pieces.

    Each returned ``product`` is the product of all irreducible factors of
    degree exactly ``d``.

    >>> from repro.gf2.poly import poly_mul
    >>> distinct_degree_factorization(poly_mul(0b11, 0b111))
    [(3, 1), (7, 2)]
    """
    if f == 0:
        raise ValueError("cannot factorize the zero polynomial")
    pieces: list[tuple[int, int]] = []
    h = poly_mod(2, f)  # x mod f
    remaining = f
    d = 0
    while degree(remaining) > 2 * d:
        d += 1
        h = poly_modexp(h, 2, remaining)  # h = x^(2^d) mod remaining
        g = poly_gcd(h ^ poly_mod(2, remaining), remaining)
        if degree(g) > 0:
            pieces.append((g, d))
            remaining = poly_divmod(remaining, g)[0]
            h = poly_mod(h, remaining)
    if degree(remaining) > 0:
        pieces.append((remaining, degree(remaining)))
    return pieces


def equal_degree_factorization(
    f: int, d: int, rng: random.Random | None = None
) -> list[int]:
    """Cantor--Zassenhaus: split ``f`` into irreducible factors of degree ``d``.

    ``f`` must be square-free with all irreducible factors of degree exactly
    ``d`` (the output of :func:`distinct_degree_factorization`).

    >>> from repro.gf2.poly import poly_mul
    >>> sorted(equal_degree_factorization(poly_mul(0b1011, 0b1101), 3))
    [11, 13]
    """
    if rng is None:
        rng = random.Random(0xC0FFEE)
    n = degree(f)
    if n == d:
        return [f]
    if n % d != 0:
        raise ValueError(f"degree {n} is not a multiple of factor degree {d}")
    factors = [f]
    target = n // d
    # Over GF(2) the CZ splitter uses the trace map
    # T(a) = a + a^2 + a^4 + ... + a^(2^(d-1)).
    while len(factors) < target:
        g = factors.pop(rng.randrange(len(factors)))
        if degree(g) == d:
            factors.append(g)
            continue
        a = rng.randrange(1, 1 << degree(g))
        trace = 0
        term = poly_mod(a, g)
        for _ in range(d):
            trace ^= term
            term = poly_modmul(term, term, g)
        h = poly_gcd(trace, g)
        if 0 < degree(h) < degree(g):
            factors.append(h)
            factors.append(poly_divmod(g, h)[0])
        else:
            factors.append(g)
    return factors


def factorize(f: int) -> dict[int, int]:
    """Full factorization: ``{irreducible_factor: multiplicity}``.

    ``x`` factors (trailing zero coefficients) are handled explicitly.

    >>> from repro.gf2.poly import poly_mul
    >>> factorize(poly_mul(0b110, 0b111))   # x(x+1)(x^2+x+1)
    {2: 1, 3: 1, 7: 1}
    """
    if f == 0:
        raise ValueError("cannot factorize the zero polynomial")
    result: dict[int, int] = {}
    # Pull out powers of x.
    x_mult = 0
    while f & 1 == 0:
        f >>= 1
        x_mult += 1
    if x_mult:
        result[2] = x_mult
    if degree(f) <= 0:
        return dict(sorted(result.items()))
    for squarefree, multiplicity in squarefree_decomposition(f):
        for product, d in distinct_degree_factorization(squarefree):
            for irreducible in equal_degree_factorization(product, d):
                result[irreducible] = result.get(irreducible, 0) + multiplicity
    return dict(sorted(result.items()))
