"""Curated table of primitive polynomials over GF(2).

One primitive polynomial per degree 1..32, chosen with few terms (the usual
LFSR taps from Peterson & Weldon / Xilinx app-note tables).  These are the
default field moduli and LFSR feedback polynomials used across the library;
every entry is verified primitive by the test suite using
:func:`repro.gf2.irreducible.is_primitive`.

The paper's word-oriented example uses ``p(z) = 1 + z + z^4`` (our degree-4
entry) as the GF(2^4) modulus.
"""

from __future__ import annotations

from repro.gf2.poly import poly_from_exponents

__all__ = ["PRIMITIVE_POLYNOMIALS", "primitive_polynomial"]

# degree -> exponent tuple (highest first, always ending in 0).
_PRIMITIVE_EXPONENTS: dict[int, tuple[int, ...]] = {
    1: (1, 0),
    2: (2, 1, 0),
    3: (3, 1, 0),
    4: (4, 1, 0),
    5: (5, 2, 0),
    6: (6, 1, 0),
    7: (7, 1, 0),
    8: (8, 4, 3, 2, 0),
    9: (9, 4, 0),
    10: (10, 3, 0),
    11: (11, 2, 0),
    12: (12, 6, 4, 1, 0),
    13: (13, 4, 3, 1, 0),
    14: (14, 10, 6, 1, 0),
    15: (15, 1, 0),
    16: (16, 12, 3, 1, 0),
    17: (17, 3, 0),
    18: (18, 7, 0),
    19: (19, 5, 2, 1, 0),
    20: (20, 3, 0),
    21: (21, 2, 0),
    22: (22, 1, 0),
    23: (23, 5, 0),
    24: (24, 7, 2, 1, 0),
    25: (25, 3, 0),
    26: (26, 6, 2, 1, 0),
    27: (27, 5, 2, 1, 0),
    28: (28, 3, 0),
    29: (29, 2, 0),
    30: (30, 23, 2, 1, 0),
    31: (31, 3, 0),
    32: (32, 22, 2, 1, 0),
}

PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    m: poly_from_exponents(exps) for m, exps in _PRIMITIVE_EXPONENTS.items()
}
"""Mapping ``degree -> primitive polynomial`` (bit-mask encoding)."""


def primitive_polynomial(m: int) -> int:
    """Default primitive polynomial of degree ``m`` (1 <= m <= 32).

    >>> primitive_polynomial(4)   # 1 + z + z^4, the paper's p(z)
    19
    """
    try:
        return PRIMITIVE_POLYNOMIALS[m]
    except KeyError:
        raise ValueError(
            f"no tabulated primitive polynomial of degree {m}; "
            f"use repro.gf2.find_primitive for arbitrary degrees"
        ) from None
