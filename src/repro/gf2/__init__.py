"""Polynomial arithmetic over GF(2).

Polynomials over GF(2) are represented as non-negative Python integers whose
binary expansion holds the coefficients: bit ``i`` of the integer is the
coefficient of ``x**i``.  For example ``0b10011`` is ``x^4 + x + 1``.

This encoding makes addition a single XOR and keeps the rest of the library
(LFSRs, GF(2^m) fields, multiplier synthesis) fast and allocation-free.

The subpackage provides:

* :mod:`repro.gf2.poly` -- core ring operations (add, mul, divmod, gcd,
  modular exponentiation, formatting and parsing),
* :mod:`repro.gf2.irreducible` -- irreducibility (Ben-Or/Rabin) and
  primitivity tests, the multiplicative order of ``x`` modulo a polynomial,
  and search helpers,
* :mod:`repro.gf2.factor` -- square-free / distinct-degree / equal-degree
  (Cantor--Zassenhaus) factorization over GF(2),
* :mod:`repro.gf2.tables` -- a curated table of primitive polynomials used as
  default moduli by the rest of the library,
* :mod:`repro.gf2.intfactor` -- small integer factorization utilities needed
  for multiplicative-order computations.
"""

from repro.gf2.poly import (
    PolyParseError,
    degree,
    poly_add,
    poly_sub,
    poly_mul,
    poly_divmod,
    poly_div,
    poly_mod,
    poly_gcd,
    poly_egcd,
    poly_modmul,
    poly_modexp,
    poly_modinv,
    poly_derivative,
    poly_eval,
    poly_from_coeffs,
    poly_to_coeffs,
    poly_from_exponents,
    poly_to_exponents,
    poly_from_string,
    poly_to_string,
    poly_weight,
    reciprocal,
)
from repro.gf2.irreducible import (
    is_irreducible,
    is_primitive,
    order_of_x,
    find_irreducible,
    find_primitive,
    iter_irreducible,
    iter_primitive,
)
from repro.gf2.factor import (
    squarefree_part,
    distinct_degree_factorization,
    equal_degree_factorization,
    factorize,
)
from repro.gf2.intfactor import factorize_int, divisors
from repro.gf2.tables import PRIMITIVE_POLYNOMIALS, primitive_polynomial

__all__ = [
    "PolyParseError",
    "degree",
    "poly_add",
    "poly_sub",
    "poly_mul",
    "poly_divmod",
    "poly_div",
    "poly_mod",
    "poly_gcd",
    "poly_egcd",
    "poly_modmul",
    "poly_modexp",
    "poly_modinv",
    "poly_derivative",
    "poly_eval",
    "poly_from_coeffs",
    "poly_to_coeffs",
    "poly_from_exponents",
    "poly_to_exponents",
    "poly_from_string",
    "poly_to_string",
    "poly_weight",
    "reciprocal",
    "is_irreducible",
    "is_primitive",
    "order_of_x",
    "find_irreducible",
    "find_primitive",
    "iter_irreducible",
    "iter_primitive",
    "squarefree_part",
    "distinct_degree_factorization",
    "equal_degree_factorization",
    "factorize",
    "factorize_int",
    "divisors",
    "PRIMITIVE_POLYNOMIALS",
    "primitive_polynomial",
]
