"""Persistent worker pools for process-sharded fault campaigns.

Spawning a multiprocessing pool costs tens of milliseconds plus one
Python interpreter per worker -- paid *per campaign* it dwarfs the win
of sharding the scalar-fallback faults (see the ``compiled-mp`` rows of
``benchmarks/out/bench_campaign_engine.json``).  A :class:`WorkerPool`
therefore outlives individual campaigns:

* **lazy start** -- the OS pool is created on first use, so merely
  threading ``workers=N`` through an API costs nothing until a campaign
  actually shards;
* **stream broadcast** -- a compiled :class:`~repro.sim.ir.OpStream` is
  shipped to this host exactly once and pinned in every worker under a
  small integer token; every subsequent shard of every campaign
  references the token, so the stream never rides the task queue again.
  Large streams travel through one :mod:`multiprocessing.shared_memory`
  segment (written once, attached by each worker) instead of being
  re-pickled onto the task queue per worker; small streams and
  environments without shared memory take the pickle path.  Broadcasts
  dedup by :meth:`~repro.sim.ir.OpStream.digest` -- structurally
  identical streams share one token even when they are distinct objects
  (a test recompiled per request, a stream unpickled from a job queue)
  -- and :meth:`WorkerPool.broadcast_stats` counts exactly how many
  distinct digests were shipped which way;
* **task-queue scheduling** -- :meth:`WorkerPool.flow` opens a
  :class:`TaskFlow`, a shared queue the parent feeds and the workers
  drain: results surface in completion order, the parent may keep
  queueing (re-queued remainders of shards that split on the fly are
  how the campaign scheduler steals work), and one flow serves
  heterogeneous task kinds;
* **spec shards** -- combined with
  :class:`repro.faults.universe.UniverseSpec`, a unit of work is just
  ``(token, spec, index range)``: workers enumerate their faults locally
  (cached per process) instead of unpickling fault lists per chunk;
* **graceful degradation** -- environments that cannot fork (sandboxes,
  seccomp, missing /dev/shm) raise :class:`PoolUnavailable`, which the
  campaign engines catch to fall back to single-process execution with
  identical results.

The module-level :func:`shared_pool` registry gives the campaign engines
one long-lived pool per worker count; :func:`shutdown_shared_pools` is
registered with :mod:`atexit`.
"""

from __future__ import annotations

import atexit
import contextlib
import multiprocessing
import pickle
import queue
import threading
import weakref
from collections.abc import Callable, Iterable, Iterator

from repro.sim.ir import OpStream

__all__ = [
    "PoolUnavailable",
    "TaskFlow",
    "WorkerPool",
    "shared_pool",
    "shutdown_shared_pools",
]

#: Seconds a worker waits for its broadcast peers before declaring the
#: pool broken.  Broadcasts happen before campaign shards are queued, so
#: the barrier only ever waits on pool startup latency, never on work.
BROADCAST_TIMEOUT = 60.0

#: Streams whose pickle is at least this large broadcast through one
#: shared-memory segment instead of riding the task queue once per
#: worker.  Below it the copy is cheaper than the segment setup.
SHM_MIN_BYTES = 1 << 16


class PoolUnavailable(RuntimeError):
    """The process pool cannot be created or has broken down.

    Campaign engines catch this and degrade to single-process execution;
    it is only visible to callers who drive a :class:`WorkerPool`
    directly.
    """


# -- worker-side state ------------------------------------------------------
#
# One pool worker serves many campaigns; these globals are its local
# cache.  ``_init_worker`` runs once per worker process and *clears* the
# stream cache: under fork the child inherits the parent module state,
# and a parent that was itself once a worker (nested pools) must not
# leak another pool's token namespace into this one.

_WORKER_STREAMS: dict[int, OpStream] = {}
_WORKER_BARRIER = None


def _init_worker(barrier) -> None:
    """Pool initializer: pin the broadcast barrier, reset the cache."""
    global _WORKER_BARRIER
    _WORKER_BARRIER = barrier
    _WORKER_STREAMS.clear()


def _attach_shared_blob(name: str, size: int) -> bytes:
    """Copy ``size`` bytes out of a named shared-memory segment."""
    from multiprocessing import resource_tracker, shared_memory

    shm = shared_memory.SharedMemory(name=name)
    try:
        return bytes(shm.buf[:size])
    finally:
        shm.close()
        # On CPython < 3.13 merely *attaching* registers the segment
        # with this process's resource tracker, which would unlink it
        # when the worker exits (bpo-39959).  The parent owns the
        # segment's lifetime; this process must only detach.
        with contextlib.suppress(Exception):
            resource_tracker.unregister(shm._name, "shared_memory")


def _load_stream(args: tuple) -> bool:
    """Broadcast unit of work: cache one stream under its token.

    ``payload`` is ``("pickle", stream)`` -- the stream rode the task
    queue -- or ``("shm", name, size)`` -- unpickle it out of the named
    shared-memory segment.  The barrier holds this worker until every
    sibling has its copy -- with exactly one broadcast task per worker
    on the queue, no worker can take a second task before all of them
    have loaded the stream.
    """
    token, payload = args
    try:
        stream = (pickle.loads(_attach_shared_blob(payload[1], payload[2]))
                  if payload[0] == "shm" else payload[1])
        _WORKER_STREAMS[token] = stream
    except Exception:
        # Attach failed (segment gone, /dev/shm policy): fail the
        # broadcast cleanly so the parent can degrade.
        with contextlib.suppress(threading.BrokenBarrierError):
            _WORKER_BARRIER.wait(BROADCAST_TIMEOUT)
        return False
    try:
        _WORKER_BARRIER.wait(BROADCAST_TIMEOUT)
    except threading.BrokenBarrierError:
        return False
    return True


def worker_stream(token: int) -> OpStream:
    """The stream a broadcast pinned in this worker (shard-side lookup)."""
    try:
        return _WORKER_STREAMS[token]
    except KeyError:
        # A respawned worker (predecessor died) missed earlier
        # broadcasts; surfacing PoolUnavailable lets the parent degrade.
        raise PoolUnavailable(
            f"worker holds no stream for token {token} "
            "(worker respawned after a broadcast?)"
        ) from None


# -- the task flow ----------------------------------------------------------

#: Queue sentinel ending a flow's task feed (compared by identity).
_FLOW_DONE = object()


class TaskFlow:
    """A dynamic task queue over a pool: feed tasks, drain completions.

    ``Pool.imap`` wants the full task list up front, which forbids the
    one thing a work-stealing scheduler needs: queueing *more* work (the
    remainder of a shard that split itself mid-run) after results
    started coming back.  A flow is ``imap_unordered`` over a live
    queue instead -- :meth:`put` feeds tasks at any time, :meth:`next`
    yields results in completion order, and :meth:`close` ends the feed.

    Always close (the campaign drivers do so in a ``finally``): the
    pool's task-feeder thread blocks on the queue until the sentinel
    arrives.  :meth:`WorkerPool.close` closes every open flow for the
    same reason.
    """

    def __init__(self, pool: "WorkerPool", fn: Callable):
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        self._results = pool._ensure().imap_unordered(
            fn, iter(self._queue.get, _FLOW_DONE))

    def put(self, task) -> None:
        """Queue one task (allowed while results are draining)."""
        self._queue.put(task)

    def next(self, timeout: float):
        """The next completed result; raises
        ``multiprocessing.TimeoutError`` when none arrives in time and
        ``StopIteration`` once a closed flow has drained."""
        return self._results.next(timeout)

    def close(self) -> None:
        """End the task feed (idempotent; queued tasks still complete)."""
        if not self._closed:
            self._closed = True
            self._queue.put(_FLOW_DONE)


class WorkerPool:
    """A lazily-started, reusable multiprocessing pool for campaigns.

    Parameters
    ----------
    workers:
        Number of worker processes.
    context:
        Optional multiprocessing start-method name; defaults to
        ``"fork"`` where available (workers inherit the loaded library
        for free) with the platform default as fallback.
    max_streams:
        Broadcast streams are pinned in the parent and in every worker
        for the pool's lifetime (that is what makes repeat campaigns
        free).  A pool that has accumulated this many distinct streams
        is *recycled* on the next new broadcast -- workers restart with
        empty caches -- so a long-running service iterating over many
        tests holds a bounded amount of stream memory.

    Use as a context manager for deterministic shutdown, or rely on the
    :func:`shared_pool` registry's atexit hook::

        with WorkerPool(4) as pool:
            run_campaign(stream, universe, workers=4, pool=pool)
            run_campaign(stream2, universe2, workers=4, pool=pool)

    The second campaign pays neither pool startup nor (for a repeated
    stream) the broadcast.
    """

    def __init__(self, workers: int, context: str | None = None,
                 max_streams: int = 32):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_streams < 1:
            raise ValueError(f"max_streams must be >= 1, got {max_streams}")
        self.workers = workers
        self.max_streams = max_streams
        self._context_name = context
        self._pool = None
        self._barrier = None
        self._broken = False
        self._tokens: dict[str, int] = {}  # stream.digest() -> token
        self._next_token = 0
        self._flows: weakref.WeakSet = weakref.WeakSet()
        self._broadcasts = {"streams": 0, "shm": 0, "pickle": 0,
                            "dedup_hits": 0, "shm_bytes": 0}

    # -- lifecycle ---------------------------------------------------------

    @property
    def started(self) -> bool:
        """True once the OS pool exists (it is created lazily)."""
        return self._pool is not None

    @property
    def broken(self) -> bool:
        """True when the pool failed to start or broke mid-run."""
        return self._broken

    @property
    def streams_broadcast(self) -> int:
        """Number of distinct streams pinned in the workers."""
        return len(self._tokens)

    def broadcast_stats(self) -> dict:
        """Transport counters for the broadcasts this pool performed.

        ``streams`` counts distinct digests actually shipped to this
        host (each at most once per pool generation), split into
        ``shm``/``pickle`` by transport; ``dedup_hits`` counts
        broadcasts satisfied by an already-pinned digest without any
        shipping; ``shm_bytes`` totals the shared-memory payload.
        """
        return dict(self._broadcasts)

    def _ensure(self):
        if self._broken:
            raise PoolUnavailable("worker pool is broken")
        if self._pool is None:
            try:
                if self._context_name is not None:
                    context = multiprocessing.get_context(self._context_name)
                else:
                    try:
                        context = multiprocessing.get_context("fork")
                    except ValueError:  # platforms without fork
                        context = multiprocessing.get_context()
                self._barrier = context.Barrier(self.workers)
                self._pool = context.Pool(processes=self.workers,
                                          initializer=_init_worker,
                                          initargs=(self._barrier,))
            except (OSError, PermissionError, ImportError, ValueError) as exc:
                # Restricted environments (no /dev/shm, seccomp'd fork):
                # the caller degrades to single-process execution.
                self._broken = True
                raise PoolUnavailable(
                    f"cannot start a {self.workers}-process pool: {exc}"
                ) from exc
        return self._pool

    def close(self) -> None:
        """Terminate the workers and drop the broadcast bookkeeping."""
        for flow in list(self._flows):
            flow.close()
        self._flows.clear()
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        self._barrier = None
        self._tokens.clear()

    def mark_broken(self) -> None:
        """Record a mid-run failure; the pool refuses further work."""
        self._broken = True
        self.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- work --------------------------------------------------------------

    def broadcast_stream(self, stream: OpStream) -> int:
        """Pin ``stream`` in every worker; returns its token.

        Idempotent per stream *content*: broadcasts dedup on
        :meth:`~repro.sim.ir.OpStream.digest`, so repeated campaigns
        over the same compiled stream -- whether the literal object the
        :mod:`repro.sim.compilers` ``cached_*`` adapters memoize, or a
        structurally identical recompilation from another request --
        ship to this host only once (:meth:`broadcast_stats` proves it).
        Large streams travel via one shared-memory segment; small ones
        and shm-less environments ride the task queue pickled.  Once
        ``max_streams`` distinct streams have accumulated, the pool is
        recycled first so stream memory stays bounded.
        """
        digest = stream.digest()
        token = self._tokens.get(digest)
        if token is not None:
            self._broadcasts["dedup_hits"] += 1
            return token
        if len(self._tokens) >= self.max_streams:
            # Recycle: drop the workers (and with them every pinned
            # stream) and start fresh ones lazily.  Amortized over the
            # max_streams campaigns in between, the restart is noise.
            self.close()
        pool = self._ensure()
        token = self._next_token
        payload, shm = self._broadcast_payload(stream)
        try:
            # chunksize=1 puts one broadcast task per queue entry; each
            # worker blocks in the barrier until all have loaded, so no
            # worker can consume two.  The async get carries its own
            # timeout: a worker killed mid-broadcast loses its task, and
            # a bare map() would wait on it forever (the survivors'
            # barrier breaks after BROADCAST_TIMEOUT, but the parent
            # must not hang with them).
            loaded = pool.map_async(
                _load_stream, [(token, payload)] * self.workers, chunksize=1,
            ).get(BROADCAST_TIMEOUT + 30.0)
        except Exception as exc:
            self.mark_broken()
            raise PoolUnavailable(f"stream broadcast failed: {exc}") from exc
        finally:
            if shm is not None:
                # Workers copied the blob out; the segment's job is done
                # either way.
                shm.close()
                shm.unlink()
        if not all(loaded):
            self.mark_broken()
            raise PoolUnavailable("stream broadcast barrier broke")
        self._next_token += 1
        self._tokens[digest] = token
        self._broadcasts["streams"] += 1
        self._broadcasts["shm" if payload[0] == "shm" else "pickle"] += 1
        return token

    def _broadcast_payload(self, stream: OpStream):
        """``(payload, shm_segment_or_None)`` for one stream broadcast.

        Prefers a single shared-memory segment for large streams; any
        failure to create or fill one (sandboxes without /dev/shm,
        size limits) falls back to the per-worker pickle payload.
        """
        with contextlib.suppress(Exception):
            blob = pickle.dumps(stream, protocol=pickle.HIGHEST_PROTOCOL)
            if len(blob) >= SHM_MIN_BYTES:
                from multiprocessing import shared_memory

                shm = shared_memory.SharedMemory(create=True, size=len(blob))
                shm.buf[:len(blob)] = blob
                self._broadcasts["shm_bytes"] += len(blob)
                return ("shm", shm.name, len(blob)), shm
        return ("pickle", stream), None

    def flow(self, fn: Callable) -> TaskFlow:
        """Open a :class:`TaskFlow` running ``fn`` over queued tasks."""
        flow = TaskFlow(self, fn)
        self._flows.add(flow)
        return flow

    def imap(self, fn: Callable, tasks: Iterable) -> Iterator:
        """Ordered lazy fan-out (thin wrapper over ``Pool.imap``).

        Workers start consuming immediately; the parent is free to do
        its own work before draining the result iterator.
        """
        return self._ensure().imap(fn, tasks)

    def __repr__(self) -> str:
        state = "broken" if self._broken else (
            "started" if self.started else "idle")
        return (f"WorkerPool(workers={self.workers}, {state}, "
                f"{self.streams_broadcast} streams broadcast)")


# -- shared registry --------------------------------------------------------

_SHARED: dict[int, WorkerPool] = {}


def shared_pool(workers: int) -> WorkerPool:
    """The process-wide pool for ``workers`` processes.

    Campaign engines route ``workers=N`` calls here, so consecutive
    campaigns (a CLI ``compare`` run, a benchmark sweep, a service
    handling many requests) reuse one pool and amortize its startup.  A
    pool that broke is replaced on the next request, giving transient
    failures a fresh chance without poisoning the registry.
    """
    pool = _SHARED.get(workers)
    if pool is None or pool.broken:
        pool = WorkerPool(workers)
        _SHARED[workers] = pool
    return pool


def shutdown_shared_pools() -> None:
    """Close every registry pool (idempotent; registered with atexit)."""
    for pool in _SHARED.values():
        pool.close()
    _SHARED.clear()


atexit.register(shutdown_shared_pools)
