"""The bit-packed campaign engine: one replay pass per fault *class*.

The scalar campaign engine (:func:`repro.sim.campaign.run_campaign`)
replays a compiled :class:`~repro.sim.ir.OpStream` once per fault.  For
the fault classes that dominate real universes the *operations* of every
one of those replays are identical; only the fault site differs.  This
engine exploits that: it packs one fault per *lane* of a
:class:`~repro.memory.packed.PackedMemoryArray` (lane-parallel bit
columns -- plain Python ints or numpy uint64 blocks, ``m`` planes per
lane for word-oriented geometries) and replays the stream **once per
class**, applying each lane's fault as a mask operation positioned in
the faulty bit's plane:

* stuck-at:   ``new |= sa1_mask[addr]``, ``new &= ~sa0_mask[addr]``
* transition: ``new &= ~(~old & new & tf_up_mask[addr])`` (blocked rise),
  and the dual for blocked falls
* stuck-open: writes to the open cell are masked off, and reads route
  through a per-lane sense latch (the classical two-read SOF model)
* coupling:   on an aggressor-bit transition, ``victim ^= fired`` (CFin)
  or force the fired lanes (CFid)
* state coupling (CFst): after every committed write, lanes whose
  aggressor bit holds the coupling state force their victim bit -- the
  lane-parallel analogue of the scalar ``settle`` hook
* NPSF / bridging: enforced conditions -- while every neighbour holds
  the deleted pattern the victim is forced, and a shorted pair settles
  to its wired-AND/OR -- evaluated as whole-cell match-and-blend column
  ops after each relevant write (plus one initial settle)
* retention (DRF): the executor's cycle clock drives idle-aware decay;
  a cell unaccessed past its retention interval decays lazily at its
  next read, exactly like the scalar model
* linked faults: the coupling components fire in order under a shared
  aggressor transition, one group pass per component rank
* decoder (AF): per-lane address overrides -- lost writes, redirected
  writes, wired-AND multi-cell reads and the AF-A sense-latch -- mapped
  onto blend columns over the canonical single-port read path

A checked read XORs the packed word with the broadcast expectation; every
lane with a non-zero bit in any plane is a detection.  π-test recurrences
stay exact through per-lane accumulator columns, with GF(2^m) constant
multipliers lowered to per-plane shift/XOR plans (see
:meth:`~repro.memory.packed.PackedMemoryArray.apply_stream`), so this is
not an approximation: each lane computes bit-for-bit what its dedicated
scalar replay would.

Cost: ``O(classes * stream_length)`` column operations instead of
``O(|universe| * detection_prefix)`` scalar ones -- on single-cell
dominated universes an order of magnitude faster (see
``benchmarks/bench_campaign_engine.py``).  Every fault class the
built-in universes generate now vectorizes; only faults whose
:meth:`~repro.faults.base.Fault.vector_semantics` is ``None`` (custom
models), names an unregistered kind, or does not fit the stream's
geometry fall back per fault to
:func:`~repro.sim.campaign.run_campaign`, so
:func:`run_campaign_batched` accepts *any* universe and returns verdicts
identical to the scalar engines, in universe order.

Lane models build their masks as plain ints at construction time (the
pass's lane count is the plane stride) and convert them to backend
columns in ``install`` through the memory's helper surface
(``col_from_int`` / ``spread`` / ``blend_lanes`` / ...), which is what
lets one model implementation drive both the big-int and the numpy
uint64 column kernels.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.faults.base import Fault, VectorSemantics
from repro.memory.packed import LaneFaultModel, PackedMemoryArray
from repro.sim.campaign import (
    POOL_FAILURES,
    STEAL_BUDGET_S,
    CampaignResult,
    _check_chunk_size,
    _check_scheduler,
    _drain_flow,
    _monotonic_progress,
    _reference_pass,
    _run_task,
    _scalar_task,
    partition_universe,
    run_campaign,
)
from repro.sim.costs import DEFAULT_COST_MODEL, CostModel
from repro.sim.ir import OpStream
from repro.sim.pool import WorkerPool, shared_pool

__all__ = ["run_campaign_batched", "build_lane_model", "register_lane_model"]


class _StuckLanes(LaneFaultModel):
    """SA0/SA1 lanes: per-address force masks.

    The physical node is pinned, so the mask is applied to the initial
    state and to every committed write -- with one fault per lane and no
    other mutators in a stuck lane, the stored value is forced at every
    observable point, matching the scalar model's read/write/settle hooks.
    Word-oriented faults position their lane bit in the faulty bit's
    plane (``sem.bit * lanes + lane``); the mask algebra is unchanged.
    """

    def __init__(self, semantics: list[VectorSemantics]):
        stride = len(semantics)  # == the pass's lane count (plane stride)
        self._sa1: dict[int, object] = {}
        self._sa0: dict[int, object] = {}
        for lane, sem in enumerate(semantics):
            target = self._sa1 if sem.value else self._sa0
            bit = 1 << (sem.bit * stride + lane)
            target[sem.cell] = target.get(sem.cell, 0) | bit

    def install(self, memory: PackedMemoryArray) -> None:
        self._sa1 = {addr: memory.col_from_int(mask)
                     for addr, mask in self._sa1.items()}
        self._sa0 = {addr: memory.col_from_int(mask)
                     for addr, mask in self._sa0.items()}
        # Cells power up at 0; stuck-at-1 lanes are forced immediately.
        for addr, mask in self._sa1.items():
            memory.or_lanes(addr, mask)

    def transform_write(self, addr: int, old, new):
        mask = self._sa1.get(addr)
        if mask is not None:
            new = new | mask
        mask = self._sa0.get(addr)
        if mask is not None:
            new = new & ~mask
        return new


class _TransitionLanes(LaneFaultModel):
    """TF-up/TF-down lanes: the blocked transition keeps the old bit.

    The up and down masks address disjoint lanes (one fault per lane), so
    applying them in sequence never double-transforms a lane.
    """

    def __init__(self, semantics: list[VectorSemantics]):
        stride = len(semantics)
        self._up: dict[int, object] = {}
        self._down: dict[int, object] = {}
        for lane, sem in enumerate(semantics):
            target = self._up if sem.rising else self._down
            bit = 1 << (sem.bit * stride + lane)
            target[sem.cell] = target.get(sem.cell, 0) | bit

    def install(self, memory: PackedMemoryArray) -> None:
        self._up = {addr: memory.col_from_int(mask)
                    for addr, mask in self._up.items()}
        self._down = {addr: memory.col_from_int(mask)
                      for addr, mask in self._down.items()}

    def transform_write(self, addr: int, old, new):
        mask = self._up.get(addr)
        if mask is not None:
            new = new & ~(~old & new & mask)  # blocked rise: bit stays 0
        mask = self._down.get(addr)
        if mask is not None:
            new = new | (old & ~new & mask)  # blocked fall: bit stays 1
        return new


def _coupling_groups(pairs, stride):
    """Group ``(lane, coupling semantics)`` pairs by condition.

    Returns ``{aggressor_cell: [(victim, rising, force_to, mask, delta)]}``
    with ``mask`` an int lane mask positioned in the aggressor bit's
    plane and ``delta`` the aggressor->victim *plane* offset (zero for
    bit-oriented and same-bit word faults; also covers the intra-word
    case where aggressor and victim are bits of one cell).  One committed
    write then touches each distinct victim word once, with a mask
    covering every lane of that group that fired.
    """
    grouped: dict[tuple, int] = {}
    for lane, sem in pairs:
        key = (sem.cell, sem.bit, sem.victim_cell, sem.victim_bit,
               bool(sem.rising), sem.value)
        grouped[key] = grouped.get(key, 0) | (1 << lane)
    by_aggressor: dict[int, list] = {}
    for (aggr, a_bit, victim, v_bit, rising, force_to), mask in \
            grouped.items():
        by_aggressor.setdefault(aggr, []).append(
            (victim, rising, force_to, mask << (a_bit * stride),
             v_bit - a_bit)
        )
    return by_aggressor


def _install_coupling_groups(by_aggressor, memory):
    """Convert a :func:`_coupling_groups` table's int masks to backend
    columns (called once, from a model's ``install``)."""
    return {
        aggr: [(victim, rising, force_to, memory.col_from_int(mask), delta)
               for victim, rising, force_to, mask, delta in groups]
        for aggr, groups in by_aggressor.items()
    }


def _fire_coupling_groups(memory, groups, rise, fall):
    """Corrupt the victims of every group lane whose aggressor fired."""
    for victim, rising, force_to, mask, delta in groups:
        fired = (rise if rising else fall) & mask
        if not memory.any(fired):
            continue
        if delta:  # move from the aggressor plane to the victim plane
            fired = memory.shift_planes(fired, delta)
        if force_to is None:  # CFin: invert the victim bit
            memory.xor_lanes(victim, fired)
        elif force_to:  # CFid -> 1
            memory.or_lanes(victim, fired)
        else:  # CFid -> 0
            memory.andnot_lanes(victim, fired)


class _CouplingLanes(LaneFaultModel):
    """CFin/CFid lanes: aggressor transitions corrupt per-lane victims.

    Lanes are grouped by ``(aggressor bit, victim bit, edge, effect)``
    (see :func:`_coupling_groups`); the aggressor mask sits in the
    aggressor bit's plane and the fired lanes are repositioned into the
    victim bit's plane before the corruption lands.
    """

    def __init__(self, semantics: list[VectorSemantics]):
        self._by_aggressor = _coupling_groups(
            list(enumerate(semantics)), len(semantics))

    def install(self, memory: PackedMemoryArray) -> None:
        self._by_aggressor = _install_coupling_groups(self._by_aggressor,
                                                      memory)

    def after_write(self, addr: int, old, committed,
                    memory: PackedMemoryArray) -> None:
        groups = self._by_aggressor.get(addr)
        if groups is None:
            return
        # rise: lanes whose aggressor bit went 0 -> 1; fall: the dual.
        _fire_coupling_groups(memory, groups, ~old & committed,
                              old & ~committed)


class _LinkedLanes(LaneFaultModel):
    """Linked-fault lanes: coupling components fired in rank order.

    A linked fault is several coupling faults installed together; the
    scalar wrapper fires every component on each committed write with
    the *same* ``(old, committed)`` pair, mutating the victims
    sequentially.  Lane-parallel that becomes one
    :func:`_coupling_groups` table per component *rank*: rank 0 of every
    lane fires first (possibly flipping victims), then rank 1 reads the
    already-corrupted state -- exactly the scalar masking order that
    makes linked CFin pairs cancel.
    """

    def __init__(self, semantics: list[VectorSemantics]):
        stride = len(semantics)
        depth = max(len(sem.extra) for sem in semantics)
        self._steps = []
        for rank in range(depth):
            pairs = [(lane, sem.extra[rank])
                     for lane, sem in enumerate(semantics)
                     if len(sem.extra) > rank]
            self._steps.append(_coupling_groups(pairs, stride))

    def install(self, memory: PackedMemoryArray) -> None:
        self._steps = [_install_coupling_groups(step, memory)
                       for step in self._steps]

    def after_write(self, addr: int, old, committed,
                    memory: PackedMemoryArray) -> None:
        rise = fall = None
        for step in self._steps:
            groups = step.get(addr)
            if groups is None:
                continue
            if rise is None:  # shared edge masks, computed on first use
                rise = ~old & committed
                fall = old & ~committed
            _fire_coupling_groups(memory, groups, rise, fall)


class _StuckOpenLanes(LaneFaultModel):
    """SOF lanes: per-lane sense-latch bit, open cell cut off.

    The classical stuck-open model (see
    :class:`~repro.faults.stuck_open.StuckOpenFault`): writes never
    reach the open cell, and reading it returns whatever the sense
    amplifier latched on the *previous* read.  Lane-parallel, the latch
    is one bit per lane (``self._sense``): a read of any address
    refreshes the latch bit of every lane whose open cell is elsewhere,
    while lanes open *at* that address keep -- and observe -- their
    latched bit.
    """

    transforms_reads = True

    def __init__(self, semantics: list[VectorSemantics]):
        self._open: dict[int, object] = {}
        self._sense = 0  # per-lane latch; powers up at initial_sense
        self._memory: PackedMemoryArray | None = None
        for lane, sem in enumerate(semantics):
            self._open[sem.cell] = self._open.get(sem.cell, 0) | (1 << lane)
            if sem.value:
                self._sense |= 1 << lane

    def install(self, memory: PackedMemoryArray) -> None:
        # SOF is a whole-cell fault: the open mask cuts off *every* plane
        # of the lane's cell, so the single-plane lane masks built in
        # __init__ are spread across the memory's m planes here (the
        # first point the geometry is known).  The latch keeps its
        # compact power-up value: initial_sense is a 0/1 cell value,
        # i.e. bit 0 -- plane 0 -- of the word.
        self._memory = memory
        self._open = {cell: memory.spread(memory.row_from_int(mask))
                      for cell, mask in self._open.items()}
        self._sense = memory.col_from_int(self._sense)

    def transform_read(self, addr: int, sensed, port: int = 0):
        # The latch lives in the fault's sense amplifier, which the
        # scalar model shares across ports -- the port is irrelevant.
        open_here = self._open.get(addr)
        if open_here is None:
            # Healthy read in every lane: all latches refresh.  The
            # sensed column may be a live storage view, so latch a copy.
            self._sense = self._memory.copy_col(sensed)
            return sensed
        # Lanes open at this address observe (and keep) their latch;
        # every other lane senses the stored bit and refreshes.
        observed = (self._sense & open_here) | (sensed & ~open_here)
        self._sense = observed
        return observed

    def transform_write(self, addr: int, old, new):
        open_here = self._open.get(addr)
        if open_here is not None:
            new = (new & ~open_here) | (old & open_here)  # write lost
        return new


class _StateCouplingLanes(LaneFaultModel):
    """CFst lanes: while the aggressor bit holds a state, the victim bit
    is forced.

    The scalar model enforces its condition in ``settle`` (after every
    memory cycle) and in ``after_write`` (immediately, when the write
    touches the aggressor or victim cell).  Lane-parallel that becomes:
    the *first* ``settle`` of a pass enforces every group (the scalar
    engines' first post-cycle settle -- cells power up un-forced, so a
    read issued before any cycle completes still observes the raw
    state), and afterwards only a committed write can change a group's
    aggressor state or overwrite its victim, so ``after_write`` enforces
    exactly the groups touching the written cell.  Lanes are disjoint
    across groups (one fault per lane), so enforcement never cascades.
    """

    settles = True

    def __init__(self, semantics: list[VectorSemantics]):
        grouped: dict[tuple[int, int, int, int, bool, int], int] = {}
        for lane, sem in enumerate(semantics):
            key = (sem.cell, sem.bit, sem.victim_cell, sem.victim_bit,
                   bool(sem.rising), sem.value)
            grouped[key] = grouped.get(key, 0) | (1 << lane)
        #: (aggr_cell, aggr_bit, victim_cell, victim_bit, state,
        #:  force_to, lane_row) per distinct coupling condition.
        self._groups = [
            (a_cell, a_bit, v_cell, v_bit, state, force_to, mask)
            for (a_cell, a_bit, v_cell, v_bit, state, force_to), mask
            in grouped.items()
        ]
        self._by_cell: dict[int, list[tuple]] = {}
        self._enforced = False

    def install(self, memory: PackedMemoryArray) -> None:
        self._groups = [
            (a_cell, a_bit, v_cell, v_bit, state, force_to,
             memory.row_from_int(mask))
            for a_cell, a_bit, v_cell, v_bit, state, force_to, mask
            in self._groups
        ]
        self._by_cell = {}
        for group in self._groups:
            self._by_cell.setdefault(group[0], []).append(group)
            if group[2] != group[0]:
                self._by_cell.setdefault(group[2], []).append(group)

    def _enforce(self, memory: PackedMemoryArray, groups) -> None:
        for a_cell, a_bit, v_cell, v_bit, state, force_to, mask in groups:
            aggressor = memory.plane(a_cell, a_bit) & mask
            # Lanes (within this group) whose aggressor bit equals the
            # coupling state; aggressor is a subset of mask, so the
            # state-0 complement is just the XOR.
            held = aggressor if state else aggressor ^ mask
            if not memory.any(held):
                continue
            column = memory.row_to_plane(held, v_bit)
            if force_to:
                memory.or_lanes(v_cell, column)
            else:
                memory.andnot_lanes(v_cell, column)

    def after_write(self, addr: int, old, committed,
                    memory: PackedMemoryArray) -> None:
        groups = self._by_cell.get(addr)
        if groups is not None:
            self._enforce(memory, groups)

    def settle(self, memory: PackedMemoryArray) -> None:
        if self._enforced:
            return
        self._enforced = True
        self._enforce(memory, self._groups)


class _NpsfLanes(LaneFaultModel):
    """NPSF lanes: while every neighbour holds its pattern value, the
    victim cell is forced.

    Pattern match is a whole-cell equality per neighbour
    (:meth:`~repro.memory.packed.PackedMemoryArray.match_lanes`), ANDed
    across the neighbourhood; matching lanes blend the forced value into
    their victim cell.  Enforcement timing follows the CFst argument: in
    an NPSF-only pass reads never mutate state and lanes are disjoint
    across groups (an enforcement writes only its own lanes' victim,
    which is never one of its neighbours), so the first ``settle``
    enforces every group once and afterwards only a committed write to a
    group's victim or neighbour can change its condition --
    ``after_write`` enforces exactly those groups.
    """

    settles = True

    def __init__(self, semantics: list[VectorSemantics]):
        grouped: dict[tuple, int] = {}
        for lane, sem in enumerate(semantics):
            key = (sem.cell, tuple(sem.extra), sem.value)
            grouped[key] = grouped.get(key, 0) | (1 << lane)
        self._groups = [
            (victim, neighbors, force_to, mask)
            for (victim, neighbors, force_to), mask in grouped.items()
        ]
        self._by_cell: dict[int, list[tuple]] = {}
        self._enforced = False

    def install(self, memory: PackedMemoryArray) -> None:
        self._groups = [
            (victim,
             tuple((cell, memory.broadcast(pattern))
                   for cell, pattern in neighbors),
             memory.broadcast(force_to),
             memory.row_from_int(mask))
            for victim, neighbors, force_to, mask in self._groups
        ]
        self._by_cell = {}
        for group in self._groups:
            for cell in {group[0], *(cell for cell, _ in group[1])}:
                self._by_cell.setdefault(cell, []).append(group)

    def _enforce(self, memory: PackedMemoryArray, groups) -> None:
        for victim, neighbors, force_column, row in groups:
            held = row
            for cell, pattern_column in neighbors:
                held = held & memory.match_lanes(cell, pattern_column)
                if not memory.any(held):
                    break
            else:
                memory.blend_lanes(victim, memory.spread(held),
                                   force_column)

    def after_write(self, addr: int, old, committed,
                    memory: PackedMemoryArray) -> None:
        groups = self._by_cell.get(addr)
        if groups is not None:
            self._enforce(memory, groups)

    def settle(self, memory: PackedMemoryArray) -> None:
        if self._enforced:
            return
        self._enforced = True
        self._enforce(memory, self._groups)


class _BridgeLanes(LaneFaultModel):
    """BF lanes: a shorted pair settles to its wired-AND/OR.

    Each lane's pair merges bit-wise and both cells take the merged
    value (in the lane's planes only, via a whole-cell blend).  The
    merged value is a fixed point of the short, so the CFst enforcement
    argument applies unchanged: one initial settle, then re-short after
    every committed write touching either end.
    """

    settles = True

    def __init__(self, semantics: list[VectorSemantics]):
        grouped: dict[tuple[int, int, int], int] = {}
        for lane, sem in enumerate(semantics):
            key = (sem.cell, sem.victim_cell, sem.value)
            grouped[key] = grouped.get(key, 0) | (1 << lane)
        self._groups = [
            (cell_a, cell_b, wired_or, mask)
            for (cell_a, cell_b, wired_or), mask in grouped.items()
        ]
        self._by_cell: dict[int, list[tuple]] = {}
        self._enforced = False

    def install(self, memory: PackedMemoryArray) -> None:
        self._groups = [
            (cell_a, cell_b, wired_or,
             memory.spread(memory.row_from_int(mask)))
            for cell_a, cell_b, wired_or, mask in self._groups
        ]
        self._by_cell = {}
        for group in self._groups:
            self._by_cell.setdefault(group[0], []).append(group)
            self._by_cell.setdefault(group[1], []).append(group)

    def _enforce(self, memory: PackedMemoryArray, groups) -> None:
        for cell_a, cell_b, wired_or, select in groups:
            value_a = memory.read_lanes(cell_a)
            value_b = memory.read_lanes(cell_b)
            merged = (value_a | value_b) if wired_or \
                else (value_a & value_b)
            memory.blend_lanes(cell_a, select, merged)
            memory.blend_lanes(cell_b, select, merged)

    def after_write(self, addr: int, old, committed,
                    memory: PackedMemoryArray) -> None:
        groups = self._by_cell.get(addr)
        if groups is not None:
            self._enforce(memory, groups)

    def settle(self, memory: PackedMemoryArray) -> None:
        if self._enforced:
            return
        self._enforced = True
        self._enforce(memory, self._groups)


class _RetentionLanes(LaneFaultModel):
    """DRF lanes: idle-aware decay driven by the executor's cycle clock.

    The scalar model (:class:`~repro.faults.retention.DataRetentionFault`)
    tracks the cell's last access time and applies the decay *lazily at
    the next read* (writing the decayed value back -- it is now the real
    content), while a write refreshes the timestamp without decaying.
    Every lane replays the identical access sequence, so the last-access
    time of a cell is a pure function of the stream -- one shared
    timestamp per cell serves all lanes, and only the (retention, decay
    value) grouping is per-lane.
    """

    transforms_reads = True
    timed = True

    def __init__(self, semantics: list[VectorSemantics]):
        grouped: dict[int, dict[tuple[int, int], int]] = {}
        for lane, sem in enumerate(semantics):
            per_cell = grouped.setdefault(sem.cell, {})
            key = (sem.extra[0], sem.value)
            per_cell[key] = per_cell.get(key, 0) | (1 << lane)
        self._groups: dict[int, object] = grouped
        self._last: dict[int, int] = {}
        self._now = 0
        self._memory: PackedMemoryArray | None = None

    def install(self, memory: PackedMemoryArray) -> None:
        self._memory = memory
        self._groups = {
            cell: [(retention, memory.broadcast(decay_to),
                    memory.spread(memory.row_from_int(mask)))
                   for (retention, decay_to), mask in per_cell.items()]
            for cell, per_cell in self._groups.items()
        }

    def clock(self, cycle: int) -> None:
        self._now = cycle

    def transform_read(self, addr: int, sensed, port: int = 0):
        # Decay is a property of the cell, not of the reading port.
        groups = self._groups.get(addr)
        if groups is None:
            return sensed
        last = self._last.get(addr)
        if last is not None:  # never-accessed cells do not decay
            memory = self._memory
            elapsed = self._now - last
            for retention, decay_column, select in groups:
                if elapsed > retention:
                    # The decayed value is now the real cell content.
                    memory.blend_lanes(addr, select, decay_column)
                    sensed = memory.read_lanes(addr)
        self._last[addr] = self._now
        return sensed

    def transform_write(self, addr: int, old, new):
        if addr in self._groups:
            self._last[addr] = self._now
        return new


class _DecoderLanes(LaneFaultModel):
    """AF lanes: per-lane address-mapping overrides.

    Reproduces the canonical single-port read path
    (:class:`~repro.memory.ram.SinglePortRAM`, wired-AND) column-parallel:

    * a write to an address whose lane mapping *excludes* the address
      keeps the old stored value there (lost / redirected write), and
      the intended value lands on every redirect target;
    * a read observes, per lane group, the wired-AND of the mapped
      cells; an empty mapping (AF-A) observes the reading *port's* lane
      sense latch -- which every non-empty read on that port refreshes,
      exactly like the scalar sense amplifiers (one per port; flat
      single-port streams only ever touch latch 0, and AF-A lanes
      observe their own latch, so the blanket refresh is a no-op for
      them, as in the scalar path);
    * a cycle group whose writes land on one physical cell in some
      lane's mapping marks that lane detected
      (:meth:`~repro.memory.packed.LaneFaultModel
      .group_write_conflicts`) -- the scalar executor raises
      ``PortConflictError`` there, which the campaign counts as a
      detection.
    """

    transforms_reads = True
    maps_addresses = True

    def __init__(self, semantics: list[VectorSemantics]):
        lost: dict[int, int] = {}
        redirects: dict[int, dict[int, int]] = {}
        read_groups: dict[int, dict[tuple[int, ...], int]] = {}
        for lane, sem in enumerate(semantics):
            bit = 1 << lane
            for addr, cells in sem.extra:
                if addr not in cells:
                    lost[addr] = lost.get(addr, 0) | bit
                for target in cells:
                    if target != addr:
                        targets = redirects.setdefault(addr, {})
                        targets[target] = targets.get(target, 0) | bit
                group = read_groups.setdefault(addr, {})
                group[cells] = group.get(cells, 0) | bit
        self._lost: dict[int, object] = lost
        self._redirects: dict[int, object] = redirects
        self._read_groups: dict[int, object] = read_groups
        #: per-lane address -> physical cells mapping, for the group
        #: write-conflict check (lane order matches the pass).
        self._overrides = [dict(sem.extra) for sem in semantics]
        self._conflict_cache: dict[tuple[int, ...], int] = {}
        #: per-port lane latches; missing ports power up at 0 like the
        #: RAM's sense amps (``self._zero`` after install).
        self._sense: dict[int, object] = {}
        self._zero = 0
        self._pending = None  # intended value of the in-flight write
        self._memory: PackedMemoryArray | None = None

    def install(self, memory: PackedMemoryArray) -> None:
        self._memory = memory
        spread, row = memory.spread, memory.row_from_int
        self._lost = {addr: spread(row(mask))
                      for addr, mask in self._lost.items()}
        self._redirects = {
            addr: [(target, spread(row(mask)))
                   for target, mask in targets.items()]
            for addr, targets in self._redirects.items()
        }
        self._read_groups = {
            addr: [(cells, spread(row(mask)))
                   for cells, mask in groups.items()]
            for addr, groups in self._read_groups.items()
        }
        self._sense = {}
        self._zero = memory.col_from_int(0)

    def transform_write(self, addr: int, old, new):
        # The redirect targets need the *intended* value (per-lane for
        # "wa" records), not the post-substitution column: stash it for
        # after_write before the lost lanes keep their old content.
        self._pending = new
        lost = self._lost.get(addr)
        if lost is not None:
            new = (new & ~lost) | (old & lost)
        return new

    def after_write(self, addr: int, old, committed,
                    memory: PackedMemoryArray) -> None:
        targets = self._redirects.get(addr)
        if targets is not None:
            pending = self._pending
            for target, select in targets:
                memory.blend_lanes(target, select, pending)

    def transform_read(self, addr: int, sensed, port: int = 0):
        memory = self._memory
        groups = self._read_groups.get(addr)
        if groups is None:
            # Default mapping in every lane; the port's latches refresh.
            self._sense[port] = memory.copy_col(sensed)
            return sensed
        observed = sensed
        for cells, select in groups:
            if not cells:
                # AF-A: the port's sense amp keeps its last value.
                part = self._sense.get(port, self._zero)
            else:
                part = memory.read_lanes(cells[0])
                for cell in cells[1:]:
                    part = part & memory.read_lanes(cell)
            observed = (observed & ~select) | (part & select)
        self._sense[port] = memory.copy_col(observed)
        return observed

    def group_write_conflicts(self, addrs: tuple[int, ...]) -> int:
        # The stream repeats its write-address groups, so the per-lane
        # mapping walk (static per pass) is cached on the addr tuple.
        mask = self._conflict_cache.get(addrs)
        if mask is None:
            mask = 0
            for lane, overrides in enumerate(self._overrides):
                cells = [cell for addr in addrs
                         for cell in overrides.get(addr, (addr,))]
                if len(set(cells)) != len(cells):
                    mask |= 1 << lane
            self._conflict_cache[addrs] = mask
        return mask


_MODELS: dict[str, Callable[[list[VectorSemantics]], LaneFaultModel]] = {
    "stuck": _StuckLanes,
    "transition": _TransitionLanes,
    "coupling": _CouplingLanes,
    "stuck-open": _StuckOpenLanes,
    "state": _StateCouplingLanes,
    "npsf": _NpsfLanes,
    "bridge": _BridgeLanes,
    "retention": _RetentionLanes,
    "linked": _LinkedLanes,
    "decoder": _DecoderLanes,
}

#: Kinds whose lane models ship with the library.  Only these may run
#: as worker-side lane shards: a *runtime*-registered model exists in
#: this process but not necessarily in a pool worker (forked before the
#: registration) or a remote daemon, so those kinds always lane-resolve
#: in the parent.
_BUILTIN_KINDS = frozenset(_MODELS)

#: Minimum vectorizable fault count before the batched engine fans lane
#: passes out to workers.  Below it the passes finish faster in the
#: parent than the pool's dispatch round-trip; in particular small
#: fully-vectorizable campaigns never touch (or start) a pool.
LANE_SHARD_MIN_FAULTS = 4096

#: Floor for worker-side lane-chunk widths.  A lane pass costs one
#: stream replay regardless of width, so thin chunks multiply total
#: work; chunks only shrink below ``max_lanes`` to give each worker a
#: few per class.
LANE_SHARD_MIN_CHUNK = 256


def register_lane_model(
    kind: str,
    factory: Callable[[list[VectorSemantics]], LaneFaultModel],
) -> None:
    """Register a lane-model factory for a custom vector-semantics kind.

    ``factory(semantics)`` receives the descriptors of one class (one per
    lane, in lane order) and returns the
    :class:`~repro.memory.packed.LaneFaultModel` that applies them.  Once
    registered, :func:`run_campaign_batched` vectorizes faults whose
    :meth:`~repro.faults.base.Fault.vector_semantics` returns that kind;
    unregistered kinds take the scalar per-fault path.
    """
    if not kind:
        raise ValueError("kind must be a non-empty string")
    _MODELS[kind] = factory


def build_lane_model(kind: str,
                     semantics: list[VectorSemantics]) -> LaneFaultModel:
    """Lane-fault model for one vectorizable class.

    ``semantics[k]`` describes the fault lane *k* carries; ``kind`` is the
    shared :attr:`~repro.faults.base.VectorSemantics.kind` of the class
    (as produced by :func:`~repro.sim.campaign.partition_universe`).

    >>> from repro.faults import StuckAtFault
    >>> model = build_lane_model(
    ...     "stuck", [StuckAtFault(2, 1).vector_semantics()])
    >>> model.transform_write(2, 0, 0)   # lane 0 pinned to 1 at cell 2
    1
    """
    try:
        factory = _MODELS[kind]
    except KeyError:
        raise ValueError(
            f"no lane model for vector-semantics kind {kind!r} "
            f"(known: {sorted(_MODELS)})"
        ) from None
    return factory(semantics)


def run_campaign_batched(stream: OpStream, universe: Iterable[Fault],
                         ram_factory: Callable[[], object] | None = None,
                         workers: int = 0, chunk_size: int | None = None,
                         progress: Callable[[int, int], None] | None = None,
                         reference_check: bool = True,
                         max_lanes: int = 4096,
                         pool: WorkerPool | None = None,
                         backend: str = "auto",
                         scheduler: str = "stealing",
                         cost_model: CostModel | None = None
                         ) -> CampaignResult:
    """Replay one compiled stream against a universe, one pass per class.

    Same contract and verdicts as
    :func:`~repro.sim.campaign.run_campaign` -- outcomes in universe
    order, identical ``detected`` flags -- but vectorizable faults
    (stuck-at, transition, stuck-open, CFin/CFid/CFst, NPSF, bridging,
    retention, linked and decoder faults, on bit- and word-oriented
    geometries alike) are resolved lane-parallel on a
    :class:`~repro.memory.packed.PackedMemoryArray`, and only the
    remainder takes the scalar per-fault path.

    Parameters
    ----------
    stream:
        The compiled test.  The packed backend models the canonical
        front-ends -- ``SinglePortRAM(n, m)`` for flat streams and
        ``MultiPortRAM(n, m, ports)`` for cycle-grouped (multi-port)
        ones, whose groups execute as single lane-parallel memory
        cycles (reads sense pre-cycle columns, then writes commit;
        decoder port conflicts count as detections).  Word-oriented
        streams get ``m`` bit planes per lane.
    universe:
        Iterable of faults; outcome order preserved.
    ram_factory:
        A custom front-end (scramblers, exotic decoders) changes replay
        semantics the packed backend does not model, so a non-None
        factory delegates everything to :func:`run_campaign`.
    workers:
        ``N > 0`` (or an explicit ``pool``) runs pool work
        *concurrently* with the parent's lane passes: the scalar
        remainder -- and, for universes past ``LANE_SHARD_MIN_FAULTS``
        vectorizable faults, whole lane-pass chunks -- is queued first,
        the parent resolves its share of the classes while workers chew,
        then every verdict set merges by universe index.  Universes
        carrying a :class:`~repro.faults.universe.UniverseSpec` shard as
        ``(spec, index range)`` -- workers re-derive their faults
        locally -- and anything else ships explicit fault chunks.  Falls
        back to single-process execution when the platform cannot spawn
        workers.  Small fully-vectorizable universes never touch (or
        start) a pool at all.
    chunk_size:
        ``None`` (default) sizes scalar shards by the per-class
        :class:`~repro.sim.costs.CostModel`; a positive int forces the
        legacy fixed-size shards.
    progress:
        ``progress(done, total)`` with ``total`` the full universe size,
        fired after each lane chunk and each fallback chunk.
    reference_check:
        Validate the stream on a fault-free memory first (shared cache
        with the scalar engine).
    max_lanes:
        Lane-width cap per pass; a class with more faults is chunked.
    pool:
        Explicit pool for the shards -- a
        :class:`~repro.sim.pool.WorkerPool` or a
        :class:`~repro.sim.remote.RemotePool` of worker daemons;
        default is the process-wide shared pool for ``workers``.
    scheduler:
        ``"stealing"`` (default) lets workers return the remainder of
        an over-budget scalar shard to the shared queue; ``"static"``
        runs the planned shards as cut.  Verdicts are byte-identical
        either way.
    cost_model:
        Overrides the default :class:`~repro.sim.costs.CostModel` for
        scalar shard planning.
    backend:
        Column-storage backend for the lane passes -- ``"int"``,
        ``"numpy"`` or ``"auto"`` (see
        :class:`~repro.memory.packed.PackedMemoryArray`).  Both backends
        produce byte-identical verdicts; the switch exists for
        environments without numpy and for equivalence testing.

    ``CampaignResult.faults_batched`` reports how many faults the lane
    passes resolved; ``operations_replayed`` counts lane-pass records
    once per *pass* plus the scalar fallback's per-fault records (so it
    measures work done, not work avoided).

    >>> from repro.faults import single_cell_universe
    >>> from repro.march.library import MARCH_C_MINUS
    >>> from repro.sim.compilers import compile_march
    >>> stream = compile_march(MARCH_C_MINUS, 16)
    >>> result = run_campaign_batched(
    ...     stream, single_cell_universe(16, classes=("SAF", "TF")))
    >>> result.detection_ratio, result.faults_batched
    (1.0, 64)
    """
    if max_lanes < 1:
        raise ValueError(f"max_lanes must be >= 1, got {max_lanes}")
    if ram_factory is not None:
        # A custom front-end may remap addresses or ports in ways the
        # plane-packed backend does not model, so a non-None factory
        # delegates everything to the scalar engine (which still gets
        # compiled replay and process sharding), keeping the batched
        # entry point universally callable.
        return run_campaign(stream, universe, ram_factory=ram_factory,
                            workers=workers, chunk_size=chunk_size,
                            progress=progress,
                            reference_check=reference_check, pool=pool,
                            scheduler=scheduler, cost_model=cost_model)
    n = stream.n
    chunk_size = _check_chunk_size(chunk_size)
    _check_scheduler(scheduler)
    if reference_check:
        _reference_pass(stream, n, stream.m)
    # Clamped once here: a pool failure mid-drain re-runs the remainder
    # serially, and the hook must never see ``done`` go backwards.
    progress = _monotonic_progress(progress)
    faults = list(universe)
    total = len(faults)
    classes, fallback = partition_universe(faults, n, stream.m)
    # A custom fault may return a VectorSemantics kind nobody registered
    # a lane model for; honour the any-universe contract by routing it to
    # the scalar path instead of failing mid-campaign.
    unknown_kinds = [k for k in classes if k not in _MODELS]
    for kind in unknown_kinds:
        fallback.extend((index, fault)
                        for index, fault, _ in classes.pop(kind))
    fallback.sort(key=lambda pair: pair[0])
    result = CampaignResult(stream_name=stream.name, n=n, m=stream.m,
                            reference_operations=stream.reference_operations
                            or 0,
                            faults_batched=total - len(fallback))
    # Queue pool work *before* the parent's lane passes: workers chew on
    # scalar-fallback shards -- and, past LANE_SHARD_MIN_FAULTS, whole
    # lane-pass chunks -- while the parent resolves its share of the
    # vectorizable classes; the verdict sets are disjoint by
    # construction, so they merge by universe index afterwards.  A
    # runtime-registered lane kind may not exist in the workers, so spec
    # sharding (workers re-derive their faults locally) is only sound
    # when the partition used no such kind, and only built-in kinds ever
    # ship as lane shards; otherwise explicit faults travel.
    spec = getattr(universe, "spec", None) if not unknown_kinds else None
    use_pool = (workers > 0 or pool is not None) and total > 1
    effective = workers or (getattr(pool, "workers", 0) if pool is not None
                            else 0)
    shipped: dict[str, list] = {}
    local_classes = classes
    if use_pool and total - len(fallback) >= LANE_SHARD_MIN_FAULTS:
        shipped = {kind: members for kind, members in classes.items()
                   if kind in _BUILTIN_KINDS}
        local_classes = {kind: members for kind, members in classes.items()
                         if kind not in shipped}
    pending = None
    if use_pool and (fallback or shipped):
        pending = _start_shard_flow(stream, fallback, shipped, spec,
                                    effective, pool, chunk_size, scheduler,
                                    cost_model, max_lanes, backend)
    if pending is None and shipped:
        # No pool after all: the parent runs every lane pass itself.
        local_classes, shipped = classes, {}
    verdicts: list[bool] = [False] * total
    done = 0

    def run_lane_pass(kind: str, members: list) -> None:
        nonlocal done
        for base in range(0, len(members), max_lanes):
            chunk = members[base:base + max_lanes]
            model = build_lane_model(kind, [sem for _, _, sem in chunk])
            packed = PackedMemoryArray(n, lanes=len(chunk), m=stream.m,
                                       backend=backend)
            model.install(packed)
            detected, executed = packed.apply_stream(
                stream.ops, tables=stream.tables, model=model
            )
            result.operations_replayed += executed
            for lane, (index, _fault, _sem) in enumerate(chunk):
                verdicts[index] = bool((detected >> lane) & 1)
            done += len(chunk)
            if progress is not None:
                progress(done, total)

    try:
        for kind in sorted(local_classes):
            run_lane_pass(kind, local_classes[kind])
    except BaseException:
        # A lane pass blew up (buggy custom lane model, Ctrl-C) with
        # shards already queued: kill them with the pool so they cannot
        # linger and tax the next campaign on a shared pool.
        if pending is not None:
            pending[0].mark_broken()
        raise

    flow_ops = 0

    def merge(tag, lo, hi, data) -> int:
        # Position-keyed, so completion/steal order cannot change the
        # result.  Ops accumulate separately and are committed only on a
        # successful drain -- a mid-drain pool failure re-runs the
        # remainder serially and must not double-count.
        nonlocal flow_ops
        if tag == "scalar":
            for (index, _fault), (det, executed) in zip(fallback[lo:hi],
                                                        data, strict=True):
                verdicts[index] = det
                flow_ops += executed
        else:  # "lane": one worker-side pass over class members [lo:hi)
            kind, detected, executed = data
            for lane, (index, _fault, _sem) in enumerate(
                    classes[kind][lo:hi]):
                verdicts[index] = bool((detected >> lane) & 1)
            flow_ops += executed
        return hi - lo

    finished = False
    if pending is not None:
        expected = len(fallback) + sum(len(m) for m in shipped.values())
        final = _drain_shard_flow(pending, merge, progress, done, total,
                                  expected)
        if final is not None:
            result.workers_used = effective
            result.operations_replayed += flow_ops
            done = final
            finished = True
    if not finished and (fallback or shipped):
        # Serial path, or process fan-out unavailable / broken mid-run:
        # re-run everything the pool owed (partial merges are simply
        # overwritten; the monotonic progress clamp hides the rewind).
        for kind in sorted(shipped):
            run_lane_pass(kind, shipped[kind])
        if fallback:
            batched_done = done

            def _remap(sub_done: int, _sub_total: int) -> None:
                progress(batched_done + sub_done, total)

            scalar = run_campaign(stream, [fault for _, fault in fallback],
                                  chunk_size=chunk_size,
                                  progress=_remap if progress is not None
                                  else None,
                                  reference_check=False)
            result.operations_replayed += scalar.operations_replayed
            for (index, _fault), (_f, detected) in zip(fallback,
                                                       scalar.outcomes,
                                                       strict=True):
                verdicts[index] = detected
    result.outcomes = [(fault, verdicts[index])
                       for index, fault in enumerate(faults)]
    return result


def _start_shard_flow(stream, fallback, shipped, spec, workers, pool,
                      chunk_size, scheduler, cost_model, max_lanes,
                      backend):
    """Broadcast the stream and queue scalar + lane shards on one flow.

    Scalar shards follow the cost-model plan (budgeted when stealing);
    lane chunks are cut so every worker gets a few per class without
    multiplying pass count (a pass costs one replay regardless of
    width).  Returns ``(pool, flow, outstanding)`` with tasks already
    flowing, or ``None`` when no pool is available (the caller then runs
    everything serially).
    """
    if pool is None:
        pool = shared_pool(workers)
    model = cost_model or DEFAULT_COST_MODEL
    budget = STEAL_BUDGET_S if scheduler == "stealing" else None
    n, m = stream.n, stream.m
    try:
        token = pool.broadcast_stream(stream)
        flow = pool.flow(_run_task)
    except POOL_FAILURES:
        pool.mark_broken()
        return None
    outstanding = 0
    scalar_faults = [fault for _, fault in fallback]
    for lo, hi in model.plan(scalar_faults,
                             workers=getattr(pool, "workers", workers),
                             chunk_size=chunk_size):
        flow.put(_scalar_task("fallback", token, spec, lo, hi, scalar_faults,
                              None, n, m, budget))
        outstanding += 1
    pool_workers = getattr(pool, "workers", workers) or workers or 1
    for kind in sorted(shipped):
        members = shipped[kind]
        width = min(max_lanes,
                    max(LANE_SHARD_MIN_CHUNK,
                        -(-len(members) // (pool_workers * 2))))
        for base in range(0, len(members), width):
            hi = min(base + width, len(members))
            if spec is not None:
                flow.put(("lane", token, spec, kind, base, hi, None,
                          n, m, backend))
            else:
                chunk_faults = [fault for _i, fault, _s in members[base:hi]]
                flow.put(("lane-list", token, None, kind, base, hi,
                          chunk_faults, n, m, backend))
            outstanding += 1
    return pool, flow, outstanding


def _drain_shard_flow(pending, merge, progress, done, total, expected):
    """Drain the campaign's flow; ``None`` if the pool broke mid-run."""
    pool, flow, outstanding = pending
    try:
        try:
            return _drain_flow(flow, outstanding, expected, progress, done,
                               total, merge)
        finally:
            flow.close()
    except POOL_FAILURES:
        pool.mark_broken()
        return None
