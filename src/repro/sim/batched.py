"""The bit-packed campaign engine: one replay pass per fault *class*.

The scalar campaign engine (:func:`repro.sim.campaign.run_campaign`)
replays a compiled :class:`~repro.sim.ir.OpStream` once per fault.  For
the fault classes that dominate real universes -- stuck-at, transition,
stuck-open, and coupling -- the *operations* of every one of those
replays are identical; only the fault site differs.  This engine
exploits that: it packs one fault per *lane* of a
:class:`~repro.memory.packed.PackedMemoryArray` (plain Python ints as
lane-parallel bit columns, ``m`` planes per lane for word-oriented
geometries) and replays the stream **once per class**, applying each
lane's fault as a mask operation positioned in the faulty bit's plane:

* stuck-at:   ``new |= sa1_mask[addr]``, ``new &= ~sa0_mask[addr]``
* transition: ``new &= ~(~old & new & tf_up_mask[addr])`` (blocked rise),
  and the dual for blocked falls
* stuck-open: writes to the open cell are masked off, and reads route
  through a per-lane sense latch (the classical two-read SOF model)
* coupling:   on an aggressor-bit transition, ``victim ^= fired`` (CFin)
  or force the fired lanes (CFid)
* state coupling (CFst): after every committed write, lanes whose
  aggressor bit holds the coupling state force their victim bit -- the
  lane-parallel analogue of the scalar ``settle`` hook

A checked read XORs the packed word with the broadcast expectation; every
lane with a non-zero bit in any plane is a detection.  π-test recurrences
stay exact through per-lane accumulator columns, with GF(2^m) constant
multipliers lowered to per-plane shift/XOR plans (see
:meth:`~repro.memory.packed.PackedMemoryArray.apply_stream`), so this is
not an approximation: each lane computes bit-for-bit what its dedicated
scalar replay would.

Cost: ``O(classes * stream_length)`` big-int operations instead of
``O(|universe| * detection_prefix)`` scalar ones -- on single-cell
dominated universes an order of magnitude faster (see
``benchmarks/bench_campaign_engine.py``).  Faults that cannot be
expressed as mask algebra (NPSF, bridging, decoder, retention, linked)
fall back per fault to :func:`~repro.sim.campaign.run_campaign`, so
:func:`run_campaign_batched` accepts *any* universe and returns verdicts
identical to the scalar engines, in universe order.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.faults.base import Fault, VectorSemantics
from repro.memory.packed import LaneFaultModel, PackedMemoryArray
from repro.sim.campaign import (
    POOL_FAILURES,
    CampaignResult,
    _drain_shards,
    _monotonic_progress,
    _reference_pass,
    _submit_shards,
    partition_universe,
    run_campaign,
)
from repro.sim.ir import OpStream
from repro.sim.pool import WorkerPool, shared_pool

__all__ = ["run_campaign_batched", "build_lane_model", "register_lane_model"]


class _StuckLanes(LaneFaultModel):
    """SA0/SA1 lanes: per-address force masks.

    The physical node is pinned, so the mask is applied to the initial
    state and to every committed write -- with one fault per lane and no
    other mutators in a stuck lane, the stored value is forced at every
    observable point, matching the scalar model's read/write/settle hooks.
    Word-oriented faults position their lane bit in the faulty bit's
    plane (``sem.bit * lanes + lane``); the mask algebra is unchanged.
    """

    def __init__(self, semantics: list[VectorSemantics]):
        stride = len(semantics)  # == the pass's lane count (plane stride)
        self._sa1: dict[int, int] = {}
        self._sa0: dict[int, int] = {}
        for lane, sem in enumerate(semantics):
            target = self._sa1 if sem.value else self._sa0
            bit = 1 << (sem.bit * stride + lane)
            target[sem.cell] = target.get(sem.cell, 0) | bit

    def install(self, memory: PackedMemoryArray) -> None:
        # Cells power up at 0; stuck-at-1 lanes are forced immediately.
        for addr, mask in self._sa1.items():
            memory.words[addr] |= mask

    def transform_write(self, addr: int, old: int, new: int) -> int:
        mask = self._sa1.get(addr)
        if mask is not None:
            new |= mask
        mask = self._sa0.get(addr)
        if mask is not None:
            new &= ~mask
        return new


class _TransitionLanes(LaneFaultModel):
    """TF-up/TF-down lanes: the blocked transition keeps the old bit.

    The up and down masks address disjoint lanes (one fault per lane), so
    applying them in sequence never double-transforms a lane.
    """

    def __init__(self, semantics: list[VectorSemantics]):
        stride = len(semantics)
        self._up: dict[int, int] = {}
        self._down: dict[int, int] = {}
        for lane, sem in enumerate(semantics):
            target = self._up if sem.rising else self._down
            bit = 1 << (sem.bit * stride + lane)
            target[sem.cell] = target.get(sem.cell, 0) | bit

    def transform_write(self, addr: int, old: int, new: int) -> int:
        mask = self._up.get(addr)
        if mask is not None:
            new &= ~(~old & new & mask)  # blocked rise: bit stays 0
        mask = self._down.get(addr)
        if mask is not None:
            new |= old & ~new & mask  # blocked fall: bit stays 1
        return new


class _CouplingLanes(LaneFaultModel):
    """CFin/CFid lanes: aggressor transitions corrupt per-lane victims.

    Lanes are grouped by ``(aggressor bit, victim bit, edge, effect)`` so
    one committed write touches each distinct victim word once, with a
    mask covering every lane of that group that fired.  The aggressor
    mask sits in the aggressor bit's plane; ``delta`` repositions the
    fired lanes into the victim bit's plane (zero for bit-oriented and
    same-bit word faults), which also covers the intra-word case where
    aggressor and victim are bits of one cell.
    """

    def __init__(self, semantics: list[VectorSemantics]):
        stride = len(semantics)
        groups: dict[tuple[int, int, int, int, bool, int | None], int] = {}
        for lane, sem in enumerate(semantics):
            key = (sem.cell, sem.bit, sem.victim_cell, sem.victim_bit,
                   bool(sem.rising), sem.value)
            groups[key] = groups.get(key, 0) | (1 << lane)
        self._by_aggressor: dict[
            int, list[tuple[int, bool, int | None, int, int]]] = {}
        for (aggr, a_bit, victim, v_bit, rising, force_to), mask in \
                groups.items():
            self._by_aggressor.setdefault(aggr, []).append(
                (victim, rising, force_to, mask << (a_bit * stride),
                 (v_bit - a_bit) * stride)
            )

    def after_write(self, addr: int, old: int, committed: int,
                    memory: PackedMemoryArray) -> None:
        groups = self._by_aggressor.get(addr)
        if groups is None:
            return
        rise = ~old & committed  # lanes whose aggressor bit went 0 -> 1
        fall = old & ~committed  # lanes whose aggressor bit went 1 -> 0
        words = memory.words
        for victim, rising, force_to, mask, delta in groups:
            fired = (rise if rising else fall) & mask
            if not fired:
                continue
            if delta:  # move from the aggressor plane to the victim plane
                fired = fired << delta if delta > 0 else fired >> -delta
            if force_to is None:  # CFin: invert the victim bit
                words[victim] ^= fired
            elif force_to:  # CFid -> 1
                words[victim] |= fired
            else:  # CFid -> 0
                words[victim] &= ~fired


class _StuckOpenLanes(LaneFaultModel):
    """SOF lanes: per-lane sense-latch bit, open cell cut off.

    The classical stuck-open model (see
    :class:`~repro.faults.stuck_open.StuckOpenFault`): writes never
    reach the open cell, and reading it returns whatever the sense
    amplifier latched on the *previous* read.  Lane-parallel, the latch
    is one bit per lane (``self._sense``): a read of any address
    refreshes the latch bit of every lane whose open cell is elsewhere,
    while lanes open *at* that address keep -- and observe -- their
    latched bit.
    """

    transforms_reads = True

    def __init__(self, semantics: list[VectorSemantics]):
        self._open: dict[int, int] = {}
        self._sense = 0  # per-lane latch; powers up at initial_sense
        for lane, sem in enumerate(semantics):
            self._open[sem.cell] = self._open.get(sem.cell, 0) | (1 << lane)
            if sem.value:
                self._sense |= 1 << lane

    def install(self, memory: PackedMemoryArray) -> None:
        # SOF is a whole-cell fault: on a word-oriented geometry the open
        # mask must cut off *every* plane of the lane's cell, so the
        # single-plane masks built in __init__ are replicated across the
        # memory's m planes here (the first point the geometry is known).
        # The latch keeps its compact power-up value: initial_sense is a
        # 0/1 cell value, i.e. bit 0 -- plane 0 -- of the word.
        if memory.m == 1:
            return
        stride = memory.lanes
        replicate = sum(1 << (bit * stride) for bit in range(memory.m))
        # Lane positions (< stride) and plane offsets (multiples of
        # stride) never collide, so the product is a carry-free spread of
        # every open lane bit across all planes.
        self._open = {cell: mask * replicate
                      for cell, mask in self._open.items()}

    def transform_read(self, addr: int, sensed: int) -> int:
        open_here = self._open.get(addr)
        if open_here is None:
            # Healthy read in every lane: all latches refresh.
            self._sense = sensed
            return sensed
        # Lanes open at this address observe (and keep) their latch;
        # every other lane senses the stored bit and refreshes.
        observed = (self._sense & open_here) | (sensed & ~open_here)
        self._sense = observed
        return observed

    def transform_write(self, addr: int, old: int, new: int) -> int:
        open_here = self._open.get(addr)
        if open_here:
            new = (new & ~open_here) | (old & open_here)  # write lost
        return new


class _StateCouplingLanes(LaneFaultModel):
    """CFst lanes: while the aggressor bit holds a state, the victim bit
    is forced.

    The scalar model enforces its condition in ``settle`` (after every
    memory cycle) and in ``after_write`` (immediately, when the write
    touches the aggressor or victim cell).  Lane-parallel that becomes:
    the *first* ``settle`` of a pass enforces every group (the scalar
    engines' first post-cycle settle -- cells power up un-forced, so a
    read issued before any cycle completes still observes the raw
    state), and afterwards only a committed write can change a group's
    aggressor state or overwrite its victim, so ``after_write`` enforces
    exactly the groups touching the written cell.  Lanes are disjoint
    across groups (one fault per lane), so enforcement never cascades.
    """

    settles = True

    def __init__(self, semantics: list[VectorSemantics]):
        stride = len(semantics)
        grouped: dict[tuple[int, int, int, int, bool, int], int] = {}
        for lane, sem in enumerate(semantics):
            key = (sem.cell, sem.bit, sem.victim_cell, sem.victim_bit,
                   bool(sem.rising), sem.value)
            grouped[key] = grouped.get(key, 0) | (1 << lane)
        #: (aggr_cell, aggr_shift, victim_cell, victim_shift, state,
        #:  force_to, lane_mask) per distinct coupling condition.
        self._groups = [
            (a_cell, a_bit * stride, v_cell, v_bit * stride, state,
             force_to, mask)
            for (a_cell, a_bit, v_cell, v_bit, state, force_to), mask
            in grouped.items()
        ]
        self._by_cell: dict[int, list[tuple]] = {}
        for group in self._groups:
            self._by_cell.setdefault(group[0], []).append(group)
            if group[2] != group[0]:
                self._by_cell.setdefault(group[2], []).append(group)
        self._enforced = False

    def _enforce(self, memory: PackedMemoryArray, groups) -> None:
        words = memory.words
        for a_cell, a_shift, v_cell, v_shift, state, force_to, mask in \
                groups:
            aggressor = (words[a_cell] >> a_shift) & mask
            # Lanes (within this group) whose aggressor bit equals the
            # coupling state; aggressor is a subset of mask, so the
            # state-0 complement is just the XOR.
            held = aggressor if state else aggressor ^ mask
            if not held:
                continue
            if force_to:
                words[v_cell] |= held << v_shift
            else:
                words[v_cell] &= ~(held << v_shift)

    def after_write(self, addr: int, old: int, committed: int,
                    memory: PackedMemoryArray) -> None:
        groups = self._by_cell.get(addr)
        if groups is not None:
            self._enforce(memory, groups)

    def settle(self, memory: PackedMemoryArray) -> None:
        if self._enforced:
            return
        self._enforced = True
        self._enforce(memory, self._groups)


_MODELS: dict[str, Callable[[list[VectorSemantics]], LaneFaultModel]] = {
    "stuck": _StuckLanes,
    "transition": _TransitionLanes,
    "coupling": _CouplingLanes,
    "stuck-open": _StuckOpenLanes,
    "state": _StateCouplingLanes,
}


def register_lane_model(
    kind: str,
    factory: Callable[[list[VectorSemantics]], LaneFaultModel],
) -> None:
    """Register a lane-model factory for a custom vector-semantics kind.

    ``factory(semantics)`` receives the descriptors of one class (one per
    lane, in lane order) and returns the
    :class:`~repro.memory.packed.LaneFaultModel` that applies them.  Once
    registered, :func:`run_campaign_batched` vectorizes faults whose
    :meth:`~repro.faults.base.Fault.vector_semantics` returns that kind;
    unregistered kinds take the scalar per-fault path.
    """
    if not kind:
        raise ValueError("kind must be a non-empty string")
    _MODELS[kind] = factory


def build_lane_model(kind: str,
                     semantics: list[VectorSemantics]) -> LaneFaultModel:
    """Lane-fault model for one vectorizable class.

    ``semantics[k]`` describes the fault lane *k* carries; ``kind`` is the
    shared :attr:`~repro.faults.base.VectorSemantics.kind` of the class
    (as produced by :func:`~repro.sim.campaign.partition_universe`).

    >>> from repro.faults import StuckAtFault
    >>> model = build_lane_model(
    ...     "stuck", [StuckAtFault(2, 1).vector_semantics()])
    >>> model.transform_write(2, 0, 0)   # lane 0 pinned to 1 at cell 2
    1
    """
    try:
        factory = _MODELS[kind]
    except KeyError:
        raise ValueError(
            f"no lane model for vector-semantics kind {kind!r} "
            f"(known: {sorted(_MODELS)})"
        ) from None
    return factory(semantics)


def run_campaign_batched(stream: OpStream, universe: Iterable[Fault],
                         ram_factory: Callable[[], object] | None = None,
                         workers: int = 0, chunk_size: int = 128,
                         progress: Callable[[int, int], None] | None = None,
                         reference_check: bool = True,
                         max_lanes: int = 4096,
                         pool: WorkerPool | None = None) -> CampaignResult:
    """Replay one compiled stream against a universe, one pass per class.

    Same contract and verdicts as
    :func:`~repro.sim.campaign.run_campaign` -- outcomes in universe
    order, identical ``detected`` flags -- but vectorizable faults
    (stuck-at, transition, stuck-open, CFin/CFid/CFst, on bit- and
    word-oriented geometries alike) are resolved lane-parallel on a
    :class:`~repro.memory.packed.PackedMemoryArray`, and only the
    remainder takes the scalar per-fault path.

    Parameters
    ----------
    stream:
        The compiled test.  The packed backend models the canonical
        ``SinglePortRAM(n, m)`` -- word-oriented streams get ``m``
        bit planes per lane; only cycle-grouped (multi-port) streams
        are delegated wholly to :func:`run_campaign`.
    universe:
        Iterable of faults; outcome order preserved.
    ram_factory:
        A custom front-end (scramblers, multi-port) changes replay
        semantics the packed backend does not model, so a non-None
        factory also delegates everything to :func:`run_campaign`.
    workers:
        ``N > 0`` runs the scalar-fallback remainder on the persistent
        ``shared_pool(N)`` (or ``pool``) *concurrently* with the lane
        passes: the remainder shards are queued first, the parent
        resolves the vectorizable classes while workers replay scalar
        faults, then both verdict sets are merged.  Universes carrying a
        :class:`~repro.faults.universe.UniverseSpec` shard as ``(spec,
        index range)`` -- workers re-derive the fallback list locally --
        and anything else ships explicit fault chunks.  Falls back to
        single-process execution when the platform cannot spawn workers.
    chunk_size:
        Faults per scalar unit of work (and per ``progress`` callback).
    progress:
        ``progress(done, total)`` with ``total`` the full universe size,
        fired after each lane chunk and each fallback chunk.
    reference_check:
        Validate the stream on a fault-free memory first (shared cache
        with the scalar engine).
    max_lanes:
        Lane-width cap per pass; a class with more faults is chunked.
    pool:
        Explicit :class:`~repro.sim.pool.WorkerPool` for the fallback
        shards; default is the process-wide shared pool for ``workers``.

    ``CampaignResult.faults_batched`` reports how many faults the lane
    passes resolved; ``operations_replayed`` counts lane-pass records
    once per *pass* plus the scalar fallback's per-fault records (so it
    measures work done, not work avoided).

    >>> from repro.faults import single_cell_universe
    >>> from repro.march.library import MARCH_C_MINUS
    >>> from repro.sim.compilers import compile_march
    >>> stream = compile_march(MARCH_C_MINUS, 16)
    >>> result = run_campaign_batched(
    ...     stream, single_cell_universe(16, classes=("SAF", "TF")))
    >>> result.detection_ratio, result.faults_batched
    (1.0, 64)
    """
    if max_lanes < 1:
        raise ValueError(f"max_lanes must be >= 1, got {max_lanes}")
    if ram_factory is not None or stream.ports > 1:
        # A custom front-end may remap addresses or ports, and
        # cycle-grouped multi-port streams need per-cycle port semantics
        # the plane-packed backend does not model -- both outside the
        # packed contract.  The scalar engine handles every case
        # (multi-port campaigns still get compiled replay and process
        # sharding there), so the batched entry point stays universally
        # callable.
        return run_campaign(stream, universe, ram_factory=ram_factory,
                            workers=workers, chunk_size=chunk_size,
                            progress=progress,
                            reference_check=reference_check, pool=pool)
    n = stream.n
    if chunk_size < 1:
        raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
    if reference_check:
        _reference_pass(stream, n, stream.m)
    # Clamped once here: a pool failure mid-drain re-runs the remainder
    # serially, and the hook must never see ``done`` go backwards.
    progress = _monotonic_progress(progress)
    faults = list(universe)
    total = len(faults)
    classes, fallback = partition_universe(faults, n, stream.m)
    # A custom fault may return a VectorSemantics kind nobody registered
    # a lane model for; honour the any-universe contract by routing it to
    # the scalar path instead of failing mid-campaign.
    unknown_kinds = [k for k in classes if k not in _MODELS]
    for kind in unknown_kinds:
        fallback.extend((index, fault)
                        for index, fault, _ in classes.pop(kind))
    fallback.sort(key=lambda pair: pair[0])
    result = CampaignResult(stream_name=stream.name, n=n, m=stream.m,
                            reference_operations=stream.reference_operations
                            or 0,
                            faults_batched=total - len(fallback))
    # Queue the scalar remainder on the pool *before* the lane passes:
    # workers chew on scalar faults while the parent resolves the
    # vectorizable classes -- the two verdict sets are disjoint by
    # construction, so they merge by universe index afterwards.  A
    # runtime-registered lane kind may not exist in the workers, so spec
    # sharding (workers re-derive the fallback list) is only sound when
    # the partition used no such kind; otherwise ship explicit faults.
    pending = None
    if workers > 0 and fallback:
        spec = getattr(universe, "spec", None) if not unknown_kinds else None
        pending = _start_fallback_shards(stream, fallback, spec, workers,
                                         pool, chunk_size)
    verdicts: list[bool] = [False] * total
    done = 0
    try:
        for kind in sorted(classes):
            members = classes[kind]
            for base in range(0, len(members), max_lanes):
                chunk = members[base:base + max_lanes]
                model = build_lane_model(kind, [sem for _, _, sem in chunk])
                packed = PackedMemoryArray(n, lanes=len(chunk), m=stream.m)
                model.install(packed)
                detected, executed = packed.apply_stream(
                    stream.ops, tables=stream.tables, model=model
                )
                result.operations_replayed += executed
                for lane, (index, _fault, _sem) in enumerate(chunk):
                    verdicts[index] = bool((detected >> lane) & 1)
                done += len(chunk)
                if progress is not None:
                    progress(done, total)
    except BaseException:
        # A lane pass blew up (buggy custom lane model, Ctrl-C) with
        # fallback shards already queued: kill them with the pool so
        # they cannot linger and tax the next campaign on a shared pool.
        if pending is not None:
            pending[0].mark_broken()
        raise
    if fallback:
        outcomes = None
        if pending is not None:
            outcomes = _drain_fallback_shards(pending, progress, done, total,
                                              len(fallback))
        if outcomes is not None:
            result.workers_used = workers
            for (index, _fault), (detected, executed) in zip(fallback,
                                                             outcomes):
                verdicts[index] = detected
                result.operations_replayed += executed
        else:  # serial path, or process fan-out unavailable
            batched_done = done

            def _remap(sub_done: int, _sub_total: int) -> None:
                progress(batched_done + sub_done, total)

            scalar = run_campaign(stream, [fault for _, fault in fallback],
                                  chunk_size=chunk_size,
                                  progress=_remap if progress is not None
                                  else None,
                                  reference_check=False)
            result.operations_replayed += scalar.operations_replayed
            for (index, _fault), (_f, detected) in zip(fallback,
                                                       scalar.outcomes):
                verdicts[index] = detected
    result.outcomes = [(fault, verdicts[index])
                       for index, fault in enumerate(faults)]
    return result


def _start_fallback_shards(stream, fallback, spec, workers, pool,
                           chunk_size):
    """Queue the scalar remainder on a persistent pool.

    Returns ``(pool, tasks, result_iterator)`` with the shard tasks
    already flowing to the workers, or ``None`` when no pool is
    available (the caller then runs the remainder serially).
    """
    if pool is None:
        pool = shared_pool(workers)
    faults = [fault for _, fault in fallback]
    try:
        tasks, iterator = _submit_shards(pool, stream, faults, spec,
                                         "fallback", None, stream.n,
                                         stream.m, chunk_size)
        return pool, tasks, iterator
    except POOL_FAILURES:
        pool.mark_broken()
        return None


def _drain_fallback_shards(pending, progress, done, total, expected):
    """Collect the queued remainder; ``None`` if the pool broke mid-run."""
    pool, tasks, iterator = pending
    try:
        return _drain_shards(tasks, iterator, progress, done, total,
                             expected)
    except POOL_FAILURES:
        pool.mark_broken()
        return None
