"""The batched fault-campaign engine: one compiled stream, many faults.

The standard single-fault-injection methodology re-runs the complete test
for every fault of a universe.  Interpreted, that costs
``O(|universe| * test_length)`` with a large per-operation Python
constant (March element walks, LFSR stepping, background recomputation).
:func:`run_campaign` replays a compiled :class:`~repro.sim.ir.OpStream`
instead:

* **compile once** -- addresses, data values, recurrence multipliers and
  expected values are resolved a single time, not per fault;
* **cached fault-free reference pass** -- the stream is validated once on
  a healthy memory (zero mismatches) and the result cached on the stream;
* **early abort** -- a fault is *detected* at the first mismatching
  checked read, so the typical detected fault costs a short prefix of the
  stream, not the full test;
* **chunked execution** -- faults are processed in chunks, giving a
  progress hook and the unit of work for the opt-in ``workers=N``
  multiprocessing fan-out.

Replay cost is ``O(|universe| * detection_prefix)`` -- for strong tests
the mean prefix is a small fraction of the test length, which is where
the engine's wall-clock win over the interpreted loop comes from (see
``benchmarks/bench_campaign_engine.py``).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field as dataclass_field

from repro.faults.base import Fault, VectorSemantics
from repro.faults.injector import FaultInjector
from repro.memory.ram import SinglePortRAM
from repro.memory.stream_exec import apply_stream_generic
from repro.sim.ir import OpStream

__all__ = ["CampaignResult", "run_campaign", "partition_universe"]


@dataclass
class CampaignResult:
    """Outcome of one batched campaign.

    ``outcomes`` preserves universe order: ``(fault, detected)`` pairs,
    which is what lets :func:`repro.analysis.coverage.run_coverage` build
    a report identical to the interpreted per-fault loop's.
    ``faults_batched`` counts the faults the bit-packed engine resolved
    lane-parallel (always 0 for :func:`run_campaign`; see
    :func:`repro.sim.batched.run_campaign_batched`).
    """

    stream_name: str
    n: int
    m: int
    outcomes: list[tuple[Fault, bool]] = dataclass_field(default_factory=list)
    operations_replayed: int = 0
    reference_operations: int = 0
    workers_used: int = 0
    faults_batched: int = 0

    @property
    def faults_total(self) -> int:
        """Number of faults injected."""
        return len(self.outcomes)

    @property
    def detected_total(self) -> int:
        """Number of detected faults."""
        return sum(1 for _, detected in self.outcomes if detected)

    @property
    def detection_ratio(self) -> float:
        """Detected / total (1.0 for an empty campaign)."""
        if not self.outcomes:
            return 1.0
        return self.detected_total / self.faults_total

    @property
    def missed(self) -> list[Fault]:
        """The faults that escaped, in universe order."""
        return [fault for fault, detected in self.outcomes if not detected]

    def __repr__(self) -> str:
        return (
            f"CampaignResult({self.stream_name!r}, "
            f"{self.detected_total}/{self.faults_total} detected, "
            f"{self.operations_replayed} ops replayed)"
        )


def _default_ram_factory(n: int, m: int):
    return SinglePortRAM(n, m=m)


def _run_one(stream: OpStream, fault: Fault, ram_factory, n: int,
             m: int) -> tuple[bool, int]:
    """Inject one fault into a fresh RAM and replay with early abort."""
    ram = ram_factory() if ram_factory is not None else SinglePortRAM(n, m=m)
    if ram.n != n or ram.m != m:
        # A stream compiled for one geometry replayed on another would
        # silently test the wrong address space (or crash mid-replay).
        raise ValueError(
            f"ram_factory built a {ram.n}x{ram.m}-bit RAM but the stream "
            f"{stream.name!r} was compiled for {n}x{m}"
        )
    injector = FaultInjector([fault])
    injector.install(ram)
    mismatches: list[tuple[int, int]] = []
    apply = getattr(ram, "apply_stream", None)
    if apply is not None:
        executed = apply(stream.ops, tables=stream.tables,
                         stop_on_mismatch=True, mismatches=mismatches)
    else:
        # Duck-typed front-end honouring only the read/write/idle
        # contract: replay through the portable executor.
        executed = apply_stream_generic(ram, stream.ops, tables=stream.tables,
                                        stop_on_mismatch=True,
                                        mismatches=mismatches)
    injector.remove(ram)
    return bool(mismatches), executed


def partition_universe(
    universe: Iterable[Fault], n: int, m: int = 1,
) -> tuple[dict[str, list[tuple[int, Fault, VectorSemantics]]],
           list[tuple[int, Fault]]]:
    """Split a universe into lane-vectorizable classes and a remainder.

    A fault is vectorizable when it describes itself through
    :meth:`~repro.faults.base.Fault.vector_semantics` *and* the geometry
    is bit-oriented (``m == 1``, every referenced cell inside ``n``) --
    the contract of :class:`~repro.memory.packed.PackedMemoryArray`.
    Everything else lands in the scalar ``fallback`` list.

    Returns ``(classes, fallback)``: ``classes`` maps the descriptor kind
    (``"stuck"``, ``"transition"``, ``"coupling"``) to
    ``(universe_index, fault, semantics)`` triples, ``fallback`` holds
    ``(universe_index, fault)`` pairs; indices let the batched engine
    reassemble outcomes in universe order.

    >>> from repro.faults import single_cell_universe
    >>> classes, fallback = partition_universe(
    ...     single_cell_universe(8), n=8)
    >>> sorted((kind, len(group)) for kind, group in classes.items())
    [('stuck', 16), ('transition', 16)]
    >>> len(fallback)   # SOF + DRF are not mask-expressible
    16
    """
    classes: dict[str, list[tuple[int, Fault, VectorSemantics]]] = {}
    fallback: list[tuple[int, Fault]] = []
    for index, fault in enumerate(universe):
        semantics = fault.vector_semantics() if m == 1 else None
        if semantics is not None and _fits_bit_oriented(semantics, n):
            classes.setdefault(semantics.kind, []).append(
                (index, fault, semantics)
            )
        else:
            fallback.append((index, fault))
    return classes, fallback


def _fits_bit_oriented(semantics: VectorSemantics, n: int) -> bool:
    """True when every bit the descriptor touches exists in an n x 1 array."""
    if semantics.bit != 0 or not 0 <= semantics.cell < n:
        return False
    if semantics.victim_cell is None:
        return True
    return semantics.victim_bit == 0 and 0 <= semantics.victim_cell < n


# The compiled stream of the campaign a worker process serves; set once
# per worker by the pool initializer (inherited through fork, or pickled
# a single time on spawn platforms) instead of travelling with every
# chunk of faults.
_WORKER_STREAM: OpStream | None = None


def _init_worker(stream: OpStream) -> None:
    """Pool initializer: pin the campaign's stream in this worker."""
    global _WORKER_STREAM
    _WORKER_STREAM = stream


def _run_chunk(args) -> list[tuple[bool, int]]:
    """Multiprocessing unit of work: one chunk of faults, one process."""
    faults, ram_factory, n, m = args
    stream = _WORKER_STREAM
    return [_run_one(stream, fault, ram_factory, n, m) for fault in faults]


def _reference_pass(stream: OpStream, n: int, m: int) -> None:
    """Fault-free replay on a canonical perfect memory; caches success
    (and the stream's operation count) on the stream.

    Uses a default ``SinglePortRAM`` rather than ``ram_factory`` so the
    factory is called exactly once per fault (the legacy campaign
    contract) and so the check answers the right question: is the stream
    self-consistent on a *perfect* memory?
    """
    if stream.reference_verified:
        return
    ram = SinglePortRAM(n, m=m)
    mismatches: list[tuple[int, int]] = []
    executed = ram.apply_stream(stream.ops, tables=stream.tables,
                                mismatches=mismatches)
    if mismatches:
        index, actual = mismatches[0]
        record = stream.ops[index]
        raise ValueError(
            f"compiled stream {stream.name!r} fails on a fault-free memory: "
            f"op {index} ({record[0]} addr={record[2]}) expected "
            f"{record[4]} read {actual} -- the stream is not self-consistent "
            f"(hand-built records, or a compiler bug)"
        )
    stream.reference_verified = True
    stream.reference_operations = executed


def run_campaign(stream: OpStream, universe: Iterable[Fault],
                 ram_factory: Callable[[], object] | None = None,
                 workers: int = 0, chunk_size: int = 128,
                 progress: Callable[[int, int], None] | None = None,
                 reference_check: bool = True) -> CampaignResult:
    """Replay one compiled stream against every fault of a universe.

    Parameters
    ----------
    stream:
        The compiled test (see :mod:`repro.sim.compilers`).
    universe:
        Iterable of faults; injected one at a time (single-fault
        methodology), outcome order preserved.
    ram_factory:
        Overrides the default ``SinglePortRAM(stream.n, m=stream.m)``.
        With ``workers > 0`` it must be picklable (a module-level
        function or functools.partial, not a lambda).
    workers:
        ``0`` (default) runs in-process.  ``N > 0`` fans chunks out to a
        multiprocessing pool; falls back to in-process execution if the
        platform cannot spawn workers (sandboxes, missing /dev/shm).
    chunk_size:
        Faults per unit of work (and per ``progress`` callback).
    progress:
        Optional ``progress(done, total)`` hook called after each chunk
        (the universe is materialized up front, so ``total`` is always
        its concrete size).
    reference_check:
        Validate the stream on a fault-free memory first (cached on the
        stream, so repeated campaigns pay it once).

    >>> from repro.faults import single_cell_universe
    >>> from repro.march.library import MARCH_C_MINUS
    >>> from repro.sim.compilers import compile_march
    >>> stream = compile_march(MARCH_C_MINUS, 8)
    >>> result = run_campaign(stream, single_cell_universe(8, classes=("SAF",)))
    >>> result.detection_ratio
    1.0
    """
    n, m = stream.n, stream.m
    if chunk_size < 1:
        raise ValueError(f"chunk size must be >= 1, got {chunk_size}")
    if reference_check:
        _reference_pass(stream, n, m)
    result = CampaignResult(stream_name=stream.name, n=n, m=m,
                            reference_operations=stream.reference_operations or 0)
    faults = list(universe)
    chunks = [faults[i:i + chunk_size] for i in range(0, len(faults), chunk_size)]
    outcomes: list[tuple[bool, int]] = []
    if workers > 0 and len(faults) > 1:
        outcomes = _run_parallel(stream, chunks, ram_factory, n, m,
                                 workers, result, progress, len(faults))
    if not outcomes:  # serial path, or parallel fan-out unavailable
        done = 0
        for chunk in chunks:
            for fault in chunk:
                outcomes.append(_run_one(stream, fault, ram_factory, n, m))
            done += len(chunk)
            if progress is not None:
                progress(done, len(faults))
    for fault, (detected, executed) in zip(faults, outcomes):
        result.outcomes.append((fault, detected))
        result.operations_replayed += executed
    return result


def _run_parallel(stream, chunks, ram_factory, n, m, workers, result,
                  progress, total) -> list[tuple[bool, int]]:
    """Fan chunks out to a process pool; empty list when unavailable.

    Chunk results are consumed in order as workers finish them, so the
    ``progress`` hook fires per chunk exactly like the serial path.
    """
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # platforms without fork
        context = multiprocessing.get_context()
    # The stream rides the pool initializer, not the task tuples: it is
    # shipped once per worker (free under fork -- the child inherits the
    # parent's objects) instead of re-pickled with every chunk.
    tasks = [(chunk, ram_factory, n, m) for chunk in chunks]
    outcomes: list[tuple[bool, int]] = []
    try:
        with context.Pool(processes=workers, initializer=_init_worker,
                          initargs=(stream,)) as pool:
            done = 0
            for index, chunk_result in enumerate(pool.imap(_run_chunk, tasks)):
                outcomes.extend(chunk_result)
                done += len(chunks[index])
                if progress is not None:
                    progress(done, total)
    except (OSError, PermissionError, ImportError):
        # Restricted environments (no /dev/shm, seccomp'd fork): degrade
        # to the serial path rather than failing the campaign.
        return []
    result.workers_used = workers
    return outcomes
