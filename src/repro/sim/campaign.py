"""The batched fault-campaign engine: one compiled stream, many faults.

The standard single-fault-injection methodology re-runs the complete test
for every fault of a universe.  Interpreted, that costs
``O(|universe| * test_length)`` with a large per-operation Python
constant (March element walks, LFSR stepping, background recomputation).
:func:`run_campaign` replays a compiled :class:`~repro.sim.ir.OpStream`
instead:

* **compile once** -- addresses, data values, recurrence multipliers and
  expected values are resolved a single time, not per fault;
* **cached fault-free reference pass** -- the stream is validated once on
  a healthy memory (zero mismatches) and the result cached on the stream;
* **early abort** -- a fault is *detected* at the first mismatching
  checked read, so the typical detected fault costs a short prefix of the
  stream, not the full test;
* **cost-model shards** -- faults are processed in chunks sized by a
  per-class :class:`~repro.sim.costs.CostModel` (an NPSF replay costs
  ~3x a bridging one), giving a progress hook and the unit of work for
  the ``workers=N`` process fan-out.

The ``workers=N`` path shards over the persistent pools of
:mod:`repro.sim.pool`: the compiled stream is broadcast once per host
(shared memory for large streams, never per chunk), and a universe
carrying a :class:`~repro.faults.universe.UniverseSpec` travels as
``(spec, index range)`` shards that workers enumerate locally -- no
fault pickling at all.  Scheduling is *work stealing* by default:
shards flow through a shared task queue
(:meth:`~repro.sim.pool.WorkerPool.flow`), and a worker whose shard
exceeds its time budget returns the remainder to the queue for an idle
sibling -- a skewed tail no longer serializes behind one worker.  The
verdict merge is keyed by universe index, so results are byte-identical
regardless of steal order.  Pools outlive campaigns, so back-to-back
campaigns (``compare``, benchmark sweeps, services) amortize pool
startup.  A :class:`~repro.sim.remote.RemotePool` plugs into the same
``pool=`` seam to fan the identical shard tasks out to worker daemons
on other hosts.

Replay cost is ``O(|universe| * detection_prefix)`` -- for strong tests
the mean prefix is a small fraction of the test length, which is where
the engine's wall-clock win over the interpreted loop comes from (see
``benchmarks/bench_campaign_engine.py``).
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field as dataclass_field
from functools import lru_cache
from time import perf_counter

from repro.faults.base import Fault, VectorSemantics
from repro.faults.injector import FaultInjector
from repro.faults.universe import UniverseSpec, materialize_spec
from repro.memory.multiport import MultiPortRAM, PortConflictError
from repro.memory.ram import SinglePortRAM
from repro.memory.stream_exec import apply_stream_generic
from repro.sim.costs import DEFAULT_COST_MODEL, CostModel
from repro.sim.ir import OpStream
from repro.sim.pool import (
    PoolUnavailable,
    WorkerPool,
    shared_pool,
    worker_stream,
)

__all__ = ["CampaignResult", "run_campaign", "partition_universe"]

#: Schedulers the sharded path understands.  ``"stealing"`` (default)
#: lets a worker return the unfinished remainder of an oversized shard
#: to the task queue; ``"static"`` executes the planned shards as cut.
SCHEDULERS = ("stealing", "static")

#: Wall-clock seconds a stealing worker spends on one shard before
#: returning the remainder to the queue.  Small enough that a skewed
#: tail redistributes within a fraction of a second; large enough that
#: a shard amortizes its dispatch overhead many times over.
STEAL_BUDGET_S = 0.1

#: Serial-path chunk length (progress cadence) when ``chunk_size`` is
#: left to the engine.
SERIAL_CHUNK = 128


@dataclass
class CampaignResult:
    """Outcome of one batched campaign.

    ``outcomes`` preserves universe order: ``(fault, detected)`` pairs,
    which is what lets :func:`repro.analysis.coverage.run_coverage` build
    a report identical to the interpreted per-fault loop's.
    ``faults_batched`` counts the faults the bit-packed engine resolved
    lane-parallel (always 0 for :func:`run_campaign`; see
    :func:`repro.sim.batched.run_campaign_batched`).
    """

    stream_name: str
    n: int
    m: int
    outcomes: list[tuple[Fault, bool]] = dataclass_field(default_factory=list)
    operations_replayed: int = 0
    reference_operations: int = 0
    workers_used: int = 0
    faults_batched: int = 0

    @property
    def faults_total(self) -> int:
        """Number of faults injected."""
        return len(self.outcomes)

    @property
    def detected_total(self) -> int:
        """Number of detected faults."""
        return sum(1 for _, detected in self.outcomes if detected)

    @property
    def detection_ratio(self) -> float:
        """Detected / total (1.0 for an empty campaign)."""
        if not self.outcomes:
            return 1.0
        return self.detected_total / self.faults_total

    @property
    def missed(self) -> list[Fault]:
        """The faults that escaped, in universe order."""
        return [fault for fault, detected in self.outcomes if not detected]

    def __repr__(self) -> str:
        return (
            f"CampaignResult({self.stream_name!r}, "
            f"{self.detected_total}/{self.faults_total} detected, "
            f"{self.operations_replayed} ops replayed)"
        )


def _default_ram_factory(n: int, m: int):
    return SinglePortRAM(n, m=m)


def _stream_ram(n: int, m: int, ports: int):
    """The canonical perfect memory for a stream: single-port for flat
    streams, an N-port front-end for cycle-grouped ones."""
    if ports > 1:
        return MultiPortRAM(n, m=m, ports=ports)
    return SinglePortRAM(n, m=m)


def _run_one(stream: OpStream, fault: Fault, ram_factory, n: int,
             m: int) -> tuple[bool, int]:
    """Inject one fault into a fresh RAM and replay with early abort.

    A :class:`~repro.memory.multiport.PortConflictError` raised
    mid-replay counts as a *detection*: healthy-logical streams never
    conflict (validated at compile time), so a replay-time conflict
    means the injected fault -- a decoder fault aliasing two addresses
    onto one cell -- drove the test into undefined port behaviour, which
    is exactly how the interpreted multi-port engines fail on it too.
    """
    ram = ram_factory() if ram_factory is not None \
        else _stream_ram(n, m, stream.ports)
    if ram.n != n or ram.m != m:
        # A stream compiled for one geometry replayed on another would
        # silently test the wrong address space (or crash mid-replay).
        raise ValueError(
            f"ram_factory built a {ram.n}x{ram.m}-bit RAM but the stream "
            f"{stream.name!r} was compiled for {n}x{m}"
        )
    if getattr(ram, "ports", 1) < stream.ports:
        raise ValueError(
            f"ram_factory built a {getattr(ram, 'ports', 1)}-port RAM but "
            f"the stream {stream.name!r} needs {stream.ports} ports"
        )
    injector = FaultInjector([fault])
    injector.install(ram)
    mismatches: list[tuple[int, int]] = []
    apply = getattr(ram, "apply_stream", None)
    try:
        # Duck-typed front-ends honour only the read/write/idle
        # contract: replay those through the portable executor.
        executed = (apply(stream.ops, tables=stream.tables,
                          stop_on_mismatch=True, mismatches=mismatches)
                    if apply is not None
                    else apply_stream_generic(ram, stream.ops,
                                              tables=stream.tables,
                                              stop_on_mismatch=True,
                                              mismatches=mismatches))
    except PortConflictError:
        injector.remove(ram)
        return True, 0
    injector.remove(ram)
    return bool(mismatches), executed


def partition_universe(
    universe: Iterable[Fault], n: int, m: int = 1,
) -> tuple[dict[str, list[tuple[int, Fault, VectorSemantics]]],
           list[tuple[int, Fault]]]:
    """Split a universe into lane-vectorizable classes and a remainder.

    A fault is vectorizable when it describes itself through
    :meth:`~repro.faults.base.Fault.vector_semantics` *and* every bit the
    descriptor touches exists in the ``n x m`` geometry -- the contract
    of :class:`~repro.memory.packed.PackedMemoryArray` (word-oriented
    geometries pack ``m`` bit planes per lane, so a descriptor may name
    any ``bit < m``).  Everything else lands in the scalar ``fallback``
    list.

    Returns ``(classes, fallback)``: ``classes`` maps the descriptor kind
    (``"stuck"``, ``"transition"``, ``"coupling"``, ``"stuck-open"``,
    ``"state"``, ``"npsf"``, ``"bridge"``, ``"retention"``, ``"linked"``,
    ``"decoder"``) to ``(universe_index, fault, semantics)`` triples,
    ``fallback`` holds ``(universe_index, fault)`` pairs; indices let the
    batched engine reassemble outcomes in universe order.

    >>> from repro.faults import single_cell_universe
    >>> classes, fallback = partition_universe(
    ...     single_cell_universe(8), n=8)
    >>> sorted((kind, len(group)) for kind, group in classes.items())
    [('retention', 8), ('stuck', 16), ('stuck-open', 8), ('transition', 16)]
    >>> len(fallback)   # every built-in class carries lane semantics
    0
    """
    classes: dict[str, list[tuple[int, Fault, VectorSemantics]]] = {}
    fallback: list[tuple[int, Fault]] = []
    for index, fault in enumerate(universe):
        semantics = fault.vector_semantics()
        if semantics is not None and _fits_geometry(semantics, n, m):
            classes.setdefault(semantics.kind, []).append(
                (index, fault, semantics)
            )
        else:
            fallback.append((index, fault))
    return classes, fallback


def _fits_geometry(semantics: VectorSemantics, n: int, m: int) -> bool:
    """True when every bit the descriptor touches exists in an n x m array.

    Kind-aware: the structural kinds carry their sites in ``extra``
    (decoder override pairs, NPSF neighbourhood patterns, linked
    component descriptors), so the generic cell/bit/victim check alone
    would accept descriptors the lane models cannot place.
    """
    kind = semantics.kind
    if kind == "linked":
        # Only pure edge-coupling compositions have a lane model; each
        # component must individually fit.
        return bool(semantics.extra) and all(
            part.kind == "coupling" and _fits_geometry(part, n, m)
            for part in semantics.extra
        )
    if kind == "decoder":
        if not semantics.extra:
            return False
        for addr, cells in semantics.extra:
            if not 0 <= addr < n:
                return False
            if any(not 0 <= cell < n for cell in cells):
                return False
        return True
    if not 0 <= semantics.bit < m or not 0 <= semantics.cell < n:
        return False
    if kind == "npsf":
        if semantics.value is None or not 0 <= semantics.value < (1 << m):
            return False
        return bool(semantics.extra) and all(
            0 <= cell < n and 0 <= pattern < (1 << m)
            for cell, pattern in semantics.extra
        )
    if kind == "retention":
        return semantics.value is not None \
            and 0 <= semantics.value < (1 << m)
    if kind == "bridge":
        # A bridge shorts whole cells: victim_bit stays None.
        return semantics.victim_cell is not None \
            and 0 <= semantics.victim_cell < n
    if semantics.victim_cell is None:
        return True
    return 0 <= semantics.victim_bit < m and 0 <= semantics.victim_cell < n


# -- process sharding -------------------------------------------------------
#
# A shard is a self-describing task tuple executed by ``_run_task``
# inside a pool worker (or a remote daemon -- the task format is the
# wire format of :mod:`repro.sim.remote`).  ``token`` names the stream a
# broadcast pinned in the worker.  Scalar shards are
#
#     (mode, token, spec, lo, hi, faults, ram_factory, n, m, budget)
#
# where ``mode`` selects how the shard's faults are obtained:
#
# ``"slice"``     ``materialize_spec(spec)[lo:hi]`` -- the universe is
#                 re-enumerated locally (cached per worker), so the task
#                 carries no fault objects at all;
# ``"fallback"``  the ``[lo:hi]`` slice of the *scalar-fallback* portion
#                 of the spec'd universe (the batched engine's remainder),
#                 derived locally via ``partition_universe``;
# ``"list"``      an explicit pickled fault list (universes without a
#                 spec -- hand-built lists, custom iterables).
#
# ``budget`` (seconds, or None) arms work stealing: a worker exceeding
# it returns ``(done_so_far, remainder_task)`` and the scheduler
# re-queues the remainder for an idle sibling.  Lane shards
# (:mod:`repro.sim.batched` fans whole lane passes out the same flow)
# are
#
#     ("lane"|"lane-list", token, spec, kind, lo, hi, faults, n, m,
#      backend)
#
# covering members ``[lo:hi]`` of the partition class ``kind``.
# Every completed task yields one payload
#
#     (tag, lo, hi, data, remainder, elapsed_s)
#
# merged into position-keyed arrays, which is why verdicts are
# byte-identical regardless of completion or steal order.


@lru_cache(maxsize=8)
def _spec_partition(spec: UniverseSpec, n: int, m: int):
    """Worker-side cache: the partition of a spec'd universe.

    Deterministic mirror of the partition the parent computed -- same
    spec, same geometry, same enumeration order.
    """
    return partition_universe(materialize_spec(spec), n, m)


def _spec_fallback(spec: UniverseSpec, n: int, m: int) -> tuple[Fault, ...]:
    """The scalar-fallback faults of a spec'd universe (worker side)."""
    _classes, fallback = _spec_partition(spec, n, m)
    return tuple(fault for _index, fault in fallback)


def _shard_faults(mode, spec, lo, hi, faults, n, m):
    if mode == "list":
        return faults
    if mode == "slice":
        return materialize_spec(spec)[lo:hi]
    if mode == "fallback":
        return _spec_fallback(spec, n, m)[lo:hi]
    raise ValueError(f"unknown shard mode {mode!r}")


def _run_scalar_task(task) -> tuple:
    """Replay one scalar shard, honouring the work-stealing budget.

    Returns the flow payload ``("scalar", lo, done, outcomes, remainder,
    elapsed)``: with no budget (static scheduling) ``done == hi`` and
    ``remainder`` is None; a budgeted shard that ran out of time covers
    a prefix and hands the rest back as a ready-to-queue task.
    """
    mode, token, spec, lo, hi, faults, ram_factory, n, m, budget = task
    stream = worker_stream(token)
    shard = _shard_faults(mode, spec, lo, hi, faults, n, m)
    outcomes: list[tuple[bool, int]] = []
    start = perf_counter()
    for index, fault in enumerate(shard):
        outcomes.append(_run_one(stream, fault, ram_factory, n, m))
        if budget is not None and index + 1 < len(shard) \
                and perf_counter() - start >= budget:
            done = lo + index + 1
            rest = list(shard[index + 1:]) if mode == "list" else None
            remainder = (mode, token, spec, done, hi, rest,
                         ram_factory, n, m, budget)
            return ("scalar", lo, done, outcomes, remainder,
                    perf_counter() - start)
    return ("scalar", lo, hi, outcomes, None, perf_counter() - start)


def _run_lane_task(task) -> tuple:
    """Execute one lane pass (a chunk of one fault class) worker-side.

    The pass is indivisible -- it replays the stream once over packed
    columns -- so lane tasks never split; the parent sizes the chunks.
    Returns ``("lane", lo, hi, (kind, detected_mask, executed), None,
    elapsed)`` with lane ``i`` of the mask holding the verdict of class
    member ``lo + i``.
    """
    # Late imports: batched.py imports this module, and under fork the
    # worker has everything loaded anyway.
    from repro.memory.packed import PackedMemoryArray
    from repro.sim.batched import build_lane_model

    tag, token, spec, kind, lo, hi, faults, n, m, backend = task
    stream = worker_stream(token)
    start = perf_counter()
    if tag == "lane":
        classes, _fallback = _spec_partition(spec, n, m)
        semantics = [sem for _i, _f, sem in classes[kind][lo:hi]]
    else:  # "lane-list": explicit faults (universes without a spec)
        semantics = [fault.vector_semantics() for fault in faults]
    model = build_lane_model(kind, semantics)
    packed = PackedMemoryArray(n, lanes=len(semantics), m=m, backend=backend)
    model.install(packed)
    detected, executed = packed.apply_stream(stream.ops, tables=stream.tables,
                                             model=model)
    return ("lane", lo, hi, (kind, detected, executed), None,
            perf_counter() - start)


def _run_task(task) -> tuple:
    """Pool/daemon unit of work: dispatch one shard task by its tag."""
    tag = task[0]
    if tag in ("slice", "fallback", "list"):
        return _run_scalar_task(task)
    if tag in ("lane", "lane-list"):
        return _run_lane_task(task)
    raise ValueError(f"unknown shard task tag {tag!r}")


def _scalar_task(mode, token, spec, lo, hi, faults, ram_factory, n, m,
                 budget) -> tuple:
    """Build one scalar shard task for the ``[lo:hi)`` fault range."""
    if spec is None:
        return ("list", token, None, lo, hi, faults[lo:hi],
                ram_factory, n, m, budget)
    return (mode, token, spec, lo, hi, None, ram_factory, n, m, budget)


def _reference_pass(stream: OpStream, n: int, m: int) -> None:
    """Fault-free replay on a canonical perfect memory; caches success
    (and the stream's operation count) on the stream.

    Uses a canonical default front-end (``SinglePortRAM``, or a perfect
    ``MultiPortRAM`` for cycle-grouped streams) rather than
    ``ram_factory`` so the factory is called exactly once per fault (the
    legacy campaign contract) and so the check answers the right
    question: is the stream self-consistent on a *perfect* memory?
    """
    if stream.reference_verified:
        return
    ram = _stream_ram(n, m, stream.ports)
    mismatches: list[tuple[int, int]] = []
    executed = ram.apply_stream(stream.ops, tables=stream.tables,
                                mismatches=mismatches)
    if mismatches:
        index, actual = mismatches[0]
        record = stream.ops[index]
        raise ValueError(
            f"compiled stream {stream.name!r} fails on a fault-free memory: "
            f"op {index} ({record[0]} addr={record[2]}) expected "
            f"{record[4]} read {actual} -- the stream is not self-consistent "
            f"(hand-built records, or a compiler bug)"
        )
    stream.reference_verified = True
    stream.reference_operations = executed


def _check_chunk_size(chunk_size) -> int | None:
    """Validate the ``chunk_size`` override (None = cost-model sizing)."""
    if chunk_size is None:
        return None
    if isinstance(chunk_size, bool) or not isinstance(chunk_size, int) \
            or chunk_size < 1:
        raise ValueError(
            f"chunk_size must be None (shards sized by the per-class cost "
            f"model) or a positive int (fixed shards of that many faults), "
            f"got {chunk_size!r}"
        )
    return chunk_size


def _check_scheduler(scheduler: str) -> str:
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"scheduler must be one of {SCHEDULERS}, got {scheduler!r}")
    return scheduler


def run_campaign(stream: OpStream, universe: Iterable[Fault],
                 ram_factory: Callable[[], object] | None = None,
                 workers: int = 0, chunk_size: int | None = None,
                 progress: Callable[[int, int], None] | None = None,
                 reference_check: bool = True,
                 pool: WorkerPool | None = None,
                 scheduler: str = "stealing",
                 cost_model: CostModel | None = None) -> CampaignResult:
    """Replay one compiled stream against every fault of a universe.

    Parameters
    ----------
    stream:
        The compiled test (see :mod:`repro.sim.compilers`).
    universe:
        Iterable of faults; injected one at a time (single-fault
        methodology), outcome order preserved.  A universe carrying a
        :class:`~repro.faults.universe.UniverseSpec` (everything the
        :mod:`repro.faults.universe` generators produce) is sharded
        *by spec*: workers re-enumerate their faults locally instead of
        unpickling them per chunk.
    ram_factory:
        Overrides the default ``SinglePortRAM(stream.n, m=stream.m)`` --
        or, for a cycle-grouped stream, the default
        ``MultiPortRAM(stream.n, m=stream.m, ports=stream.ports)``.  The
        factory's RAM must offer at least ``stream.ports`` ports.  With
        ``workers > 0`` it must be picklable (a module-level function or
        functools.partial, not a lambda).
    workers:
        ``0`` (default) runs in-process -- unless ``pool`` is given, in
        which case its worker count applies.  ``N > 0`` fans shards out
        to the persistent ``shared_pool(N)`` (or ``pool``); falls back
        to in-process execution if the platform cannot spawn workers
        (sandboxes, missing /dev/shm).
    chunk_size:
        ``None`` (default) sizes shards by the per-class
        :class:`~repro.sim.costs.CostModel` -- roughly equal predicted
        *work* per shard, so an NPSF-heavy tail is cut finer than a
        stuck-at head.  A positive int forces the legacy fixed-size
        shards (also the serial progress cadence).
    progress:
        Optional ``progress(done, total)`` hook called after each chunk
        (the universe is materialized up front, so ``total`` is always
        its concrete size).
    reference_check:
        Validate the stream on a fault-free memory first (cached on the
        stream, so repeated campaigns pay it once).
    pool:
        An explicit pool to shard on: a
        :class:`~repro.sim.pool.WorkerPool` (e.g. one ``with
        WorkerPool(4) as pool`` block around many campaigns) or a
        :class:`~repro.sim.remote.RemotePool` of worker daemons on
        other hosts.  Default: the process-wide shared pool for
        ``workers``.
    scheduler:
        ``"stealing"`` (default): workers return the remainder of a
        shard that exceeds its time budget to the shared queue, so a
        mispredicted or skewed shard redistributes instead of idling
        the siblings.  ``"static"``: run the planned shards as cut.
        Verdicts are byte-identical either way.
    cost_model:
        Overrides the default :class:`~repro.sim.costs.CostModel` used
        for shard planning.

    >>> from repro.faults import single_cell_universe
    >>> from repro.march.library import MARCH_C_MINUS
    >>> from repro.sim.compilers import compile_march
    >>> stream = compile_march(MARCH_C_MINUS, 8)
    >>> result = run_campaign(stream, single_cell_universe(8, classes=("SAF",)))
    >>> result.detection_ratio
    1.0
    """
    n, m = stream.n, stream.m
    chunk_size = _check_chunk_size(chunk_size)
    _check_scheduler(scheduler)
    if reference_check:
        _reference_pass(stream, n, m)
    progress = _monotonic_progress(progress)
    result = CampaignResult(stream_name=stream.name, n=n, m=m,
                            reference_operations=stream.reference_operations or 0)
    faults = list(universe)
    outcomes: list[tuple[bool, int]] | None = None
    if (workers > 0 or pool is not None) and len(faults) > 1:
        effective = workers or getattr(pool, "workers", 0)
        outcomes = _run_sharded(stream, faults,
                                getattr(universe, "spec", None), "slice",
                                ram_factory, n, m, effective, pool,
                                chunk_size, progress, scheduler, cost_model)
        if outcomes is not None:
            result.workers_used = effective
    if outcomes is None:  # serial path, or process fan-out unavailable
        outcomes = []
        done = 0
        serial_chunk = chunk_size or SERIAL_CHUNK
        for lo in range(0, len(faults), serial_chunk):
            chunk = faults[lo:lo + serial_chunk]
            for fault in chunk:
                outcomes.append(_run_one(stream, fault, ram_factory, n, m))
            done += len(chunk)
            if progress is not None:
                progress(done, len(faults))
    for fault, (detected, executed) in zip(faults, outcomes, strict=True):
        result.outcomes.append((fault, detected))
        result.operations_replayed += executed
    return result


#: Exceptions that mean "the pool cannot serve this campaign" -- callers
#: mark the pool broken and degrade to single-process execution.
POOL_FAILURES = (PoolUnavailable, OSError, PermissionError, ImportError)

#: Seconds to wait for any single shard result.  A worker killed
#: mid-shard (OOM, segfault) loses its task: the flow would block on it
#: forever, so the drain polls with this timeout and declares the pool
#: broken instead -- the campaign then re-runs serially.  Ordinary
#: shards finish in well under a second (budgeted shards by
#: construction); only a dead worker plausibly exceeds this.
SHARD_TIMEOUT = 300.0


def _drain_flow(flow, outstanding: int, expected: int, progress, done: int,
                total: int, on_payload) -> int:
    """Drain a task flow, re-queueing stolen remainders as they surface.

    ``on_payload(tag, lo, hi, data)`` merges one completed task into the
    caller's position-keyed arrays and returns the number of faults it
    covered; ``done``/``total`` let the batched engine account for lane
    passes that already happened.  Raises :class:`PoolUnavailable` when
    no result arrives within ``SHARD_TIMEOUT`` (a worker died with tasks
    in flight), and ``RuntimeError`` when the workers covered a
    different fault count than the parent expects (spec drift) --
    silently-truncated verdicts must never merge.
    """
    covered = 0
    while outstanding:
        try:
            payload = flow.next(SHARD_TIMEOUT)
        except StopIteration:
            break
        except multiprocessing.TimeoutError:
            raise PoolUnavailable(
                f"no shard result within {SHARD_TIMEOUT:.0f}s with "
                f"{outstanding} task(s) outstanding -- worker lost mid-task?"
            ) from None
        outstanding -= 1
        tag, lo, hi, data, remainder, _elapsed = payload
        if remainder is not None:
            flow.put(remainder)
            outstanding += 1
        step = on_payload(tag, lo, hi, data)
        covered += step
        done += step
        if progress is not None:
            progress(done, total)
    if covered != expected:
        raise RuntimeError(
            f"sharded campaign covered {covered} outcomes for "
            f"{expected} faults -- the universe spec does not "
            f"re-enumerate identically in the workers"
        )
    return done


def _monotonic_progress(progress):
    """Wrap a progress hook so reported ``done`` never decreases.

    When a pool breaks mid-drain the campaign re-runs the remainder
    serially from zero; without the clamp the hook would observe
    ``done`` jump backwards and the same faults counted twice.
    """
    if progress is None:
        return None
    best = 0

    def hook(done: int, total: int) -> None:
        nonlocal best
        if done > best:
            best = done
            progress(done, total)

    return hook


def _run_sharded(stream, faults, spec, mode, ram_factory, n, m, workers,
                 pool, chunk_size, progress, scheduler="stealing",
                 cost_model=None) -> list[tuple[bool, int]] | None:
    """Fan shards out over a task flow; ``None`` when unavailable.

    The cost model cuts the plan, the flow schedules it (stolen
    remainders re-queue through :func:`_drain_flow`), and completed
    payloads merge into a position-keyed array -- identical verdicts to
    the serial path regardless of which worker ran what.
    """
    if pool is None:
        pool = shared_pool(workers)
    model = cost_model or DEFAULT_COST_MODEL
    budget = STEAL_BUDGET_S if scheduler == "stealing" else None
    plan = model.plan(faults, workers=getattr(pool, "workers", workers),
                      chunk_size=chunk_size)
    outcomes: list = [None] * len(faults)

    def merge(tag, lo, hi, data):
        outcomes[lo:hi] = data
        return hi - lo

    try:
        token = pool.broadcast_stream(stream)
        flow = pool.flow(_run_task)
        try:
            for lo, hi in plan:
                flow.put(_scalar_task(mode, token, spec, lo, hi, faults,
                                      ram_factory, n, m, budget))
            _drain_flow(flow, len(plan), len(faults), progress, 0,
                        len(faults), merge)
        finally:
            flow.close()
        return outcomes
    except POOL_FAILURES:
        # Could not start (sandbox) or lost a worker mid-run: a broken
        # pool is closed so the next campaign gets a fresh one, and this
        # campaign degrades to the serial path rather than failing.
        pool.mark_broken()
        return None
