"""Replay: execute a compiled OpStream and rebuild engine-native results.

These functions are the bridge between the IR and the legacy result
types: byte-identical ``MarchResult`` / ``ScheduleResult`` /
``PiIterationResult`` objects come out, so the thin adapters in
:mod:`repro.march.engine` and :mod:`repro.prt.schedule` are drop-in.

The actual op loop lives in the RAM front-ends' ``apply_stream`` bulk
entry point; this module maps its mismatch/capture output back through the
stream's per-op metadata.
"""

from __future__ import annotations

from repro.prt.pi_test import PiIterationResult
from repro.sim.ir import OpStream

__all__ = ["replay_march", "replay_schedule", "replay_iteration",
           "replay_dual_port_iteration", "replay_quad_port_iteration",
           "replay_multi_schedule", "replay_detect"]


def replay_detect(stream: OpStream, ram) -> bool:
    """Replay with early abort; True when the stream detects a fault.

    A fault is detected at the first checked read whose actual value
    differs from the compiled expectation -- the replay stops there, which
    is what makes campaign replays much shorter than full runs for the
    (typical) detected fault.
    """
    mismatches: list[tuple[int, int]] = []
    ram.apply_stream(stream.ops, tables=stream.tables,
                     stop_on_mismatch=True, mismatches=mismatches)
    return bool(mismatches)


def replay_march(stream: OpStream, ram,
                 stop_on_first_failure: bool = False):
    """Replay a compiled March stream; returns a ``MarchResult``.

    Identical to interpreting the test on ``ram``: same operation
    sequence, same ``operations`` count, same ordered ``failures``
    tuples ``(background, element_index, addr, expected, actual)``.
    """
    from repro.march.engine import MarchResult  # adapter imports us lazily

    mismatches: list[tuple[int, int]] = []
    executed = ram.apply_stream(
        stream.ops, tables=stream.tables,
        stop_on_mismatch=stop_on_first_failure, mismatches=mismatches,
    )
    result = MarchResult(operations=executed)
    for op_index, actual in mismatches:
        background, element_index = stream.info[op_index]
        _, _, addr, _, expected, _ = stream.ops[op_index]
        result.passed = False
        result.failures.append(
            (background, element_index, addr, expected, actual)
        )
    return result


def replay_iteration(stream: OpStream, ram) -> PiIterationResult:
    """Replay a compiled standalone π-iteration."""
    segment = stream.segments[0]
    mismatches: list[tuple[int, int]] = []
    captured: list[int] = []
    executed = ram.apply_stream(
        stream.ops, tables=stream.tables,
        mismatches=mismatches, captured=captured,
    )
    verify_mismatches = sum(
        1 for op_index, _ in mismatches if stream.info[op_index][1] == "verify"
    )
    return PiIterationResult(
        init_state=segment.init_state,
        final_state=tuple(captured),
        expected_final=segment.expected_final,
        operations=executed,
        written_stream=None,
        verify_mismatches=verify_mismatches,
    )


def replay_dual_port_iteration(stream: OpStream, ram) -> PiIterationResult:
    """Replay a compiled dual-port π-iteration on a >= 2-port RAM.

    The grouped stream executes through the RAM's cycle-aware
    ``apply_stream``, so the result *and* the RAM statistics (the
    paper's 2n + 2 cycles) match :meth:`repro.prt.dual_port
    .DualPortPiIteration.run` exactly.
    """
    segment = stream.segments[0]
    captured: list[int] = []
    executed = ram.apply_stream(
        stream.ops, tables=stream.tables, captured=captured,
    )
    return PiIterationResult(
        init_state=segment.init_state,
        final_state=tuple(captured),
        expected_final=segment.expected_final,
        operations=executed,
        written_stream=None,
        verify_mismatches=0,
    )


def replay_quad_port_iteration(stream: OpStream, ram):
    """Replay a compiled quad-port π-iteration; returns a
    :class:`~repro.prt.dual_port.QuadPortResult`.

    The four signature captures arrive in port order -- automaton A's
    final window first, then automaton B's -- which is exactly how the
    interpreted engine splits its halves.  Per-half ``operations`` stay
    0 (the interpreted contract: accounting lives on the shared RAM
    stats).
    """
    from repro.prt.dual_port import QuadPortResult  # adapter imports us lazily

    segment = stream.segments[0]
    captured: list[int] = []
    ram.apply_stream(stream.ops, tables=stream.tables, captured=captured)
    halves = tuple(
        PiIterationResult(
            init_state=segment.init_state,
            final_state=tuple(captured[2 * automaton:2 * automaton + 2]),
            expected_final=segment.expected_final,
            operations=0,
        )
        for automaton in (0, 1)
    )
    return QuadPortResult(halves=halves)


def replay_multi_schedule(stream: OpStream, ram, stop_on_failure: bool = False):
    """Replay a compiled multi-port schedule stream; returns a
    :class:`~repro.prt.multi_schedule.MultiScheduleResult`.

    Segment protocol as in :func:`replay_schedule`; each iteration
    segment rebuilds the interpreted result type its scheme produces --
    four captures mean a quad-port iteration (a
    :class:`~repro.prt.dual_port.QuadPortResult` whose halves split the
    captures and the per-automaton verify mismatches via the records'
    ``(automaton, role)`` metadata), two captures a dual-port
    :class:`PiIterationResult`.  Read-back mismatches land on the last
    iteration's ``verify_mismatches``, as in the interpreted path.
    """
    from repro.prt.dual_port import QuadPortResult  # adapter imports us lazily
    from repro.prt.multi_schedule import MultiScheduleResult

    result = MultiScheduleResult()
    info = stream.info
    for segment in stream.segments:
        mismatches: list[tuple[int, int]] = []
        if segment.label == "readback":
            executed = ram.apply_stream(
                stream.ops, tables=stream.tables,
                start=segment.start, end=segment.stop, mismatches=mismatches,
            )
            result.operations += executed
            if mismatches and result.iteration_results:
                result.iteration_results[-1].verify_mismatches += len(mismatches)
            continue
        captured: list[int] = []
        executed = ram.apply_stream(
            stream.ops, tables=stream.tables,
            start=segment.start, end=segment.stop,
            mismatches=mismatches, captured=captured,
        )
        result.operations += executed
        if len(captured) == 4:
            halves = tuple(
                PiIterationResult(
                    init_state=segment.init_state,
                    final_state=tuple(captured[2 * automaton:2 * automaton + 2]),
                    expected_final=segment.expected_final,
                    operations=0,
                    verify_mismatches=sum(
                        1 for op_index, _ in mismatches
                        if info[op_index] == (automaton, "verify")
                    ),
                )
                for automaton in (0, 1)
            )
            iteration_result = QuadPortResult(halves=halves)
        else:
            iteration_result = PiIterationResult(
                init_state=segment.init_state,
                final_state=tuple(captured),
                expected_final=segment.expected_final,
                operations=executed,
                written_stream=None,
                verify_mismatches=sum(
                    1 for op_index, _ in mismatches
                    if info[op_index][1] == "verify"
                ),
            )
        result.iteration_results.append(iteration_result)
        if stop_on_failure and not iteration_result.passed:
            return result
    return result


def replay_schedule(stream: OpStream, ram, stop_on_failure: bool = False):
    """Replay a compiled schedule stream; returns a ``ScheduleResult``.

    Segments execute in order; ``stop_on_failure`` returns after the
    first failing iteration exactly like the interpreted scheduler
    (the iteration itself always completes -- its signature *is* the
    verdict).  Read-back mismatches are attributed to the last
    iteration's ``verify_mismatches``, as in the interpreted path.
    """
    from repro.prt.schedule import ScheduleResult  # adapter imports us lazily

    result = ScheduleResult()
    info = stream.info
    for segment in stream.segments:
        mismatches: list[tuple[int, int]] = []
        if segment.label == "readback":
            executed = ram.apply_stream(
                stream.ops, tables=stream.tables,
                start=segment.start, end=segment.stop, mismatches=mismatches,
            )
            result.operations += executed
            if mismatches and result.iteration_results:
                result.iteration_results[-1].verify_mismatches += len(mismatches)
            continue
        captured: list[int] = []
        executed = ram.apply_stream(
            stream.ops, tables=stream.tables,
            start=segment.start, end=segment.stop,
            mismatches=mismatches, captured=captured,
        )
        verify_mismatches = sum(
            1 for op_index, _ in mismatches if info[op_index][1] == "verify"
        )
        iteration_result = PiIterationResult(
            init_state=segment.init_state,
            final_state=tuple(captured),
            expected_final=segment.expected_final,
            operations=executed,
            written_stream=None,
            verify_mismatches=verify_mismatches,
        )
        result.iteration_results.append(iteration_result)
        result.operations += executed
        if stop_on_failure and not iteration_result.passed:
            return result
    return result
