"""Per-fault-class cost model for adaptive campaign shard sizing.

The scalar campaign engine replays one compiled stream per fault, but
the replay cost is far from uniform across fault classes: an NPSF
injection evaluates a five-cell neighbourhood condition after every
relevant write (~3x the wall clock of a bridging replay, which in turn
settles a single shorted pair), while a stuck-at fault usually aborts on
a short detection prefix.  Fixed ``chunk_size=128`` shards therefore
carry wildly different amounts of work on mixed universes -- the shard
that drew the NPSF tail runs for multiples of the mean while its
siblings idle (see the ``shard_balance_rows`` section of
``benchmarks/bench_campaign_engine.py`` for the measured skew).

:class:`CostModel` fixes the *planning* half of that problem: it maps
``fault.fault_class`` to a relative per-replay cost and cuts a fault
list into contiguous shards of roughly equal *predicted* work.  The
work-stealing scheduler (see :mod:`repro.sim.campaign`) fixes the
residual -- predictions are heuristics, so oversized shards additionally
split on the fly at run time.

The default table is calibrated from the committed benchmark baseline
(``benchmarks/out/bench_campaign_engine.json``, ``class_cost_rows``);
:meth:`CostModel.from_benchmark` re-derives it from any fresh summary,
and the ``class_costs`` constructor argument overrides single classes.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence

__all__ = ["CostModel", "DEFAULT_CLASS_COSTS"]

#: Relative scalar-replay cost per ``fault.fault_class``, normalized to
#: a stuck-at replay (1.0).  Calibrated against the benchmark's
#: ``class_cost_rows`` on the baseline host: NPSF pays the per-write
#: neighbourhood settle (~3x a bridging replay), decoder faults (AF)
#: re-route every access, DRF adds idle-clock bookkeeping, the coupling
#: family fires per aggressor transition, and SAF/TF detect on short
#: prefixes.  Unknown classes fall back to ``CostModel.default_cost``.
DEFAULT_CLASS_COSTS: dict[str, float] = {
    "SAF": 1.0,
    "TF": 1.0,
    "SOF": 1.1,
    "DRF": 1.3,
    "CFin": 1.2,
    "CFid": 1.2,
    "CFst": 1.4,
    "BF": 1.1,
    "AF": 2.0,
    "NPSF": 3.3,
}

#: Shards cut per worker when the planner sizes by cost: enough slack
#: that the drain can overlap stragglers, few enough that per-shard
#: dispatch overhead stays noise.
OVERSUBSCRIBE = 4


class CostModel:
    """Predicted relative replay cost per fault class, plus shard plans.

    Parameters
    ----------
    class_costs:
        Overrides merged over :data:`DEFAULT_CLASS_COSTS` (pass a full
        replacement dict with ``replace=True``).
    default_cost:
        Cost assumed for classes the table does not name (custom fault
        models); the stuck-at baseline by default.

    >>> model = CostModel()
    >>> model.cost("NPSF") > 3 * model.cost("SAF")
    True
    >>> CostModel({"NPSF": 10.0}).cost("NPSF")
    10.0
    """

    def __init__(self, class_costs: dict[str, float] | None = None,
                 default_cost: float = 1.0, *, replace: bool = False):
        table = {} if replace else dict(DEFAULT_CLASS_COSTS)
        table.update(class_costs or {})
        for cls, cost in table.items():
            if not cost > 0:
                raise ValueError(
                    f"class cost must be > 0, got {cls!r}: {cost!r}")
        if not default_cost > 0:
            raise ValueError(f"default_cost must be > 0, got {default_cost!r}")
        self.class_costs = table
        self.default_cost = default_cost

    # -- calibration ---------------------------------------------------------

    @classmethod
    def from_benchmark(cls, summary: dict | str) -> "CostModel":
        """A model calibrated from a benchmark summary (dict or JSON path).

        Reads the ``class_cost_rows`` section the campaign benchmark
        emits (``{"fault_class": ..., "per_fault_us": ...}`` rows,
        measured scalar replays on the recording host) and normalizes to
        the cheapest class.  Falls back to the built-in table when the
        summary predates that section.
        """
        if isinstance(summary, str):
            with open(summary) as handle:
                summary = json.load(handle)
        rows = summary.get("class_cost_rows") or []
        costs = {row["fault_class"]: float(row["per_fault_us"])
                 for row in rows
                 if isinstance(row.get("per_fault_us"), (int, float))
                 and row["per_fault_us"] > 0}
        if not costs:
            return cls()
        floor = min(costs.values())
        return cls({fc: us / floor for fc, us in costs.items()}, replace=True)

    # -- prediction ----------------------------------------------------------

    def cost(self, fault_class: str) -> float:
        """Relative cost of one scalar replay for ``fault_class``."""
        return self.class_costs.get(fault_class, self.default_cost)

    def cost_of(self, fault) -> float:
        """Relative cost of one scalar replay of ``fault``."""
        return self.cost(getattr(fault, "fault_class", ""))

    def total_cost(self, faults: Iterable) -> float:
        """Predicted cost of replaying every fault once."""
        return sum(self.cost_of(fault) for fault in faults)

    # -- shard planning ------------------------------------------------------

    def plan(self, faults: Sequence, workers: int,
             chunk_size: int | None = None,
             max_chunk: int = 2048) -> list[tuple[int, int]]:
        """Cut ``faults`` into contiguous ``(lo, hi)`` shard ranges.

        With ``chunk_size`` set the plan is the legacy fixed-size one
        (the explicit override the campaign engines still accept).
        Otherwise shards are sized so each carries roughly
        ``total_cost / (workers * OVERSUBSCRIBE)`` predicted work --
        equal *work* per shard, not equal fault counts, so an NPSF tail
        is cut finer than a stuck-at head.  Contiguity is what lets a
        shard travel as a bare ``(spec, lo, hi)`` index range.

        >>> class F:
        ...     def __init__(self, fc): self.fault_class = fc
        >>> cheap, dear = [F("SAF")] * 60, [F("NPSF")] * 60
        >>> plan = CostModel().plan(cheap + dear, workers=2)
        >>> plan[0] == (0, plan[0][1]) and plan[-1][1] == 120
        True
        >>> sizes = [hi - lo for lo, hi in plan]
        >>> max(sizes[:1]) > max(sizes[-2:])   # NPSF shards are smaller
        True
        """
        total = len(faults)
        if total == 0:
            return []
        if chunk_size is not None:
            return [(lo, min(lo + chunk_size, total))
                    for lo in range(0, total, chunk_size)]
        workers = max(1, workers)
        costs = [self.cost_of(fault) for fault in faults]
        target = sum(costs) / (workers * OVERSUBSCRIBE)
        # Never plan shards so small that dispatch overhead dominates a
        # tiny universe, nor so large that one shard outlives the rest.
        target = max(target, min(costs))
        ranges: list[tuple[int, int]] = []
        lo, acc = 0, 0.0
        for index, cost in enumerate(costs):
            acc += cost
            if (acc >= target or index - lo + 1 >= max_chunk) \
                    and index + 1 < total:
                ranges.append((lo, index + 1))
                lo, acc = index + 1, 0.0
        ranges.append((lo, total))
        return ranges

    def __repr__(self) -> str:
        return (f"CostModel({len(self.class_costs)} classes, "
                f"default={self.default_cost})")


#: Process-wide default used when callers do not pass ``cost_model=``.
DEFAULT_COST_MODEL = CostModel()
