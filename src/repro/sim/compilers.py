"""Compilers: lower March tests and π-test schedules into an OpStream.

The compilers walk the *same* control flow as the interpreted engines
(:func:`repro.march.engine.run_march`, :meth:`repro.prt.schedule
.PiTestSchedule.run`) but emit flat operation records instead of issuing
RAM calls, so replaying the stream performs exactly the operation sequence
the interpreted engine would -- same addresses, same order, same values,
same cycle counts -- and therefore detects exactly the same faults.

Compilation is O(test length) and happens once per campaign; everything
fault-independent (address walks, data backgrounds, recurrence
multipliers, expected backgrounds and signatures) is resolved here so the
per-fault replay is a single flat loop.
"""

from __future__ import annotations

from functools import lru_cache

from repro.march.engine import word_backgrounds
from repro.march.model import MarchDelay, MarchTest
from repro.sim.ir import OpStream, Segment
from repro.sim.verify import verify_or_raise


def _finish(stream: OpStream, verify: bool) -> OpStream:
    """Opt-in deep pass: every compiler's ``verify=True`` funnels here.

    Construction already enforced the fast structural contract; the deep
    pass adds the operand-domain, accumulator-discipline and segment
    checks of :func:`repro.sim.verify.verify` and raises
    :class:`~repro.sim.diagnostics.StreamError` on any error finding.
    """
    if verify:
        verify_or_raise(stream)
    return stream

__all__ = [
    "compile_march",
    "compile_schedule",
    "compile_pi_iteration",
    "compile_dual_port_pi",
    "compile_quad_port_pi",
    "compile_multi_schedule",
    "cached_march_stream",
    "cached_schedule_stream",
    "cached_pi_iteration_stream",
    "cached_dual_port_stream",
    "cached_quad_port_stream",
    "cached_multi_schedule_stream",
]


def compile_march(test: MarchTest, n: int, m: int = 1,
                  backgrounds: list[int] | None = None,
                  verify: bool = False) -> OpStream:
    """Lower a March test to an :class:`OpStream`.

    Mirrors :func:`repro.march.engine.run_march`: for every data
    background, every element, every address in the element's order, emit
    the element's operations with the background-resolved data values.
    ``MarchDelay`` elements become idle records.  Per-op metadata is
    ``(background, element_index)`` so replay can rebuild the exact
    ``MarchResult.failures`` tuples.

    >>> from repro.march.library import MATS_PLUS
    >>> stream = compile_march(MATS_PLUS, 16)
    >>> stream.operation_count == MATS_PLUS.operation_count(16)
    True
    """
    mask = (1 << m) - 1
    if backgrounds is None:
        backgrounds = [0] if m == 1 else word_backgrounds(m)
    ops: list[tuple] = []
    info: list[tuple] = []
    for background in backgrounds:
        if not 0 <= background <= mask:
            raise ValueError(
                f"background {background:#x} does not fit {m}-bit words"
            )
        for element_index, element in enumerate(test.elements):
            if isinstance(element, MarchDelay):
                ops.append(("i", 0, 0, 0, None, element.cycles))
                info.append((background, element_index))
                continue
            for addr in element.addresses(n):
                for op in element.ops:
                    value = background if op.data == 0 else background ^ mask
                    if op.kind == "w":
                        ops.append(("w", 0, addr, value, None, 0))
                    else:
                        ops.append(("r", 0, addr, None, value, 0))
                    info.append((background, element_index))
    return _finish(OpStream(source="march", name=test.name, n=n, m=m,
                            ops=tuple(ops), info=tuple(info)), verify)


def _multiplier_table(field, multiplier: int, table_index: dict,
                      tables: list[tuple[int, ...]]) -> int | None:
    """Table id for ``field.mul(multiplier, .)``, or None for identity.

    Constant GF(2^m) multiplication is lowered to a lookup table at
    compile time, shared across iterations via ``(modulus, multiplier)``
    keys -- this is also what lets one stream mix iterations over
    different fields of the same width.
    """
    if multiplier == 1:
        return None  # mul(1, r) == r: the replay adds the read directly
    key = (field.modulus, multiplier)
    index = table_index.get(key)
    if index is None:
        index = len(tables)
        tables.append(tuple(field.mul(multiplier, r) for r in range(field.size)))
        table_index[key] = index
    return index


def _compile_iteration(iteration, n: int, m: int,
                       previous_background: list[int] | None,
                       iteration_index: int,
                       ops: list[tuple], info: list[tuple],
                       table_index: dict,
                       tables: list[tuple[int, ...]]) -> Segment:
    """Emit one π-iteration's records; returns its :class:`Segment`.

    Replicates :meth:`repro.prt.pi_test.PiIteration.run` step for step:
    seed writes (with transparent verification when a previous background
    is given), the n-sub-iteration sweep with null recurrence taps
    skipped, and the final signature-window reads.
    """
    field = iteration.field
    if m != field.m:
        raise ValueError(
            f"RAM cell width m={m} does not match field GF(2^{field.m})"
        )
    k = iteration.k
    if n < k + 1:
        raise ValueError(
            f"memory must have more than k={k} cells, got {n}"
        )
    if previous_background is not None and len(previous_background) != n:
        raise ValueError(
            f"previous background must list all {n} cells, "
            f"got {len(previous_background)}"
        )
    traj = iteration.trajectory_for(n)
    mask = (1 << field.m) - 1
    enc = mask if iteration.invert else 0
    mult = iteration.recurrence_multipliers
    start = len(ops)
    # 1. Init: seed the first k trajectory cells.
    for i, value in enumerate(iteration.seed):
        if previous_background is not None:
            cell = traj[i]
            ops.append(("r", 0, cell, None, previous_background[cell], 0))
            info.append((iteration_index, "verify"))
        ops.append(("w", 0, traj[i], value ^ enc, None, 0))
        info.append((iteration_index, "seed"))
    # 2. Sweep with cyclic wrap: n sub-iterations.
    tap_tables = [
        _multiplier_table(field, multiplier, table_index, tables)
        if multiplier else 0
        for multiplier in mult
    ]
    expected_stream = iteration.expected_stream(n)
    for j in range(n):
        for i in range(k):
            if mult[i] == 0:
                continue  # null tap, skipped by the engine as well
            ops.append(("ra", 0, traj[j + i], tap_tables[i], enc, 0))
            info.append((iteration_index, "sweep"))
        if previous_background is not None:
            cell = traj[j + k]
            # Wrap writes overwrite this iteration's own seeds.
            expected = (previous_background[cell] if j < n - k
                        else iteration.seed[j + k - n] ^ enc)
            ops.append(("r", 0, cell, None, expected, 0))
            info.append((iteration_index, "verify"))
        ops.append(("wa", 0, traj[j + k], enc, expected_stream[j], 0))
        info.append((iteration_index, "sweep"))
    # 3. Signature: read the final window (wraps to the first k cells).
    expected_final = iteration.expected_final(n)
    for i in range(k):
        ops.append(("s", 0, traj[n + i], None, expected_final[i], 0))
        info.append((iteration_index, "sig"))
    return Segment(
        label="iteration", index=iteration_index, start=start, stop=len(ops),
        init_state=tuple(value ^ enc for value in iteration.seed),
        expected_final=expected_final,
    )


def compile_pi_iteration(iteration, n: int, m: int = 1,
                         verify: bool = False) -> OpStream:
    """Lower one standalone :class:`~repro.prt.pi_test.PiIteration`.

    >>> from repro.prt import PiIteration
    >>> it = PiIteration(generator=(1, 0, 1, 1), seed=(0, 0, 1))
    >>> stream = compile_pi_iteration(it, 14)
    >>> stream.operation_count == it.operation_count(14)
    True
    """
    ops: list[tuple] = []
    info: list[tuple] = []
    tables: list[tuple[int, ...]] = []
    segment = _compile_iteration(iteration, n, m, None, 0, ops, info,
                                 {}, tables)
    return _finish(
        OpStream(source="iteration", name=repr(iteration), n=n, m=m,
                 ops=tuple(ops), info=tuple(info), tables=tuple(tables),
                 segments=(segment,)), verify)


def compile_schedule(schedule, n: int, m: int = 1,
                     verify: bool = False) -> OpStream:
    """Lower a :class:`~repro.prt.schedule.PiTestSchedule`.

    Emits every iteration (chained through ``background_after`` when the
    schedule verifies transparently), inter-iteration pauses, and the
    final stride-2 read-back pass, exactly as
    :meth:`~repro.prt.schedule.PiTestSchedule.run` executes them.

    >>> from repro.prt import standard_schedule
    >>> schedule = standard_schedule(n=14)
    >>> stream = compile_schedule(schedule, 14)
    >>> stream.operation_count == schedule.operation_count(14)
    True
    """
    iterations = schedule.iterations
    transparent = schedule.verify
    pause = schedule.pause_between
    ops: list[tuple] = []
    info: list[tuple] = []
    tables: list[tuple[int, ...]] = []
    table_index: dict = {}
    segments: list[Segment] = []
    previous_background: list[int] | None = None
    for index, iteration in enumerate(iterations):
        start = len(ops)
        if index and pause:
            ops.append(("i", 0, 0, 0, None, pause))
            info.append((index, "pause"))
        segment = _compile_iteration(
            iteration, n, m, previous_background, index, ops, info,
            table_index, tables
        )
        # Fold the leading pause into the iteration's segment so a
        # segment-wise replay issues it at the same point in time.
        segments.append(Segment(
            label="iteration", index=index, start=start, stop=segment.stop,
            init_state=segment.init_state,
            expected_final=segment.expected_final,
        ))
        if transparent:
            previous_background = iteration.background_after(n)
    if transparent and previous_background is not None:
        last = len(iterations) - 1
        start = len(ops)
        if pause:
            ops.append(("i", 0, 0, 0, None, pause))
            info.append((last, "pause"))
        # Stride-2 order (evens, then odds) -- see PiTestSchedule.run.
        order = list(range(0, n, 2)) + list(range(1, n, 2))
        for addr in order:
            ops.append(("r", 0, addr, None, previous_background[addr], 0))
            info.append((last, "readback"))
        segments.append(Segment(label="readback", index=last,
                                start=start, stop=len(ops)))
    elif pause:
        # Pure mode still idles after the last iteration when a pause is
        # configured (PiTestSchedule.run does, before skipping read-back).
        last = len(iterations) - 1
        start = len(ops)
        ops.append(("i", 0, 0, 0, None, pause))
        info.append((last, "pause"))
        segments.append(Segment(label="readback", index=last,
                                start=start, stop=len(ops)))
    return _finish(
        OpStream(source="schedule", name=schedule.name, n=n, m=m,
                 ops=tuple(ops), info=tuple(info), tables=tuple(tables),
                 segments=tuple(segments)), verify)


# -- multi-port schemes: cycle-grouped lowering --------------------------------
#
# The dual-/quad-port π-tests (repro.prt.dual_port) issue several port
# operations per memory cycle -- that simultaneity IS the paper's claim
# (2n cycles for dual-port, n for quad-port), so the lowering must keep
# it.  Cycle groups (the "grp" records of repro.sim.ir) encode it: each
# interpreted ram.cycle([...]) call becomes one group, and replay through
# MultiPortRAM.apply_stream reproduces the exact per-cycle read/write
# phases, conflict checks and RamStats the interpreted engine produces.


def _compile_dual_iteration(iteration, n: int, m: int,
                            previous_background: list[int] | None,
                            iteration_index: int,
                            ops: list[tuple], info: list[tuple],
                            table_index: dict,
                            tables: list[tuple[int, ...]]) -> Segment:
    """Emit one dual-port π-iteration's records; returns its Segment.

    Replicates :meth:`repro.prt.dual_port.DualPortPiIteration.run` cycle
    for cycle, including the transparent-verification layout: one
    leading double-read group for the seed cells, then a verify read on
    the write cycle's idle second port (zero extra cycles -- the group's
    read phase senses the pre-write value).
    """
    field = iteration.field
    if m != field.m:
        raise ValueError(
            f"RAM cell width m={m} does not match field GF(2^{field.m})"
        )
    if n < 3:
        raise ValueError(f"memory must have more than 2 cells, got {n}")
    if previous_background is not None and len(previous_background) != n:
        raise ValueError(
            f"previous background must list all {n} cells, "
            f"got {len(previous_background)}"
        )
    traj = iteration.trajectory_for(n)
    seed = iteration.seed
    mult = iteration.recurrence_multipliers
    start = len(ops)

    def group(count: int, role: str) -> None:
        ops.append(("grp", 0, 0, count, None, 0))
        info.append((iteration_index, role))

    if previous_background is not None:
        # Both ports write in the init cycle, so the seed cells' old
        # contents get a dedicated leading double-read cycle.
        group(2, "verify")
        for i in range(2):
            cell = traj[i]
            ops.append(("r", i, cell, None, previous_background[cell], 0))
            info.append((iteration_index, "verify"))
    # 1. Init: both seed words in one cycle (two ports, two cells).
    group(2, "seed")
    ops.append(("w", 0, traj[0], seed[0], None, 0))
    info.append((iteration_index, "seed"))
    ops.append(("w", 1, traj[1], seed[1], None, 0))
    info.append((iteration_index, "seed"))
    # 2. Sweep: a double-read cycle then a write cycle per sub-iteration.
    # Unlike the single-port compiler, a null tap is NOT skipped: the
    # dual-port engine always issues both reads (the cycle pattern is
    # fixed in hardware), so a zero multiplier lowers to an
    # all-zero lookup table -- the read happens, contributes nothing.
    taps = [
        _multiplier_table(field, multiplier, table_index, tables)
        for multiplier in mult
    ]
    expected_stream = iteration.expected_stream(n)
    for j in range(n):
        group(2, "sweep")
        ops.append(("ra", 0, traj[j], taps[0], 0, 0))
        info.append((iteration_index, "sweep"))
        ops.append(("ra", 1, traj[j + 1], taps[1], 0, 0))
        info.append((iteration_index, "sweep"))
        if previous_background is None:
            # The write-back cycle carries a single op, so it stays a
            # flat record: a one-member group is exactly one op in one
            # cycle (the degenerate case), and eliding the marker keeps
            # the replay hot loop shorter.
            ops.append(("wa", 0, traj[j + 2], 0, expected_stream[j], 0))
            info.append((iteration_index, "sweep"))
        else:
            # Verifying mode: port 1 reads the cell port 0 overwrites,
            # in the same cycle (the group's read phase is pre-write).
            cell = traj[j + 2]
            # Wrap writes overwrite this iteration's own seeds.
            expected = (previous_background[cell] if j < n - 2
                        else seed[j + 2 - n])
            group(2, "sweep")
            ops.append(("wa", 0, cell, 0, expected_stream[j], 0))
            info.append((iteration_index, "sweep"))
            ops.append(("r", 1, cell, None, expected, 0))
            info.append((iteration_index, "verify"))
    # 3. Signature: both final-window reads in one cycle.
    expected_final = iteration.expected_final(n)
    group(2, "sig")
    ops.append(("s", 0, traj[n], None, expected_final[0], 0))
    info.append((iteration_index, "sig"))
    ops.append(("s", 1, traj[n + 1], None, expected_final[1], 0))
    info.append((iteration_index, "sig"))
    return Segment(label="iteration", index=iteration_index,
                   start=start, stop=len(ops),
                   init_state=tuple(seed), expected_final=expected_final)


def compile_dual_port_pi(iteration, n: int, m: int = 1,
                         verify: bool = False) -> OpStream:
    """Lower a :class:`~repro.prt.dual_port.DualPortPiIteration`.

    Mirrors its ``run`` cycle for cycle: one double-write init group,
    then per sub-iteration a double-read group (both ports, both taps --
    a null tap still reads, it just multiplies by zero) followed by a
    single-write group, and a final double-read signature group.  The
    stream replays in the paper's ``2n + 2`` cycles (claim C4 for 2P
    RAM).

    >>> from repro.prt import DualPortPiIteration
    >>> it = DualPortPiIteration(seed=(0, 1))
    >>> stream = compile_dual_port_pi(it, 14)
    >>> stream.ports, stream.replay_cycles == it.cycle_count(14)
    (2, True)
    """
    ops: list[tuple] = []
    info: list[tuple] = []
    tables: list[tuple[int, ...]] = []
    segment = _compile_dual_iteration(iteration, n, m, None, 0, ops, info,
                                      {}, tables)
    return _finish(
        OpStream(source="dual-port", name=repr(iteration), n=n, m=m,
                 ops=tuple(ops), info=tuple(info), tables=tuple(tables),
                 segments=(segment,), ports=2), verify)


def _compile_quad_iteration(iteration, n: int, m: int,
                            previous_background: list[int] | None,
                            iteration_index: int,
                            ops: list[tuple], info: list[tuple],
                            table_index: dict,
                            tables: list[tuple[int, ...]]) -> Segment:
    """Emit one quad-port π-iteration's records; returns its Segment.

    Member infos carry ``(automaton, role)`` (replay splits captures and
    verify mismatches per half); group markers carry the iteration
    index.  Verifying mode adds a leading 4-read group for the seed
    cells and folds ports 1/3 verify reads into the 2-write groups.
    """
    field = iteration.field
    if m != field.m:
        raise ValueError(
            f"RAM cell width m={m} does not match field GF(2^{field.m})"
        )
    if n % 2 != 0 or n < 6:
        raise ValueError(
            f"the two-automata scheme needs an even n >= 6, got {n}"
        )
    if previous_background is not None and len(previous_background) != n:
        raise ValueError(
            f"previous background must list all {n} cells, "
            f"got {len(previous_background)}"
        )
    half = n // 2
    seed = iteration.seed
    mult = iteration.recurrence_multipliers
    start = len(ops)

    def cell(automaton: int, j: int) -> int:
        return (half if automaton else 0) + (j % half)

    def group(count: int, role: str) -> None:
        ops.append(("grp", 0, 0, count, None, 0))
        info.append((iteration_index, role))

    if previous_background is not None:
        # All four ports write in the init cycle; one leading 4-read
        # cycle checks both automata's seed cells.
        group(4, "verify")
        for port, (automaton, i) in enumerate([(0, 0), (0, 1), (1, 0), (1, 1)]):
            addr = cell(automaton, i)
            ops.append(("r", port, addr, None, previous_background[addr], 0))
            info.append((automaton, "verify"))
    # 1. Init: all four seed words in one cycle.
    group(4, "seed")
    for port, (automaton, i) in enumerate([(0, 0), (0, 1), (1, 0), (1, 1)]):
        ops.append(("w", port, cell(automaton, i), seed[i], None, 0))
        info.append((automaton, "seed"))
    taps = [
        _multiplier_table(field, multiplier, table_index, tables)
        for multiplier in mult
    ]
    expected_stream = iteration.expected_stream(n)
    # 2. Sweep: 4 reads then 2 writes per sub-iteration (j over n/2).
    for j in range(half):
        group(4, "sweep")
        for port, (automaton, i) in enumerate([(0, 0), (0, 1), (1, 0), (1, 1)]):
            ops.append(("ra", port, cell(automaton, j + i), taps[i], 0,
                        automaton))
            info.append((automaton, "sweep"))
        if previous_background is None:
            group(2, "sweep")
            ops.append(("wa", 0, cell(0, j + 2), 0, expected_stream[j], 0))
            info.append((0, "sweep"))
            ops.append(("wa", 2, cell(1, j + 2), 0, expected_stream[j], 1))
            info.append((1, "sweep"))
        else:
            # Verifying mode: ports 1/3 read the cells ports 0/2
            # overwrite, in the same cycle (read phase is pre-write).
            group(4, "sweep")
            for automaton, (wport, rport) in enumerate([(0, 1), (2, 3)]):
                target = cell(automaton, j + 2)
                # Wrap writes overwrite this iteration's own seeds.
                expected = (previous_background[target] if j < half - 2
                            else seed[j + 2 - half])
                ops.append(("wa", wport, target, 0, expected_stream[j],
                            automaton))
                info.append((automaton, "sweep"))
                ops.append(("r", rport, target, None, expected, 0))
                info.append((automaton, "verify"))
    # 3. Signature: both automata's final windows in one cycle.
    expected_final = iteration.expected_final(n)
    group(4, "sig")
    for port, (automaton, i) in enumerate([(0, 0), (0, 1), (1, 0), (1, 1)]):
        ops.append(("s", port, cell(automaton, half + i), None,
                    expected_final[i], 0))
        info.append((automaton, "sig"))
    return Segment(label="iteration", index=iteration_index,
                   start=start, stop=len(ops),
                   init_state=tuple(seed), expected_final=expected_final)


def compile_quad_port_pi(iteration, n: int, m: int = 1,
                         verify: bool = False) -> OpStream:
    """Lower a :class:`~repro.prt.dual_port.QuadPortPiIteration`.

    Two virtual automata sweep the two array halves concurrently: per
    sub-iteration one 4-read group (ports 0/1 serve automaton A, ports
    2/3 automaton B) and one 2-write group.  Each automaton accumulates
    its recurrence in its *own* accumulator (ids 0 and 1 in the records'
    sixth slot), so corrupted data propagates per half exactly as in the
    interpreted engine.  Replays in ``n + 2`` cycles.

    >>> from repro.prt import QuadPortPiIteration
    >>> it = QuadPortPiIteration(seed=(0, 1))
    >>> stream = compile_quad_port_pi(it, 12)
    >>> stream.ports, stream.replay_cycles == it.cycle_count(12)
    (4, True)
    """
    ops: list[tuple] = []
    info: list[tuple] = []
    tables: list[tuple[int, ...]] = []
    segment = _compile_quad_iteration(iteration, n, m, None, 0, ops, info,
                                      {}, tables)
    return _finish(
        OpStream(source="quad-port", name=repr(iteration), n=n, m=m,
                 ops=tuple(ops), info=tuple(info), tables=tuple(tables),
                 segments=(segment,), ports=4), verify)


def compile_multi_schedule(schedule, n: int, m: int = 1,
                           verify: bool = False) -> OpStream:
    """Lower a :class:`~repro.prt.multi_schedule.MultiPortSchedule`.

    Emits every multi-port iteration (dual- or quad-port, dispatched on
    the iteration's ``ports`` attribute and chained through
    ``background_after`` when the schedule verifies transparently),
    inter-iteration pauses, and the final stride-2 read-back pass --
    exactly as :meth:`~repro.prt.multi_schedule.MultiPortSchedule
    .run_interpreted` executes them.  The read-back is itself
    port-parallel: the stride-2 address order is chunked into
    ``schedule.ports``-wide read groups (one cycle each), so the pass
    costs ``ceil(n / ports)`` cycles instead of ``n``.

    >>> from repro.prt import standard_multi_schedule
    >>> schedule = standard_multi_schedule(ports=2)
    >>> stream = compile_multi_schedule(schedule, 14)
    >>> stream.ports, stream.operation_count == schedule.operation_count(14)
    (2, True)
    """
    iterations = schedule.iterations
    transparent = schedule.verify
    pause = schedule.pause_between
    ports = schedule.ports
    ops: list[tuple] = []
    info: list[tuple] = []
    tables: list[tuple[int, ...]] = []
    table_index: dict = {}
    segments: list[Segment] = []
    previous_background: list[int] | None = None
    for index, iteration in enumerate(iterations):
        start = len(ops)
        if index and pause:
            ops.append(("i", 0, 0, 0, None, pause))
            info.append((index, "pause"))
        compile_one = (_compile_quad_iteration
                       if getattr(iteration, "ports", 2) == 4
                       else _compile_dual_iteration)
        segment = compile_one(iteration, n, m, previous_background, index,
                              ops, info, table_index, tables)
        # Fold the leading pause into the iteration's segment so a
        # segment-wise replay issues it at the same point in time.
        segments.append(Segment(
            label="iteration", index=index, start=start, stop=segment.stop,
            init_state=segment.init_state,
            expected_final=segment.expected_final,
        ))
        if transparent:
            previous_background = iteration.background_after(n)
    if transparent and previous_background is not None:
        last = len(iterations) - 1
        start = len(ops)
        if pause:
            ops.append(("i", 0, 0, 0, None, pause))
            info.append((last, "pause"))
        # Stride-2 order (evens, then odds) -- see PiTestSchedule.run --
        # issued ports-at-a-time: all ports of the RAM read in parallel.
        order = list(range(0, n, 2)) + list(range(1, n, 2))
        for chunk_start in range(0, n, ports):
            chunk = order[chunk_start:chunk_start + ports]
            if len(chunk) > 1:
                ops.append(("grp", 0, 0, len(chunk), None, 0))
                info.append((last, "readback"))
            for port, addr in enumerate(chunk):
                ops.append(("r", port, addr, None,
                            previous_background[addr], 0))
                info.append((last, "readback"))
        segments.append(Segment(label="readback", index=last,
                                start=start, stop=len(ops)))
    elif pause:
        # Pure mode still idles after the last iteration when a pause is
        # configured, mirroring the single-port schedule compiler.
        last = len(iterations) - 1
        start = len(ops)
        ops.append(("i", 0, 0, 0, None, pause))
        info.append((last, "pause"))
        segments.append(Segment(label="readback", index=last,
                                start=start, stop=len(ops)))
    return _finish(
        OpStream(source="multi-schedule", name=schedule.name, n=n, m=m,
                 ops=tuple(ops), info=tuple(info), tables=tuple(tables),
                 segments=tuple(segments), ports=ports), verify)


# -- memoized entry points -----------------------------------------------------
#
# The thin adapters (run_march, PiTestSchedule.run, the run_coverage
# runners) compile on every call; these caches make repeated runs of the
# same test on the same geometry -- per-fault loops in benchmarks and
# examples, the CLI compare table -- pay the lowering once.  Streams are
# immutable apart from the reference-pass flag, which is *meant* to be
# shared, so handing out the same object is safe.


@lru_cache(maxsize=256)
def _cached_march(test: MarchTest, n: int, m: int,
                  backgrounds: tuple[int, ...] | None) -> OpStream:
    return compile_march(
        test, n, m,
        backgrounds=None if backgrounds is None else list(backgrounds),
    )


def cached_march_stream(test: MarchTest, n: int, m: int = 1,
                        backgrounds: list[int] | None = None) -> OpStream:
    """Memoized :func:`compile_march` (keyed on test, geometry and
    backgrounds).

    >>> from repro.march.library import MATS
    >>> cached_march_stream(MATS, 8) is cached_march_stream(MATS, 8)
    True
    """
    key = None if backgrounds is None else tuple(backgrounds)
    return _cached_march(test, n, m, key)


@lru_cache(maxsize=256)
def cached_schedule_stream(schedule, n: int, m: int = 1) -> OpStream:
    """Memoized :func:`compile_schedule` (schedules are keyed by
    identity -- they are configured once and never mutated).

    >>> from repro.prt import standard_schedule
    >>> schedule = standard_schedule(n=14)
    >>> cached_schedule_stream(schedule, 14) is cached_schedule_stream(schedule, 14)
    True
    """
    return compile_schedule(schedule, n, m)


@lru_cache(maxsize=256)
def cached_pi_iteration_stream(iteration, n: int, m: int = 1) -> OpStream:
    """Memoized :func:`compile_pi_iteration` (keyed by iteration
    identity)."""
    return compile_pi_iteration(iteration, n, m)


@lru_cache(maxsize=256)
def cached_dual_port_stream(iteration, n: int, m: int = 1) -> OpStream:
    """Memoized :func:`compile_dual_port_pi` (keyed by iteration
    identity -- iterations are configured once and never mutated).

    Object identity is what lets repeated campaigns over one scheme hit
    the :class:`~repro.sim.pool.WorkerPool` broadcast cache too.
    """
    return compile_dual_port_pi(iteration, n, m)


@lru_cache(maxsize=256)
def cached_quad_port_stream(iteration, n: int, m: int = 1) -> OpStream:
    """Memoized :func:`compile_quad_port_pi` (keyed by iteration
    identity)."""
    return compile_quad_port_pi(iteration, n, m)


@lru_cache(maxsize=256)
def cached_multi_schedule_stream(schedule, n: int, m: int = 1) -> OpStream:
    """Memoized :func:`compile_multi_schedule` (keyed by schedule
    identity -- schedules are configured once and never mutated)."""
    return compile_multi_schedule(schedule, n, m)
