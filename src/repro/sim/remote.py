"""Multi-host campaign dispatch: worker daemons and :class:`RemotePool`.

The process pools of :mod:`repro.sim.pool` stop at one machine.  This
module fans the *same* shard tasks out over sockets instead: a worker
daemon (``python -m repro.sim.remote --listen HOST:PORT``) executes
shard tuples exactly as a pool worker would (they share
:func:`repro.sim.campaign._run_task`), and :class:`RemotePool` exposes
the ``pool=`` surface the campaign engines already speak -- so

    run_coverage(march_runner(test, n),
                 standard_universe(n),
                 pool=RemotePool(["host-a:9009", "host-b:9009"]))

shards one campaign across hosts with no other code change.

Protocol (version 1) -- length-prefixed pickle frames, 8-byte big-endian
size header, one request/reply pair at a time per connection:

``("hello", version)``          -> ``("ok", version)``; mismatch refuses.
``("has-stream", digest)``      -> ``("has", bool)``.
``("stream", digest, stream)``  -> ``("ok",)``; pins the stream.
``("shard", task)``             -> ``("result", payload)`` or
                                   ``("error", message)``.
``("stop",)``                   -> ``("ok",)``; ends the connection.

Streams are content-addressed by :meth:`~repro.sim.ir.OpStream.digest`
-- the digest string *is* the task token -- and ship to a host at most
once (``has-stream`` makes the dedup robust across reconnects), the
socket twin of the shared-memory broadcast.  Scheduling mirrors the
in-process flow: one feeder thread per daemon pulls tasks from a shared
queue, so hosts steal from each other naturally, and a task in flight on
a connection that dies is *re-queued* for the survivors -- the reply
died with the socket, so re-running it cannot duplicate verdicts.  When
the last daemon is lost the flow surfaces :class:`PoolUnavailable` and
the campaign degrades to single-process execution, same as a broken
local pool.

A daemon executes shards in the connection thread: one daemon saturates
one core (the replay loop holds the GIL), so run one daemon per core and
list each ``host:port`` in the pool.
"""

from __future__ import annotations

import argparse
import contextlib
import pickle
import queue
import socket
import struct
import threading
import time

from repro.sim.ir import OpStream
from repro.sim.pool import PoolUnavailable, _WORKER_STREAMS

__all__ = ["RemotePool", "ReproDaemon", "PROTOCOL_VERSION"]

#: Wire-protocol version; hello frames carry it and mismatches refuse
#: the connection (a daemon from another release must not silently
#: mis-execute shard tuples).
PROTOCOL_VERSION = 1

#: Seconds a feeder waits on one shard reply before declaring the
#: daemon lost (matches the local drain's SHARD_TIMEOUT rationale).
REPLY_TIMEOUT = 300.0

#: Seconds to wait for a daemon to accept a connection.
CONNECT_TIMEOUT = 10.0

#: Queue sentinel ending a remote flow's feed (compared by identity).
_REMOTE_DONE = object()


# -- framing ----------------------------------------------------------------

def _send_frame(sock: socket.socket, message) -> None:
    blob = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(struct.pack(">Q", len(blob)) + blob)


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    buf = bytearray()
    while len(buf) < size:
        chunk = sock.recv(size - len(buf))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        buf += chunk
    return bytes(buf)


def _recv_frame(sock: socket.socket):
    (size,) = struct.unpack(">Q", _recv_exact(sock, 8))
    return pickle.loads(_recv_exact(sock, size))


def _parse_address(address: str) -> tuple[str, int]:
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"remote worker address must be 'host:port', got {address!r}")
    return host or "127.0.0.1", int(port)


# -- the daemon --------------------------------------------------------------

class ReproDaemon:
    """A shard-executing worker daemon (one per core of a remote host).

    Normally run via ``python -m repro.sim.remote --listen HOST:PORT``;
    tests embed one in-process with :meth:`start` / :meth:`close` (a
    close with connections open looks exactly like a killed daemon to
    the pool, which is how the re-queue path is exercised).

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`port`).
    delay_s:
        Test hook: sleep this long before *executing* each shard, so a
        test can deterministically kill the daemon mid-task.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 delay_s: float = 0.0):
        self._server = socket.create_server((host, port))
        self.host, self.port = self._server.getsockname()[:2]
        self.delay_s = delay_s
        self._stopping = threading.Event()
        self._thread: threading.Thread | None = None
        self._connections: list[socket.socket] = []
        self._lock = threading.Lock()
        # This daemon's pinned streams.  A daemon normally owns its
        # process, but tests embed several in one -- a per-instance
        # store keeps "has-stream" answering for *this* daemon only,
        # exactly as separate processes would.
        self._streams: dict[str, OpStream] = {}

    @property
    def address(self) -> str:
        """The ``host:port`` string a :class:`RemotePool` dials."""
        return f"{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Accept connections until :meth:`close` (one thread each)."""
        while not self._stopping.is_set():
            try:
                conn, _peer = self._server.accept()
            except OSError:
                break  # server socket closed by close()
            with self._lock:
                self._connections.append(conn)
            threading.Thread(target=self._serve_connection, args=(conn,),
                             daemon=True).start()

    def start(self) -> "ReproDaemon":
        """Serve on a background thread (in-process use, tests)."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop accepting and drop every live connection (idempotent).

        Connections are severed mid-whatever-they-were-doing -- to a
        connected pool this is indistinguishable from the daemon being
        killed, which is the point.
        """
        self._stopping.set()
        # shutdown() wakes the thread blocked in accept(); a bare
        # close() would not -- CPython defers releasing the fd while
        # accept holds a reference, leaving the port bound forever.
        with contextlib.suppress(OSError):
            self._server.shutdown(socket.SHUT_RDWR)
        with contextlib.suppress(OSError):
            self._server.close()
        with self._lock:
            connections, self._connections = self._connections, []
        for conn in connections:
            with contextlib.suppress(OSError):
                conn.shutdown(socket.SHUT_RDWR)
            with contextlib.suppress(OSError):
                conn.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ReproDaemon":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- per-connection request loop ----------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        # Late import: campaign imports nothing from this module, so the
        # daemon side can reuse its task dispatcher directly.
        from repro.sim.campaign import _run_task

        try:
            while not self._stopping.is_set():
                message = _recv_frame(conn)
                kind = message[0]
                if kind == "hello":
                    if message[1] != PROTOCOL_VERSION:
                        _send_frame(conn, ("error",
                                           f"protocol {message[1]} != "
                                           f"{PROTOCOL_VERSION}"))
                        return
                    _send_frame(conn, ("ok", PROTOCOL_VERSION))
                elif kind == "has-stream":
                    _send_frame(conn, ("has", message[1] in self._streams))
                elif kind == "stream":
                    digest, stream = message[1], message[2]
                    # The digest string is the task token: pinning under
                    # it makes worker_stream()/_run_task work unchanged.
                    self._streams[digest] = stream
                    _WORKER_STREAMS[digest] = stream
                    _send_frame(conn, ("ok",))
                elif kind == "shard":
                    if self.delay_s:
                        time.sleep(self.delay_s)
                    try:
                        task = message[1]
                        if task[1] not in self._streams:
                            raise PoolUnavailable(
                                f"daemon holds no stream for token "
                                f"{task[1]!r}")
                        payload = _run_task(task)
                    except Exception as exc:
                        _send_frame(conn, ("error",
                                           f"{type(exc).__name__}: {exc}"))
                    else:
                        _send_frame(conn, ("result", payload))
                elif kind != "stop":
                    _send_frame(conn, ("error",
                                       f"unknown message {kind!r}"))
                else:
                    _send_frame(conn, ("ok",))
                    return
        except (ConnectionError, EOFError, OSError, pickle.PickleError):
            pass  # peer gone (or we are closing): nothing to answer to
        finally:
            with contextlib.suppress(OSError):
                conn.close()
            with self._lock:
                if conn in self._connections:
                    self._connections.remove(conn)


# -- the client pool ---------------------------------------------------------

class _RemoteHost:
    """One daemon connection: socket, liveness, per-host shipped digests."""

    def __init__(self, address: str):
        self.address = address
        self.sock: socket.socket | None = None
        self.lock = threading.Lock()  # one request/reply pair at a time
        self.shipped: set[str] = set()

    @property
    def alive(self) -> bool:
        return self.sock is not None

    def connect(self) -> bool:
        """(Re)dial and handshake; False when unreachable."""
        self.drop()
        try:
            sock = socket.create_connection(_parse_address(self.address),
                                            timeout=CONNECT_TIMEOUT)
            sock.settimeout(REPLY_TIMEOUT)
            _send_frame(sock, ("hello", PROTOCOL_VERSION))
            reply = _recv_frame(sock)
            if reply[0] != "ok":
                sock.close()
                return False
        except (OSError, ConnectionError, EOFError, pickle.PickleError):
            return False
        self.sock = sock
        self.shipped = set()  # a fresh daemon process has no streams
        return True

    def request(self, message):
        """One framed request/reply exchange (drops the host on error)."""
        with self.lock:
            if self.sock is None:
                raise ConnectionError(f"{self.address} is not connected")
            try:
                _send_frame(self.sock, message)
                return _recv_frame(self.sock)
            except (OSError, ConnectionError, EOFError,
                    pickle.PickleError, socket.timeout):
                self.drop()
                raise ConnectionError(f"lost daemon {self.address}") from None

    def ensure_stream(self, digest: str, stream: OpStream,
                      probe: bool = False) -> bool:
        """Ship ``stream`` unless this host already holds its digest.

        Returns True when stream bytes actually crossed the wire.  With
        ``probe`` the local ``shipped`` shortcut is skipped, forcing a
        ``has-stream`` round trip -- how a broadcast notices a stale
        connection (daemon killed or restarted since the last exchange)
        while a still-running daemon answers "has" and ships nothing.
        """
        if not probe and digest in self.shipped:
            return False
        reply = self.request(("has-stream", digest))
        if reply[0] == "has" and reply[1]:
            self.shipped.add(digest)
            return False
        reply = self.request(("stream", digest, stream))
        if reply[0] != "ok":
            raise ConnectionError(
                f"{self.address} refused stream: {reply!r}")
        self.shipped.add(digest)
        return True

    def drop(self) -> None:
        sock, self.sock = self.sock, None
        if sock is not None:
            with contextlib.suppress(OSError):
                sock.close()


class _RemoteFlow:
    """The remote twin of :class:`~repro.sim.pool.TaskFlow`.

    One feeder thread per live daemon pulls tasks off a shared queue --
    a fast host simply pulls more often, which is cross-host work
    stealing for free -- and pushes payloads onto a results queue the
    campaign drain consumes.  A feeder whose connection dies re-queues
    its in-flight task for the survivors and exits; the last feeder to
    die posts a failure marker so the drain degrades promptly instead of
    waiting out its shard timeout.
    """

    def __init__(self, pool: "RemotePool", hosts: list[_RemoteHost]):
        self._pool = pool
        self._tasks: queue.Queue = queue.Queue()
        self._results: queue.SimpleQueue = queue.SimpleQueue()
        self._closed = False
        self._live = len(hosts)
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._feed, args=(host,), daemon=True)
            for host in hosts
        ]
        for thread in self._threads:
            thread.start()

    def put(self, task) -> None:
        self._tasks.put(task)

    def next(self, timeout: float):
        import multiprocessing

        try:
            item = self._results.get(timeout=timeout)
        except queue.Empty:
            raise multiprocessing.TimeoutError from None
        if isinstance(item, Exception):
            raise item
        return item

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._tasks.put(_REMOTE_DONE)

    def _feed(self, host: _RemoteHost) -> None:
        while True:
            task = self._tasks.get()
            if task is _REMOTE_DONE:
                self._tasks.put(_REMOTE_DONE)  # release sibling feeders
                return
            try:
                digest = task[1]  # the token field is the stream digest
                host.ensure_stream(digest, self._pool._streams[digest])
                reply = host.request(("shard", task))
            except (ConnectionError, KeyError):
                # Daemon lost with the task in flight: its reply died
                # with the socket, so re-running the task elsewhere
                # cannot double-merge.  The last feeder out turns the
                # loss into a prompt PoolUnavailable for the drain.
                self._tasks.put(task)
                with self._lock:
                    self._live -= 1
                    if self._live == 0:
                        self._results.put(PoolUnavailable(
                            "all remote worker daemons lost"))
                return
            if reply[0] == "result":
                self._results.put(reply[1])
            else:  # daemon-side exception: poison the campaign's drain
                self._results.put(PoolUnavailable(
                    f"{host.address}: {reply[1] if len(reply) > 1 else reply!r}"
                ))


class RemotePool:
    """A pool of worker daemons behind the standard ``pool=`` surface.

    >>> pool = RemotePool(["host-a:9009", "host-a:9010", "host-b:9009"])
    ... # doctest: +SKIP

    Connections dial lazily on first use and re-dial dead daemons at
    every broadcast, so a daemon restarted between campaigns is picked
    back up.  During a campaign a lost daemon's shards re-queue to the
    survivors; only when *every* daemon is gone does the campaign see
    :class:`PoolUnavailable` and degrade to single-process execution --
    identical semantics to a broken local :class:`WorkerPool`.

    ``workers`` mirrors the daemon count, so campaign heuristics (cost
    plans cut per worker) scale with the cluster.
    """

    def __init__(self, addresses: list[str] | tuple[str, ...]):
        if not addresses:
            raise ValueError("RemotePool needs at least one 'host:port'")
        self._hosts = [_RemoteHost(address) for address in addresses]
        for host in self._hosts:
            _parse_address(host.address)  # fail fast on typos
        self.workers = len(self._hosts)
        self._broken = False
        self._streams: dict[str, OpStream] = {}
        self._broadcasts = {"streams": 0, "sent": 0, "dedup_hits": 0}

    # -- lifecycle -----------------------------------------------------------

    @property
    def broken(self) -> bool:
        """True after :meth:`mark_broken` (campaigns stop using it)."""
        return self._broken

    @property
    def streams_broadcast(self) -> int:
        """Number of distinct stream digests this pool has shipped."""
        return len(self._streams)

    def broadcast_stats(self) -> dict:
        """``streams`` distinct digests, ``sent`` host-ships performed
        (at most one per digest per daemon process), ``dedup_hits``
        broadcasts satisfied without shipping anything."""
        return dict(self._broadcasts)

    def mark_broken(self) -> None:
        """Record a failure; drop every connection."""
        self._broken = True
        for host in self._hosts:
            host.drop()

    def close(self) -> None:
        """Say goodbye to reachable daemons and drop the connections."""
        for host in self._hosts:
            if host.alive:
                with contextlib.suppress(ConnectionError):
                    host.request(("stop",))
            host.drop()

    def __enter__(self) -> "RemotePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- work ----------------------------------------------------------------

    def _live_hosts(self, reconnect: bool = False) -> list[_RemoteHost]:
        live = []
        for host in self._hosts:
            if host.alive or (reconnect and host.connect()):
                live.append(host)
        return live

    def broadcast_stream(self, stream: OpStream) -> str:
        """Ship ``stream`` to every reachable daemon; returns its token.

        The token *is* the content digest, so a shard task is portable
        across hosts and daemon restarts.  Per-host dedup means a digest
        crosses the wire to a given daemon at most once
        (``has-stream`` re-checks after reconnects, so even that is
        skipped when the daemon process survived).
        """
        if self._broken:
            raise PoolUnavailable("remote pool is broken")
        digest = stream.digest()
        known = digest in self._streams
        self._streams[digest] = stream
        live, sent = [], 0
        for host in self._hosts:
            if not host.alive and not host.connect():
                continue
            try:
                sent += host.ensure_stream(digest, stream, probe=True)
            except ConnectionError:
                # Stale connection (daemon killed or restarted since the
                # last campaign): one redial, then give the host up.
                if not host.connect():
                    continue
                try:
                    sent += host.ensure_stream(digest, stream, probe=True)
                except ConnectionError:
                    continue
            live.append(host)
        if not live:
            self.mark_broken()
            raise PoolUnavailable(
                "no remote worker daemon reachable: "
                + ", ".join(host.address for host in self._hosts)
            )
        if known and sent == 0:
            self._broadcasts["dedup_hits"] += 1
        if not known:
            self._broadcasts["streams"] += 1
        self._broadcasts["sent"] += sent
        return digest

    def flow(self, fn=None) -> _RemoteFlow:
        """Open a task flow over the live daemons.

        ``fn`` is accepted for signature parity with
        :meth:`~repro.sim.pool.WorkerPool.flow` and ignored: daemons
        always execute the shared shard-task dispatcher.
        """
        if self._broken:
            raise PoolUnavailable("remote pool is broken")
        hosts = self._live_hosts(reconnect=True)
        if not hosts:
            raise PoolUnavailable(
                "no remote worker daemon reachable: "
                + ", ".join(host.address for host in self._hosts)
            )
        return _RemoteFlow(self, hosts)

    def __repr__(self) -> str:
        state = "broken" if self._broken else (
            f"{len(self._live_hosts())}/{self.workers} connected")
        return f"RemotePool({state}, {self.streams_broadcast} streams)"


# -- CLI ---------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.remote",
        description="Run a fault-campaign worker daemon. One daemon "
                    "saturates one core; start one per core and list "
                    "each host:port in RemotePool.",
    )
    parser.add_argument("--listen", metavar="HOST:PORT", required=True,
                        help="bind address (port 0 picks a free port)")
    options = parser.parse_args(argv)
    host, port = _parse_address(options.listen)
    daemon = ReproDaemon(host=host, port=port)
    print(f"repro worker daemon listening on {daemon.host}:{daemon.port}",
          flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        daemon.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
