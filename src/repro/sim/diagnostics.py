"""Machine-readable stream diagnostics: codes, records and the error type.

Every problem the static machinery can name -- construction-time
contract violations in :class:`~repro.sim.ir.OpStream` and the deeper
findings of :mod:`repro.sim.verify` -- is described by one
:class:`Diagnostic` record ``(code, severity, index, message)`` instead
of an ad-hoc ``ValueError`` string.  The codes are stable API: clients
(the CLI ``repro verify`` command, the server's ``POST /verify``
endpoint, the CI mutation-corpus gate) match on ``code``, never on
message text.

Code space
----------

======  ========================================================
range   meaning
======  ========================================================
E0xx    stream-level shape (ops/info parallelism, ports, kinds)
E1xx    cycle-group contract (the multi-port conflict rules)
E2xx    operand domains (addresses, data, tables, accumulators)
E3xx    segment bookkeeping
W4xx    dataflow findings (dead weight -- legal but pointless)
======  ========================================================

``E``-codes are :data:`ERROR` severity -- the stream cannot mean what it
says and replay behaviour is undefined; :class:`OpStream` construction
rejects the E0xx/E1xx subset outright by raising :class:`StreamError`.
``W``-codes are :data:`WARNING` severity -- the stream replays fine but
provably wastes cycles or can never observe what it computes, which is
exactly what a test-synthesis search loop wants to prune early.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "CODES",
    "ERROR",
    "WARNING",
    "Diagnostic",
    "StreamError",
]

#: Severity of a diagnostic whose stream must be rejected.
ERROR = "error"

#: Severity of a diagnostic that flags semantic dead weight only.
WARNING = "warning"

#: Every diagnostic code the analyzers emit: ``code -> (severity,
#: one-line description)``.  The docs table in ``docs/architecture.md``
#: and the unit tests pinning the codes both derive from this registry.
CODES: dict[str, tuple[str, str]] = {
    "E001": (ERROR, "ops and info records are not parallel"),
    "E002": (ERROR, "stream declares fewer than one port"),
    "E003": (ERROR, "unknown op kind tag"),
    "E101": (ERROR, "group member count is not a positive int"),
    "E102": (ERROR, "group is larger than the stream's port count"),
    "E103": (ERROR, "group announces more members than records follow"),
    "E104": (ERROR, "non-groupable record inside a cycle group"),
    "E105": (ERROR, "port out of range for the stream's port count"),
    "E106": (ERROR, "port used twice in one cycle group"),
    "E107": (ERROR, "two simultaneous writes to one address"),
    "E201": (ERROR, "address outside the n-cell array"),
    "E202": (ERROR, "data slot does not fit the m-bit word"),
    "E203": (ERROR, "recurrence table reference out of range"),
    "E204": (ERROR, "lookup table malformed for GF(2^m)"),
    "E205": (ERROR, "accumulator id is not a non-negative int"),
    "E206": (ERROR, "idle cycle count is not a non-negative int"),
    "E207": (ERROR, "accumulator contribution never flushed by a 'wa'"),
    "E301": (ERROR, "segment bounds outside the op records"),
    "W401": (WARNING, "dead write: overwritten before any read"),
    "W402": (WARNING, "read of a never-written cell"),
    "W403": (WARNING, "idle cannot satisfy any retention window"),
    "W404": (WARNING, "accumulator flush with no contributions (constant)"),
    "W405": (WARNING, "lookup table never referenced by any 'ra'"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, its severity, and the op it names.

    ``index`` is the offending record's position in ``stream.ops`` (or
    ``None`` for stream-level findings such as a bad port count);
    ``message`` is human-readable and embeds the same cycle-indexed
    wording the historical ``ValueError`` strings carried.

    >>> d = Diagnostic("E201", "error", 3, "op 3: address 9 out of range")
    >>> str(d)
    '[E201] op 3: address 9 out of range'
    """

    code: str
    severity: str
    index: int | None
    message: str

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR


def _diagnostic(code: str, index: int | None, message: str) -> Diagnostic:
    """Build a :class:`Diagnostic` with the registry's severity."""
    severity, _ = CODES[code]
    return Diagnostic(code=code, severity=severity, index=index,
                      message=message)


class StreamError(ValueError):
    """A stream violates its structural contract.

    Subclasses :class:`ValueError` so historical ``except ValueError``
    call sites (and ``pytest.raises(ValueError, match=...)`` tests) keep
    working; ``str()`` is the first diagnostic's message *verbatim*.
    The full machine-readable findings ride on :attr:`diagnostics`.

    >>> err = StreamError([_diagnostic("E002", None,
    ...                                "streams need at least one port, got 0")])
    >>> isinstance(err, ValueError), str(err)
    (True, 'streams need at least one port, got 0')
    >>> err.diagnostics[0].code
    'E002'
    """

    def __init__(self, diagnostics: "list[Diagnostic] | tuple[Diagnostic, ...]"):
        self.diagnostics: tuple[Diagnostic, ...] = tuple(diagnostics)
        message = self.diagnostics[0].message if self.diagnostics \
            else "invalid operation stream"
        super().__init__(message)
