"""Static stream verification: prove well-formedness without executing.

:func:`verify` is the cheap oracle-side filter in front of every
campaign: it walks an :class:`~repro.sim.ir.OpStream` *once* and proves
(or refutes) the contracts replay would otherwise discover mid-campaign
-- and flags the semantic dead weight replay would never notice at all.
Nothing is executed; a verdict on a million-record stream costs one
linear pass, which is what makes the check affordable inside a
test-synthesis search loop (see ROADMAP: ``repro.synth``) and in front
of the result cache of :func:`repro.analysis.request.execute_request`.

Two passes, one walk:

**Structural verifier** (``E``-codes, :data:`~repro.sim.diagnostics
.ERROR`): the cycle-group contract (member count vs ``ports``, distinct
ports, no nested groups/idles, double-write conflicts -- shared with
:class:`~repro.sim.ir.OpStream` construction via
:func:`~repro.sim.ir.iter_construction_diagnostics`), operand domains
(addresses vs ``n``, data/masks vs the ``m``-bit word, table references
and GF(2^m) table shape, accumulator ids, idle counts), accumulator
discipline (every ``"ra"`` contribution must reach a *later-cycle*
``"wa"`` flush -- a ``"wa"`` consumes its accumulator as of the start of
its own cycle, so a same-cycle group mate does not count), and segment
bounds.

**Dataflow pass** (``W``-codes, :data:`~repro.sim.diagnostics.WARNING`):
forward abstract interpretation over the per-cell access order (group
reads precede group writes -- the multi-port read-before-write rule)
tracking written/read state per cell:

* *dead writes* -- a cell overwritten before any read senses the value;
* *uninitialized reads* -- a cell read before the stream ever writes it
  (legal: memories power up; but a synthesized test gains nothing);
* *dead idles* -- an ``"i"`` record with no written-then-read-later cell
  spanning it can never satisfy a retention window;
* *constant accumulator folds* -- a ``"wa"`` with no ``"ra"``
  contribution since the previous flush writes a provably constant
  value;
* *unused tables* -- ``tables`` entries no ``"ra"`` record references.

>>> from repro.sim.ir import OpStream
>>> stream = OpStream(source="demo", name="demo", n=2, m=1,
...                   ops=(("w", 0, 0, 1, None, 0),
...                        ("r", 0, 0, None, 1, 0)),
...                   info=((0, 0), (0, 1)))
>>> verify(stream).ok
True
>>> bad = OpStream(source="demo", name="demo", n=2, m=1,
...                ops=(("r", 0, 5, None, 0, 0),), info=((0, 0),))
>>> [d.code for d in verify(bad).errors]
['E201']
"""

from __future__ import annotations

import itertools
from bisect import bisect_left
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.diagnostics import CODES, ERROR, Diagnostic, StreamError
from repro.sim.ir import GROUPABLE_KINDS, iter_construction_diagnostics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (ir is runtime-safe)
    from repro.sim.ir import Op, OpStream

__all__ = ["StreamReport", "verify", "verify_or_raise"]

_READ_KINDS = ("r", "s", "ra")
_WRITE_KINDS = ("w", "wa")


@dataclass(frozen=True)
class StreamReport:
    """The verdict of one :func:`verify` run.

    ``diagnostics`` is ordered by op index (stream-level findings
    first); :attr:`ok` means *no error-severity finding* -- warnings
    (dead weight) never fail a stream.
    """

    diagnostics: tuple[Diagnostic, ...]

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity != ERROR)

    @property
    def ok(self) -> bool:
        return not any(d.severity == ERROR for d in self.diagnostics)

    def codes(self) -> set[str]:
        """The distinct diagnostic codes present (for tests/tools)."""
        return {d.code for d in self.diagnostics}

    def raise_on_error(self) -> None:
        """Raise :class:`StreamError` carrying the error diagnostics."""
        errors = self.errors
        if errors:
            raise StreamError(errors)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):  # type: ignore[no-untyped-def]
        return iter(self.diagnostics)


def _d(code: str, index: int | None, message: str) -> Diagnostic:
    severity, _ = CODES[code]
    return Diagnostic(code=code, severity=severity, index=index,
                      message=message)


class _Walk:
    """Accumulated facts from the single pass over the records."""

    def __init__(self) -> None:
        self.diagnostics: list[Diagnostic] = []
        #: cell -> access events [(op_index, "r"|"w"), ...] in temporal
        #: order (group reads appended before group writes).
        self.cell_events: dict[int, list[tuple[int, str]]] = {}
        #: acc id -> [("ra"|"wa", cycle, op_index), ...] in walk order.
        self.acc_events: dict[int, list[tuple[str, int, int]]] = {}
        #: idle records as (op_index, idle_cycles).
        self.idles: list[tuple[int, int]] = []
        self.used_tables: set[int] = set()


def verify(stream: "OpStream", *, dataflow: bool = True) -> StreamReport:
    """Statically verify one stream; never executes a single operation.

    Parameters
    ----------
    stream:
        The :class:`~repro.sim.ir.OpStream` (or any object carrying the
        same ``ops/info/tables/segments/n/m/ports`` attributes -- the
        tests feed raw streams that bypass construction validation).
    dataflow:
        Include the ``W``-code dataflow pass.  ``False`` runs the
        error-only structural pass -- the fast gate
        :func:`~repro.analysis.request.execute_request` uses.
    """
    diagnostics = list(iter_construction_diagnostics(
        stream.ops, stream.info, stream.ports))
    walk = _walk_records(stream)
    diagnostics.extend(walk.diagnostics)
    diagnostics.extend(_table_diagnostics(stream))
    diagnostics.extend(_segment_diagnostics(stream))
    diagnostics.extend(_accumulator_diagnostics(walk, dataflow=dataflow))
    if dataflow:
        diagnostics.extend(_dataflow_diagnostics(stream, walk))
    diagnostics.sort(key=lambda d: (-1 if d.index is None else d.index,
                                    d.code))
    return StreamReport(diagnostics=tuple(diagnostics))


def verify_or_raise(stream: "OpStream") -> None:
    """Error-only verification that raises :class:`StreamError`.

    The deep-pass hook behind the compilers' ``verify=True`` option.
    """
    verify(stream, dataflow=False).raise_on_error()


# -- the walk ---------------------------------------------------------------


def _walk_records(stream: "OpStream") -> _Walk:
    """One pass: operand domains, cycle numbering, access/acc events."""
    walk = _Walk()
    ops = stream.ops
    n = stream.n if isinstance(stream.n, int) and stream.n >= 1 else None
    m = stream.m if isinstance(stream.m, int) and stream.m >= 1 else None
    ports = stream.ports if isinstance(stream.ports, int) else 1
    tables_len = len(stream.tables)
    index, total, cycle = 0, len(ops), 0
    while index < total:
        record = ops[index]
        kind = record[0]
        if kind == "grp":
            count = record[3]
            if not isinstance(count, int) or count < 1:
                index += 1  # malformed marker (E101): treat as flat
                continue
            stop = min(index + 1 + count, total)
            reads: list[tuple[int, Op]] = []
            writes: list[tuple[int, Op]] = []
            for member in range(index + 1, stop):
                rec = ops[member]
                if rec[0] not in GROUPABLE_KINDS:
                    continue  # E104 already reported
                _record_domain(walk, rec, member, n, m, tables_len)
                _acc_event(walk, rec, member, cycle)
                if rec[0] in _READ_KINDS:
                    reads.append((member, rec))
                else:
                    writes.append((member, rec))
            # Read-before-write: the group's reads all sense pre-cycle
            # state, so they precede every member write temporally.
            for member, rec in itertools.chain(reads, writes):
                _cell_event(walk, rec, member, n)
            cycle += 1
            index = max(stop, index + 1)
            continue
        if kind == "i":
            _record_domain(walk, rec=record, index=index, n=n, m=m,
                           tables_len=tables_len)
            idle = record[5]
            if isinstance(idle, int) and idle >= 0:
                walk.idles.append((index, idle))
                cycle += idle
            index += 1
            continue
        if kind in GROUPABLE_KINDS:
            _record_domain(walk, record, index, n, m, tables_len)
            port = record[1]
            if not isinstance(port, int) or not 0 <= port < ports:
                walk.diagnostics.append(_d(
                    "E105", index,
                    f"op {index}: port {port} out of range [0, {ports})"))
            _acc_event(walk, record, index, cycle)
            _cell_event(walk, record, index, n)
            cycle += 1
            index += 1
            continue
        index += 1  # unknown kind: E003 already reported
    return walk


def _record_domain(walk: _Walk, rec: "Op", index: int, n: int | None,
                   m: int | None, tables_len: int) -> None:
    """Operand-domain checks for one record (E201/E202/E203/E205/E206)."""
    kind = rec[0]
    mask = None if m is None else (1 << m) - 1

    def fits(value: object) -> bool:
        return mask is None or (isinstance(value, int)
                                and 0 <= value <= mask)

    if kind in GROUPABLE_KINDS and n is not None:
        addr = rec[2]
        if not isinstance(addr, int) or not 0 <= addr < n:
            walk.diagnostics.append(_d(
                "E201", index,
                f"op {index}: address {addr!r} outside the {n}-cell array"))
    if kind == "w" and not fits(rec[3]):
        walk.diagnostics.append(_d(
            "E202", index,
            f"op {index}: write value {rec[3]!r} does not fit "
            f"{m}-bit words"))
    if kind in ("r", "s") and not fits(rec[4]):
        walk.diagnostics.append(_d(
            "E202", index,
            f"op {index}: expected read value {rec[4]!r} does not fit "
            f"{m}-bit words"))
    if kind == "ra":
        ref = rec[3]
        if ref is not None and (not isinstance(ref, int)
                                or not 0 <= ref < tables_len):
            walk.diagnostics.append(_d(
                "E203", index,
                f"op {index}: table reference {ref!r} out of range "
                f"({tables_len} table(s) attached)"))
        if not fits(rec[4]):
            walk.diagnostics.append(_d(
                "E202", index,
                f"op {index}: decode mask {rec[4]!r} does not fit "
                f"{m}-bit words"))
    if kind == "wa":
        if not fits(rec[3]):
            walk.diagnostics.append(_d(
                "E202", index,
                f"op {index}: encode mask {rec[3]!r} does not fit "
                f"{m}-bit words"))
        if rec[4] is not None and not fits(rec[4]):
            walk.diagnostics.append(_d(
                "E202", index,
                f"op {index}: expected stored value {rec[4]!r} does not "
                f"fit {m}-bit words"))
    if kind in ("ra", "wa"):
        acc = rec[5]
        if not isinstance(acc, int) or acc < 0:
            walk.diagnostics.append(_d(
                "E205", index,
                f"op {index}: accumulator id {acc!r} must be a "
                f"non-negative int"))
    if kind == "i":
        idle = rec[5]
        if not isinstance(idle, int) or idle < 0:
            walk.diagnostics.append(_d(
                "E206", index,
                f"op {index}: idle cycle count {idle!r} must be a "
                f"non-negative int"))


def _acc_event(walk: _Walk, rec: "Op", index: int, cycle: int) -> None:
    kind = rec[0]
    if kind == "ra":
        ref = rec[3]
        if isinstance(ref, int) and not isinstance(ref, bool):
            walk.used_tables.add(ref)
    if kind in ("ra", "wa"):
        acc = rec[5]
        if isinstance(acc, int) and acc >= 0:
            walk.acc_events.setdefault(acc, []).append((kind, cycle, index))


def _cell_event(walk: _Walk, rec: "Op", index: int, n: int | None) -> None:
    addr = rec[2]
    if n is None or not isinstance(addr, int) or not 0 <= addr < n:
        return  # out-of-range access already reported (E201)
    access = "r" if rec[0] in _READ_KINDS else "w"
    walk.cell_events.setdefault(addr, []).append((index, access))


# -- post-walk checks -------------------------------------------------------


def _table_diagnostics(stream: "OpStream") -> list[Diagnostic]:
    """E204: every attached table must be a full GF(2^m) value map."""
    out: list[Diagnostic] = []
    m = stream.m if isinstance(stream.m, int) and stream.m >= 1 else None
    if m is None:
        return out
    size, mask = 1 << m, (1 << m) - 1
    for table_index, table in enumerate(stream.tables):
        if not isinstance(table, (tuple, list)):
            out.append(_d("E204", None,
                          f"table {table_index}: expected a value tuple, "
                          f"got {type(table).__name__}"))
            continue
        if len(table) != size:
            out.append(_d("E204", None,
                          f"table {table_index}: {len(table)} entries "
                          f"cannot map the {size} values of a {m}-bit "
                          f"word"))
            continue
        bad = next((v for v in table
                    if not isinstance(v, int) or not 0 <= v <= mask), None)
        if bad is not None:
            out.append(_d("E204", None,
                          f"table {table_index}: entry {bad!r} does not "
                          f"fit {m}-bit words"))
    return out


def _segment_diagnostics(stream: "OpStream") -> list[Diagnostic]:
    """E301: segment slices must lie inside the op records."""
    out: list[Diagnostic] = []
    total = len(stream.ops)
    for segment in stream.segments:
        start, stop = segment.start, segment.stop
        valid = (isinstance(start, int) and isinstance(stop, int)
                 and 0 <= start <= stop <= total)
        if not valid:
            out.append(_d(
                "E301", None,
                f"segment {segment.label!r}[{segment.index}]: bounds "
                f"[{start}, {stop}) outside the {total}-record stream"))
    return out


def _accumulator_diagnostics(walk: _Walk, *,
                             dataflow: bool) -> list[Diagnostic]:
    """E207 (unflushed contributions) and W404 (constant folds).

    A ``"wa"`` consumes its accumulator *as of the start of its cycle*
    and ``"ra"`` contributions become visible to later cycles only, so a
    contribution counts toward a flush iff the flush happens in a
    strictly later cycle.
    """
    out: list[Diagnostic] = []
    for acc_id, events in sorted(walk.acc_events.items()):
        wa_cycles = [cycle for kind, cycle, _ in events if kind == "wa"]
        last_flush = max(wa_cycles, default=None)
        unflushed = [(cycle, index) for kind, cycle, index in events
                     if kind == "ra"
                     and (last_flush is None or cycle >= last_flush)]
        if unflushed:
            first = min(index for _, index in unflushed)
            out.append(_d(
                "E207", first,
                f"op {first}: accumulator {acc_id} receives "
                f"{len(unflushed)} contribution(s) that no later-cycle "
                f"'wa' ever flushes"))
        if not dataflow:
            continue
        ra_cycles = sorted(cycle for kind, cycle, _ in events
                           if kind == "ra")
        previous: int | None = None
        for kind, cycle, index in events:
            if kind != "wa":
                continue
            lower = -1 if previous is None else previous
            contributions = (bisect_left(ra_cycles, cycle)
                             - bisect_left(ra_cycles, lower))
            if contributions == 0:
                since = ("stream start" if previous is None
                         else f"the flush at cycle {previous}")
                out.append(_d(
                    "W404", index,
                    f"op {index}: 'wa' flushes accumulator {acc_id} "
                    f"with no contribution since {since} (provably "
                    f"constant)"))
            previous = cycle
    return out


def _dataflow_diagnostics(stream: "OpStream", walk: _Walk) -> list[Diagnostic]:
    """W401/W402/W403/W405: the per-cell forward dataflow findings."""
    out: list[Diagnostic] = []
    #: (write_index, read_index) retention windows for the idle check.
    windows: list[tuple[int, int]] = []
    for cell, events in sorted(walk.cell_events.items()):
        uninitialized = list(itertools.takewhile(
            lambda event: event[1] == "r", events))
        if uninitialized:
            first_index = uninitialized[0][0]
            out.append(_d(
                "W402", first_index,
                f"op {first_index}: cell {cell} is read before the "
                f"stream ever writes it ({len(uninitialized)} "
                f"uninitialized read(s))"))
        live_write: int | None = None
        for (index, access), (next_index, next_access) in \
                itertools.pairwise(events):
            if access == "w" and next_access == "w":
                out.append(_d(
                    "W401", index,
                    f"op {index}: write to cell {cell} is overwritten "
                    f"at op {next_index} before any read"))
        for index, access in events:
            if access == "w":
                live_write = index
            elif live_write is not None:
                windows.append((live_write, index))
    for index, idle in walk.idles:
        if idle > 0 and any(a < index < b for a, b in windows):
            continue
        out.append(_d(
            "W403", index,
            f"op {index}: idle of {idle} cycle(s) spans no "
            f"written-then-read cell (cannot satisfy any retention "
            f"window)"))
    for table_index in range(len(stream.tables)):
        if table_index not in walk.used_tables:
            out.append(_d(
                "W405", None,
                f"table {table_index} is never referenced by any 'ra' "
                f"record"))
    return out
