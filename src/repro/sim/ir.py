"""The operation-stream IR: a test compiled to flat memory operations.

An :class:`OpStream` is the compile-once artefact of :mod:`repro.sim`:
every memory operation a test will issue, lowered into a flat tuple of
plain-tuple records so a campaign can replay the same test against
thousands of faulty memories without re-interpreting March elements,
LFSR recurrences or trajectories.

Each record is the 6-tuple ``(kind, port, addr, value, expected, idle)``.
The ``kind`` tag selects which slots are meaningful:

=========  =================================================================
kind       semantics
=========  =================================================================
``"w"``    write the constant ``value`` to ``addr``
``"r"``    read ``addr`` and compare with ``expected`` (mismatch = detection)
``"s"``    checked read that is also *captured* (signature-window reads:
           the actual value is appended to the replay's ``captured`` list)
``"ra"``   recurrence read: read ``addr``, XOR-decode with mask
           ``expected``, multiply by the iteration's recurrence constant
           and add into the replay accumulator (a π-test sweep read).
           ``value`` is an index into :attr:`OpStream.tables` -- the
           GF(2^m) constant multiplication is precompiled to a lookup
           table per ``(field, multiplier)`` pair, so replay needs no
           field arithmetic and per-iteration fields are honoured --
           or ``None`` for a multiplier of 1 (identity)
``"wa"``   recurrence write: XOR-encode the accumulator with mask
           ``value``, write it to ``addr``, reset the accumulator;
           ``expected`` records the fault-free stored value
``"i"``    idle for ``idle`` memory cycles (March ``Del`` / PRT pause)
``"grp"``  cycle-group marker: the next ``value`` records all issue in
           *one* memory cycle, one per port (see below)
=========  =================================================================

``"ra"``/``"wa"`` keep compiled π-tests *exactly* equivalent to the
interpreted engine: write data is still computed from the actual (possibly
corrupted) reads, so fault effects propagate through the pseudo-ring the
same way, while everything that is fault-independent -- addresses,
multipliers, expected backgrounds, ``Fin*`` -- is precomputed once.

Cycle groups
------------

Flat records model the single-port discipline: one operation, one memory
cycle.  Multi-port schemes (the paper's Figure 2 dual-port π-test, the
QuadPort DSE family) issue up to one operation *per port* per cycle, and
the whole point of those schemes is the cycle count -- 2n instead of 3n
for dual-port, n for quad-port.  A ``"grp"`` marker encodes that: the
``value`` slot holds the member count k, and the k records that follow
form one memory cycle with the standard multi-port semantics

* every read (``"r"``/``"s"``/``"ra"``) senses the *pre-cycle* state
  (read-before-write: a read racing a write of the same cell returns the
  old value);
* writes commit after all reads, and two writes landing on the same cell
  are a :class:`~repro.memory.multiport.PortConflictError` -- rejected
  at stream-construction time for same-address writes, and at replay
  time when faulty decoding aliases two distinct addresses;
* ``RamStats.cycles`` advances by **one** for the whole group.

Group members use the ``port`` slot for their port and must name
distinct ports within ``[0, ports)``.  ``"i"`` records and nested groups
are not allowed inside a group.  Because several recurrence automata can
run concurrently (the quad-port scheme sweeps two array halves at once),
``"ra"``/``"wa"`` records select their accumulator with the otherwise
unused ``idle`` slot: accumulator ``record[5]``, defaulting to 0 -- the
single implicit accumulator of flat streams.  A ``"wa"`` consumes its
accumulator as of the start of its cycle; ``"ra"`` contributions become
visible to later cycles.

A flat stream is exactly the degenerate one-op-per-group case (every
group of size one, marker elided), which is why single-port streams --
their encoding, their replay semantics, their pickle bytes -- are
untouched by the grouped extension.

Replay is performed by the RAM front-ends' bulk ``apply_stream`` entry
point (:meth:`repro.memory.ram.SinglePortRAM.apply_stream` for flat
streams, :meth:`repro.memory.multiport.MultiPortRAM.apply_stream` for
grouped ones), which keeps stats/trace/settle semantics identical to
issuing ``read``/``write``/``cycle``/``idle`` calls one at a time.
"""

from __future__ import annotations

import hashlib
from collections.abc import Generator, Iterator
from dataclasses import dataclass, field as dataclass_field

from repro.sim.diagnostics import Diagnostic, StreamError, _diagnostic

__all__ = [
    "Op",
    "OpStream",
    "Segment",
    "OP_KINDS",
    "GROUPABLE_KINDS",
    "iter_construction_diagnostics",
]

Op = tuple
"""One operation record: ``(kind, port, addr, value, expected, idle)``."""

OP_KINDS = ("w", "r", "s", "ra", "wa", "i", "grp")
"""All valid record tags (see module docstring)."""

GROUPABLE_KINDS = ("w", "r", "s", "ra", "wa")
"""Tags that may appear inside a ``"grp"`` cycle group."""


def iter_construction_diagnostics(
    ops: tuple[Op, ...], info: tuple[tuple, ...], ports: int
) -> Iterator[Diagnostic]:
    """Yield every construction-contract violation in raw record data.

    This is the single source of truth for the checks
    :class:`OpStream.__post_init__` enforces (E001/E002/E003 stream
    shape, E101..E107 cycle-group contract), shared with the collect-all
    static analyzer :func:`repro.sim.verify.verify`.  Construction stays
    fail-fast (first diagnostic raises); the analyzer drains the
    generator, recovering past each finding -- a malformed group marker
    is skipped as if flat, a truncated group is clamped to the records
    that do follow -- so one pass reports *all* violations.
    """
    if len(ops) != len(info):
        yield _diagnostic(
            "E001", None,
            f"ops and info must be parallel: {len(ops)} records "
            f"vs {len(info)} metadata entries")
    if ports < 1:
        yield _diagnostic(
            "E002", None, f"streams need at least one port, got {ports}")
    index, total = 0, len(ops)
    while index < total:
        kind = ops[index][0]
        if kind not in OP_KINDS:
            yield _diagnostic(
                "E003", index, f"unknown op kind {ops[index][0]!r}")
            index += 1
        elif kind == "grp":
            index = yield from _group_diagnostics(ops, index, ports, total)
        else:
            index += 1


def _group_diagnostics(
    ops: tuple[Op, ...], index: int, ports: int, total: int
) -> Generator[Diagnostic, None, int]:
    """Check one ``"grp"`` marker's members; returns the next index.

    These are the *compile-time* conflict checks of the cycle-group
    contract: member count vs ports, distinct ports, no nested
    groups/idles, and no two writes to the same address.  Replay adds
    the physical-cell check (a faulty decoder can alias distinct
    addresses), raising ``PortConflictError`` with the cycle index.
    """
    count = ops[index][3]
    if not isinstance(count, int) or count < 1:
        yield _diagnostic(
            "E101", index,
            f"op {index}: group member count must be a positive int, "
            f"got {count!r}")
        return index + 1
    if count > ports:
        yield _diagnostic(
            "E102", index,
            f"op {index}: {count} operations grouped into one cycle of "
            f"a {ports}-port stream")
    stop = index + 1 + count
    if stop > total:
        yield _diagnostic(
            "E103", index,
            f"op {index}: group announces {count} members but only "
            f"{total - index - 1} records follow")
        stop = total
    seen_ports: set[int] = set()
    write_addrs: set[int] = set()
    for member in range(index + 1, stop):
        rec = ops[member]
        kind = rec[0]
        if kind not in GROUPABLE_KINDS:
            yield _diagnostic(
                "E104", member,
                f"op {member}: {kind!r} records cannot appear inside "
                f"a cycle group")
            continue
        port = rec[1]
        if not isinstance(port, int) or not 0 <= port < ports:
            yield _diagnostic(
                "E105", member,
                f"op {member}: port {port} out of range [0, {ports})")
        elif port in seen_ports:
            yield _diagnostic(
                "E106", member,
                f"op {member}: port {port} used twice in one cycle group")
        else:
            seen_ports.add(port)
        if kind in ("w", "wa"):
            if rec[2] in write_addrs:
                yield _diagnostic(
                    "E107", member,
                    f"op {member}: two simultaneous writes to address "
                    f"{rec[2]} in one cycle group")
            write_addrs.add(rec[2])
    return stop


@dataclass(frozen=True)
class Segment:
    """A contiguous slice of an :class:`OpStream` with shared bookkeeping.

    Schedule streams carry one segment per π-iteration (holding the
    precomputed ``init_state``/``expected_final`` needed to rebuild a
    :class:`~repro.prt.pi_test.PiIterationResult`) plus an optional
    trailing ``"readback"`` segment for the final verification pass.
    """

    label: str  # "iteration" or "readback"
    index: int  # iteration number (readback: index of the last iteration)
    start: int  # first op record (inclusive)
    stop: int  # last op record (exclusive)
    init_state: tuple[int, ...] | None = None
    expected_final: tuple[int, ...] | None = None


@dataclass
class OpStream:
    """A compiled test: flat operation records plus result-mapping metadata.

    Attributes
    ----------
    source:
        What was compiled: ``"march"``, ``"schedule"``, ``"iteration"``,
        ``"dual-port"`` or ``"quad-port"``.
    name:
        Human-readable test name (for reports).
    n, m:
        Memory geometry the stream was compiled for.
    ops:
        The flat records (see :mod:`repro.sim.ir` docstring).
    info:
        Per-op metadata, parallel to ``ops``.  March streams carry
        ``(background, element_index)``; schedule/iteration streams carry
        ``(iteration_index, role)`` with role in ``{"seed", "sweep",
        "verify", "sig", "pause", "readback"}``; grouped port streams
        additionally use the role ``"grp"`` for the cycle markers.
    tables:
        Constant-multiplier lookup tables referenced by ``"ra"`` records
        (``tables[value][r] == field.mul(multiplier, r)``); empty for
        pure constant streams such as March tests.
    segments:
        Iteration boundaries (schedule streams only).
    ports:
        Ports the stream was compiled for (1 = single-port / flat).  A
        replay target must offer at least this many ports; cycle groups
        are validated against it at construction time.
    reference_verified:
        Set by the campaign engine once a fault-free reference replay of
        this stream has passed (cached so repeated campaigns skip it).

    >>> stream = OpStream(source="march", name="demo", n=2, m=1,
    ...                   ops=(("w", 0, 0, 1, None, 0),
    ...                        ("r", 0, 0, None, 1, 0),
    ...                        ("i", 0, 0, 0, None, 8)),
    ...                   info=((0, 0), (0, 1), (0, 2)))
    >>> len(stream), stream.operation_count, stream.checked_reads
    (3, 2, 1)
    >>> stream.grouped, stream.replay_cycles
    (False, 10)
    """

    source: str
    name: str
    n: int
    m: int
    ops: tuple[Op, ...]
    info: tuple[tuple, ...]
    tables: tuple[tuple[int, ...], ...] = ()
    segments: tuple[Segment, ...] = ()
    ports: int = 1
    reference_verified: bool = dataclass_field(default=False, repr=False)
    reference_operations: int | None = dataclass_field(default=None, repr=False)

    def __post_init__(self) -> None:
        # Fail-fast construction gate: the first contract violation
        # raises StreamError (a ValueError subclass carrying the
        # machine-readable Diagnostic); repro.sim.verify drains the same
        # generator in collect-all mode.
        first = next(
            iter_construction_diagnostics(self.ops, self.info, self.ports),
            None)
        if first is not None:
            raise StreamError((first,))

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def operation_count(self) -> int:
        """Reads + writes in one replay (idles cost cycles, not operations;
        group markers are free)."""
        return sum(1 for record in self.ops if record[0] not in ("i", "grp"))

    @property
    def checked_reads(self) -> int:
        """Observation points: reads whose mismatch means *detection*."""
        return sum(1 for record in self.ops if record[0] in ("r", "s"))

    @property
    def idle_cycles(self) -> int:
        """Total idle cycles contributed by ``"i"`` records."""
        return sum(record[5] for record in self.ops if record[0] == "i")

    @property
    def grouped(self) -> bool:
        """True when the stream contains cycle groups (multi-port)."""
        return any(record[0] == "grp" for record in self.ops)

    @property
    def replay_cycles(self) -> int:
        """Memory cycles one replay costs: 1 per flat operation, 1 per
        cycle group (however many members), plus all idle cycles --
        the quantity the paper's 3n/2n/n claims are stated in.

        >>> grouped = OpStream(source="dual-port", name="g", n=2, m=1,
        ...                    ops=(("grp", 0, 0, 2, None, 0),
        ...                         ("w", 0, 0, 1, None, 0),
        ...                         ("w", 1, 1, 0, None, 0)),
        ...                    info=((0, "grp"), (0, "seed"), (0, "seed")),
        ...                    ports=2)
        >>> grouped.replay_cycles
        1
        """
        cycles = 0
        index, total = 0, len(self.ops)
        while index < total:
            record = self.ops[index]
            kind = record[0]
            if kind == "grp":
                cycles += 1
                index += 1 + record[3]
            elif kind == "i":
                cycles += record[5]
                index += 1
            else:
                cycles += 1
                index += 1
        return cycles

    def digest(self) -> str:
        """Content digest: SHA-256 over everything that defines a replay.

        Two streams with equal ``digest()`` issue the identical operation
        sequence against the identical geometry -- regardless of which
        process, Python run or compiler invocation produced them.  That
        stability is what makes streams *content-addressable*: the
        :class:`~repro.sim.pool.WorkerPool` broadcast dedups recompiled
        streams by digest, and the campaign result cache of
        :mod:`repro.server.cache` keys requests on it.

        The digest covers ``source``, ``name``, geometry (``n``, ``m``,
        ``ports``), the op records, the per-op ``info`` metadata, the
        recurrence ``tables`` and the ``segments`` -- and deliberately
        excludes the mutable replay bookkeeping (``reference_verified``,
        ``reference_operations``), which is cache state, not identity.
        Records hold only ints, strings and ``None``, whose ``repr`` is
        bit-stable across processes and runs (no hash randomization),
        so the serialization needs no custom packing.

        >>> a = OpStream(source="march", name="d", n=2, m=1,
        ...              ops=(("w", 0, 0, 1, None, 0),), info=((0, 0),))
        >>> b = OpStream(source="march", name="d", n=2, m=1,
        ...              ops=(("w", 0, 0, 1, None, 0),), info=((0, 0),))
        >>> a is b, a.digest() == b.digest(), len(a.digest())
        (False, True, 64)
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            hasher = hashlib.sha256()
            segments = tuple(
                (s.label, s.index, s.start, s.stop, s.init_state,
                 s.expected_final)
                for s in self.segments
            )
            for piece in ((self.source, self.name, self.n, self.m,
                           self.ports), self.ops, self.info, self.tables,
                          segments):
                hasher.update(repr(piece).encode("utf-8"))
                hasher.update(b"\x00")
            cached = hasher.hexdigest()
            self.__dict__["_digest"] = cached
        return cached

    def counts_by_kind(self) -> dict[str, int]:
        """``{kind: record_count}`` for diagnostics."""
        out: dict[str, int] = {}
        for record in self.ops:
            out[record[0]] = out.get(record[0], 0) + 1
        return out

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}:{c}" for k, c in sorted(self.counts_by_kind().items()))
        ports = f", ports={self.ports}" if self.ports > 1 else ""
        return (
            f"OpStream({self.name!r}, {self.source}, n={self.n}, m={self.m}"
            f"{ports}, {len(self.ops)} records [{inner}])"
        )
