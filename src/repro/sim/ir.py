"""The operation-stream IR: a test compiled to flat memory operations.

An :class:`OpStream` is the compile-once artefact of :mod:`repro.sim`:
every memory operation a test will issue, lowered into a flat tuple of
plain-tuple records so a campaign can replay the same test against
thousands of faulty memories without re-interpreting March elements,
LFSR recurrences or trajectories.

Each record is the 6-tuple ``(kind, port, addr, value, expected, idle)``.
The ``kind`` tag selects which slots are meaningful:

=========  =================================================================
kind       semantics
=========  =================================================================
``"w"``    write the constant ``value`` to ``addr``
``"r"``    read ``addr`` and compare with ``expected`` (mismatch = detection)
``"s"``    checked read that is also *captured* (signature-window reads:
           the actual value is appended to the replay's ``captured`` list)
``"ra"``   recurrence read: read ``addr``, XOR-decode with mask
           ``expected``, multiply by the iteration's recurrence constant
           and add into the replay accumulator (a π-test sweep read).
           ``value`` is an index into :attr:`OpStream.tables` -- the
           GF(2^m) constant multiplication is precompiled to a lookup
           table per ``(field, multiplier)`` pair, so replay needs no
           field arithmetic and per-iteration fields are honoured --
           or ``None`` for a multiplier of 1 (identity)
``"wa"``   recurrence write: XOR-encode the accumulator with mask
           ``value``, write it to ``addr``, reset the accumulator;
           ``expected`` records the fault-free stored value
``"i"``    idle for ``idle`` memory cycles (March ``Del`` / PRT pause)
=========  =================================================================

``"ra"``/``"wa"`` keep compiled π-tests *exactly* equivalent to the
interpreted engine: write data is still computed from the actual (possibly
corrupted) reads, so fault effects propagate through the pseudo-ring the
same way, while everything that is fault-independent -- addresses,
multipliers, expected backgrounds, ``Fin*`` -- is precomputed once.

Replay is performed by the RAM front-ends' bulk ``apply_stream`` entry
point (:meth:`repro.memory.ram.SinglePortRAM.apply_stream`), which keeps
stats/trace/settle semantics identical to issuing ``read``/``write``/
``idle`` calls one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

__all__ = ["Op", "OpStream", "Segment", "OP_KINDS"]

Op = tuple
"""One operation record: ``(kind, port, addr, value, expected, idle)``."""

OP_KINDS = ("w", "r", "s", "ra", "wa", "i")
"""All valid record tags (see module docstring)."""


@dataclass(frozen=True)
class Segment:
    """A contiguous slice of an :class:`OpStream` with shared bookkeeping.

    Schedule streams carry one segment per π-iteration (holding the
    precomputed ``init_state``/``expected_final`` needed to rebuild a
    :class:`~repro.prt.pi_test.PiIterationResult`) plus an optional
    trailing ``"readback"`` segment for the final verification pass.
    """

    label: str  # "iteration" or "readback"
    index: int  # iteration number (readback: index of the last iteration)
    start: int  # first op record (inclusive)
    stop: int  # last op record (exclusive)
    init_state: tuple[int, ...] | None = None
    expected_final: tuple[int, ...] | None = None


@dataclass
class OpStream:
    """A compiled test: flat operation records plus result-mapping metadata.

    Attributes
    ----------
    source:
        What was compiled: ``"march"``, ``"schedule"`` or ``"iteration"``.
    name:
        Human-readable test name (for reports).
    n, m:
        Memory geometry the stream was compiled for.
    ops:
        The flat records (see :mod:`repro.sim.ir` docstring).
    info:
        Per-op metadata, parallel to ``ops``.  March streams carry
        ``(background, element_index)``; schedule/iteration streams carry
        ``(iteration_index, role)`` with role in ``{"seed", "sweep",
        "verify", "sig", "pause", "readback"}``.
    tables:
        Constant-multiplier lookup tables referenced by ``"ra"`` records
        (``tables[value][r] == field.mul(multiplier, r)``); empty for
        pure constant streams such as March tests.
    segments:
        Iteration boundaries (schedule streams only).
    reference_verified:
        Set by the campaign engine once a fault-free reference replay of
        this stream has passed (cached so repeated campaigns skip it).

    >>> stream = OpStream(source="march", name="demo", n=2, m=1,
    ...                   ops=(("w", 0, 0, 1, None, 0),
    ...                        ("r", 0, 0, None, 1, 0),
    ...                        ("i", 0, 0, 0, None, 8)),
    ...                   info=((0, 0), (0, 1), (0, 2)))
    >>> len(stream), stream.operation_count, stream.checked_reads
    (3, 2, 1)
    """

    source: str
    name: str
    n: int
    m: int
    ops: tuple[Op, ...]
    info: tuple[tuple, ...]
    tables: tuple[tuple[int, ...], ...] = ()
    segments: tuple[Segment, ...] = ()
    reference_verified: bool = dataclass_field(default=False, repr=False)
    reference_operations: int | None = dataclass_field(default=None, repr=False)

    def __post_init__(self) -> None:
        if len(self.ops) != len(self.info):
            raise ValueError(
                f"ops and info must be parallel: {len(self.ops)} records "
                f"vs {len(self.info)} metadata entries"
            )
        for record in self.ops:
            if record[0] not in OP_KINDS:
                raise ValueError(f"unknown op kind {record[0]!r}")

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def operation_count(self) -> int:
        """Reads + writes in one replay (idles cost cycles, not operations)."""
        return sum(1 for record in self.ops if record[0] != "i")

    @property
    def checked_reads(self) -> int:
        """Observation points: reads whose mismatch means *detection*."""
        return sum(1 for record in self.ops if record[0] in ("r", "s"))

    @property
    def idle_cycles(self) -> int:
        """Total idle cycles contributed by ``"i"`` records."""
        return sum(record[5] for record in self.ops if record[0] == "i")

    def counts_by_kind(self) -> dict[str, int]:
        """``{kind: record_count}`` for diagnostics."""
        out: dict[str, int] = {}
        for record in self.ops:
            out[record[0]] = out.get(record[0], 0) + 1
        return out

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}:{c}" for k, c in sorted(self.counts_by_kind().items()))
        return (
            f"OpStream({self.name!r}, {self.source}, n={self.n}, m={self.m}, "
            f"{len(self.ops)} records [{inner}])"
        )
