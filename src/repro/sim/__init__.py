"""Compile-once stimulus IR and batched fault-campaign engine.

Every coverage number in this library comes from single-fault-injection
campaigns: inject a fault, run the complete test, record detection,
repeat for thousands of faults.  Interpreted per-fault execution costs

    O(|universe| * test_length * C_interp)

where ``C_interp`` is the (large) constant of walking March elements /
stepping LFSRs in Python for every single memory operation.  This
subsystem splits that work into a *compile* phase and a *replay* phase:

1. **IR** (:mod:`repro.sim.ir`) -- an :class:`OpStream` of flat
   ``(kind, port, addr, value, expected, idle)`` records: the exact
   operation sequence a test issues, with all fault-independent values
   (addresses, data backgrounds, recurrence multipliers, expected reads)
   precomputed.  π-test sweeps stay *semantically exact* through
   accumulator ops (``"ra"``/``"wa"``) that recompute write data from the
   actual -- possibly corrupted -- reads, so fault propagation through
   the pseudo-ring matches the interpreted engine bit for bit.

2. **Compilers** (:mod:`repro.sim.compilers`) --
   :func:`compile_march`, :func:`compile_schedule`,
   :func:`compile_pi_iteration`: one O(test_length) lowering per test.

3. **Campaign engine** (:mod:`repro.sim.campaign`) --
   :func:`run_campaign` replays one stream against a whole fault
   universe with a cached fault-free reference pass, early abort at the
   first detecting read, chunked execution and an opt-in ``workers=N``
   multiprocessing fan-out.  Replay cost is

       O(compile) + O(|universe| * mean_detection_prefix)

   and the mean detection prefix of a strong test is a small fraction of
   its length (most faults are caught in the first march element or
   sweep), which is where the measured multi-x campaign speedup comes
   from.

4. **Bit-packed engine** (:mod:`repro.sim.batched`) --
   :func:`run_campaign_batched` goes one step further for the fault
   classes whose effect is pure mask algebra (stuck-at, transition,
   CFin/CFid): it packs one fault per lane of a
   :class:`~repro.memory.packed.PackedMemoryArray` and replays the
   stream **once per class**, so hundreds of single-cell faults cost one
   pass.  Non-vectorizable faults fall back to :func:`run_campaign`
   per fault; verdicts are identical on every path.

5. **Parallel scheduling** (:mod:`repro.sim.pool`,
   :mod:`repro.sim.costs`, :mod:`repro.sim.remote`) -- both campaign
   engines accept ``workers=N``: a per-fault-class :class:`CostModel`
   cuts shards of roughly equal predicted work (an NPSF replay costs
   ~3x a bridging one), a persistent :class:`WorkerPool` runs them off
   a shared task queue with work stealing (oversized shards split on
   the fly), and compiled streams broadcast once per host -- through
   one shared-memory segment when large.  Universes carrying a
   :class:`~repro.faults.universe.UniverseSpec` travel as ``(spec,
   index range)``; workers enumerate their faults locally.  The
   batched engine overlaps its own lane passes with pooled shards.
   :class:`RemotePool` fans the identical shard tasks out to worker
   daemons on other hosts (``python -m repro.sim.remote``).  Verdicts
   are byte-identical on every path, and environments that cannot fork
   (or reach a daemon) degrade to single-process execution.

The legacy entry points -- :func:`repro.march.engine.run_march`,
:meth:`repro.prt.schedule.PiTestSchedule.run`,
:func:`repro.analysis.coverage.run_coverage` and the CLI ``coverage`` /
``compare`` commands -- are thin adapters over this kernel and produce
byte-identical results (equivalence-tested in ``tests/sim``).

>>> from repro.faults import single_cell_universe
>>> from repro.march.library import MARCH_C_MINUS
>>> from repro.sim import compile_march, run_campaign
>>> stream = compile_march(MARCH_C_MINUS, 16)
>>> run_campaign(stream, single_cell_universe(16, classes=("SAF", "TF"))).detection_ratio
1.0
"""

from repro.sim.ir import Op, OpStream, Segment, OP_KINDS, GROUPABLE_KINDS
from repro.sim.diagnostics import CODES, Diagnostic, StreamError
from repro.sim.verify import StreamReport, verify, verify_or_raise
from repro.sim.compilers import (
    cached_dual_port_stream,
    cached_march_stream,
    cached_multi_schedule_stream,
    cached_pi_iteration_stream,
    cached_quad_port_stream,
    cached_schedule_stream,
    compile_dual_port_pi,
    compile_march,
    compile_multi_schedule,
    compile_pi_iteration,
    compile_quad_port_pi,
    compile_schedule,
)
from repro.sim.replay import (
    replay_detect,
    replay_dual_port_iteration,
    replay_iteration,
    replay_march,
    replay_multi_schedule,
    replay_quad_port_iteration,
    replay_schedule,
)
from repro.sim.campaign import CampaignResult, partition_universe, run_campaign
from repro.sim.batched import (
    build_lane_model,
    register_lane_model,
    run_campaign_batched,
)
from repro.sim.pool import (
    PoolUnavailable,
    TaskFlow,
    WorkerPool,
    shared_pool,
    shutdown_shared_pools,
)
from repro.sim.costs import CostModel


def __getattr__(name):
    # RemotePool/ReproDaemon load lazily (PEP 562) so that running the
    # daemon entry point -- ``python -m repro.sim.remote`` -- does not
    # import the module twice (once here, once as __main__), which
    # would trip runpy's double-import RuntimeWarning on every start.
    if name in ("RemotePool", "ReproDaemon"):
        from repro.sim import remote

        return getattr(remote, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Op",
    "OpStream",
    "Segment",
    "OP_KINDS",
    "GROUPABLE_KINDS",
    "CODES",
    "Diagnostic",
    "StreamError",
    "StreamReport",
    "verify",
    "verify_or_raise",
    "compile_march",
    "compile_pi_iteration",
    "compile_schedule",
    "compile_dual_port_pi",
    "compile_quad_port_pi",
    "compile_multi_schedule",
    "cached_march_stream",
    "cached_pi_iteration_stream",
    "cached_schedule_stream",
    "cached_dual_port_stream",
    "cached_quad_port_stream",
    "cached_multi_schedule_stream",
    "replay_detect",
    "replay_iteration",
    "replay_march",
    "replay_schedule",
    "replay_dual_port_iteration",
    "replay_quad_port_iteration",
    "replay_multi_schedule",
    "CampaignResult",
    "run_campaign",
    "run_campaign_batched",
    "partition_universe",
    "build_lane_model",
    "register_lane_model",
    "PoolUnavailable",
    "TaskFlow",
    "WorkerPool",
    "CostModel",
    "RemotePool",
    "ReproDaemon",
    "shared_pool",
    "shutdown_shared_pools",
]
