"""PRT vs March head-to-head comparison (experiment E9).

The paper positions pseudo-ring testing against the March family; this
module runs both over the same fault universe and produces rows of
(test, cost, per-class coverage) -- who wins, by what factor, and where
the crossovers fall.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.coverage import (
    CoverageReport,
    Runner,
    run_coverage,
)
from repro.faults.universe import FaultUniverse
from repro.sim.pool import WorkerPool

__all__ = ["ComparisonRow", "compare_tests"]


@dataclass
class ComparisonRow:
    """One comparison-table row: a test's cost and coverage."""

    name: str
    operations: int
    report: CoverageReport

    @property
    def ops_per_cell(self) -> float:
        """Cost normalized to memory size (filled by :func:`compare_tests`)."""
        return self._ops_per_cell

    def coverage(self, fault_class: str) -> float:
        """Coverage of one fault class."""
        return self.report.coverage_of(fault_class)

    @property
    def overall(self) -> float:
        """Overall coverage."""
        return self.report.overall


def compare_tests(entries: list[tuple[str, Runner, int]],
                  universe: FaultUniverse | None = None,
                  n: int | None = None, m: int = 1,
                  workers: int = 0,
                  pool: WorkerPool | None = None,
                  cache=None) -> list[ComparisonRow]:
    """Run each (name, runner, operation_count) entry over the universe.

    Two call forms.  The canonical one takes a list of
    :class:`~repro.analysis.request.CampaignRequest` objects::

        compare_tests([CampaignRequest(test="prt3", n=28),
                       CampaignRequest(test="march-c", n=28)])

    Row names and operation counts then come from the shared resolver
    (the display names and complexity accounting the CLI table has
    always printed), reports route through the content-addressed result
    cache (``cache`` as in :func:`run_coverage`), and ``universe``/``n``
    must be left at their defaults.  The legacy entry form below keeps
    working byte-identically.

    ``operation_count`` is the test's cost on the n-cell memory (exact
    counts from :mod:`repro.analysis.complexity` or the engines' own
    accounting).  Each compilable runner is lowered once and replayed by
    the batched campaign engine; ``workers`` fans each campaign out over
    that many processes (0 = in-process).  All rows share one persistent
    worker pool (``pool``, or the process-wide shared pool), so pool
    startup is paid once for the whole table, not per test.

    >>> from repro.analysis.coverage import march_runner
    >>> from repro.analysis.complexity import march_operations
    >>> from repro.faults import single_cell_universe
    >>> from repro.march.library import MATS
    >>> universe = single_cell_universe(8, classes=("SAF",))
    >>> rows = compare_tests(
    ...     [("MATS", march_runner(MATS), march_operations(MATS, 8))],
    ...     universe, 8)
    >>> rows[0].coverage("SAF")
    1.0
    """
    from repro.analysis.request import (
        CampaignRequest,
        execute_request,
        resolve_campaign,
    )

    entries = list(entries)
    if entries and all(isinstance(e, CampaignRequest) for e in entries):
        if universe is not None or n is not None:
            raise ValueError(
                "compare_tests(requests) takes no universe/n -- each "
                "CampaignRequest already carries them"
            )
        rows = []
        for request in entries:
            resolved = resolve_campaign(request)
            outcome = execute_request(request, cache=cache, pool=pool,
                                      test_name=resolved.display_name)
            row = ComparisonRow(name=resolved.display_name,
                                operations=resolved.operations,
                                report=outcome.report)
            row._ops_per_cell = resolved.operations / request.n
            rows.append(row)
        return rows
    if universe is None or n is None:
        raise TypeError(
            "compare_tests needs (entries, universe, n) -- or a list of "
            "CampaignRequest objects"
        )
    rows = []
    for name, runner, operations in entries:
        report = run_coverage(runner, universe, n, m=m, test_name=name,
                              workers=workers, pool=pool)
        row = ComparisonRow(name=name, operations=operations, report=report)
        row._ops_per_cell = operations / n
        rows.append(row)
    return rows
