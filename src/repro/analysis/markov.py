"""Markov-chain model of π-test fault detection (claim C2).

The paper states: "Applying Markov chain analysis it was shown that π-test
iteration has a high resolution for most memory faults."  The companion
reference [2] is not available, so we derive the natural model and
validate it against Monte-Carlo fault simulation (experiment E6).

Model.  Track one injected fault across a sequence of π-iterations with
randomized test data (random seeds/trajectories).  Per iteration:

* the fault *activates* with probability ``p_activation`` (its cell's
  fault-free background value differs from the faulty one -- e.g. ~1/2
  for a stuck-at bit under a balanced background);
* an activated error *propagates* to the compared signature with
  probability ``p_propagation`` (the recurrence is linear and invertible,
  so propagation fails only through cancellation/aliasing, which for an
  m-bit window behaves like ~``1 - 2^-km``).

This yields a two-state absorbing chain (undetected -> detected) with
per-iteration detection probability ``p = p_activation * p_propagation``:

* ``P(detected within t) = 1 - (1 - p)^t`` -- geometric convergence,
* expected iterations to detection ``1/p``.

The "high resolution" claim corresponds to ``p`` close to 1; the claim-C3
counterpart is that a *deterministic* 3-iteration TDB replaces the random
tail by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

__all__ = ["DetectionMarkovChain", "monte_carlo_detection", "fit_detection_chain"]


@dataclass(frozen=True)
class DetectionMarkovChain:
    """Absorbing two-state chain: undetected -> detected.

    >>> chain = DetectionMarkovChain(p_activation=0.5, p_propagation=1.0)
    >>> round(chain.detection_probability(3), 3)
    0.875
    >>> chain.expected_iterations()
    2.0
    """

    p_activation: float
    p_propagation: float = 1.0

    def __post_init__(self) -> None:
        for name, p in (("p_activation", self.p_activation),
                        ("p_propagation", self.p_propagation)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")

    @property
    def p_detect(self) -> float:
        """Per-iteration detection probability."""
        return self.p_activation * self.p_propagation

    def transition_matrix(self) -> np.ndarray:
        """The 2x2 chain matrix over states (undetected, detected)."""
        p = self.p_detect
        return np.array([[1.0 - p, p], [0.0, 1.0]])

    def detection_probability(self, iterations: int) -> float:
        """``P(detected within t iterations)`` by matrix power.

        >>> DetectionMarkovChain(1.0).detection_probability(1)
        1.0
        """
        if iterations < 0:
            raise ValueError("iteration count must be non-negative")
        matrix = np.linalg.matrix_power(self.transition_matrix(), iterations)
        return float(matrix[0, 1])

    def detection_curve(self, max_iterations: int) -> list[float]:
        """``[P(detected within 1), ..., P(detected within t_max)]``."""
        return [self.detection_probability(t) for t in range(1, max_iterations + 1)]

    def expected_iterations(self) -> float:
        """Mean iterations to absorption, ``1 / p`` (inf when p = 0)."""
        if self.p_detect == 0.0:
            return float("inf")
        return 1.0 / self.p_detect

    def iterations_for_confidence(self, confidence: float) -> int:
        """Smallest t with ``P(detected within t) >= confidence``."""
        if not 0.0 < confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.p_detect == 0.0:
            raise ValueError("chain never detects (p = 0)")
        if self.p_detect == 1.0:
            return 1
        t = 1
        while self.detection_probability(t) < confidence:
            t += 1
        return t


def fit_detection_chain(curve: list[float]) -> DetectionMarkovChain:
    """Fit the per-iteration detection probability to an empirical curve.

    Least-squares over the geometric family ``P(t) = 1 - (1 - p)^t``
    (scipy's bounded scalar minimizer), returning the fitted chain.  Used
    to read the effective resolution out of a Monte-Carlo campaign.

    >>> chain = fit_detection_chain([0.5, 0.75, 0.875])
    >>> round(chain.p_detect, 3)
    0.5
    """
    if not curve:
        raise ValueError("need a non-empty detection curve")
    for value in curve:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"curve value {value} is not a probability")
    from scipy.optimize import minimize_scalar

    times = np.arange(1, len(curve) + 1)
    observed = np.asarray(curve)

    def loss(p: float) -> float:
        model = 1.0 - np.power(1.0 - p, times)
        return float(np.sum((model - observed) ** 2))

    fit = minimize_scalar(loss, bounds=(0.0, 1.0), method="bounded")
    return DetectionMarkovChain(p_activation=float(fit.x), p_propagation=1.0)


def monte_carlo_detection(fault_factory, iteration_factory, n: int,
                          max_iterations: int, trials: int,
                          m: int = 1, seed: int = 0) -> list[float]:
    """Empirical detection curve to validate the chain model against.

    Per trial: build a fresh RAM and fault, then run up to
    ``max_iterations`` independent randomized π-iterations
    (``iteration_factory(rng)`` must return a fresh
    :class:`~repro.prt.pi_test.PiIteration`-like object per call).
    Returns ``curve[t-1] = fraction of trials detected within t``.

    >>> from repro.faults import StuckAtFault
    >>> from repro.prt import PiIteration, random_trajectory
    >>> curve = monte_carlo_detection(
    ...     lambda rng: StuckAtFault(rng.randrange(12), rng.randrange(2)),
    ...     lambda rng: PiIteration(
    ...         generator=(1, 0, 1, 1),
    ...         seed=(0, 0, 1),
    ...         trajectory=random_trajectory(12, seed=rng.randrange(10**6))),
    ...     n=12, max_iterations=4, trials=30)
    >>> 0 <= curve[0] <= curve[-1] <= 1
    True
    """
    from repro.faults.injector import FaultInjector
    from repro.memory.ram import SinglePortRAM

    if trials < 1:
        raise ValueError("need at least one trial")
    rng = random.Random(seed)
    detected_at = [0] * (max_iterations + 1)
    for _ in range(trials):
        ram = SinglePortRAM(n, m=m)
        fault = fault_factory(rng)
        injector = FaultInjector([fault])
        injector.install(ram)
        for t in range(1, max_iterations + 1):
            iteration = iteration_factory(rng)
            if not iteration.run(ram).passed:
                detected_at[t] += 1
                break
        injector.remove(ram)
    curve = []
    cumulative = 0
    for t in range(1, max_iterations + 1):
        cumulative += detected_at[t]
        curve.append(cumulative / trials)
    return curve
