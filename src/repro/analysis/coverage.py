"""Single-fault-injection coverage campaigns.

The standard methodology (as in van de Goor's coverage tables and the
paper's §3): for every fault in a universe, instantiate a fresh memory,
install the fault, run the test under evaluation, and record whether it
flagged a failure.  The per-class detection ratios are the "fault
coverage" the paper's quality claims are about.

A *runner* is any callable ``runner(ram) -> bool`` returning True when the
test detected a fault.  Adapters wrap March tests
(:func:`march_runner`), π-test schedules (:func:`schedule_runner`) and
single π-iterations (:func:`iteration_runner`).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.faults.base import Fault
from repro.faults.injector import FaultInjector
from repro.march.engine import run_march
from repro.march.model import MarchTest
from repro.memory.ram import SinglePortRAM

__all__ = [
    "CoverageReport",
    "run_coverage",
    "march_runner",
    "schedule_runner",
    "iteration_runner",
]

Runner = Callable[[SinglePortRAM], bool]


@dataclass
class CoverageReport:
    """Outcome of a coverage campaign.

    >>> report = CoverageReport(test_name="t")
    >>> report.record("SAF", "SA0(cell=0)", detected=True)
    >>> report.record("SAF", "SA1(cell=0)", detected=False)
    >>> report.coverage_of("SAF")
    0.5
    """

    test_name: str
    detected: dict[str, int] = field(default_factory=dict)
    total: dict[str, int] = field(default_factory=dict)
    missed_faults: list[str] = field(default_factory=list)

    def record(self, fault_class: str, fault_name: str, detected: bool) -> None:
        """Tally one injection outcome."""
        self.total[fault_class] = self.total.get(fault_class, 0) + 1
        if detected:
            self.detected[fault_class] = self.detected.get(fault_class, 0) + 1
        else:
            self.missed_faults.append(fault_name)

    def coverage_of(self, fault_class: str) -> float:
        """Detection ratio for one class (1.0 when the class is absent)."""
        total = self.total.get(fault_class, 0)
        if total == 0:
            return 1.0
        return self.detected.get(fault_class, 0) / total

    @property
    def overall(self) -> float:
        """Detection ratio across all injected faults."""
        total = sum(self.total.values())
        if total == 0:
            return 1.0
        return sum(self.detected.values()) / total

    @property
    def classes(self) -> list[str]:
        """Fault classes present, sorted."""
        return sorted(self.total)

    def rows(self) -> list[tuple[str, int, int, float]]:
        """``(class, detected, total, ratio)`` rows for tabular output."""
        return [
            (c, self.detected.get(c, 0), self.total[c], self.coverage_of(c))
            for c in self.classes
        ]

    def __repr__(self) -> str:
        return (
            f"CoverageReport({self.test_name!r}, "
            f"overall={self.overall:.1%}, classes={len(self.total)})"
        )


def run_coverage(runner: Runner, universe: Iterable[Fault], n: int,
                 m: int = 1, test_name: str = "test",
                 ram_factory: Callable[[], object] | None = None) -> CoverageReport:
    """Inject each universe fault into a fresh RAM and run the test.

    ``ram_factory`` overrides the default ``SinglePortRAM(n, m)`` (pass a
    multi-port factory to evaluate the port schemes).

    >>> from repro.faults import single_cell_universe
    >>> from repro.march.library import MARCH_C_MINUS
    >>> universe = single_cell_universe(8, classes=("SAF",))
    >>> report = run_coverage(march_runner(MARCH_C_MINUS), universe, 8)
    >>> report.coverage_of("SAF")
    1.0
    """
    report = CoverageReport(test_name=test_name)
    for fault in universe:
        ram = ram_factory() if ram_factory is not None else SinglePortRAM(n, m=m)
        injector = FaultInjector([fault])
        injector.install(ram)
        detected = runner(ram)
        injector.remove(ram)
        report.record(fault.fault_class, fault.name, detected)
    return report


def march_runner(test: MarchTest, backgrounds: list[int] | None = None) -> Runner:
    """Runner adapter for a March test (failure = detection)."""

    def runner(ram) -> bool:
        return not run_march(test, ram, backgrounds=backgrounds).passed

    return runner


def schedule_runner(schedule) -> Runner:
    """Runner adapter for a :class:`~repro.prt.schedule.PiTestSchedule`."""

    def runner(ram) -> bool:
        return schedule.run(ram).detected

    return runner


def iteration_runner(iteration) -> Runner:
    """Runner adapter for a single π-iteration (or any object whose
    ``run(ram)`` result has a ``passed`` attribute)."""

    def runner(ram) -> bool:
        return not iteration.run(ram).passed

    return runner
