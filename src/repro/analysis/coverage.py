"""Single-fault-injection coverage campaigns.

The standard methodology (as in van de Goor's coverage tables and the
paper's §3): for every fault in a universe, instantiate a fresh memory,
install the fault, run the test under evaluation, and record whether it
flagged a failure.  The per-class detection ratios are the "fault
coverage" the paper's quality claims are about.

A *runner* is any callable ``runner(ram) -> bool`` returning True when the
test detected a fault.  Adapters wrap March tests
(:func:`march_runner`), π-test schedules (:func:`schedule_runner`) and
single π-iterations (:func:`iteration_runner`).  The adapters are
*compilable*: they also expose ``compile(n, m) -> OpStream``, which lets
:func:`run_coverage` lower the test once and hand the whole universe to
the batched campaign engine (:func:`repro.sim.campaign.run_campaign`)
instead of re-interpreting the test per fault.  Opaque custom callables
still work -- they just take the interpreted per-fault loop.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.faults.base import Fault
from repro.faults.injector import FaultInjector
from repro.march.engine import run_march_interpreted
from repro.march.model import MarchTest
from repro.memory.multiport import MultiPortRAM, PortConflictError
from repro.memory.ram import SinglePortRAM
from repro.sim.batched import run_campaign_batched
from repro.sim.campaign import run_campaign
from repro.sim.pool import WorkerPool
from repro.sim.compilers import (
    cached_dual_port_stream,
    cached_march_stream,
    cached_multi_schedule_stream,
    cached_pi_iteration_stream,
    cached_quad_port_stream,
    cached_schedule_stream,
)

__all__ = [
    "CoverageReport",
    "CompilableRunner",
    "run_coverage",
    "march_runner",
    "schedule_runner",
    "iteration_runner",
    "dual_port_runner",
    "quad_port_runner",
    "multi_schedule_runner",
]

Runner = Callable[[SinglePortRAM], bool]


@dataclass
class CoverageReport:
    """Outcome of a coverage campaign.

    >>> report = CoverageReport(test_name="t")
    >>> report.record("SAF", "SA0(cell=0)", detected=True)
    >>> report.record("SAF", "SA1(cell=0)", detected=False)
    >>> report.coverage_of("SAF")
    0.5
    """

    test_name: str
    detected: dict[str, int] = field(default_factory=dict)
    total: dict[str, int] = field(default_factory=dict)
    missed_faults: list[str] = field(default_factory=list)

    def record(self, fault_class: str, fault_name: str, detected: bool) -> None:
        """Tally one injection outcome."""
        self.total[fault_class] = self.total.get(fault_class, 0) + 1
        if detected:
            self.detected[fault_class] = self.detected.get(fault_class, 0) + 1
        else:
            self.missed_faults.append(fault_name)

    def coverage_of(self, fault_class: str) -> float:
        """Detection ratio for one class (1.0 when the class is absent)."""
        total = self.total.get(fault_class, 0)
        if total == 0:
            return 1.0
        return self.detected.get(fault_class, 0) / total

    @property
    def overall(self) -> float:
        """Detection ratio across all injected faults."""
        total = sum(self.total.values())
        if total == 0:
            return 1.0
        return sum(self.detected.values()) / total

    @property
    def classes(self) -> list[str]:
        """Fault classes present, sorted."""
        return sorted(self.total)

    def rows(self) -> list[tuple[str, int, int, float]]:
        """``(class, detected, total, ratio)`` rows for tabular output."""
        return [
            (c, self.detected.get(c, 0), self.total[c], self.coverage_of(c))
            for c in self.classes
        ]

    def __repr__(self) -> str:
        return (
            f"CoverageReport({self.test_name!r}, "
            f"overall={self.overall:.1%}, classes={len(self.total)})"
        )


class CompilableRunner:
    """A runner that can also lower its test to a :class:`OpStream`.

    Calling it runs the *interpreted* engine on one RAM (the legacy
    contract, and the baseline the compiled path is measured against);
    :meth:`compile` produces the stream :func:`run_coverage` hands to the
    batched campaign engine.

    >>> from repro.march.library import MATS
    >>> from repro.memory import SinglePortRAM
    >>> runner = march_runner(MATS)
    >>> runner(SinglePortRAM(8))            # healthy memory: no detection
    False
    >>> runner.compile(8, 1).operation_count
    32
    """

    def __init__(self, run: Runner, compiler: Callable[[int, int], object],
                 ports: int = 1):
        self._run = run
        self._compiler = compiler
        #: Ports the wrapped test needs per memory cycle (1 =
        #: single-port).  ``run_coverage`` uses it to build the right
        #: default front-end for the interpreted per-fault loop; the
        #: compiled engines read the same number off the stream itself.
        self.ports = ports

    def __call__(self, ram) -> bool:
        return self._run(ram)

    def compile(self, n: int, m: int = 1):
        """Lower the wrapped test for an ``n x m``-bit memory."""
        return self._compiler(n, m)


def run_coverage(runner: Runner, universe: Iterable[Fault] | None = None,
                 n: int | None = None,
                 m: int = 1, test_name: str = "test",
                 ram_factory: Callable[[], object] | None = None,
                 workers: int = 0,
                 engine: str = "auto",
                 pool: WorkerPool | None = None,
                 backend: str = "auto",
                 progress: Callable[[int, int], None] | None = None,
                 cache=None) -> CoverageReport:
    """Inject each universe fault into a fresh RAM and run the test.

    Two call forms share this entry point.  The canonical one takes a
    single :class:`~repro.analysis.request.CampaignRequest`::

        run_coverage(CampaignRequest(test="march-c", n=64))

    which routes through the shared resolver
    (:func:`~repro.analysis.request.resolve_campaign`) and the
    content-addressed result cache (``cache=None`` uses the process
    default, ``False`` disables it, or pass an explicit
    :class:`~repro.server.cache.ResultCache`); ``universe``/``n`` and
    the per-option kwargs must then be left at their defaults -- the
    request already carries them.  The legacy kwarg form below keeps
    working byte-identically.

    ``ram_factory`` overrides the default ``SinglePortRAM(n, m)`` (pass a
    multi-port factory to evaluate the port schemes).  The factory's
    geometry must match ``(n, m)`` -- the universe is generated for it --
    and every engine rejects a mismatch with ``ValueError``.  Runners
    carrying a ``ports`` attribute > 1 (the :func:`dual_port_runner` /
    :func:`quad_port_runner` adapters) get a perfect
    ``MultiPortRAM(n, m, ports)`` by default instead, on every engine.

    When the runner is compilable (the :func:`march_runner` /
    :func:`schedule_runner` / :func:`iteration_runner` adapters are), the
    test is lowered once and the whole universe is replayed by
    :func:`repro.sim.campaign.run_campaign` -- same per-fault verdicts,
    far less work per fault.  ``engine`` selects the path: ``"auto"``
    (compile when possible), ``"compiled"`` (require a compilable
    runner), ``"batched"`` (require a compilable runner and resolve
    vectorizable fault classes lane-parallel via
    :func:`repro.sim.batched.run_campaign_batched`, on bit- and
    word-oriented geometries alike -- fastest on universes dominated by
    single-cell or coupling faults), or ``"interpreted"`` (force the
    legacy per-fault loop).  ``workers > 0`` fans the compiled campaign
    out over that many processes (requires a picklable ``ram_factory``)
    on the persistent shared pool of :mod:`repro.sim.pool` -- or on
    ``pool``, an explicit :class:`~repro.sim.pool.WorkerPool` to reuse
    across many campaigns.  With ``engine="batched"`` the lane passes
    run concurrently with the pooled scalar remainder, and ``backend``
    selects the packed-column storage (``"auto"``/``"int"``/``"numpy"``,
    see :class:`~repro.memory.packed.PackedMemoryArray`); both backends
    produce byte-identical reports.

    >>> from repro.faults import single_cell_universe
    >>> from repro.march.library import MARCH_C_MINUS
    >>> universe = single_cell_universe(8, classes=("SAF",))
    >>> report = run_coverage(march_runner(MARCH_C_MINUS), universe, 8)
    >>> report.coverage_of("SAF")
    1.0
    """
    from repro.analysis.request import CampaignRequest, run_request

    if isinstance(runner, CampaignRequest):
        if universe is not None or n is not None:
            raise ValueError(
                "run_coverage(request) takes no universe/n -- the "
                "CampaignRequest already carries them"
            )
        return run_request(runner, cache=cache, pool=pool,
                           progress=progress)
    if universe is None or n is None:
        raise TypeError(
            "run_coverage needs (runner, universe, n) -- or a single "
            "CampaignRequest"
        )
    if engine not in ("auto", "compiled", "batched", "interpreted"):
        raise ValueError(
            f"engine must be 'auto', 'compiled', 'batched' or "
            f"'interpreted', got {engine!r}"
        )
    compile_fn = getattr(runner, "compile", None)
    if engine in ("compiled", "batched") and compile_fn is None:
        raise ValueError(
            f"engine={engine!r} needs a compilable runner (one exposing "
            "compile(n, m)); use march_runner/schedule_runner/"
            "iteration_runner or engine='auto'"
        )
    report = CoverageReport(test_name=test_name)
    if engine != "interpreted" and compile_fn is not None:
        stream = compile_fn(n, m)
        campaign = (run_campaign_batched(
            stream, universe, ram_factory=ram_factory,
            workers=workers, pool=pool, backend=backend,
            progress=progress)
            if engine == "batched"
            else run_campaign(stream, universe, ram_factory=ram_factory,
                              workers=workers, pool=pool,
                              progress=progress))
        for fault, detected in campaign.outcomes:
            report.record(fault.fault_class, fault.name, detected)
        return report
    ports = getattr(runner, "ports", 1)
    faults = list(universe)
    for done, fault in enumerate(faults, start=1):
        if ram_factory is not None:
            ram = ram_factory()
        elif ports > 1:
            ram = MultiPortRAM(n, m=m, ports=ports)
        else:
            ram = SinglePortRAM(n, m=m)
        if ram.n != n or ram.m != m:
            # Same guard the campaign engine applies: a universe generated
            # for (n, m) injected into a different geometry gives garbage
            # coverage numbers, and the two engines must agree on it.
            raise ValueError(
                f"ram_factory built a {ram.n}x{ram.m}-bit RAM but the "
                f"campaign is for n={n}, m={m}"
            )
        injector = FaultInjector([fault])
        injector.install(ram)
        detected = runner(ram)
        injector.remove(ram)
        report.record(fault.fault_class, fault.name, detected)
        if progress is not None:
            progress(done, len(faults))
    return report


def march_runner(test: MarchTest,
                 backgrounds: list[int] | None = None) -> CompilableRunner:
    """Runner adapter for a March test (failure = detection)."""

    def runner(ram) -> bool:
        return not run_march_interpreted(test, ram,
                                         backgrounds=backgrounds).passed

    return CompilableRunner(
        runner,
        lambda n, m: cached_march_stream(test, n, m, backgrounds=backgrounds),
    )


def schedule_runner(schedule) -> CompilableRunner:
    """Runner adapter for a :class:`~repro.prt.schedule.PiTestSchedule`."""

    def runner(ram) -> bool:
        return schedule.run_interpreted(ram).detected

    return CompilableRunner(
        runner, lambda n, m: cached_schedule_stream(schedule, n, m)
    )


def _port_scheme_runner(iteration, cached_stream, ports) -> CompilableRunner:
    """Shared adapter for the multi-port π-schemes.

    One rule lives here for both schemes: a
    :class:`~repro.memory.multiport.PortConflictError` raised mid-run --
    an injected decoder fault aliasing two addresses onto one cell under
    a simultaneous double-write -- counts as a *detection*, which is
    exactly how the compiled campaign engine treats a replay-time
    conflict.
    """

    def runner(ram) -> bool:
        try:
            return not iteration.run(ram).passed
        except PortConflictError:
            return True

    return CompilableRunner(
        runner, lambda n, m: cached_stream(iteration, n, m), ports=ports,
    )


def dual_port_runner(iteration) -> CompilableRunner:
    """Runner adapter for a :class:`~repro.prt.dual_port
    .DualPortPiIteration` (the paper's Figure 2 scheme).

    Needs a >= 2-port memory: ``run_coverage`` builds a perfect
    ``MultiPortRAM(n, m, ports=2)`` by default, or pass e.g.
    ``ram_factory=functools.partial(DualPortRAM, n)``.  Compilable, so
    the campaign engines replay the scheme through the cycle-grouped
    fast path in the paper's 2n cycles; injected-conflict handling as in
    :func:`_port_scheme_runner`.
    """
    return _port_scheme_runner(iteration, cached_dual_port_stream, 2)


def multi_schedule_runner(schedule) -> CompilableRunner:
    """Runner adapter for a :class:`~repro.prt.multi_schedule
    .MultiPortSchedule` (verifying dual-/quad-port iteration chains).

    Same contract as :func:`schedule_runner` plus the multi-port rule of
    :func:`_port_scheme_runner`: a :class:`~repro.memory.multiport
    .PortConflictError` raised mid-run counts as a detection.  The
    default front-end is a perfect ``MultiPortRAM(n, m,
    schedule.ports)``; the compiled engines replay the whole schedule as
    one cycle-grouped stream.
    """

    def runner(ram) -> bool:
        try:
            return schedule.run_interpreted(ram).detected
        except PortConflictError:
            return True

    return CompilableRunner(
        runner, lambda n, m: cached_multi_schedule_stream(schedule, n, m),
        ports=schedule.ports,
    )


def quad_port_runner(iteration) -> CompilableRunner:
    """Runner adapter for a :class:`~repro.prt.dual_port
    .QuadPortPiIteration` (the "QuadPort DSE family": two concurrent
    automata, n-cycle pass).  Same contract as
    :func:`dual_port_runner`, with a 4-port default front-end."""
    return _port_scheme_runner(iteration, cached_quad_port_stream, 4)


def iteration_runner(iteration) -> Runner:
    """Runner adapter for a single π-iteration (or any object whose
    ``run(ram)`` result has a ``passed`` attribute).  For a true
    :class:`~repro.prt.pi_test.PiIteration` the adapter is compilable;
    other duck-typed objects get a plain interpreted runner."""

    def runner(ram) -> bool:
        return not iteration.run(ram).passed

    from repro.prt.pi_test import PiIteration

    if not isinstance(iteration, PiIteration):
        return runner
    return CompilableRunner(
        runner, lambda n, m: cached_pi_iteration_stream(iteration, n, m)
    )
