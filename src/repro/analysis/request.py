"""Canonical campaign requests: one hashable object per coverage campaign.

Historically every campaign entry point -- :func:`run_coverage`,
:func:`compare_tests`, the CLI ``coverage``/``compare`` commands, and
now the HTTP endpoints of :mod:`repro.server` -- threaded its own sprawl
of ``engine/backend/workers/scheme/poly`` kwargs and duplicated the
validation.  This module collapses them onto one surface:

* :class:`CampaignRequest` -- a frozen dataclass naming the test (a
  selector such as ``"march-c"`` or ``"dual-port"``), the memory
  geometry, an optional :class:`~repro.faults.universe.UniverseSpec`
  (default: the standard universe for the geometry) and the execution
  options.  It is hashable and **content-addressable**: equal requests
  describe byte-identical campaigns.

* :func:`resolve_campaign` -- the one shared resolver: validates every
  field (unknown tests, bad engines/backends, odd-``n`` quad schemes,
  malformed field polynomials ... all raise :class:`RequestError` with a
  pointed message), builds the runner, compiles the stream, and derives
  the :meth:`CampaignRequest.cache_key` from the stream's
  :meth:`~repro.sim.ir.OpStream.digest`.  ``run_coverage(request)``,
  ``compare_tests([request, ...])``, the CLI and the server all route
  through it -- three copies of kwarg threading became one.

* :func:`execute_request` / :func:`run_request` -- run a resolved
  campaign through the legacy engines, optionally consulting a
  :class:`~repro.server.cache.ResultCache` so a repeated request is a
  dict lookup instead of a campaign.

The cache key is built from ``(stream digest, universe spec, engine,
backend, m, n, ports)`` -- everything that determines the report, and
nothing that does not (``workers`` changes wall clock, never verdicts,
so it is deliberately excluded).

>>> request = CampaignRequest(test="march-c", n=16)
>>> resolve_campaign(request).ports
1
>>> report = run_request(request, cache=False)
>>> report.overall == run_request(request, cache=False).overall
True
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field as dataclass_field
from functools import lru_cache
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing-only imports
    from collections.abc import Callable

    from repro.server.cache import ResultCache
    from repro.sim.ir import OpStream
    from repro.sim.pool import WorkerPool

from repro.analysis.complexity import march_operations
from repro.analysis.coverage import (
    CompilableRunner,
    CoverageReport,
    dual_port_runner,
    march_runner,
    multi_schedule_runner,
    quad_port_runner,
    run_coverage,
    schedule_runner,
)
from repro.faults.universe import FaultUniverse, UniverseSpec, standard_universe
from repro.gf2 import poly_from_string, primitive_polynomial
from repro.gf2m import GF2m
from repro.march.library import MARCH_B, MARCH_C_MINUS, MATS, MATS_PLUS
from repro.prt import (
    DualPortPiIteration,
    QuadPortPiIteration,
    extended_schedule,
    standard_multi_schedule,
    standard_schedule,
)

__all__ = [
    "CampaignRequest",
    "RequestError",
    "RequestOutcome",
    "ResolvedCampaign",
    "resolve_campaign",
    "execute_request",
    "run_request",
    "build_field",
    "known_tests",
    "ENGINES",
    "BACKENDS",
]

#: Valid campaign engines (shared by the resolver, ``run_coverage`` and
#: the CLI/server option surfaces).
ENGINES = ("auto", "compiled", "batched", "interpreted")

#: Valid packed-column storage backends (see
#: :class:`~repro.memory.packed.PackedMemoryArray`).
BACKENDS = ("auto", "int", "numpy")

_MARCH_TESTS = {
    "mats": MATS,
    "mats+": MATS_PLUS,
    "march-c": MARCH_C_MINUS,
    "march-b": MARCH_B,
}

#: Selector -> (kind, comparison-table display name).  ``kind`` picks the
#: runner family; the display name is what :func:`compare_tests` rows and
#: the CLI ``compare`` table print.
_TESTS: dict[str, tuple[str, str]] = {
    "mats": ("march", "MATS"),
    "mats+": ("march", "MATS+"),
    "march-c": ("march", "March C-"),
    "march-b": ("march", "March B"),
    "prt3": ("schedule", "PRT-3"),
    "prt5": ("schedule", "PRT-5"),
    "dual-port": ("port", "dual-port π"),
    "quad-port": ("port", "quad-port π"),
    "dual-schedule": ("multi-schedule", "dual-port π schedule"),
    "quad-schedule": ("multi-schedule", "quad-port π schedule"),
}


class RequestError(ValueError):
    """A :class:`CampaignRequest` failed validation.

    Raised by :func:`resolve_campaign` (and therefore by every entry
    point routing through it: ``run_coverage(request)``, the CLI, the
    server).  The message always names the offending field and the valid
    choices, so API layers can surface it verbatim.
    """


def known_tests() -> list[dict]:
    """The selectable tests/schemes, one describing dict per selector.

    This is the payload behind the server's ``GET /schemes`` endpoint
    and the source of truth for CLI choice lists.

    >>> [t["test"] for t in known_tests()][:3]
    ['dual-port', 'dual-schedule', 'march-b']
    """
    out = []
    for selector in sorted(_TESTS):
        kind, display = _TESTS[selector]
        out.append({
            "test": selector,
            "kind": kind,
            "display_name": display,
            "ports": _ports_for(selector),
        })
    return out


def build_field(m: int, poly: str | None) -> GF2m | None:
    """The GF(2^m) field for a request: ``None`` keeps GF(2) defaults.

    Mirrors the CLI's historical rule: bit-oriented requests without an
    explicit modulus stay on the engines' GF(2) defaults; ``poly`` (e.g.
    ``"1+z+z^4"``) overrides the tabulated primitive polynomial.
    """
    if m == 1 and poly is None:
        return None
    if poly is not None:
        return GF2m(poly_from_string(poly))
    return GF2m(primitive_polynomial(m))


def _ports_for(test: str) -> int:
    if test.startswith("quad"):
        return 4
    if test.startswith("dual"):
        return 2
    return 1


@dataclass(frozen=True)
class CampaignRequest:
    """One canonical, hashable coverage-campaign description.

    Parameters
    ----------
    test:
        Test/scheme selector -- one of :func:`known_tests`:
        ``"mats"``/``"mats+"``/``"march-c"``/``"march-b"`` (March tests),
        ``"prt3"``/``"prt5"`` (π-test schedules), ``"dual-port"`` /
        ``"quad-port"`` (single port-parallel π-iterations) or
        ``"dual-schedule"``/``"quad-schedule"`` (verifying multi-port
        schedules).
    n, m:
        Memory geometry (cells x bits per cell).
    universe:
        Optional :class:`~repro.faults.universe.UniverseSpec`; ``None``
        selects ``standard_universe(n, m)``.  Passing a spec (not a
        fault list) is what keeps requests hashable and shardable.
    engine, backend, workers:
        Execution options, identical to ``run_coverage``'s kwargs.
        ``workers`` is excluded from :meth:`cache_key` -- it changes
        wall clock, never verdicts.
    pure:
        Drop transparent verification from the PRT schedules (the
        paper-exact signature-only mode; ignored for March tests).
    poly:
        Field modulus as text (e.g. ``"1+z+z^4"``); default is the
        tabulated primitive polynomial for ``m``.

    >>> CampaignRequest(test="prt3", n=28) == CampaignRequest(test="prt3", n=28)
    True
    >>> len({CampaignRequest(test="prt3", n=28),
    ...      CampaignRequest(test="prt3", n=28, m=4)})
    2
    """

    test: str
    n: int
    m: int = 1
    universe: UniverseSpec | None = None
    engine: str = "auto"
    backend: str = "auto"
    workers: int = 0
    pure: bool = False
    poly: str | None = None

    def cache_key(self) -> str:
        """Stable content address of this campaign's result.

        SHA-256 over ``(stream digest, universe spec, engine, backend,
        m, n, ports)`` -- stable across processes and Python runs, so an
        on-disk cache written by one server process serves another.
        Validation runs first: an invalid request has no key.
        """
        return resolve_campaign(self).cache_key

    def replace(self, **changes: object) -> "CampaignRequest":
        """A copy with ``changes`` applied (convenience over
        ``dataclasses.replace``)."""
        import dataclasses

        return dataclasses.replace(self, **changes)


@dataclass
class ResolvedCampaign:
    """A validated request bound to its runner, stream and universe spec.

    Produced (and memoized) by :func:`resolve_campaign`.  The fault
    universe itself is *not* materialized here -- cache hits must not
    pay universe enumeration -- call :meth:`build_universe` on the cold
    path.
    """

    request: CampaignRequest
    runner: CompilableRunner
    universe_spec: UniverseSpec
    test_name: str  #: report label (CLI legacy: selector, or scheme display)
    display_name: str  #: comparison-table row name ("March C-", "PRT-3", ...)
    ports: int
    operations: int  #: test cost on the n-cell memory (comparison rows)
    _cache_key: str | None = dataclass_field(default=None, repr=False)

    def compile(self) -> OpStream:
        """The compiled :class:`~repro.sim.ir.OpStream` (memoized by the
        ``cached_*`` compiler adapters)."""
        return self.runner.compile(self.request.n, self.request.m)

    def build_universe(self) -> FaultUniverse:
        """Materialize the fault universe (cold path only)."""
        return self.universe_spec.build()

    @property
    def cache_key(self) -> str:
        """See :meth:`CampaignRequest.cache_key`."""
        if self._cache_key is None:
            request = self.request
            text = "\x00".join((
                self.compile().digest(),
                repr(self.universe_spec),
                request.engine,
                request.backend,
                str(request.m),
                str(request.n),
                str(self.ports),
            ))
            self._cache_key = hashlib.sha256(text.encode("utf-8")).hexdigest()
        return self._cache_key


def _validate_spec(spec: UniverseSpec) -> None:
    """Reject specs naming unknown generators before they hit a worker."""
    from repro.faults.universe import _SPEC_GENERATORS

    if spec.generator in ("union", "sample"):
        if not spec.parts:
            raise RequestError(
                f"universe spec {spec.generator!r} needs child specs"
            )
        for part in spec.parts:
            _validate_spec(part)
        return
    if spec.generator not in _SPEC_GENERATORS:
        raise RequestError(
            f"unknown universe generator {spec.generator!r} "
            f"(known: {sorted(_SPEC_GENERATORS)})"
        )


@lru_cache(maxsize=256)
def _resolve(request: CampaignRequest) -> ResolvedCampaign:
    if not isinstance(request.test, str) or request.test not in _TESTS:
        raise RequestError(
            f"unknown test {request.test!r} "
            f"(known: {sorted(_TESTS)})"
        )
    if not isinstance(request.n, int) or request.n < 1:
        raise RequestError(f"n must be a positive int, got {request.n!r}")
    if not isinstance(request.m, int) or request.m < 1:
        raise RequestError(f"m must be a positive int, got {request.m!r}")
    if request.engine not in ENGINES:
        raise RequestError(
            f"engine must be one of {ENGINES}, got {request.engine!r}"
        )
    if request.backend not in BACKENDS:
        raise RequestError(
            f"backend must be one of {BACKENDS}, got {request.backend!r}"
        )
    if not isinstance(request.workers, int) or request.workers < 0:
        raise RequestError(
            f"workers must be a non-negative int, got {request.workers!r}"
        )
    kind, display = _TESTS[request.test]
    try:
        field = build_field(request.m, request.poly)
    except (ValueError, KeyError) as exc:
        raise RequestError(f"bad field polynomial "
                           f"{request.poly!r}: {exc}") from exc
    n, m = request.n, request.m
    test_name = request.test
    if kind == "march":
        test = _MARCH_TESTS[request.test]
        runner = march_runner(test)
        operations = march_operations(test, n, m=m)
    elif kind == "schedule":
        builder = standard_schedule if request.test == "prt3" \
            else extended_schedule
        schedule = builder(field=field, n=n, verify=not request.pure)
        runner = schedule_runner(schedule)
        operations = schedule.operation_count(n)
    else:
        generator = (1, 1, 1) if field is None or field.m == 1 else (1, 2, 2)
        quad = request.test.startswith("quad")
        if quad and (n % 2 != 0 or n < 6):
            raise RequestError(
                f"test {request.test!r} needs an even n >= 6 "
                f"(two concurrent half-array automata), got {n}"
            )
        if kind == "multi-schedule":
            schedule = standard_multi_schedule(
                ports=4 if quad else 2, field=field, generator=generator,
                verify=not request.pure,
            )
            runner = multi_schedule_runner(schedule)
        elif quad:
            runner = quad_port_runner(
                QuadPortPiIteration(field=field, generator=generator,
                                    seed=(0, 1)))
        else:
            runner = dual_port_runner(
                DualPortPiIteration(field=field, generator=generator,
                                    seed=(0, 1)))
        operations = runner.compile(n, m).operation_count
        test_name = display  # legacy CLI labels scheme reports by display
    if request.universe is None:
        spec = standard_universe(n, m).spec
    else:
        if not isinstance(request.universe, UniverseSpec):
            raise RequestError(
                f"universe must be a UniverseSpec or None, "
                f"got {type(request.universe).__name__}"
            )
        _validate_spec(request.universe)
        spec = request.universe
    return ResolvedCampaign(
        request=request, runner=runner, universe_spec=spec,
        test_name=test_name, display_name=display,
        ports=_ports_for(request.test), operations=operations,
    )


def resolve_campaign(request: CampaignRequest) -> ResolvedCampaign:
    """Validate a request and bind it to a runner + universe spec.

    This is the single shared resolver behind ``run_coverage(request)``,
    ``compare_tests([request, ...])``, the CLI and the server.  Raises
    :class:`RequestError` on any invalid field.  Resolution is memoized
    on the (hashable) request, so repeated requests reuse the same
    runner -- and therefore the same memoized compiled stream.

    >>> resolved = resolve_campaign(CampaignRequest(test="prt3", n=14))
    >>> resolved.display_name, resolved.ports
    ('PRT-3', 1)
    >>> try:
    ...     resolve_campaign(CampaignRequest(test="nope", n=8))
    ... except RequestError as exc:
    ...     "unknown test 'nope'" in str(exc)
    True
    """
    if not isinstance(request, CampaignRequest):
        raise RequestError(
            f"expected a CampaignRequest, got {type(request).__name__}"
        )
    return _resolve(request)


@dataclass
class RequestOutcome:
    """What :func:`execute_request` produced, with cache provenance."""

    report: CoverageReport
    cached: bool  #: True when the report came out of the result cache
    elapsed_s: float  #: wall clock of this call (lookup or campaign)
    cache_key: str


def _resolve_cache(cache: ResultCache | bool | None) -> ResultCache | None:
    """``None`` -> process default, ``False`` -> disabled, else as-is."""
    if cache is None:
        from repro.server.cache import default_cache

        return default_cache()
    if cache is False:
        return None
    assert not isinstance(cache, bool)
    return cache


def _ensure_stream_verified(resolved: ResolvedCampaign) -> None:
    """Static-verification gate: no malformed stream reaches the cache.

    Runs the error-only pass of :func:`repro.sim.verify.verify` on the
    compiled stream before any result is computed *or cached* -- a
    stream that fails verification must never mint a cache entry.  The
    verdict is memoized on the stream object (compiled streams are
    shared via the ``cached_*`` adapters), mirroring the
    ``reference_verified`` replay bookkeeping.
    """
    stream = resolved.compile()
    if stream.__dict__.get("_static_verified", False):
        return
    from repro.sim.verify import verify

    report = verify(stream, dataflow=False)
    if not report.ok:
        first = report.errors[0]
        raise RequestError(
            f"compiled stream for test {resolved.request.test!r} failed "
            f"static verification: {first}"
        )
    stream.__dict__["_static_verified"] = True


def execute_request(request: CampaignRequest,
                    cache: ResultCache | bool | None = None,
                    pool: WorkerPool | None = None,
                    progress: Callable[[int, int], None] | None = None,
                    test_name: str | None = None) -> RequestOutcome:
    """Run (or cache-serve) one campaign request, with provenance.

    Parameters
    ----------
    cache:
        ``None`` (default) uses the process-wide
        :func:`repro.server.cache.default_cache`; ``False`` disables
        caching; any :class:`~repro.server.cache.ResultCache` is used
        as given.  Reports are stored pickled and a hit returns a fresh
        unpickled copy, so callers can never corrupt cached state.
    pool:
        Optional explicit :class:`~repro.sim.pool.WorkerPool` for
        sharded requests (``request.workers > 0``).
    progress:
        ``progress(done, total)`` hook threaded through to the engines
        (cold path only -- a cache hit has no campaign to report on).
    test_name:
        Override the report label (``compare_tests`` passes its row
        names); default is the resolver's legacy-compatible label.
    """
    start = time.perf_counter()
    resolved = resolve_campaign(request)
    _ensure_stream_verified(resolved)
    name = test_name if test_name is not None else resolved.test_name
    key = resolved.cache_key
    store = _resolve_cache(cache)
    if store is not None:
        hit = store.get(key)
        if hit is not None:
            hit.test_name = name
            return RequestOutcome(report=hit, cached=True,
                                  elapsed_s=time.perf_counter() - start,
                                  cache_key=key)

        def compute() -> CoverageReport:
            return _run_resolved(resolved, name, pool, progress)

        report, fresh = store.get_or_compute(key, compute)
        report.test_name = name
        return RequestOutcome(report=report, cached=not fresh,
                              elapsed_s=time.perf_counter() - start,
                              cache_key=key)
    report = _run_resolved(resolved, name, pool, progress)
    return RequestOutcome(report=report, cached=False,
                          elapsed_s=time.perf_counter() - start,
                          cache_key=key)


def _run_resolved(resolved: ResolvedCampaign, name: str,
                  pool: WorkerPool | None,
                  progress: Callable[[int, int], None] | None
                  ) -> CoverageReport:
    """The cold path: materialize the universe, run the legacy engine."""
    request = resolved.request
    return run_coverage(
        resolved.runner, resolved.build_universe(), request.n, m=request.m,
        test_name=name, workers=request.workers, engine=request.engine,
        pool=pool, backend=request.backend, progress=progress,
    )


def run_request(request: CampaignRequest,
                cache: ResultCache | bool | None = None,
                pool: WorkerPool | None = None,
                progress: Callable[[int, int], None] | None = None
                ) -> CoverageReport:
    """:func:`execute_request` without the provenance wrapper.

    This is what ``run_coverage(request)`` delegates to.

    >>> report = run_request(CampaignRequest(test="mats+", n=8,
    ...     universe=UniverseSpec.call("single_cell", n=8, m=1,
    ...                                classes=("SAF",), retention=64)),
    ...     cache=False)
    >>> report.coverage_of("SAF")
    1.0
    """
    return execute_request(request, cache=cache, pool=pool,
                           progress=progress).report
