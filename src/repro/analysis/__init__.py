"""Analysis harnesses: coverage campaigns, Markov models, complexity and
comparison tables.

These are the instruments behind the experiment suite (EXPERIMENTS.md):

* :mod:`repro.analysis.coverage` -- single-fault injection campaigns:
  inject every fault of a universe, run a test, tally detection per fault
  class (experiments E3, E8, E10),
* :mod:`repro.analysis.markov` -- the Markov-chain detection model of
  claim C2, plus the Monte-Carlo fault simulation it is validated
  against (E6),
* :mod:`repro.analysis.complexity` -- operation/cycle accounting for the
  3n / 2n / n port-scheme claims (E4) and March cost comparison,
* :mod:`repro.analysis.compare` -- PRT vs March head-to-head tables (E9),
* :mod:`repro.analysis.request` -- the canonical
  :class:`~repro.analysis.request.CampaignRequest` surface: one frozen,
  hashable, content-addressable object per campaign, resolved by one
  shared validator for the API, the CLI and the :mod:`repro.server`
  endpoints alike.
"""

from repro.analysis.coverage import (
    CoverageReport,
    run_coverage,
    march_runner,
    schedule_runner,
    iteration_runner,
    dual_port_runner,
    quad_port_runner,
    multi_schedule_runner,
)
from repro.analysis.markov import (
    DetectionMarkovChain,
    monte_carlo_detection,
    fit_detection_chain,
)
from repro.analysis.complexity import (
    pi_test_operations,
    dual_port_cycles,
    quad_port_cycles,
    single_port_cycles,
    march_operations,
    port_scheme_table,
)
from repro.analysis.compare import ComparisonRow, compare_tests
from repro.analysis.request import (
    CampaignRequest,
    RequestError,
    RequestOutcome,
    ResolvedCampaign,
    execute_request,
    known_tests,
    resolve_campaign,
    run_request,
)

__all__ = [
    "CampaignRequest",
    "RequestError",
    "RequestOutcome",
    "ResolvedCampaign",
    "execute_request",
    "known_tests",
    "resolve_campaign",
    "run_request",
    "CoverageReport",
    "run_coverage",
    "march_runner",
    "schedule_runner",
    "iteration_runner",
    "dual_port_runner",
    "quad_port_runner",
    "multi_schedule_runner",
    "DetectionMarkovChain",
    "monte_carlo_detection",
    "fit_detection_chain",
    "pi_test_operations",
    "dual_port_cycles",
    "quad_port_cycles",
    "single_port_cycles",
    "march_operations",
    "port_scheme_table",
    "ComparisonRow",
    "compare_tests",
]
