"""Operation/cycle accounting for the paper's complexity claims (E4).

Claim C4: a π-test iteration costs O(3n) memory cycles on single-port RAM
and 2n on dual-port RAM (Figure 2); the quad-port multi-LFSR scheme of §4
halves that again.  These helpers compute exact counts -- both analytically
and by running the engines against instrumented memories -- and produce the
table/series the E4 benchmark prints.
"""

from __future__ import annotations

from repro.march.engine import word_backgrounds
from repro.march.model import MarchTest

__all__ = [
    "pi_test_operations",
    "single_port_cycles",
    "dual_port_cycles",
    "quad_port_cycles",
    "march_operations",
    "port_scheme_table",
]


def pi_test_operations(n: int, k: int = 2, reads_per_subiteration: int | None = None) -> int:
    """Memory operations of one single-port π-iteration.

    ``(reads + 1) * n + 2k``: the init writes, the sweep, the signature
    reads.  Defaults to the paper's 2-read sub-iteration: ``3n + 4``.

    >>> pi_test_operations(1024)
    3076
    """
    if n < k + 1:
        raise ValueError(f"memory must have more than k={k} cells")
    reads = reads_per_subiteration if reads_per_subiteration is not None else k
    return (reads + 1) * n + 2 * k


def single_port_cycles(n: int, k: int = 2) -> int:
    """Cycles on a single-port RAM: one per operation (the 3n claim)."""
    return pi_test_operations(n, k)


def dual_port_cycles(n: int) -> int:
    """Cycles of the Figure 2 dual-port scheme: ``2n + 2`` (the 2n claim).

    >>> dual_port_cycles(1024)
    2050
    """
    if n < 3:
        raise ValueError("memory must have more than 2 cells")
    return 2 * n + 2


def quad_port_cycles(n: int) -> int:
    """Cycles of the quad-port two-automata scheme: ``n + 2``.

    >>> quad_port_cycles(1024)
    1026
    """
    if n < 6 or n % 2:
        raise ValueError("quad-port scheme needs an even n >= 6")
    return n + 2


def march_operations(test: MarchTest, n: int, m: int = 1) -> int:
    """Total operations of a March test on an n x m memory, including the
    standard word backgrounds for m > 1.

    >>> from repro.march.library import MARCH_C_MINUS
    >>> march_operations(MARCH_C_MINUS, 1024)
    10240
    """
    backgrounds = 1 if m == 1 else len(word_backgrounds(m))
    return test.ops_per_cell * n * backgrounds


def port_scheme_table(n_values: list[int]) -> list[dict[str, int | float]]:
    """The E4 series: cycles per scheme and speedups, one row per n.

    >>> rows = port_scheme_table([64])
    >>> round(rows[0]["speedup_2p"], 4)   # (3n+4)/(2n+2) -> 1.5
    1.5077
    """
    rows = []
    for n in n_values:
        sp = single_port_cycles(n)
        dp = dual_port_cycles(n)
        qp = quad_port_cycles(n) if n % 2 == 0 and n >= 6 else None
        row: dict[str, int | float] = {
            "n": n,
            "single_port": sp,
            "dual_port": dp,
            "speedup_2p": sp / dp,
        }
        if qp is not None:
            row["quad_port"] = qp
            row["speedup_4p"] = sp / qp
        rows.append(row)
    return rows
