"""XOR-network synthesis for GF(2) linear maps (constant multipliers).

The paper (claim C6) states that multiplication by a constant over a Galois
field extension "contains only XOR-gates" and that an algorithm designs the
*optimal* multiplier.  Finding the true minimum XOR count is NP-hard
(shortest linear program), so -- as in practice -- we provide:

* :func:`synthesize_naive` -- the column method: each output bit is a chain
  of XORs over its input taps; cost = sum(weight(row) - 1),
* :func:`synthesize_greedy` -- Paar's greedy common-subexpression
  elimination, which repeatedly extracts the input pair shared by the most
  outputs; it is provably cancellation-free and matches published optimal
  counts for small fields such as GF(2^4).

Both return an :class:`XorNetwork` that can be *executed* to verify
functional equivalence against the field multiplication (done in the tests
and the E7 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "XorGate",
    "XorNetwork",
    "synthesize_naive",
    "synthesize_greedy",
    "synthesize",
    "network_cost_summary",
]


@dataclass(frozen=True)
class XorGate:
    """A two-input XOR gate: ``signal[out] = signal[a] ^ signal[b]``.

    Signal indices 0..m-1 are the primary inputs; gate outputs extend the
    signal list in creation order.
    """

    out: int
    a: int
    b: int


@dataclass
class XorNetwork:
    """A combinational XOR network computing a GF(2) linear map.

    Attributes
    ----------
    n_inputs:
        Number of primary input signals (the word width m).
    gates:
        Topologically ordered XOR gates.
    outputs:
        For each output bit, the signal index that drives it, or ``None``
        when that output is constant zero (an all-zero matrix row).
    """

    n_inputs: int
    gates: list[XorGate] = field(default_factory=list)
    outputs: list[int | None] = field(default_factory=list)

    @property
    def gate_count(self) -> int:
        """Number of 2-input XOR gates (the hardware cost metric)."""
        return len(self.gates)

    @property
    def depth(self) -> int:
        """Longest gate chain from any input to any output."""
        level = [0] * self.n_inputs + [0] * len(self.gates)
        for gate in self.gates:
            level[gate.out] = 1 + max(level[gate.a], level[gate.b])
        if not self.outputs:
            return 0
        return max((level[s] for s in self.outputs if s is not None), default=0)

    def evaluate(self, x: int) -> int:
        """Run the network on an m-bit input word, returning the output word.

        >>> net = XorNetwork(2, [XorGate(2, 0, 1)], [2, 0])
        >>> net.evaluate(0b01)   # out0 = x0^x1 = 1, out1 = x0 = 1
        3
        """
        signals = [(x >> i) & 1 for i in range(self.n_inputs)]
        signals.extend([0] * len(self.gates))
        for gate in self.gates:
            signals[gate.out] = signals[gate.a] ^ signals[gate.b]
        y = 0
        for i, src in enumerate(self.outputs):
            if src is not None and signals[src]:
                y |= 1 << i
        return y

    def validate(self) -> None:
        """Check structural sanity; raises :class:`ValueError` on problems."""
        defined = self.n_inputs
        for gate in self.gates:
            if gate.a >= defined or gate.b >= defined:
                raise ValueError(f"gate {gate} uses an undefined signal")
            if gate.out != defined:
                raise ValueError(
                    f"gate {gate} output must be the next signal index {defined}"
                )
            defined += 1
        for src in self.outputs:
            if src is not None and src >= defined:
                raise ValueError(f"output wired to undefined signal {src}")


def synthesize_naive(matrix: list[int], n_inputs: int | None = None) -> XorNetwork:
    """Column-method synthesis: one XOR chain per output row.

    Cost is ``sum(max(0, weight(row) - 1))`` -- the baseline the paper's
    "optimal scheme" improves on.

    >>> net = synthesize_naive([0b011, 0b110, 0b101], 3)
    >>> net.gate_count
    3
    >>> net.evaluate(0b001)
    5
    """
    if n_inputs is None:
        n_inputs = len(matrix)
    _check_matrix(matrix, n_inputs)
    net = XorNetwork(n_inputs=n_inputs)
    next_signal = n_inputs
    for row in matrix:
        taps = [j for j in range(n_inputs) if (row >> j) & 1]
        if not taps:
            net.outputs.append(None)
            continue
        acc = taps[0]
        for tap in taps[1:]:
            net.gates.append(XorGate(next_signal, acc, tap))
            acc = next_signal
            next_signal += 1
        net.outputs.append(acc)
    return net


def synthesize_greedy(matrix: list[int], n_inputs: int | None = None) -> XorNetwork:
    """Paar's greedy common-subexpression elimination.

    Repeatedly find the signal pair ``(a, b)`` that appears together in the
    largest number of remaining rows, create one gate ``s = a ^ b``, and
    substitute ``s`` for the pair everywhere.  Ties break toward the
    lexicographically smallest pair, making the result deterministic.

    >>> net = synthesize_greedy([0b011, 0b111], 3)
    >>> net.gate_count        # x0^x1 shared between both rows
    2
    >>> all(net.evaluate(x) == synthesize_naive([0b011, 0b111], 3).evaluate(x)
    ...     for x in range(8))
    True
    """
    if n_inputs is None:
        n_inputs = len(matrix)
    _check_matrix(matrix, n_inputs)
    # Rows as extendable bit-masks over the growing signal space.
    rows = list(matrix)
    net = XorNetwork(n_inputs=n_inputs)
    next_signal = n_inputs

    while True:
        best_pair: tuple[int, int] | None = None
        best_count = 1
        # Count co-occurrence of every signal pair across rows.
        counts: dict[tuple[int, int], int] = {}
        for row in rows:
            taps = _mask_to_list(row)
            for i in range(len(taps)):
                for j in range(i + 1, len(taps)):
                    pair = (taps[i], taps[j])
                    counts[pair] = counts.get(pair, 0) + 1
        for pair in sorted(counts):
            if counts[pair] > best_count:
                best_count = counts[pair]
                best_pair = pair
        if best_pair is None:
            break
        a, b = best_pair
        net.gates.append(XorGate(next_signal, a, b))
        pair_mask = (1 << a) | (1 << b)
        new_bit = 1 << next_signal
        for idx, row in enumerate(rows):
            if row & pair_mask == pair_mask:
                rows[idx] = (row & ~pair_mask) | new_bit
        next_signal += 1

    # Remaining rows have weight <= ... possibly >1 when no pair repeats;
    # finish each with a private XOR chain.
    for row in rows:
        taps = _mask_to_list(row)
        if not taps:
            net.outputs.append(None)
            continue
        acc = taps[0]
        for tap in taps[1:]:
            net.gates.append(XorGate(next_signal, acc, tap))
            acc = next_signal
            next_signal += 1
        net.outputs.append(acc)
    return net


def synthesize(
    matrix: list[int], n_inputs: int | None = None, method: str = "greedy"
) -> XorNetwork:
    """Dispatch to a synthesis method: ``'naive'`` or ``'greedy'``.

    >>> synthesize([0b11, 0b10], 2, method="naive").gate_count
    1
    """
    if method == "naive":
        return synthesize_naive(matrix, n_inputs)
    if method == "greedy":
        return synthesize_greedy(matrix, n_inputs)
    raise ValueError(f"unknown synthesis method {method!r}")


def network_cost_summary(net: XorNetwork) -> dict[str, int]:
    """Cost metrics used by the hardware-overhead model and benchmarks.

    >>> summary = network_cost_summary(synthesize_naive([0b11], 2))
    >>> summary["xor_gates"], summary["depth"]
    (1, 1)
    """
    return {
        "xor_gates": net.gate_count,
        "depth": net.depth,
        "inputs": net.n_inputs,
        "outputs": len(net.outputs),
    }


def _check_matrix(matrix: list[int], n_inputs: int) -> None:
    if n_inputs < 1:
        raise ValueError("matrix must have at least one input")
    for i, row in enumerate(matrix):
        if row < 0:
            raise ValueError(f"row {i} is negative")
        if row >> n_inputs:
            raise ValueError(
                f"row {i} ({row:#b}) references inputs beyond width {n_inputs}"
            )


def _mask_to_list(mask: int) -> list[int]:
    out = []
    i = 0
    while mask >> i:
        if (mask >> i) & 1:
            out.append(i)
        i += 1
    return out
