"""Polynomials with coefficients in GF(2^m).

The paper's word-oriented virtual LFSR is defined by a generator polynomial
``g(x)`` whose coefficients are GF(2^m) *elements* (the running example is
``g(x) = 1 + 2x + 2x^2`` over GF(2^4)).  Verifying the paper's claim that
this ``g`` "is irreducible in the field GF(2^4)" and predicting the period of
the word LFSR require polynomial arithmetic over the extension field, which
this module provides.

A polynomial is a tuple of field elements, low degree first, normalized so
the last entry is non-zero (the zero polynomial is the empty tuple).  All
functions take the :class:`~repro.gf2m.field.GF2m` field as their first
argument.
"""

from __future__ import annotations

from repro.gf2m.field import GF2m

__all__ = [
    "wpoly",
    "wpoly_degree",
    "wpoly_add",
    "wpoly_scale",
    "wpoly_mul",
    "wpoly_divmod",
    "wpoly_mod",
    "wpoly_gcd",
    "wpoly_monic",
    "wpoly_modexp",
    "wpoly_eval",
    "wpoly_roots",
    "wpoly_is_irreducible",
    "wpoly_to_string",
    "wpoly_x_pow_order",
]

Wpoly = tuple[int, ...]


def wpoly(coeffs: list[int] | tuple[int, ...]) -> Wpoly:
    """Normalize a low-to-high coefficient sequence (strip leading zeros).

    >>> wpoly([1, 2, 2, 0])
    (1, 2, 2)
    >>> wpoly([0, 0])
    ()
    """
    coeffs = tuple(coeffs)
    end = len(coeffs)
    while end > 0 and coeffs[end - 1] == 0:
        end -= 1
    return coeffs[:end]


def wpoly_degree(p: Wpoly) -> int:
    """Degree; the zero polynomial has degree -1."""
    return len(p) - 1


def wpoly_add(field: GF2m, a: Wpoly, b: Wpoly) -> Wpoly:
    """Coefficient-wise field addition (XOR)."""
    if len(a) < len(b):
        a, b = b, a
    out = list(a)
    for i, c in enumerate(b):
        out[i] = field.add(out[i], c)
    return wpoly(out)


def wpoly_scale(field: GF2m, a: Wpoly, c: int) -> Wpoly:
    """Multiply every coefficient by the field constant ``c``."""
    if c == 0:
        return ()
    return wpoly([field.mul(coef, c) for coef in a])


def wpoly_mul(field: GF2m, a: Wpoly, b: Wpoly) -> Wpoly:
    """Polynomial product over the field.

    >>> from repro.gf2 import poly_from_string
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> wpoly_mul(F, (1, 1), (1, 1))   # (x+1)^2 = x^2 + 1 in char 2
    (1, 0, 1)
    """
    if not a or not b:
        return ()
    out = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            if cb:
                out[i + j] = field.add(out[i + j], field.mul(ca, cb))
    return wpoly(out)


def wpoly_divmod(field: GF2m, a: Wpoly, b: Wpoly) -> tuple[Wpoly, Wpoly]:
    """Quotient and remainder; raises on division by the zero polynomial."""
    if not b:
        raise ZeroDivisionError("polynomial division by zero")
    remainder = list(a)
    db = wpoly_degree(b)
    lead_inv = field.inv(b[-1])
    if wpoly_degree(a) < db:
        return (), a
    quotient = [0] * (len(a) - db)
    for shift in range(len(a) - db - 1, -1, -1):
        coef = remainder[shift + db]
        if coef == 0:
            continue
        q = field.mul(coef, lead_inv)
        quotient[shift] = q
        for i, cb in enumerate(b):
            remainder[shift + i] = field.add(
                remainder[shift + i], field.mul(q, cb)
            )
    return wpoly(quotient), wpoly(remainder)


def wpoly_mod(field: GF2m, a: Wpoly, b: Wpoly) -> Wpoly:
    """Remainder of polynomial division."""
    return wpoly_divmod(field, a, b)[1]


def wpoly_monic(field: GF2m, a: Wpoly) -> Wpoly:
    """Scale so the leading coefficient is 1 (zero polynomial unchanged)."""
    if not a or a[-1] == 1:
        return a
    return wpoly_scale(field, a, field.inv(a[-1]))


def wpoly_gcd(field: GF2m, a: Wpoly, b: Wpoly) -> Wpoly:
    """Monic greatest common divisor."""
    while b:
        a, b = b, wpoly_mod(field, a, b)
    return wpoly_monic(field, a)


def wpoly_modexp(field: GF2m, base: Wpoly, exponent: int, modulus: Wpoly) -> Wpoly:
    """``base ** exponent mod modulus`` by square-and-multiply."""
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    if not modulus:
        raise ZeroDivisionError("zero modulus")
    result = wpoly_mod(field, (1,), modulus)
    acc = wpoly_mod(field, base, modulus)
    while exponent:
        if exponent & 1:
            result = wpoly_mod(field, wpoly_mul(field, result, acc), modulus)
        acc = wpoly_mod(field, wpoly_mul(field, acc, acc), modulus)
        exponent >>= 1
    return result


def wpoly_eval(field: GF2m, p: Wpoly, x: int) -> int:
    """Evaluate at a field point by Horner's rule.

    >>> from repro.gf2 import poly_from_string
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> wpoly_eval(F, (1, 2, 2), 0)    # g(0) = 1
    1
    """
    acc = 0
    for coef in reversed(p):
        acc = field.add(field.mul(acc, x), coef)
    return acc


def wpoly_roots(field: GF2m, p: Wpoly) -> list[int]:
    """All roots in the coefficient field (exhaustive scan; fields are small).

    >>> from repro.gf2 import poly_from_string
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> wpoly_roots(F, (2, 3, 1))   # x^2 + 3x + 2 = (x+1)(x+2)
    [1, 2]
    """
    if not p:
        raise ValueError("the zero polynomial vanishes everywhere")
    return [x for x in field.elements() if wpoly_eval(field, p, x) == 0]


def wpoly_is_irreducible(field: GF2m, p: Wpoly) -> bool:
    """Ben-Or irreducibility test over GF(q), q = field.size.

    ``p`` of degree ``k`` is irreducible iff for every ``1 <= i <= k // 2``,
    ``gcd(x^(q^i) - x, p) == 1``.

    >>> from repro.gf2 import poly_from_string
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> wpoly_is_irreducible(F, (1, 2, 2))   # the paper's g(x)
    True
    """
    k = wpoly_degree(p)
    if k <= 0:
        return False
    if k == 1:
        return True
    if p[0] == 0:  # x divides p
        return False
    q = field.size
    x = (0, 1)
    h = wpoly_mod(field, x, p)
    for _ in range(k // 2):
        h = wpoly_modexp(field, h, q, p)
        g = wpoly_gcd(field, wpoly_add(field, h, x), p)
        if wpoly_degree(g) > 0:
            return False
    return True


def wpoly_x_pow_order(field: GF2m, p: Wpoly, max_order: int | None = None) -> int:
    """Multiplicative order of ``x`` modulo ``p`` (requires gcd(x, p) = 1).

    This is the period of the word-oriented LFSR whose characteristic
    polynomial is ``p`` -- the quantity the pseudo-ring construction needs
    so the memory size can be chosen "multiple by the period of LFSR".

    For irreducible ``p`` of degree ``k`` the order divides ``q**k - 1`` and
    is found by divisor descent; otherwise it falls back to iteration (bounded
    by ``max_order``, default ``q**k``).

    >>> from repro.gf2 import poly_from_string
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> wpoly_x_pow_order(F, (1, 2, 2))   # period of the paper's g(x)
    255
    """
    if not p:
        raise ZeroDivisionError("zero modulus")
    if p[0] == 0:
        raise ValueError("x is not invertible modulo p (p has a root at 0)")
    k = wpoly_degree(p)
    q = field.size
    if wpoly_is_irreducible(field, p):
        from repro.gf2.intfactor import factorize_int

        group = q**k - 1
        order = group
        for prime, mult in factorize_int(group).items():
            for _ in range(mult):
                candidate = order // prime
                if wpoly_modexp(field, (0, 1), candidate, p) == (1,):
                    order = candidate
                else:
                    break
        return order
    # Reducible modulus: iterate until x^t = 1 (or give up at the bound).
    bound = max_order if max_order is not None else q**k
    acc = wpoly_mod(field, (0, 1), p)
    power = acc
    for t in range(1, bound + 1):
        if power == (1,):
            return t
        power = wpoly_mod(field, wpoly_mul(field, power, acc), p)
    raise ValueError(
        f"x has no order <= {bound} modulo p "
        f"(p may share a factor with x or the bound is too small)"
    )


def wpoly_to_string(p: Wpoly, variable: str = "x") -> str:
    """Human-readable form with hex coefficients, matching the paper's style.

    >>> wpoly_to_string((1, 2, 2))
    '1 + 2x + 2x^2'
    >>> wpoly_to_string(())
    '0'
    """
    if not p:
        return "0"
    terms = []
    for i, coef in enumerate(p):
        if coef == 0:
            continue
        coef_text = format(coef, "X")
        if i == 0:
            terms.append(coef_text)
        elif i == 1:
            terms.append(f"{variable}" if coef == 1 else f"{coef_text}{variable}")
        else:
            terms.append(
                f"{variable}^{i}" if coef == 1 else f"{coef_text}{variable}^{i}"
            )
    return " + ".join(terms)
