"""Finite fields GF(2^m) and constant-multiplier hardware synthesis.

The paper's word-oriented pseudo-ring test treats each m-bit memory word as
an element of GF(2^m) (the running example uses m = 4 with modulus
``p(z) = 1 + z + z^4``) and each step of the virtual word LFSR multiplies
words by the *constant* coefficients of the generator polynomial ``g(x)``.

This subpackage provides:

* :class:`repro.gf2m.field.GF2m` -- the field itself, with table-driven
  arithmetic, element orders, generators and minimal polynomials,
* :class:`repro.gf2m.element.FieldElement` -- an ergonomic element wrapper
  with operator overloading,
* :mod:`repro.gf2m.multiplier` -- the GF(2)-linear bit-matrix of a constant
  multiplier (multiplication by a constant is linear over GF(2), which is
  why the paper can implement it "inherently in the memory circuit" with
  XOR gates only),
* :mod:`repro.gf2m.xor_synth` -- XOR-network synthesis for those matrices:
  the naive column method and a greedy common-subexpression-elimination
  optimizer (Paar's heuristic), reproducing the paper's claim C6 that an
  optimal (minimum-gate) multiplier-by-constant can be designed.
"""

from repro.gf2m.field import GF2m
from repro.gf2m.element import FieldElement
from repro.gf2m.multiplier import (
    constant_multiplier_matrix,
    apply_matrix,
    matrix_to_rows,
    identity_matrix,
    matrix_mul,
)
from repro.gf2m.poly_ext import (
    wpoly,
    wpoly_degree,
    wpoly_add,
    wpoly_scale,
    wpoly_mul,
    wpoly_divmod,
    wpoly_mod,
    wpoly_gcd,
    wpoly_monic,
    wpoly_modexp,
    wpoly_eval,
    wpoly_roots,
    wpoly_is_irreducible,
    wpoly_to_string,
    wpoly_x_pow_order,
)
from repro.gf2m.xor_synth import (
    XorGate,
    XorNetwork,
    synthesize_naive,
    synthesize_greedy,
    synthesize,
    network_cost_summary,
)

__all__ = [
    "GF2m",
    "FieldElement",
    "constant_multiplier_matrix",
    "apply_matrix",
    "matrix_to_rows",
    "identity_matrix",
    "matrix_mul",
    "wpoly",
    "wpoly_degree",
    "wpoly_add",
    "wpoly_scale",
    "wpoly_mul",
    "wpoly_divmod",
    "wpoly_mod",
    "wpoly_gcd",
    "wpoly_monic",
    "wpoly_modexp",
    "wpoly_eval",
    "wpoly_roots",
    "wpoly_is_irreducible",
    "wpoly_to_string",
    "wpoly_x_pow_order",
    "XorGate",
    "XorNetwork",
    "synthesize_naive",
    "synthesize_greedy",
    "synthesize",
    "network_cost_summary",
]
