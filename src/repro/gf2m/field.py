"""The finite field GF(2^m).

Elements are integers in ``range(2**m)`` whose bits are the coefficients of
the residue-class polynomial: integer ``0b0110`` in GF(2^4) is ``z^2 + z``.
This matches the memory-word encoding used throughout the library -- an m-bit
RAM word *is* a field element, which is exactly the paper's view of a
word-oriented memory.

Arithmetic is table-driven (log/antilog over a generator) when the modulus is
primitive and the field is small enough, with a carry-less-multiply fallback
otherwise, so any irreducible modulus works.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.gf2.intfactor import factorize_int
from repro.gf2.irreducible import is_irreducible, is_primitive
from repro.gf2.poly import (
    degree,
    poly_mod,
    poly_modexp,
    poly_modinv,
    poly_modmul,
    poly_to_string,
)

__all__ = ["GF2m"]

_TABLE_LIMIT_BITS = 16  # build log/antilog tables up to GF(2^16)


class GF2m:
    """The field GF(2^m) defined by an irreducible modulus ``p(z)``.

    Parameters
    ----------
    modulus:
        Irreducible polynomial over GF(2) in bit-mask encoding, e.g.
        ``0b10011`` for the paper's ``p(z) = 1 + z + z^4``.

    Examples
    --------
    >>> from repro.gf2 import poly_from_string
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> F.m, F.size
    (4, 16)
    >>> F.mul(0b0010, 0b1001)    # z * (z^3 + 1) = z^4 + z = 1
    1
    """

    def __init__(self, modulus: int):
        if not is_irreducible(modulus):
            raise ValueError(
                f"modulus {poly_to_string(modulus, 'z')} is not irreducible"
            )
        self._modulus = modulus
        self._m = degree(modulus)
        self._size = 1 << self._m
        self._exp: list[int] | None = None
        self._log: list[int] | None = None
        if self._m <= _TABLE_LIMIT_BITS:
            self._build_tables()

    # -- construction helpers -------------------------------------------------

    def _build_tables(self) -> None:
        """Build antilog/log tables over a multiplicative generator.

        ``z`` generates the multiplicative group only when the modulus is
        primitive; otherwise we search for a small generator.
        """
        generator = self._find_generator()
        order = self._size - 1
        exp = [1] * (2 * order)
        log = [0] * self._size
        value = 1
        for i in range(order):
            exp[i] = value
            log[value] = i
            value = poly_modmul(value, generator, self._modulus)
        if value != 1:  # pragma: no cover - generator search guarantees this
            raise AssertionError("generator did not close the cycle")
        # Double the antilog table so mul can skip one modulo reduction.
        for i in range(order, 2 * order):
            exp[i] = exp[i - order]
        self._exp = exp
        self._log = log
        self._generator = generator

    def _find_generator(self) -> int:
        if self._size == 2:
            return 1  # GF(2): the multiplicative group is trivial
        order = self._size - 1
        prime_factors = list(factorize_int(order))
        for candidate in range(2, self._size):
            if all(
                poly_modexp(candidate, order // p, self._modulus) != 1
                for p in prime_factors
            ):
                return candidate
        raise AssertionError(  # pragma: no cover
            "multiplicative group of a finite field is cyclic; "
            "a generator always exists"
        )

    # -- basic properties ------------------------------------------------------

    @property
    def modulus(self) -> int:
        """The defining irreducible polynomial ``p(z)`` (bit-mask)."""
        return self._modulus

    @property
    def m(self) -> int:
        """Extension degree: elements are m-bit words."""
        return self._m

    @property
    def size(self) -> int:
        """Number of field elements, ``2**m``."""
        return self._size

    @property
    def generator(self) -> int:
        """A generator of the multiplicative group (``z``'s value when
        the modulus is primitive)."""
        if self._exp is None:
            raise NotImplementedError(
                "generator lookup requires table mode (m <= 16)"
            )
        return self._generator

    def is_primitive_modulus(self) -> bool:
        """True when ``z`` itself generates the multiplicative group."""
        return is_primitive(self._modulus)

    def __repr__(self) -> str:
        return f"GF2m(modulus={poly_to_string(self._modulus, 'z')!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GF2m) and other._modulus == self._modulus

    def __hash__(self) -> int:
        return hash(("GF2m", self._modulus))

    def __contains__(self, value: object) -> bool:
        return isinstance(value, int) and 0 <= value < self._size

    def elements(self) -> Iterator[int]:
        """Iterate all field elements, 0 first.

        >>> from repro.gf2 import primitive_polynomial
        >>> list(GF2m(primitive_polynomial(2)).elements())
        [0, 1, 2, 3]
        """
        return iter(range(self._size))

    def _check(self, a: int, name: str = "element") -> int:
        if not isinstance(a, int) or isinstance(a, bool):
            raise TypeError(f"{name} must be an int, got {type(a).__name__}")
        if not 0 <= a < self._size:
            raise ValueError(
                f"{name} {a} out of range for GF(2^{self._m}) "
                f"(expected 0 <= value < {self._size})"
            )
        return a

    # -- arithmetic ------------------------------------------------------------

    def add(self, a: int, b: int) -> int:
        """Field addition: bitwise XOR of word encodings."""
        self._check(a, "a")
        self._check(b, "b")
        return a ^ b

    def sub(self, a: int, b: int) -> int:
        """Field subtraction (same as addition in characteristic 2)."""
        return self.add(a, b)

    def mul(self, a: int, b: int) -> int:
        """Field multiplication mod ``p(z)``.

        >>> from repro.gf2 import poly_from_string
        >>> F = GF2m(poly_from_string("1+z+z^4"))
        >>> F.mul(0b1000, 0b0010)   # z^3 * z = z^4 = z + 1
        3
        """
        self._check(a, "a")
        self._check(b, "b")
        if a == 0 or b == 0:
            return 0
        if self._exp is not None:
            return self._exp[self._log[a] + self._log[b]]
        return poly_modmul(a, b, self._modulus)

    def square(self, a: int) -> int:
        """``a * a`` (the Frobenius map, linear over GF(2))."""
        return self.mul(a, a)

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on zero.

        >>> from repro.gf2 import poly_from_string
        >>> F = GF2m(poly_from_string("1+z+z^4"))
        >>> all(F.mul(a, F.inv(a)) == 1 for a in range(1, 16))
        True
        """
        self._check(a, "a")
        if a == 0:
            raise ZeroDivisionError("zero has no multiplicative inverse")
        if self._exp is not None:
            order = self._size - 1
            return self._exp[(order - self._log[a]) % order]
        return poly_modinv(a, self._modulus)

    def div(self, a: int, b: int) -> int:
        """``a / b``; raises on division by zero."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        """``a ** e``; negative exponents invert first.

        >>> from repro.gf2 import poly_from_string
        >>> F = GF2m(poly_from_string("1+z+z^4"))
        >>> F.pow(0b0010, 15)    # z has order 15: primitive modulus
        1
        """
        self._check(a, "a")
        if a == 0:
            if e == 0:
                return 1
            if e < 0:
                raise ZeroDivisionError("0 cannot be raised to a negative power")
            return 0
        if e < 0:
            a = self.inv(a)
            e = -e
        if self._exp is not None:
            order = self._size - 1
            return self._exp[(self._log[a] * e) % order]
        return poly_modexp(a, e, self._modulus)

    # -- structure -------------------------------------------------------------

    def order(self, a: int) -> int:
        """Multiplicative order of a non-zero element.

        >>> from repro.gf2 import poly_from_string
        >>> F = GF2m(poly_from_string("1+z+z^4"))
        >>> F.order(0b0010)
        15
        """
        self._check(a, "a")
        if a == 0:
            raise ValueError("zero has no multiplicative order")
        group = self._size - 1
        order = group
        for p, k in factorize_int(group).items():
            for _ in range(k):
                if order % p == 0 and self.pow(a, order // p) == 1:
                    order //= p
                else:
                    break
        return order

    def is_generator(self, a: int) -> bool:
        """True when ``a`` generates the full multiplicative group."""
        self._check(a, "a")
        return a != 0 and self.order(a) == self._size - 1

    def trace(self, a: int) -> int:
        """Absolute trace Tr(a) = a + a^2 + a^4 + ... in GF(2).

        >>> from repro.gf2 import poly_from_string
        >>> F = GF2m(poly_from_string("1+z+z^4"))
        >>> sum(F.trace(a) for a in F.elements())   # trace is balanced
        8
        """
        self._check(a, "a")
        total = 0
        term = a
        for _ in range(self._m):
            total ^= term
            term = self.square(term)
        if total not in (0, 1):  # pragma: no cover - algebra guarantees this
            raise AssertionError("trace must land in the prime field")
        return total

    def minimal_polynomial(self, a: int) -> int:
        """Minimal polynomial of ``a`` over GF(2), bit-mask encoded.

        The product of ``(x - a^(2^i))`` over the conjugacy class of ``a``.

        >>> from repro.gf2 import poly_from_string, poly_to_string
        >>> F = GF2m(poly_from_string("1+z+z^4"))
        >>> poly_to_string(F.minimal_polynomial(0b0010))  # z's own modulus
        'x^4 + x + 1'
        """
        self._check(a, "a")
        # Conjugacy class of a under Frobenius.
        conjugates = []
        value = a
        while value not in conjugates:
            conjugates.append(value)
            value = self.square(value)
        # Multiply out prod (x + c) with coefficients in GF(2^m);
        # coefficients of the result are guaranteed to land in GF(2).
        coeffs = [1]  # monic, low index = high degree: coeffs[i] is x^(deg-i)
        for c in conjugates:
            next_coeffs = [0] * (len(coeffs) + 1)
            for i, coef in enumerate(coeffs):
                next_coeffs[i] ^= coef  # times x
                next_coeffs[i + 1] ^= self.mul(coef, c)  # times conjugate
            coeffs = next_coeffs
        poly = 0
        deg = len(coeffs) - 1
        for i, coef in enumerate(coeffs):
            if coef not in (0, 1):  # pragma: no cover - algebra guarantees
                raise AssertionError("minimal polynomial left the prime field")
            if coef:
                poly |= 1 << (deg - i)
        return poly

    def element_poly_string(self, a: int) -> str:
        """Render an element as a polynomial in ``z``.

        >>> from repro.gf2 import poly_from_string
        >>> F = GF2m(poly_from_string("1+z+z^4"))
        >>> F.element_poly_string(0b0110)
        'z^2 + z'
        """
        self._check(a, "a")
        return poly_to_string(a, "z")

    def reduce(self, p: int) -> int:
        """Reduce an arbitrary GF(2)[z] polynomial into the field.

        >>> from repro.gf2 import poly_from_string
        >>> F = GF2m(poly_from_string("1+z+z^4"))
        >>> F.reduce(0b10000)   # z^4 -> z + 1
        3
        """
        return poly_mod(p, self._modulus)
