"""Bit-matrices of constant multipliers in GF(2^m).

Multiplication by a fixed constant ``c`` is a GF(2)-linear map on the m-bit
word encoding: ``mul(c, x ^ y) == mul(c, x) ^ mul(c, y)``.  It can therefore
be written as an ``m x m`` binary matrix and realized in hardware with XOR
gates only -- this is why the paper can embed the word-LFSR coefficient
multipliers "inherently in the memory circuit" (claim C6).

A matrix is encoded as a list of ``m`` integers, one *row bit-mask* per
output bit: bit ``j`` of ``matrix[i]`` is 1 when output bit ``i`` depends on
input bit ``j``.  :func:`apply_matrix` then computes each output bit as the
parity of a masked input.
"""

from __future__ import annotations

from repro.gf2m.field import GF2m

__all__ = [
    "constant_multiplier_matrix",
    "apply_matrix",
    "matrix_to_rows",
    "identity_matrix",
    "matrix_mul",
]


def constant_multiplier_matrix(field: GF2m, constant: int) -> list[int]:
    """Matrix of the map ``x -> constant * x`` in the given field.

    Column ``j`` of the matrix is ``constant * z^j``, i.e. the image of the
    ``j``-th basis vector.

    >>> from repro.gf2 import poly_from_string
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> M = constant_multiplier_matrix(F, 0b0010)        # multiply by z
    >>> apply_matrix(M, 0b1000) == F.mul(0b0010, 0b1000)  # z * z^3 = z + 1
    True
    """
    if constant not in field:
        raise ValueError(f"constant {constant} is not in GF(2^{field.m})")
    m = field.m
    rows = [0] * m
    for j in range(m):
        image = field.mul(constant, 1 << j)
        for i in range(m):
            if (image >> i) & 1:
                rows[i] |= 1 << j
    return rows


def apply_matrix(matrix: list[int], x: int) -> int:
    """Apply a binary matrix (row bit-masks) to an input word.

    Output bit ``i`` is the XOR (parity) of the input bits selected by row
    ``i``.

    >>> apply_matrix([0b01, 0b11], 0b11)   # [[1,0],[1,1]] * (1,1)
    1
    """
    y = 0
    for i, row in enumerate(matrix):
        if bin(x & row).count("1") & 1:
            y |= 1 << i
    return y


def matrix_to_rows(matrix: list[int], m: int | None = None) -> list[list[int]]:
    """Expand row bit-masks into explicit 0/1 lists (for display/tests).

    >>> matrix_to_rows([0b01, 0b11], 2)
    [[1, 0], [1, 1]]
    """
    if m is None:
        m = max((row.bit_length() for row in matrix), default=0)
        m = max(m, len(matrix))
    return [[(row >> j) & 1 for j in range(m)] for row in matrix]


def identity_matrix(m: int) -> list[int]:
    """The ``m x m`` identity in row bit-mask encoding."""
    if m < 1:
        raise ValueError("matrix dimension must be >= 1")
    return [1 << i for i in range(m)]


def matrix_mul(a: list[int], b: list[int]) -> list[int]:
    """Product ``a @ b`` of two square row bit-mask matrices over GF(2).

    ``apply_matrix(matrix_mul(a, b), x) == apply_matrix(a, apply_matrix(b, x))``.

    >>> from repro.gf2 import poly_from_string
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> Mz = constant_multiplier_matrix(F, 2)
    >>> Mz2 = constant_multiplier_matrix(F, 4)
    >>> matrix_mul(Mz, Mz) == Mz2
    True
    """
    if len(a) != len(b):
        raise ValueError(f"dimension mismatch: {len(a)} vs {len(b)}")
    m = len(a)
    # Column j of the product is a applied to column j of b.
    b_cols = [0] * m
    for i, row in enumerate(b):
        for j in range(m):
            if (row >> j) & 1:
                b_cols[j] |= 1 << i
    out = [0] * m
    for j in range(m):
        image = apply_matrix(a, b_cols[j])
        for i in range(m):
            if (image >> i) & 1:
                out[i] |= 1 << j
    return out
