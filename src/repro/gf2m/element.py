"""Operator-overloaded wrapper for GF(2^m) elements.

:class:`FieldElement` pairs a value with its :class:`~repro.gf2m.field.GF2m`
field so algebraic expressions read naturally::

    F = GF2m(poly_from_string("1+z+z^4"))
    a = FieldElement(F, 0b0010)           # z
    b = a ** 3 + a                        # z^3 + z
    int(b)                                # back to the word encoding

The raw ``int`` API on :class:`GF2m` remains the hot path used by the LFSR
and PRT engines; this wrapper is for exploratory and example code.
"""

from __future__ import annotations

from repro.gf2m.field import GF2m

__all__ = ["FieldElement"]


class FieldElement:
    """An element of a specific GF(2^m) field.

    Immutable; all operators return new elements.  Mixed-field arithmetic is
    rejected because the bit patterns of different fields are incompatible.

    >>> from repro.gf2 import poly_from_string
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> z = FieldElement(F, 0b0010)
    >>> int(z ** 4)            # z^4 = z + 1
    3
    >>> (z * z.inverse()).value
    1
    """

    __slots__ = ("_field", "_value")

    def __init__(self, field: GF2m, value: int):
        if value not in field:
            raise ValueError(
                f"value {value!r} is not an element of GF(2^{field.m})"
            )
        self._field = field
        self._value = value

    @property
    def field(self) -> GF2m:
        """The field this element belongs to."""
        return self._field

    @property
    def value(self) -> int:
        """Word encoding of the element."""
        return self._value

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return (
            f"FieldElement(GF(2^{self._field.m}), "
            f"{self._field.element_poly_string(self._value)!r})"
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldElement):
            return self._field == other._field and self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._field, self._value))

    def __bool__(self) -> bool:
        return self._value != 0

    def _coerce(self, other: object) -> int:
        if isinstance(other, FieldElement):
            if other._field != self._field:
                raise ValueError(
                    f"cannot mix elements of GF(2^{self._field.m}) "
                    f"and GF(2^{other._field.m})"
                )
            return other._value
        if isinstance(other, int) and not isinstance(other, bool):
            if other not in self._field:
                raise ValueError(
                    f"integer {other} is not an element of GF(2^{self._field.m})"
                )
            return other
        return NotImplemented  # type: ignore[return-value]

    def _wrap(self, value: int) -> FieldElement:
        return FieldElement(self._field, value)

    def __add__(self, other: object) -> FieldElement:
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return self._wrap(self._field.add(self._value, v))

    __radd__ = __add__

    def __sub__(self, other: object) -> FieldElement:
        return self.__add__(other)  # characteristic 2

    __rsub__ = __sub__

    def __mul__(self, other: object) -> FieldElement:
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return self._wrap(self._field.mul(self._value, v))

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> FieldElement:
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return self._wrap(self._field.div(self._value, v))

    def __rtruediv__(self, other: object) -> FieldElement:
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return self._wrap(self._field.div(v, self._value))

    def __pow__(self, exponent: int) -> FieldElement:
        if not isinstance(exponent, int) or isinstance(exponent, bool):
            return NotImplemented
        return self._wrap(self._field.pow(self._value, exponent))

    def __neg__(self) -> FieldElement:
        return self  # -a == a in characteristic 2

    def inverse(self) -> FieldElement:
        """Multiplicative inverse; raises :class:`ZeroDivisionError` on 0."""
        return self._wrap(self._field.inv(self._value))

    def order(self) -> int:
        """Multiplicative order; raises :class:`ValueError` on 0."""
        return self._field.order(self._value)

    def trace(self) -> int:
        """Absolute trace into GF(2)."""
        return self._field.trace(self._value)

    def minimal_polynomial(self) -> int:
        """Minimal polynomial over GF(2) (bit-mask encoded)."""
        return self._field.minimal_polynomial(self._value)

    def as_poly_string(self) -> str:
        """Human-readable polynomial form, e.g. ``'z^2 + z'``."""
        return self._field.element_poly_string(self._value)
