"""Multi-port π-test schemes (paper §4, Figure 2).

**Dual-port** (Figure 2): the two reads of a sub-iteration issue
*simultaneously* on the two ports; the write follows in the next cycle.
A k=2 π-iteration then takes ``2n`` cycles instead of ``3n`` -- the paper's
claim C4 for 2P RAM.  (The hardware cost is the "conversion of the existing
address registers into counters and a specific XOR-logic" priced by
:mod:`repro.prt.bist`.)

**Quad-port** ("QuadPort DSE family"): a *multi-LFSR* scheme -- two
independent virtual automata sweep the two halves of the array
concurrently, each pair of ports serving one automaton.  Per cycle the RAM
performs either 4 reads or 2 writes, so a full pass takes ``2 * (n/2) = n``
cycles: another 2x over dual-port.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gf2m.field import GF2m
from repro.memory.multiport import MultiPortRAM, PortOp
from repro.prt.pi_test import GF2, PiIterationResult
from repro.lfsr.word_lfsr import WordLFSR
from repro.prt.trajectory import Trajectory, ascending

__all__ = ["DualPortPiIteration", "QuadPortPiIteration", "QuadPortResult"]


class DualPortPiIteration:
    """The Figure 2 dual-port π-iteration (k = 2 only: the paper
    recommends this scheme "when polynomial g(x) has 2 terms" of feedback).

    Cycle pattern per sub-iteration ``j``::

        cycle 2j:     port0 reads traj[j],   port1 reads traj[j+1]
        cycle 2j+1:   port0 writes traj[j+2]

    >>> from repro.memory import DualPortRAM
    >>> from repro.gf2 import poly_from_string
    >>> from repro.gf2m import GF2m
    >>> F = GF2m(poly_from_string("1+z+z^4"))
    >>> it = DualPortPiIteration(field=F, generator=(1, 2, 2), seed=(0, 1))
    >>> ram = DualPortRAM(255, m=4)
    >>> result = it.run(ram)
    >>> result.passed
    True
    >>> ram.stats.cycles     # 2n sweep + 1 init + 1 signature cycle
    512
    """

    #: Ports one memory cycle of this scheme occupies.
    ports = 2

    def __init__(self, field: GF2m | None = None,
                 generator: tuple[int, ...] = (1, 1, 1),
                 seed: tuple[int, ...] = (0, 1),
                 trajectory: Trajectory | None = None):
        self._field = field if field is not None else GF2
        generator = tuple(generator)
        seed = tuple(seed)
        if len(generator) != 3:
            raise ValueError(
                "the Figure 2 dual-port scheme needs a degree-2 generator "
                f"(k = 2); got degree {len(generator) - 1}"
            )
        self._reference = WordLFSR(self._field, generator, seed)
        if all(s == 0 for s in seed):
            raise ValueError("the all-zero seed exercises nothing")
        self._generator = generator
        self._seed = seed
        self._trajectory = trajectory

    @property
    def field(self) -> GF2m:
        """The coefficient field."""
        return self._field

    @property
    def generator(self) -> tuple[int, ...]:
        """Generator polynomial coefficients."""
        return self._generator

    @property
    def seed(self) -> tuple[int, ...]:
        """The initial window."""
        return self._seed

    @property
    def recurrence_multipliers(self) -> tuple[int, ...]:
        """Per-window-slot multipliers ``a_0^{-1} a_{k-j}`` of the
        recurrence (a zero entry means the port's read contributes
        nothing -- the read still issues, the cycle pattern is fixed).
        The :mod:`repro.sim` compiler bakes these into ``"ra"`` records."""
        return self._reference.recurrence_multipliers

    def expected_stream(self, n: int) -> list[int]:
        """The fault-free written stream: the value of the j-th sweep
        write (``s_{k+j}``), for result/debug cross-checks."""
        reference = self._reference.copy()
        reference.reset()
        reference.run(2)
        return list(reference.sequence(n))

    def __repr__(self) -> str:
        return (
            f"DualPortPiIteration(GF(2^{self._field.m}), "
            f"g={self._generator}, seed={self._seed})"
        )

    def trajectory_for(self, n: int) -> Trajectory:
        """The trajectory used on an n-cell memory (default ascending)."""
        if self._trajectory is not None:
            if self._trajectory.n != n:
                raise ValueError(
                    f"trajectory covers {self._trajectory.n} addresses, "
                    f"memory has {n}"
                )
            return self._trajectory
        return ascending(n)

    def cycle_count(self, n: int) -> int:
        """Cycles per iteration: ``2n + 2`` (init + 2-per-sub-iteration +
        signature) -- the paper's 2n (claim C4 for 2P RAM).  Transparent
        verification (``previous_background``) adds exactly one cycle:
        the sweep's verify reads ride the otherwise-idle port of each
        write cycle, only the two seed cells need a leading read cycle."""
        return 2 * n + 2

    def operation_count(self, n: int) -> int:
        """Exact operations per iteration: ``3n + 4`` -- two seed
        writes, 2 reads + 1 write per sub-iteration (a null tap still
        reads, the cycle pattern is fixed in hardware) and the two
        signature reads.  Verification adds ``n + 2`` reads."""
        return 3 * n + 4

    def background_after(self, n: int) -> list[int]:
        """Fault-free cell contents (indexed by *cell*) after one pass.

        Cell ``traj[p]`` holds stream value ``s_p`` for ``p = 2 .. n-1``;
        the first two trajectory cells were rewritten by the cyclic wrap
        and hold ``s_n`` / ``s_{n+1}``.  A follow-up *verifying*
        iteration checks exactly these values before overwriting (see
        :meth:`run`)."""
        traj = self.trajectory_for(n)
        reference = self._reference.copy()
        reference.reset()
        stream = list(reference.sequence(n + 2))
        background = [0] * n
        for p in range(2, n):
            background[traj[p]] = stream[p]
        for i in range(2):
            background[traj[n + i]] = stream[n + i]
        return background

    def expected_final(self, n: int) -> tuple[int, ...]:
        """``Fin*`` after the n-step pass."""
        reference = self._reference.copy()
        reference.reset()
        reference.run(n)
        return reference.state

    def run(self, ram: MultiPortRAM,
            previous_background: list[int] | None = None) -> PiIterationResult:
        """Execute on a RAM with at least two ports.

        With ``previous_background`` (a full per-cell snapshot, normally
        the preceding iteration's :meth:`background_after`) the pass
        verifies transparently: one leading double-read cycle checks the
        two seed cells, and every write cycle's idle second port reads
        the cell being overwritten -- the read senses the pre-write
        value, so verification costs **zero extra cycles** during the
        sweep.  Mismatches land in the result's ``verify_mismatches``.
        """
        if getattr(ram, "ports", 1) < 2:
            raise ValueError("the dual-port scheme needs >= 2 ports")
        if ram.m != self._field.m:
            raise ValueError(
                f"RAM cell width m={ram.m} does not match field "
                f"GF(2^{self._field.m})"
            )
        n = ram.n
        if n < 3:
            raise ValueError(f"memory must have more than 2 cells, got {n}")
        if previous_background is not None and len(previous_background) != n:
            raise ValueError(
                f"previous background must list all {n} cells, "
                f"got {len(previous_background)}"
            )
        traj = self.trajectory_for(n)
        field = self._field
        mult = self._reference.recurrence_multipliers
        operations = 0
        verify_mismatches = 0
        if previous_background is not None:
            # Both seed cells are written in the init cycle with both
            # ports busy, so their old contents need one dedicated
            # double-read cycle up front.
            checks = ram.cycle([
                PortOp(0, "r", traj[0]),
                PortOp(1, "r", traj[1]),
            ])
            operations += 2
            for i in range(2):
                if checks[i] != previous_background[traj[i]]:
                    verify_mismatches += 1
        # Init: both seed words in one cycle (two ports, two cells).
        ram.cycle([
            PortOp(0, "w", traj[0], self._seed[0]),
            PortOp(1, "w", traj[1], self._seed[1]),
        ])
        operations += 2
        # Sweep: each sub-iteration is a double-read cycle then a write cycle.
        for j in range(n):
            reads = ram.cycle([
                PortOp(0, "r", traj[j]),
                PortOp(1, "r", traj[j + 1]),
            ])
            operations += 2
            acc = 0
            for i, r in enumerate((reads[0], reads[1])):
                if mult[i] and r:
                    acc = field.add(acc, field.mul(mult[i], r))
            if previous_background is None:
                ram.cycle([PortOp(0, "w", traj[j + 2], acc)])
                operations += 1
            else:
                # Port 1 idles during the write cycle; spend it on a
                # transparent verify read of the cell being overwritten
                # (reads sense the pre-write value).
                target = traj[j + 2]
                # Wrap writes overwrite this iteration's own seeds.
                expected = (previous_background[target] if j < n - 2
                            else self._seed[j + 2 - n])
                checks = ram.cycle([
                    PortOp(0, "w", target, acc),
                    PortOp(1, "r", target),
                ])
                operations += 2
                if checks[1] != expected:
                    verify_mismatches += 1
        # Signature: both final-window reads in one cycle.
        final = ram.cycle([
            PortOp(0, "r", traj[n]),
            PortOp(1, "r", traj[n + 1]),
        ])
        operations += 2
        return PiIterationResult(
            init_state=self._seed,
            final_state=(final[0], final[1]),
            expected_final=self.expected_final(n),
            operations=operations,
            verify_mismatches=verify_mismatches,
        )


@dataclass
class QuadPortResult:
    """Outcome of the quad-port multi-LFSR iteration: one
    :class:`PiIterationResult` per concurrent automaton.

    ``verify_mismatches`` counts failed *schedule-level* checks charged
    to the iteration as a whole (a multi-port schedule's final read-back
    pass); per-automaton verify reads land on the halves instead."""

    halves: tuple[PiIterationResult, PiIterationResult]
    verify_mismatches: int = 0

    @property
    def passed(self) -> bool:
        """True when both automata matched their expected final states
        and every verified background read (if any) matched."""
        return all(r.passed for r in self.halves) and self.verify_mismatches == 0

    def __repr__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"QuadPortResult({status})"


class QuadPortPiIteration:
    """Multi-LFSR scheme on a 4-port RAM: two automata sweep the two array
    halves concurrently.

    Cycle pattern per sub-iteration ``j`` (j over n/2)::

        cycle 2j:   ports 0,1 read automaton A's window,
                    ports 2,3 read automaton B's window
        cycle 2j+1: port 0 writes A's new word, port 2 writes B's

    Total: ``n + 2`` cycles for the full array -- half the dual-port time.

    >>> from repro.memory import QuadPortRAM
    >>> it = QuadPortPiIteration(seed=(0, 1))
    >>> ram = QuadPortRAM(12)
    >>> it.run(ram).passed
    True
    >>> ram.stats.cycles
    14
    """

    #: Ports one memory cycle of this scheme occupies.
    ports = 4

    def __init__(self, field: GF2m | None = None,
                 generator: tuple[int, ...] = (1, 1, 1),
                 seed: tuple[int, ...] = (0, 1)):
        self._field = field if field is not None else GF2
        generator = tuple(generator)
        seed = tuple(seed)
        if len(generator) != 3:
            raise ValueError(
                "the quad-port scheme is defined for k = 2 generators"
            )
        self._reference = WordLFSR(self._field, generator, seed)
        if all(s == 0 for s in seed):
            raise ValueError("the all-zero seed exercises nothing")
        self._generator = generator
        self._seed = seed

    @property
    def field(self) -> GF2m:
        """The coefficient field."""
        return self._field

    @property
    def generator(self) -> tuple[int, ...]:
        """Generator polynomial coefficients."""
        return self._generator

    @property
    def seed(self) -> tuple[int, ...]:
        """The initial window (shared by both automata)."""
        return self._seed

    @property
    def recurrence_multipliers(self) -> tuple[int, ...]:
        """Per-window-slot recurrence multipliers (see
        :attr:`DualPortPiIteration.recurrence_multipliers`)."""
        return self._reference.recurrence_multipliers

    def expected_stream(self, n: int) -> list[int]:
        """The fault-free written stream of *one* automaton over its
        n/2-cell half (both automata run the same recurrence)."""
        reference = self._reference.copy()
        reference.reset()
        reference.run(2)
        return list(reference.sequence(n // 2))

    def expected_final(self, n: int) -> tuple[int, ...]:
        """``Fin*`` of each automaton after its n/2-step half-array pass."""
        reference = self._reference.copy()
        reference.reset()
        reference.run(n // 2)
        return reference.state

    def __repr__(self) -> str:
        return (
            f"QuadPortPiIteration(GF(2^{self._field.m}), "
            f"g={self._generator}, seed={self._seed})"
        )

    def cycle_count(self, n: int) -> int:
        """Cycles per iteration: ``n + 2`` for an even n.  Transparent
        verification adds one leading read cycle (see
        :meth:`DualPortPiIteration.cycle_count`)."""
        return n + 2

    def operation_count(self, n: int) -> int:
        """Exact operations per iteration: ``3n + 8`` -- four seed
        writes, 4 reads + 2 writes per sub-iteration (j over n/2) and
        the four signature reads.  Verification adds ``n + 4`` reads."""
        return 3 * n + 8

    def background_after(self, n: int) -> list[int]:
        """Fault-free cell contents after one pass: both halves carry
        the same stream, each relative to its own base (see
        :meth:`DualPortPiIteration.background_after`)."""
        half = n // 2
        reference = self._reference.copy()
        reference.reset()
        stream = list(reference.sequence(half + 2))
        background = [0] * n
        for base in (0, half):
            for p in range(2, half):
                background[base + p] = stream[p]
            for i in range(2):
                background[base + ((half + i) % half)] = stream[half + i]
        return background

    def run(self, ram: MultiPortRAM,
            previous_background: list[int] | None = None) -> QuadPortResult:
        """Execute on a 4-port RAM with an even number of cells.

        ``previous_background`` enables transparent verification exactly
        as in :meth:`DualPortPiIteration.run`: a leading 4-read cycle
        checks the seed cells of both automata, and ports 1/3 verify the
        cells ports 0/2 overwrite during each write cycle.  Mismatches
        are charged to the owning automaton's half result.
        """
        if getattr(ram, "ports", 1) < 4:
            raise ValueError("the quad-port scheme needs >= 4 ports")
        if ram.m != self._field.m:
            raise ValueError(
                f"RAM cell width m={ram.m} does not match field "
                f"GF(2^{self._field.m})"
            )
        n = ram.n
        if n % 2 != 0 or n < 6:
            raise ValueError(
                f"the two-automata scheme needs an even n >= 6, got {n}"
            )
        if previous_background is not None and len(previous_background) != n:
            raise ValueError(
                f"previous background must list all {n} cells, "
                f"got {len(previous_background)}"
            )
        half = n // 2
        # Automaton A sweeps cells [0, half), B sweeps [half, n).
        base = {0: 0, 1: half}
        field = self._field
        mult = self._reference.recurrence_multipliers
        seed = self._seed
        verify_mismatches = [0, 0]

        def cell(automaton: int, j: int) -> int:
            return base[automaton] + (j % half)

        if previous_background is not None:
            # All four ports write in the init cycle; the seed cells'
            # old contents need one dedicated 4-read cycle up front.
            checks = ram.cycle([
                PortOp(0, "r", cell(0, 0)),
                PortOp(1, "r", cell(0, 1)),
                PortOp(2, "r", cell(1, 0)),
                PortOp(3, "r", cell(1, 1)),
            ])
            for automaton in (0, 1):
                for i in range(2):
                    addr = cell(automaton, i)
                    if checks[2 * automaton + i] != previous_background[addr]:
                        verify_mismatches[automaton] += 1
        ram.cycle([
            PortOp(0, "w", cell(0, 0), seed[0]),
            PortOp(1, "w", cell(0, 1), seed[1]),
            PortOp(2, "w", cell(1, 0), seed[0]),
            PortOp(3, "w", cell(1, 1), seed[1]),
        ])
        for j in range(half):
            reads = ram.cycle([
                PortOp(0, "r", cell(0, j)),
                PortOp(1, "r", cell(0, j + 1)),
                PortOp(2, "r", cell(1, j)),
                PortOp(3, "r", cell(1, j + 1)),
            ])
            values = []
            for automaton in (0, 1):
                acc = 0
                pair = (reads[2 * automaton], reads[2 * automaton + 1])
                for i, r in enumerate(pair):
                    if mult[i] and r:
                        acc = field.add(acc, field.mul(mult[i], r))
                values.append(acc)
            if previous_background is None:
                ram.cycle([
                    PortOp(0, "w", cell(0, j + 2), values[0]),
                    PortOp(2, "w", cell(1, j + 2), values[1]),
                ])
            else:
                # Ports 1/3 idle during the write cycle; they verify the
                # cells ports 0/2 overwrite (reads sense pre-write).
                targets = (cell(0, j + 2), cell(1, j + 2))
                checks = ram.cycle([
                    PortOp(0, "w", targets[0], values[0]),
                    PortOp(1, "r", targets[0]),
                    PortOp(2, "w", targets[1], values[1]),
                    PortOp(3, "r", targets[1]),
                ])
                for automaton in (0, 1):
                    # Wrap writes overwrite this iteration's seeds.
                    expected = (previous_background[targets[automaton]]
                                if j < half - 2 else seed[j + 2 - half])
                    if checks[2 * automaton + 1] != expected:
                        verify_mismatches[automaton] += 1
        final = ram.cycle([
            PortOp(0, "r", cell(0, half)),
            PortOp(1, "r", cell(0, half + 1)),
            PortOp(2, "r", cell(1, half)),
            PortOp(3, "r", cell(1, half + 1)),
        ])
        expected = self.expected_final(n)
        halves = tuple(
            PiIterationResult(
                init_state=seed,
                final_state=(final[2 * automaton], final[2 * automaton + 1]),
                expected_final=expected,
                operations=0,  # accounted on the shared RAM stats
                verify_mismatches=verify_mismatches[automaton],
            )
            for automaton in (0, 1)
        )
        return QuadPortResult(halves=halves)  # type: ignore[arg-type]
